//! Stack cross-checks: the simulator, the AIG lowering and the SAT solver
//! must agree on the SoC's behaviour. These tests catch encoding bugs that
//! unit tests of individual layers can miss.

use mcu_ssc::aig::lower::{lower_cycle, CycleInputs};
use mcu_ssc::aig::Aig;
use mcu_ssc::netlist::{Bv, Node};
use mcu_ssc::sim::Sim;
use mcu_ssc::soc::{port_names, Soc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drive the verification-view SoC with random port traffic and random
/// starting state; the AIG one-cycle lowering must predict exactly the
/// simulator's next state for every register and memory word.
#[test]
fn soc_aig_lowering_matches_simulator_transition() {
    let soc = Soc::verification_view();
    let n = &soc.netlist;
    let mut aig = Aig::new();
    let leaves = CycleInputs::fresh(n, &mut aig);
    let out = lower_cycle(n, &mut aig, &leaves);

    let mut rng = StdRng::seed_from_u64(2024);
    for round in 0..10 {
        let mut sim = Sim::new(n).unwrap();

        // Random starting state + inputs, mirrored into the AIG input bits.
        // CycleInputs::fresh creates inputs in node order (inputs + regs)
        // followed by memories, LSB first.
        let mut bits: Vec<bool> = Vec::new();
        for (id, node) in n.iter_nodes() {
            match node {
                Node::Input { name: _, width } => {
                    let v = rng.random_range(0..u64::MAX) & Bv::mask_for(*width);
                    sim.set_input_wire(n.wire_of(id), Bv::new(*width, v));
                    (0..*width).for_each(|i| bits.push((v >> i) & 1 == 1));
                }
                Node::Reg(info) => {
                    let v = rng.random_range(0..u64::MAX) & Bv::mask_for(info.width);
                    sim.set_reg(n.wire_of(id), Bv::new(info.width, v));
                    (0..info.width).for_each(|i| bits.push((v >> i) & 1 == 1));
                }
                _ => {}
            }
        }
        for (mid, m) in n.iter_mems() {
            for w in 0..m.words {
                let v = rng.random_range(0..u64::MAX) & Bv::mask_for(m.width);
                sim.set_mem_word(mid, w, Bv::new(m.width, v));
                (0..m.width).for_each(|i| bits.push((v >> i) & 1 == 1));
            }
        }

        // Compare all register next-states.
        let reg_ids: Vec<_> = n
            .iter_nodes()
            .filter(|(_, node)| matches!(node, Node::Reg(_)))
            .map(|(id, _)| id)
            .collect();
        let mut query = Vec::new();
        for id in &reg_ids {
            query.extend(out.next_regs[id].iter().copied());
        }
        let predicted = aig.eval(&bits, &query);

        sim.step();
        let mut k = 0;
        for id in &reg_ids {
            let width = n.width_of(*id);
            let mut pred = 0u64;
            for i in 0..width {
                pred |= u64::from(predicted[k]) << i;
                k += 1;
            }
            let got = sim.peek(n.wire_of(*id)).val();
            let name = match n.node(*id) {
                Node::Reg(info) => info.name.clone(),
                _ => unreachable!(),
            };
            assert_eq!(pred, got, "round {round}: reg `{name}` next-state mismatch");
        }
    }
}

/// The same check for memory contents after one write cycle.
#[test]
fn soc_aig_lowering_matches_simulator_memories() {
    let soc = Soc::verification_view();
    let n = &soc.netlist;
    let mut aig = Aig::new();
    let leaves = CycleInputs::fresh(n, &mut aig);
    let out = lower_cycle(n, &mut aig, &leaves);

    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..5 {
        let mut sim = Sim::new(n).unwrap();
        let mut bits: Vec<bool> = Vec::new();
        // A concrete, plausible port transaction: a write into public RAM.
        let addr = mcu_ssc::soc::addr::PUB_RAM_BASE + 4 * rng.random_range(0..8u64);
        let data = rng.random_range(0..u32::MAX as u64);
        for (id, node) in n.iter_nodes() {
            match node {
                Node::Input { name, width } => {
                    let v = match name.as_str() {
                        x if x == port_names::REQ => 1,
                        x if x == port_names::ADDR => addr,
                        x if x == port_names::WE => 1,
                        x if x == port_names::WDATA => data,
                        _ => 0,
                    } & Bv::mask_for(*width);
                    sim.set_input_wire(n.wire_of(id), Bv::new(*width, v));
                    (0..*width).for_each(|i| bits.push((v >> i) & 1 == 1));
                }
                Node::Reg(info) => {
                    // Quiescent IPs: zero state.
                    (0..info.width).for_each(|_| bits.push(false));
                }
                _ => {}
            }
        }
        for (_, m) in n.iter_mems() {
            for _ in 0..m.words {
                (0..m.width).for_each(|_| bits.push(false));
            }
        }

        let word_idx = ((addr & 0xF_FFFF) / 4) as u32;
        let target = out.next_mems[&soc.pub_ram][word_idx as usize].clone();
        let predicted = aig.eval(&bits, &target);
        let pred: u64 = predicted
            .iter()
            .enumerate()
            .fold(0, |a, (i, &b)| a | (u64::from(b) << i));

        sim.step();
        assert_eq!(
            pred,
            sim.read_mem(soc.pub_ram, word_idx).val(),
            "written word must match"
        );
        assert_eq!(pred, data, "the write must land");
    }
}
