//! Attack ⟷ formal cross-validation: the *same* SoC that the simulator
//! shows leaking is the one the formal method flags, and the *same*
//! countermeasure that flattens the simulated channels is the one that
//! verifies.

use mcu_ssc::attacks::leak::sweep;
use mcu_ssc::attacks::scenarios::{Channel, VictimConfig};
use mcu_ssc::soc::Soc;
use mcu_ssc::upec::{UpecAnalysis, UpecSpec};

#[test]
fn simulation_and_formal_agree_on_the_vulnerable_layout() {
    // Simulation: the channel transmits information.
    let sim_soc = Soc::sim_view();
    let leak = sweep(&sim_soc, Channel::DmaTimer, VictimConfig::in_public, 6, false);
    assert!(leak.distinguishable() > 4, "the simulated channel must be live");

    // Formal: the same fabric (verification view) is flagged.
    let ver_soc = Soc::verification_view();
    let an = UpecAnalysis::new(&ver_soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    assert!(an.alg1().is_vulnerable());
}

#[test]
fn simulation_and_formal_agree_on_the_countermeasure() {
    // Simulation: private-memory victims leak nothing through either
    // channel.
    let sim_soc = Soc::sim_view();
    for channel in [Channel::DmaTimer, Channel::HwpeMemory] {
        let leak = sweep(&sim_soc, channel, VictimConfig::in_private, 6, false);
        assert_eq!(
            leak.distinguishable(),
            1,
            "{channel:?} must be flat under the countermeasure"
        );
    }

    // Formal: the countermeasure configuration is proven secure —
    // and the proof covers *all* programs, not just the swept ones.
    let ver_soc = Soc::verification_view();
    let an = UpecAnalysis::new(&ver_soc.netlist, UpecSpec::soc_fixed()).unwrap();
    assert!(an.alg1().is_secure());
}

#[test]
fn burst_victims_leak_proportionally() {
    use mcu_ssc::attacks::programs::victim_burst_stores;
    use mcu_ssc::attacks::scenarios::{RECORDING_WINDOW};
    use mcu_ssc::soc::{addr, SocSim};

    // A victim making 2-store bursts creates twice the contention per
    // secret unit; the timer channel resolves each burst as two slots.
    let soc = Soc::sim_view();
    let run = |n: u32| -> u64 {
        let mut h = SocSim::new(&soc);
        let prep = mcu_ssc::attacks::programs::prep_dma_timer(48);
        let vic = victim_burst_stores(addr::PUB_RAM_BASE + 0x3E0, n);
        let ret = mcu_ssc::attacks::programs::retrieve_timer();
        h.load_program(0, &prep);
        h.load_program(96, &vic);
        h.load_program(192, &ret);
        h.switch_to(0);
        h.run_until_halt(2_000).unwrap();
        h.switch_to(96 * 4);
        h.step_n(RECORDING_WINDOW);
        h.switch_to(192 * 4);
        h.run_until_halt(4_000).unwrap();
        h.peek("gpio_out")
    };
    let base = run(0);
    for n in [1u32, 2, 3, 4] {
        let obs = run(n);
        let delay = base - obs;
        assert_eq!(delay, u64::from(2 * n), "each burst steals two slots (n={n})");
    }
}

#[test]
fn ift_dynamic_misses_what_upec_catches() {
    use mcu_ssc::soc::port_names;

    // A short spying window and one secret access: dynamic IFT detection
    // is probabilistic, UPEC-SSC is one-shot exhaustive.
    let soc = Soc::verification_view();
    let inst = mcu_ssc::ift::instrument(
        &soc.netlist,
        &[port_names::REQ, port_names::ADDR, port_names::WE, port_names::WDATA],
    );
    let trials = 30usize;
    let hits = (0..trials).filter(|&s| ssc_bench_shim::dynamic_trial(&inst, s as u64)).count();
    assert!(hits > 0, "some trials must detect the flow");
    assert!(hits < trials, "and some must miss it — that is the gap UPEC closes");
}

/// Local copy of the bench crate's dynamic trial (the root test crate does
/// not depend on `ssc-bench`).
mod ssc_bench_shim {
    use mcu_ssc::ift::dynamic::TaintSim;
    use mcu_ssc::soc::{addr, port_names};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub fn dynamic_trial(inst: &mcu_ssc::ift::Instrumented, seed: u64) -> bool {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ts = TaintSim::new(inst);
        for (reg, val) in [
            (addr::HWPE_SRC, addr::PUB_RAM_BASE + 0x100),
            (addr::HWPE_DST, addr::PUB_RAM_BASE + 0x40),
            (addr::HWPE_LEN, 8),
            (addr::HWPE_CTRL, 1),
        ] {
            ts.set_input(port_names::REQ, 1);
            ts.set_input(port_names::WE, 1);
            ts.set_input(port_names::ADDR, reg);
            ts.set_input(port_names::WDATA, val);
            ts.step();
        }
        ts.set_input(port_names::WE, 0);
        ts.set_input(port_names::REQ, 0);
        let victim_range = addr::PUB_RAM_BASE + 0x20;
        let secret_cycle = rng.random_range(0..40u64);
        for cycle in 0..40u64 {
            if cycle == secret_cycle {
                ts.set_input(port_names::REQ, 1);
                ts.set_input(port_names::ADDR, victim_range);
                ts.set_input(port_names::WE, 0);
                ts.set_taint(port_names::REQ, 1);
                ts.set_taint(port_names::ADDR, u64::MAX);
            } else {
                ts.set_input(port_names::REQ, 0);
                ts.set_taint(port_names::REQ, 0);
                ts.set_taint(port_names::ADDR, 0);
            }
            ts.step();
        }
        ts.mem_tainted("pub_xbar.ram") || ts.reg_tainted("hwpe.progress")
    }
}
