//! Cross-crate end-to-end tests: the full pipeline from SoC generation
//! through formal detection, countermeasure proof and counterexample
//! replay — the repository's headline claims as assertions.

use mcu_ssc::netlist::analysis;
use mcu_ssc::soc::{Soc, SocConfig};
use mcu_ssc::upec::{replay_on_simulator, UpecAnalysis, UpecSpec, Verdict};

#[test]
fn headline_vulnerable_then_fixed() {
    let soc = Soc::verification_view();

    // Shared-memory configuration: vulnerable.
    let vuln = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    let verdict = vuln.alg1();
    assert!(verdict.is_vulnerable(), "{verdict}");

    // Private-memory countermeasure: secure, with inductive constraints.
    let fixed = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).unwrap();
    fixed.prove_constraints_inductive().unwrap();
    let verdict = fixed.alg1();
    assert!(verdict.is_secure(), "{verdict}");
}

#[test]
fn hwpe_memory_counterexample_has_attack_shape() {
    // The Sec. 4.1 scenario: the counterexample must (a) be triggered by an
    // asymmetric protected access, (b) land in a public memory word, and
    // (c) replay concretely on the RTL simulator.
    let soc = Soc::verification_view();
    let an =
        UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable_hwpe_memory()).unwrap();
    let Verdict::Vulnerable(report) = an.alg2() else {
        panic!("expected the HWPE/memory channel to be found");
    };
    let cex = &report.cex;
    assert!(
        cex.trace.iter().any(|c| c.port_a.protected != c.port_b.protected),
        "asymmetric protected access expected:\n{cex}"
    );
    assert!(
        cex.persistent_diffs().any(|d| d.name.starts_with("pub_xbar.ram[")),
        "persistent medium must be the shared memory:\n{cex}"
    );
    replay_on_simulator(&an, cex).expect("counterexample must replay");
}

#[test]
fn verification_view_matches_sim_view_fabric() {
    // Both views are generated from the same constructors; their fabric
    // state (everything except the CPU) must be identical.
    let sim_view = Soc::build(SocConfig { with_cpu: true, ..SocConfig::verification() });
    let ver_view = Soc::verification_view();
    let fabric = |soc: &Soc| -> Vec<(String, u64)> {
        analysis::state_elements(&soc.netlist)
            .into_iter()
            .filter(|e| e.meta.kind != mcu_ssc::netlist::StateKind::CpuInternal)
            .map(|e| (e.name, e.bits))
            .collect()
    };
    assert_eq!(fabric(&sim_view), fabric(&ver_view));
}

#[test]
fn textual_netlist_roundtrip_preserves_verdicts() {
    // Serialize the verification view through the textual format and
    // re-run the analysis on the parsed netlist: the verdict must match.
    let soc = Soc::verification_view();
    let text = mcu_ssc::netlist::text::emit(&soc.netlist);
    let parsed = mcu_ssc::netlist::text::parse(&text).expect("emitted netlists parse");
    parsed.check().unwrap();
    let an = UpecAnalysis::new(&parsed, UpecSpec::soc_vulnerable()).unwrap();
    assert!(an.alg1().is_vulnerable());
}

#[test]
fn quiescing_all_ips_makes_the_shared_layout_secure() {
    // With every spying IP quiescent and the timer denied, nothing can
    // record the victim's timing: the otherwise-vulnerable layout verifies.
    // (The attack needs an *active* recorder during the victim's tick.)
    let soc = Soc::verification_view();
    let mut spec = UpecSpec::soc_vulnerable();
    spec.quiesced_ips = vec!["dma.busy".into(), "hwpe.busy".into()];
    let an = UpecAnalysis::new(&soc.netlist, spec).unwrap();
    let verdict = an.alg1();
    assert!(
        verdict.is_secure(),
        "no active spy => no recording medium: {verdict}"
    );
}
