//! Lane/scalar equivalence of the attack scenarios: the batched sweep —
//! at **both** engine widths (64-lane `u64` and 256-lane `u64x4` blocks)
//! — must reproduce the scalar sweep **bit-identically** on every
//! channel × timer-policy configuration (and on the countermeasure
//! layout), point for point.

use ssc_attacks::leak::{sweep, sweep_batched, sweep_batched_with_width};
use ssc_pool::{LaneWidth, Pool};
use ssc_attacks::scenarios::{
    dma_timer_attack, dma_timer_attack_batch, hwpe_memory_attack, hwpe_memory_attack_batch,
    Channel, VictimConfig,
};
use ssc_soc::Soc;

/// The four scenario configurations of the paper's simulation experiments:
/// both channels, with and without the timer-denial defence.
const CONFIGS: [(Channel, bool); 4] = [
    (Channel::DmaTimer, false),
    (Channel::DmaTimer, true),
    (Channel::HwpeMemory, false),
    (Channel::HwpeMemory, true),
];

#[test]
fn batched_sweep_is_bit_identical_to_scalar_on_all_four_configs() {
    let soc = Soc::sim_view();
    for (channel, locked) in CONFIGS {
        let scalar = sweep(&soc, channel, VictimConfig::in_public, 10, locked);
        let batched = sweep_batched(&soc, channel, VictimConfig::in_public, 10, locked);
        assert_eq!(
            scalar.points, batched.points,
            "lane/scalar divergence on {channel:?} (timer_locked={locked})"
        );
        assert_eq!(scalar.exact_accuracy(), batched.exact_accuracy());
        assert_eq!(scalar.distinguishable(), batched.distinguishable());
        // Both explicit widths agree with the scalar reference too (the
        // default width above is whichever `SSC_LANE_WIDTH` selected).
        for width in [LaneWidth::X64, LaneWidth::X256] {
            let explicit = sweep_batched_with_width(
                &soc,
                channel,
                VictimConfig::in_public,
                10,
                locked,
                Pool::global(),
                width,
            );
            assert_eq!(
                scalar.points, explicit.points,
                "{width:?} diverges on {channel:?} (timer_locked={locked})"
            );
        }
    }
}

#[test]
fn batched_sweep_matches_scalar_on_private_victims() {
    let soc = Soc::sim_view();
    for (channel, locked) in CONFIGS {
        let scalar = sweep(&soc, channel, VictimConfig::in_private, 6, locked);
        let batched = sweep_batched(&soc, channel, VictimConfig::in_private, 6, locked);
        assert_eq!(
            scalar.points, batched.points,
            "lane/scalar divergence on private {channel:?} (timer_locked={locked})"
        );
    }
}

mod partial_blocks {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Partial trailing blocks (1..=63 active configs — every batch
        /// run leaves inactive lanes) must be bit-identical to the scalar
        /// sweep on a randomly drawn channel × timer-policy configuration,
        /// not just the 6/10-config sizes of the fixed tests above.
        #[test]
        fn partial_block_sweep_is_bit_identical_to_scalar(
            configs in 1u32..=63,
            which in 0usize..4,
            private in any::<bool>(),
        ) {
            let (channel, locked) = CONFIGS[which];
            let victim = if private { VictimConfig::in_private } else { VictimConfig::in_public };
            let soc = Soc::sim_view();
            let max_n = configs - 1;
            let scalar = sweep(&soc, channel, victim, max_n, locked);
            let batched = sweep_batched(&soc, channel, victim, max_n, locked);
            prop_assert_eq!(
                &scalar.points,
                &batched.points,
                "partial-block divergence: {} configs on {:?} (timer_locked={}, private={})",
                configs, channel, locked, private
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The wide 256-lane domain's partial blocks over the full
        /// 1..=255 range: a random sweep size leaving 1..=255 inactive
        /// wide lanes must be bit-identical to the 64-lane engine on the
        /// same configuration (which the cases above pin to the scalar
        /// reference). Sizes above 64 additionally cross the narrow
        /// engine's block seam inside one wide block.
        #[test]
        fn wide_partial_block_sweep_is_bit_identical_to_narrow(
            configs in 1u32..=255,
            which in 0usize..4,
            private in any::<bool>(),
        ) {
            let (channel, locked) = CONFIGS[which];
            let victim = if private { VictimConfig::in_private } else { VictimConfig::in_public };
            let soc = Soc::sim_view();
            let max_n = configs - 1;
            let pool = Pool::global();
            let narrow = sweep_batched_with_width(
                &soc, channel, victim, max_n, locked, pool, LaneWidth::X64);
            let wide = sweep_batched_with_width(
                &soc, channel, victim, max_n, locked, pool, LaneWidth::X256);
            prop_assert_eq!(
                &narrow.points,
                &wide.points,
                "wide/narrow divergence: {} configs on {:?} (timer_locked={}, private={})",
                configs, channel, locked, private
            );
        }
    }
}

#[test]
fn sharded_sweep_is_bit_identical_across_pool_sizes() {
    use ssc_attacks::leak::sweep_batched_with_pool;

    let soc = Soc::sim_view();
    // 96 points = one full block + one partial block; enough to exercise
    // the cross-block baseline handoff and the parallel merge.
    let max_n = 95;
    for (channel, locked) in CONFIGS {
        let sequential =
            sweep_batched_with_pool(&soc, channel, VictimConfig::in_public, max_n, locked, &Pool::new(1));
        for workers in [2, 4] {
            let sharded = sweep_batched_with_pool(
                &soc,
                channel,
                VictimConfig::in_public,
                max_n,
                locked,
                &Pool::new(workers),
            );
            assert_eq!(
                sequential.points, sharded.points,
                "sharded sweep diverges at {workers} workers on {channel:?} (locked={locked})"
            );
        }
    }
    // Scalar cross-check of the multi-block path on one configuration
    // (the per-config scalar equivalence at smaller sizes is covered
    // above; this pins the >64-lane block seam against the reference).
    let scalar = sweep(&soc, Channel::DmaTimer, VictimConfig::in_public, max_n, false);
    let sharded = sweep_batched_with_pool(
        &soc,
        Channel::DmaTimer,
        VictimConfig::in_public,
        max_n,
        false,
        &Pool::new(3),
    );
    assert_eq!(scalar.points, sharded.points, "multi-block sweep diverges from scalar");
}

#[test]
fn wide_sharded_sweep_is_bit_identical_across_pool_sizes() {
    let soc = Soc::sim_view();
    // 300 points = one full 256-lane block + one partial block; the wide
    // domain's cross-block baseline handoff and parallel merge.
    let max_n = 299;
    for (channel, locked) in [CONFIGS[0], CONFIGS[3]] {
        let sequential = sweep_batched_with_width(
            &soc,
            channel,
            VictimConfig::in_public,
            max_n,
            locked,
            &Pool::new(1),
            LaneWidth::X256,
        );
        for workers in [2, 4] {
            let sharded = sweep_batched_with_width(
                &soc,
                channel,
                VictimConfig::in_public,
                max_n,
                locked,
                &Pool::new(workers),
                LaneWidth::X256,
            );
            assert_eq!(
                sequential.points, sharded.points,
                "wide sharded sweep diverges at {workers} workers on {channel:?} (locked={locked})"
            );
        }
        // The narrow engine decomposes the same sweep into different
        // blocks; the merged report must still be identical.
        let narrow = sweep_batched_with_width(
            &soc,
            channel,
            VictimConfig::in_public,
            max_n,
            locked,
            &Pool::new(2),
            LaneWidth::X64,
        );
        assert_eq!(
            sequential.points, narrow.points,
            "wide/narrow block decomposition diverges on {channel:?} (locked={locked})"
        );
    }
}

#[test]
fn batch_outcomes_align_with_individual_scalar_attacks() {
    let soc = Soc::sim_view();
    let victims: Vec<VictimConfig> = (0..16).map(VictimConfig::in_public).collect();
    let batch_t = dma_timer_attack_batch::<1>(&soc, &victims, false);
    let batch_m = hwpe_memory_attack_batch::<1>(&soc, &victims, false);
    // The wide engine answers the same victims in one 256-lane walk.
    let wide_t = dma_timer_attack_batch::<4>(&soc, &victims, false);
    let wide_m = hwpe_memory_attack_batch::<4>(&soc, &victims, false);
    for (i, v) in victims.iter().enumerate() {
        assert_eq!(
            batch_t[i].observation,
            dma_timer_attack(&soc, *v, false).observation,
            "timer channel lane {i}"
        );
        assert_eq!(
            batch_m[i].observation,
            hwpe_memory_attack(&soc, *v, false).observation,
            "memory channel lane {i}"
        );
        assert_eq!(wide_t[i].observation, batch_t[i].observation, "wide timer lane {i}");
        assert_eq!(wide_m[i].observation, batch_m[i].observation, "wide memory lane {i}");
    }
}
