//! Lane/scalar equivalence of the attack scenarios: the 64-lane batched
//! sweep must reproduce the scalar sweep **bit-identically** on every
//! channel × timer-policy configuration (and on the countermeasure
//! layout), point for point.

use ssc_attacks::leak::{sweep, sweep_batched};
use ssc_attacks::scenarios::{
    dma_timer_attack, dma_timer_attack_batch, hwpe_memory_attack, hwpe_memory_attack_batch,
    Channel, VictimConfig,
};
use ssc_soc::Soc;

/// The four scenario configurations of the paper's simulation experiments:
/// both channels, with and without the timer-denial defence.
const CONFIGS: [(Channel, bool); 4] = [
    (Channel::DmaTimer, false),
    (Channel::DmaTimer, true),
    (Channel::HwpeMemory, false),
    (Channel::HwpeMemory, true),
];

#[test]
fn batched_sweep_is_bit_identical_to_scalar_on_all_four_configs() {
    let soc = Soc::sim_view();
    for (channel, locked) in CONFIGS {
        let scalar = sweep(&soc, channel, VictimConfig::in_public, 10, locked);
        let batched = sweep_batched(&soc, channel, VictimConfig::in_public, 10, locked);
        assert_eq!(
            scalar.points, batched.points,
            "lane/scalar divergence on {channel:?} (timer_locked={locked})"
        );
        assert_eq!(scalar.exact_accuracy(), batched.exact_accuracy());
        assert_eq!(scalar.distinguishable(), batched.distinguishable());
    }
}

#[test]
fn batched_sweep_matches_scalar_on_private_victims() {
    let soc = Soc::sim_view();
    for (channel, locked) in CONFIGS {
        let scalar = sweep(&soc, channel, VictimConfig::in_private, 6, locked);
        let batched = sweep_batched(&soc, channel, VictimConfig::in_private, 6, locked);
        assert_eq!(
            scalar.points, batched.points,
            "lane/scalar divergence on private {channel:?} (timer_locked={locked})"
        );
    }
}

#[test]
fn batch_outcomes_align_with_individual_scalar_attacks() {
    let soc = Soc::sim_view();
    let victims: Vec<VictimConfig> = (0..16).map(VictimConfig::in_public).collect();
    let batch_t = dma_timer_attack_batch(&soc, &victims, false);
    let batch_m = hwpe_memory_attack_batch(&soc, &victims, false);
    for (i, v) in victims.iter().enumerate() {
        assert_eq!(
            batch_t[i].observation,
            dma_timer_attack(&soc, *v, false).observation,
            "timer channel lane {i}"
        );
        assert_eq!(
            batch_m[i].observation,
            hwpe_memory_attack(&soc, *v, false).observation,
            "memory channel lane {i}"
        );
    }
}
