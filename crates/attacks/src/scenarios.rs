//! Executable three-phase attack scenarios on the simulated SoC.
//!
//! Each scenario follows the paper's structure (Sec. 2.2): *preparation*
//! (attacker configures spying IPs), *recording* (context switch; the
//! victim runs for one scheduler tick while the IPs observe bus
//! contention), *retrieval* (context switch back; the attacker reads the
//! recorded information). The scheduler is modeled by the harness: it
//! preempts the victim after a fixed number of cycles, like a real tick
//! interrupt would.

use ssc_soc::asm::Asm;
use ssc_soc::{addr, BatchSocSim, Soc, SocSim};

use crate::programs::{self, layout};

/// Length of the recording phase in cycles (the scheduler tick).
pub const RECORDING_WINDOW: u64 = 120;

/// Words primed/observed by the HWPE memory attack (must exceed the
/// maximum uncontended progress within the recording window).
pub const PRIME_WORDS: u32 = 72;

/// Byte offset of the primed region inside public RAM.
pub const PRIME_OFF: u32 = 0x40;

/// Victim configuration for a scenario run.
#[derive(Clone, Copy, Debug)]
pub struct VictimConfig {
    /// Base address of the victim's security-critical data.
    pub base: u64,
    /// Number of secret-dependent memory accesses in the recording phase.
    pub accesses: u32,
}

impl VictimConfig {
    /// Victim data in the *public* (shared) memory — the vulnerable layout.
    pub fn in_public(accesses: u32) -> Self {
        VictimConfig { base: addr::PUB_RAM_BASE + 0x3E0, accesses }
    }

    /// Victim data in the *private* memory — the countermeasure layout
    /// (paper Sec. 4.2).
    pub fn in_private(accesses: u32) -> Self {
        VictimConfig { base: addr::PRIV_RAM_BASE + 0x40, accesses }
    }
}

/// Raw outcome of one scenario run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// The attacker's observation (timer value or frontier index).
    pub observation: u64,
    /// Total simulated cycles.
    pub cycles: u64,
}

fn run_three_phases(
    soc: &Soc,
    prep: &Asm,
    victim: &Asm,
    retrieve: &Asm,
    lock_timer: bool,
) -> RunOutcome {
    let mut h = SocSim::new(soc);
    h.load_program(layout::PREP, prep);
    h.load_program(layout::VICTIM, victim);
    h.load_program(layout::RETRIEVE, retrieve);

    if lock_timer {
        // Defender policy: deny timer reads to untrusted tasks (set the
        // lock bit at boot).
        let locked = soc.netlist.find("timer.locked").expect("timer lock register");
        h.sim().set_reg(locked, ssc_netlist::Bv::bit(true));
    }

    // Phase 1: preparation (runs to completion).
    h.switch_to(layout::pc(layout::PREP));
    h.run_until_halt(2_000).expect("preparation must halt");

    // Phase 2: recording — the victim gets one fixed scheduler tick.
    h.switch_to(layout::pc(layout::VICTIM));
    h.step_n(RECORDING_WINDOW);

    // Phase 3: retrieval (runs to completion).
    h.switch_to(layout::pc(layout::RETRIEVE));
    h.run_until_halt(4_000).expect("retrieval must halt");

    RunOutcome { observation: h.peek("gpio_out"), cycles: h.cycle() }
}

/// The batched three-phase runner: up to `64·W` scenario instances — one
/// per simulation lane, each with its **own victim program** — run in a
/// single netlist walk per cycle (64 lanes at the default `W = 1`, 256 at
/// `W = 4`).
///
/// Preparation and retrieval are identical in every lane, so prep halts in
/// lockstep; retrieval lanes may halt at different cycles (their scans walk
/// different frontiers) and early lanes idle on a halted CPU until the
/// slowest finishes, which cannot disturb their already-published GPIO
/// observation. Every lane's *observation* is bit-identical to the scalar
/// [`run_three_phases`] fed the same victim; [`RunOutcome::cycles`] is the
/// shared batch cycle count (all lanes ran until the slowest halted), not
/// the per-victim runtime a scalar run would report.
fn run_three_phases_batch<const W: usize>(
    soc: &Soc,
    prep: &Asm,
    victims: &[Asm],
    retrieve: &Asm,
    lock_timer: bool,
) -> Vec<RunOutcome> {
    let lanes = BatchSocSim::<W>::LANES;
    assert!(!victims.is_empty(), "at least one victim program required");
    assert!(victims.len() <= lanes, "at most {lanes} victims per batch run");
    let mut h = BatchSocSim::<W>::new(soc);
    h.load_program(layout::PREP, prep);
    h.load_program(layout::RETRIEVE, retrieve);
    // Lanes beyond the victim list are *inactive*. They must not run
    // whatever happens to sit in their default-initialized instruction
    // memory, so they are explicitly neutralized with a victim that halts
    // immediately — a quiescent CPU for the whole recording window. Lane
    // isolation means they cannot disturb active lanes either way; their
    // observations are discarded below.
    let neutral = {
        let mut a = Asm::new();
        a.ebreak();
        a
    };
    for lane in 0..lanes {
        let v = victims.get(lane).unwrap_or(&neutral);
        h.load_program_lane(lane, layout::VICTIM, v);
    }

    if lock_timer {
        let locked = soc.netlist.find("timer.locked").expect("timer lock register");
        h.sim().set_reg(locked, ssc_netlist::Bv::bit(true));
    }

    h.switch_to(layout::pc(layout::PREP));
    h.run_until_all_halt(2_000).expect("preparation must halt");

    h.switch_to(layout::pc(layout::VICTIM));
    h.step_n(RECORDING_WINDOW);

    h.switch_to(layout::pc(layout::RETRIEVE));
    h.run_until_all_halt(4_000).expect("retrieval must halt");

    let cycles = h.cycle();
    let obs = h.peek_lanes("gpio_out");
    obs[..victims.len()]
        .iter()
        .map(|&observation| RunOutcome { observation, cycles })
        .collect()
}

/// The **DMA + timer** attack (paper Fig. 1): the DMA performs memory
/// accesses and then starts the timer; victim contention delays the start,
/// so the timer reading after the window encodes the victim's access count.
pub fn dma_timer_attack(soc: &Soc, victim: VictimConfig, lock_timer: bool) -> RunOutcome {
    // The transfer must span the recording window even under maximal
    // contention, so every victim access steals exactly one bus slot.
    let prep = programs::prep_dma_timer(48);
    let vic = programs::victim_accesses(victim.base, victim.accesses);
    let ret = programs::retrieve_timer();
    run_three_phases(soc, &prep, &vic, &ret, lock_timer)
}

/// [`dma_timer_attack`] for up to `64·W` victim configurations at once
/// (one simulation lane each; `W` is the lane-block word width — 1 for the
/// 64-lane engine, 4 for the 256-lane wide engine). Element `i` of the
/// result corresponds to `victims[i]` and is bit-identical to the scalar
/// attack's observation at every width (`cycles` is the shared batch cycle
/// count — see [`run_three_phases_batch`]).
pub fn dma_timer_attack_batch<const W: usize>(
    soc: &Soc,
    victims: &[VictimConfig],
    lock_timer: bool,
) -> Vec<RunOutcome> {
    let prep = programs::prep_dma_timer(48);
    let vics: Vec<Asm> =
        victims.iter().map(|v| programs::victim_accesses(v.base, v.accesses)).collect();
    let ret = programs::retrieve_timer();
    run_three_phases_batch::<W>(soc, &prep, &vics, &ret, lock_timer)
}

/// The **HWPE + memory** attack (paper Sec. 4.1, the new BUSted variant):
/// the attacker primes a memory region with zeros and lets the accelerator
/// overwrite it progressively; the write frontier after the window encodes
/// the victim's access count. **No timer involved** — locking the timer
/// does not affect it.
pub fn hwpe_memory_attack(soc: &Soc, victim: VictimConfig, lock_timer: bool) -> RunOutcome {
    let prep = programs::prep_hwpe_memory(PRIME_OFF, PRIME_WORDS, 255);
    let vic = programs::victim_accesses(victim.base, victim.accesses);
    let ret = programs::retrieve_frontier(PRIME_OFF, PRIME_WORDS);
    run_three_phases(soc, &prep, &vic, &ret, lock_timer)
}

/// [`hwpe_memory_attack`] for up to `64·W` victim configurations at once
/// (one simulation lane each; see [`dma_timer_attack_batch`] for the width
/// parameter). Element `i` of the result corresponds to `victims[i]` and
/// is bit-identical to the scalar attack's observation at every width
/// (`cycles` is the shared batch cycle count — see
/// [`run_three_phases_batch`]).
pub fn hwpe_memory_attack_batch<const W: usize>(
    soc: &Soc,
    victims: &[VictimConfig],
    lock_timer: bool,
) -> Vec<RunOutcome> {
    let prep = programs::prep_hwpe_memory(PRIME_OFF, PRIME_WORDS, 255);
    let vics: Vec<Asm> =
        victims.iter().map(|v| programs::victim_accesses(v.base, v.accesses)).collect();
    let ret = programs::retrieve_frontier(PRIME_OFF, PRIME_WORDS);
    run_three_phases_batch::<W>(soc, &prep, &vics, &ret, lock_timer)
}

/// A calibrated channel read-out: runs the scenario with `n = 0` to obtain
/// the baseline, then with the requested count; returns the recovered
/// access count as seen through the channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Channel {
    /// Timer-based channel (Fig. 1).
    DmaTimer,
    /// Primed-memory channel (Sec. 4.1).
    HwpeMemory,
}

/// Runs `channel` for a victim performing `n` accesses; returns
/// `(baseline_observation, observation)`.
pub fn observe(
    soc: &Soc,
    channel: Channel,
    victim: impl Fn(u32) -> VictimConfig,
    n: u32,
    lock_timer: bool,
) -> (u64, u64) {
    let run = |count: u32| match channel {
        Channel::DmaTimer => dma_timer_attack(soc, victim(count), lock_timer).observation,
        Channel::HwpeMemory => hwpe_memory_attack(soc, victim(count), lock_timer).observation,
    };
    (run(0), run(n))
}

/// Recovers the victim's access count from a calibrated observation pair.
///
/// For the timer channel each victim access delays the timer start by one
/// cycle, so `n = baseline - observation`. For the memory channel each
/// element costs two bus slots, so the frontier deficit is `n / 2` elements
/// and the recovery is `2 * (baseline - observation)` with ±1 quantization.
///
/// # Panics
///
/// Panics when `observation > baseline`: victim contention can only
/// *delay* the spying IP, so a reading above the calibration baseline
/// means the channel or its calibration is broken — that must fail loudly
/// instead of being silently folded to a zero deficit.
pub fn recover(channel: Channel, baseline: u64, observation: u64) -> u64 {
    assert!(
        observation <= baseline,
        "{channel:?} observation {observation} exceeds its calibration baseline {baseline} \
         — broken channel or stale calibration"
    );
    let deficit = baseline - observation;
    match channel {
        Channel::DmaTimer => deficit,
        Channel::HwpeMemory => deficit * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soc() -> Soc {
        Soc::sim_view()
    }

    #[test]
    fn dma_timer_attack_recovers_access_count_exactly() {
        let soc = soc();
        let (base, _) = observe(&soc, Channel::DmaTimer, VictimConfig::in_public, 0, false);
        for n in [0u32, 1, 2, 3, 5, 8, 12] {
            let obs = dma_timer_attack(&soc, VictimConfig::in_public(n), false).observation;
            let rec = recover(Channel::DmaTimer, base, obs);
            assert_eq!(rec, u64::from(n), "timer channel must be exact (n={n})");
        }
    }

    #[test]
    fn hwpe_memory_attack_recovers_access_count() {
        let soc = soc();
        let (base, _) = observe(&soc, Channel::HwpeMemory, VictimConfig::in_public, 0, false);
        for n in [0u32, 2, 4, 6, 8, 10] {
            let obs = hwpe_memory_attack(&soc, VictimConfig::in_public(n), false).observation;
            let rec = recover(Channel::HwpeMemory, base, obs);
            let err = rec.abs_diff(u64::from(n));
            assert!(err <= 1, "memory channel recovery n={n} got {rec}");
        }
    }

    #[test]
    fn timer_lock_closes_the_timer_channel() {
        let soc = soc();
        // With the timer denied, the observation is 0 for every n.
        for n in [0u32, 4, 8] {
            let obs = dma_timer_attack(&soc, VictimConfig::in_public(n), true).observation;
            assert_eq!(obs, 0, "locked timer must read zero");
        }
    }

    #[test]
    fn timer_lock_does_not_close_the_memory_channel() {
        // Paper Sec. 4.1's punchline: the new variant needs no timer.
        let soc = soc();
        let (base, _) = observe(&soc, Channel::HwpeMemory, VictimConfig::in_public, 0, true);
        let obs6 = hwpe_memory_attack(&soc, VictimConfig::in_public(6), true).observation;
        let rec = recover(Channel::HwpeMemory, base, obs6);
        assert!(rec.abs_diff(6) <= 1, "channel must survive timer denial, got {rec}");
    }

    #[test]
    fn private_memory_countermeasure_closes_both_channels() {
        let soc = soc();
        let (tb, t0) = observe(&soc, Channel::DmaTimer, VictimConfig::in_private, 8, false);
        assert_eq!(tb, t0, "timer channel must be flat for private victims");
        let (fb, f0) = observe(&soc, Channel::HwpeMemory, VictimConfig::in_private, 8, false);
        assert_eq!(fb, f0, "memory channel must be flat for private victims");
    }

    #[test]
    fn observation_is_monotone_in_access_count() {
        let soc = soc();
        // Explicit "no previous point" sentinel: the old `u64::MAX` start
        // value would have silently accepted a broken channel whose first
        // reading collided with the sentinel (or one that was flat at any
        // huge value) — `Option` cannot collide with a real observation.
        let mut prev: Option<u64> = None;
        for n in [0u32, 2, 4, 6, 8] {
            let obs = dma_timer_attack(&soc, VictimConfig::in_public(n), false).observation;
            if let Some(p) = prev {
                assert!(
                    obs < p,
                    "more accesses must strictly delay the timer start \
                     (n={n}: observation {obs} not below previous {p})"
                );
            }
            prev = Some(obs);
        }
    }

    #[test]
    fn recover_rejects_observation_above_baseline() {
        let err = std::panic::catch_unwind(|| recover(Channel::DmaTimer, 10, 11)).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(
            msg.contains("baseline"),
            "broken-channel panic must explain the calibration violation: {msg}"
        );
    }
}
