//! # ssc-attacks — executable MCU timing side-channel attacks
//!
//! Concrete, cycle-accurate reproductions of the paper's attacks on the
//! simulated Pulpissimo-style SoC, written as RV32I machine code and run
//! through the three-phase structure of Sec. 2.2:
//!
//! 1. **Preparation** — the attacker task programs the spying IPs,
//! 2. **Recording** — the victim runs for one scheduler tick while its
//!    memory accesses contend with the IPs on the crossbar,
//! 3. **Retrieval** — the attacker reads the recorded information back.
//!
//! Two channels are implemented:
//!
//! - [`scenarios::dma_timer_attack`]: the classic DMA + timer channel
//!   (paper Fig. 1) — the timer start time encodes the victim's accesses,
//! - [`scenarios::hwpe_memory_attack`]: the **new BUSted variant**
//!   (paper Sec. 4.1) — the accelerator's write frontier in an
//!   attacker-primed memory region encodes them, with *no timer at all*,
//!   defeating timer-denial countermeasures.
//!
//! [`leak::sweep`] quantifies each channel (recovery accuracy,
//! distinguishable observations, bits per scheduler tick), and shows the
//! private-memory countermeasure flattening both channels.
//!
//! # Example
//!
//! ```
//! use ssc_soc::Soc;
//! use ssc_attacks::scenarios::{dma_timer_attack, recover, Channel, VictimConfig};
//!
//! let soc = Soc::sim_view();
//! let baseline = dma_timer_attack(&soc, VictimConfig::in_public(0), false).observation;
//! let obs = dma_timer_attack(&soc, VictimConfig::in_public(5), false).observation;
//! assert_eq!(recover(Channel::DmaTimer, baseline, obs), 5);
//! ```

#![warn(missing_docs)]

pub mod leak;
pub mod programs;
pub mod scenarios;
