//! Channel quantification: how much of the victim's access behaviour the
//! attacker actually recovers.

use ssc_soc::Soc;

use crate::scenarios::{self, Channel, VictimConfig};

/// One measured point of a channel sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeakPoint {
    /// Victim accesses performed.
    pub actual: u32,
    /// Raw attacker observation.
    pub observation: u64,
    /// Recovered access count after calibration.
    pub recovered: u64,
}

/// A swept channel measurement.
#[derive(Clone, Debug)]
pub struct ChannelReport {
    /// The channel measured.
    pub channel: Channel,
    /// Whether the timer was denied during the sweep.
    pub timer_locked: bool,
    /// Measured points.
    pub points: Vec<LeakPoint>,
}

impl ChannelReport {
    /// Fraction of points recovered exactly.
    pub fn exact_accuracy(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let hits = self
            .points
            .iter()
            .filter(|p| p.recovered == u64::from(p.actual))
            .count();
        hits as f64 / self.points.len() as f64
    }

    /// Fraction of points recovered within ±1 access.
    pub fn near_accuracy(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let hits = self
            .points
            .iter()
            .filter(|p| p.recovered.abs_diff(u64::from(p.actual)) <= 1)
            .count();
        hits as f64 / self.points.len() as f64
    }

    /// Number of distinct observations — the alphabet size the channel can
    /// transmit per scheduler tick (`log2` of this bounds the leakage in
    /// bits per tick).
    pub fn distinguishable(&self) -> usize {
        let mut obs: Vec<u64> = self.points.iter().map(|p| p.observation).collect();
        obs.sort_unstable();
        obs.dedup();
        obs.len()
    }

    /// Leakage upper bound in bits per recording window.
    pub fn bits_per_window(&self) -> f64 {
        (self.distinguishable() as f64).log2()
    }
}

/// Sweeps a channel over victim access counts `0..=max_n`.
pub fn sweep(
    soc: &Soc,
    channel: Channel,
    victim: impl Fn(u32) -> VictimConfig + Copy,
    max_n: u32,
    timer_locked: bool,
) -> ChannelReport {
    let (baseline, _) = scenarios::observe(soc, channel, victim, 0, timer_locked);
    let mut points = Vec::new();
    for n in 0..=max_n {
        let outcome = match channel {
            Channel::DmaTimer => scenarios::dma_timer_attack(soc, victim(n), timer_locked),
            Channel::HwpeMemory => scenarios::hwpe_memory_attack(soc, victim(n), timer_locked),
        };
        points.push(LeakPoint {
            actual: n,
            observation: outcome.observation,
            recovered: scenarios::recover(channel, baseline, outcome.observation),
        });
    }
    ChannelReport { channel, timer_locked, points }
}

/// [`sweep`] on the bit-sliced batch engine: all victim access counts of
/// one lane block are evaluated in parallel lanes of a single scenario
/// run, so a full `0..=max_n` sweep costs `ceil((max_n + 1) / lanes)` runs
/// instead of `max_n + 2` — and the blocks themselves are fanned across
/// the process default thread pool ([`ssc_pool::Pool::global`]). The lane
/// width is the process default ([`ssc_pool::LaneWidth::global`] — 256
/// lanes unless `SSC_LANE_WIDTH` narrows it).
///
/// The report is point-for-point identical to the scalar [`sweep`] (the
/// lanes are bit-exact replicas of scalar runs, and the `n = 0` lane
/// doubles as the calibration baseline) at every width and pool size.
pub fn sweep_batched(
    soc: &Soc,
    channel: Channel,
    victim: impl Fn(u32) -> VictimConfig + Copy + Sync,
    max_n: u32,
    timer_locked: bool,
) -> ChannelReport {
    sweep_batched_with_pool(soc, channel, victim, max_n, timer_locked, ssc_pool::Pool::global())
}

/// [`sweep_batched`] on an explicit pool (width still the process
/// default).
pub fn sweep_batched_with_pool(
    soc: &Soc,
    channel: Channel,
    victim: impl Fn(u32) -> VictimConfig + Copy + Sync,
    max_n: u32,
    timer_locked: bool,
    pool: &ssc_pool::Pool,
) -> ChannelReport {
    sweep_batched_with_width(
        soc,
        channel,
        victim,
        max_n,
        timer_locked,
        pool,
        ssc_pool::LaneWidth::global(),
    )
}

/// [`sweep_batched`] on an explicit pool **and** lane width — the
/// monomorphization point of the width-generic sweep.
pub fn sweep_batched_with_width(
    soc: &Soc,
    channel: Channel,
    victim: impl Fn(u32) -> VictimConfig + Copy + Sync,
    max_n: u32,
    timer_locked: bool,
    pool: &ssc_pool::Pool,
    width: ssc_pool::LaneWidth,
) -> ChannelReport {
    match width {
        ssc_pool::LaneWidth::X64 => {
            sweep_impl::<1>(soc, channel, victim, max_n, timer_locked, pool)
        }
        ssc_pool::LaneWidth::X256 => {
            sweep_impl::<4>(soc, channel, victim, max_n, timer_locked, pool)
        }
    }
}

/// The width-monomorphic sweep body.
///
/// Lane blocks share **no** state (each block is its own `BatchSocSim`),
/// so they shard freely across workers through the shared
/// [`ssc_pool::Pool::run_blocks`] partitioner; the merge is in block order
/// and the baseline is taken from lane 0 of block 0, which makes the
/// parallel report bit-identical to the sequential block loop — and
/// therefore to the scalar [`sweep`] — for every pool size and width.
fn sweep_impl<const W: usize>(
    soc: &Soc,
    channel: Channel,
    victim: impl Fn(u32) -> VictimConfig + Copy + Sync,
    max_n: u32,
    timer_locked: bool,
    pool: &ssc_pool::Pool,
) -> ChannelReport {
    let counts: Vec<u32> = (0..=max_n).collect();
    let block_lanes = ssc_netlist::lanes::block_lanes::<W>();
    let outcomes_per_block: Vec<Vec<scenarios::RunOutcome>> =
        pool.run_blocks(counts.len(), block_lanes, |blk| {
            let victims: Vec<VictimConfig> =
                counts[blk.range()].iter().map(|&n| victim(n)).collect();
            match channel {
                Channel::DmaTimer => {
                    scenarios::dma_timer_attack_batch::<W>(soc, &victims, timer_locked)
                }
                Channel::HwpeMemory => {
                    scenarios::hwpe_memory_attack_batch::<W>(soc, &victims, timer_locked)
                }
            }
        });
    // The first lane of the first block is the n = 0 calibration run.
    let baseline = outcomes_per_block[0][0].observation;
    let mut points = Vec::with_capacity(counts.len());
    for (block, outcomes) in
        counts.chunks(block_lanes).zip(&outcomes_per_block)
    {
        for (&n, outcome) in block.iter().zip(outcomes) {
            points.push(LeakPoint {
                actual: n,
                observation: outcome.observation,
                recovered: scenarios::recover(channel, baseline, outcome.observation),
            });
        }
    }
    ChannelReport { channel, timer_locked, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_victim_leaks_with_high_accuracy() {
        let soc = Soc::sim_view();
        let report = sweep(&soc, Channel::DmaTimer, VictimConfig::in_public, 10, false);
        assert!(report.exact_accuracy() > 0.9, "accuracy {}", report.exact_accuracy());
        assert!(report.distinguishable() > 8);
        assert!(report.bits_per_window() > 3.0);
    }

    #[test]
    fn private_victim_leaks_nothing() {
        let soc = Soc::sim_view();
        let report = sweep(&soc, Channel::HwpeMemory, VictimConfig::in_private, 6, false);
        assert_eq!(report.distinguishable(), 1, "countermeasure must flatten the channel");
        assert_eq!(report.bits_per_window(), 0.0);
    }

    #[test]
    fn memory_channel_is_robust_to_timer_denial() {
        let soc = Soc::sim_view();
        let unlocked = sweep(&soc, Channel::HwpeMemory, VictimConfig::in_public, 8, false);
        let locked = sweep(&soc, Channel::HwpeMemory, VictimConfig::in_public, 8, true);
        assert_eq!(
            unlocked.distinguishable(),
            locked.distinguishable(),
            "timer denial must not reduce the memory channel"
        );
        assert!(locked.near_accuracy() > 0.9);
    }
}
