//! DIMACS CNF interchange: parse standard `.cnf` problems into a solver and
//! emit solver-independent problem files.

use std::fmt::Write as _;

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A parsed DIMACS problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsProblem {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clauses as literal lists.
    pub clauses: Vec<Vec<Lit>>,
}

/// Errors from [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DIMACS error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF text (`c` comments, one `p cnf V C` header, clauses
/// terminated by `0`; clauses may span lines).
///
/// # Errors
///
/// Returns a [`DimacsError`] for malformed headers, out-of-range literals
/// or a missing terminating zero.
pub fn parse(src: &str) -> Result<DimacsProblem, DimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();

    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if num_vars.is_some() {
                return Err(DimacsError { line: line_no, msg: "duplicate header".into() });
            }
            let mut toks = rest.split_whitespace();
            if toks.next() != Some("cnf") {
                return Err(DimacsError { line: line_no, msg: "expected `p cnf V C`".into() });
            }
            let v: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| DimacsError { line: line_no, msg: "bad variable count".into() })?;
            let _c: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| DimacsError { line: line_no, msg: "bad clause count".into() })?;
            num_vars = Some(v);
            continue;
        }
        let nv = num_vars
            .ok_or_else(|| DimacsError { line: line_no, msg: "clause before header".into() })?;
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| DimacsError { line: line_no, msg: format!("bad literal `{tok}`") })?;
            if v == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let idx = v.unsigned_abs() as usize;
                if idx > nv {
                    return Err(DimacsError {
                        line: line_no,
                        msg: format!("literal {v} exceeds declared {nv} variables"),
                    });
                }
                current.push(Var::from_index(idx - 1).lit(v < 0));
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError { line: src.lines().count(), msg: "unterminated clause".into() });
    }
    let num_vars = num_vars.ok_or(DimacsError { line: 0, msg: "missing header".into() })?;
    Ok(DimacsProblem { num_vars, clauses })
}

/// Loads a parsed problem into a fresh solver. Returns the solver and the
/// variable handles (index `i` = DIMACS variable `i+1`); the boolean is
/// `false` if the problem is trivially unsatisfiable.
pub fn load(problem: &DimacsProblem) -> (Solver, Vec<Var>, bool) {
    let mut solver = Solver::new();
    let vars = solver.new_vars(problem.num_vars);
    let mut ok = true;
    for clause in &problem.clauses {
        ok &= solver.add_clause(clause.iter().copied());
    }
    (solver, vars, ok)
}

/// Emits a problem in DIMACS CNF format.
pub fn emit(problem: &DimacsProblem) -> String {
    let mut s = String::new();
    writeln!(s, "p cnf {} {}", problem.num_vars, problem.clauses.len()).unwrap();
    for clause in &problem.clauses {
        for l in clause {
            let v = l.var().index() as i64 + 1;
            write!(s, "{} ", if l.is_neg() { -v } else { v }).unwrap();
        }
        writeln!(s, "0").unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    const SAMPLE: &str = "c a simple instance\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n";

    #[test]
    fn parse_and_solve_sample() {
        let p = parse(SAMPLE).unwrap();
        assert_eq!(p.num_vars, 3);
        assert_eq!(p.clauses.len(), 3);
        let (mut s, vars, ok) = load(&p);
        assert!(ok);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // Verify the model against the clauses.
        for c in &p.clauses {
            assert!(c.iter().any(|&l| s.model_value(l) == Some(true)));
        }
        let _ = vars;
    }

    #[test]
    fn roundtrip_through_emit() {
        let p = parse(SAMPLE).unwrap();
        let p2 = parse(&emit(&p)).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn multiline_clauses_parse() {
        let p = parse("p cnf 2 1\n1\n-2\n0\n").unwrap();
        assert_eq!(p.clauses.len(), 1);
        assert_eq!(p.clauses[0].len(), 2);
    }

    #[test]
    fn errors_are_located() {
        assert!(parse("1 2 0").unwrap_err().msg.contains("before header"));
        assert!(parse("p cnf 1 1\n5 0\n").unwrap_err().msg.contains("exceeds"));
        assert!(parse("p cnf 1 1\n1\n").unwrap_err().msg.contains("unterminated"));
        assert!(parse("p dnf 1 1\n").unwrap_err().msg.contains("p cnf"));
    }

    #[test]
    fn unsat_instance() {
        let p = parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let (mut s, _, ok) = load(&p);
        let r = if ok { s.solve(&[]) } else { SolveResult::Unsat };
        assert_eq!(r, SolveResult::Unsat);
    }
}
