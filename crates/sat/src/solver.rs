//! The CDCL solver core.
//!
//! A conflict-driven clause-learning SAT solver: two-watched-literal
//! propagation, first-UIP conflict analysis, exponential VSIDS decision
//! heuristic with phase saving, and — behind the strict-parsed
//! `SSC_SOLVER_*` knobs collected in [`Heuristics`] — the modern-CDCL
//! refinement tier on top of the MiniSat-lineage baseline:
//!
//! - **recursive clause minimization** (MiniSat's `ccmin-mode=deep`): a
//!   DFS over reason clauses with an abstraction-level filter, replacing
//!   the legacy one-level redundancy pass;
//! - **tiered learnt-clause database** (glucose/CaDiCaL lineage): core
//!   (LBD ≤ 3, never deleted) / mid / local tiers with LBD-driven
//!   promotion and usage-driven demotion, replacing the single-sweep
//!   half-deletion;
//! - **adaptive restarts**: fast/slow LBD moving averages trigger a
//!   restart when recent conflicts degrade, postponed ("blocked") when
//!   the trail has grown far past its average — a SAT-leaning probe is
//!   making assignment progress a restart would throw away — replacing
//!   blind Luby scheduling;
//! - **inprocessing** ([`Solver::inprocess`]): clause vivification plus
//!   occurrence-list subsumption / self-subsuming resolution, run by the
//!   proof stack at the moments the clause DB is about to be duplicated
//!   (prefix encode-complete and session forks).
//!
//! Each refinement is independently gated so the legacy path stays
//! reachable (`SSC_SOLVER_MODERN=0` pins the whole baseline, and CI runs
//! the full suite that way).

use crate::budget::{Budget, CancelToken, Interrupt, InterruptCause};
use crate::chaos;
use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};
use std::time::Instant;

/// Reference to a clause in the arena (offset of its header word).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct CRef(u32);

const CREF_UNDEF: CRef = CRef(u32::MAX);

/// Learnt-clause tiers of the tiered database (glucose/CaDiCaL lineage).
/// Stored per clause in the arena header, so forks and garbage collection
/// carry them for free. Lower value = more valuable.
const TIER_CORE: u32 = 0;
const TIER_MID: u32 = 1;
const TIER_LOCAL: u32 = 2;

/// LBD ceilings of the core and mid tiers.
const CORE_LBD_MAX: u32 = 3;
const MID_LBD_MAX: u32 = 6;

/// Flat clause arena.
///
/// Layout per clause: `[len_and_flags, lbd, lit0, lit1, ...]` where
/// `len_and_flags = len << 5 | used << 4 | tier << 2 | deleted << 1 |
/// learnt`. `tier` and `used` (touched in conflict analysis since the
/// last reduction) belong to the tiered learnt database; keeping them in
/// the header means [`Solver::fork`] and the GC carry them with the same
/// contiguous memcpys that move the literals.
///
/// The flat layout is also what makes [`Solver::fork`] cheap: snapshotting
/// the arena is one contiguous memcpy, not a clause-by-clause rebuild.
#[derive(Clone)]
struct ClauseDb {
    data: Vec<u32>,
    /// Bytes wasted by deleted clauses (in u32 words), used to trigger GC.
    wasted: usize,
}

impl ClauseDb {
    fn new() -> Self {
        ClauseDb { data: Vec::new(), wasted: 0 }
    }

    fn alloc(&mut self, lits: &[Lit], learnt: bool) -> CRef {
        let at = self.data.len() as u32;
        // Fresh learnts start in the local tier; `record_learnt` promotes
        // them to the tier their first LBD merits.
        let tier = if learnt { TIER_LOCAL } else { 0 };
        self.data.push((lits.len() as u32) << 5 | tier << 2 | u32::from(learnt));
        self.data.push(if learnt { lits.len() as u32 } else { 0 }); // initial LBD
        self.data.extend(lits.iter().map(|l| l.0));
        CRef(at)
    }

    #[inline]
    fn len(&self, c: CRef) -> usize {
        (self.data[c.0 as usize] >> 5) as usize
    }

    #[inline]
    fn is_learnt(&self, c: CRef) -> bool {
        self.data[c.0 as usize] & 1 == 1
    }

    #[inline]
    fn is_deleted(&self, c: CRef) -> bool {
        self.data[c.0 as usize] & 2 == 2
    }

    #[inline]
    fn delete(&mut self, c: CRef) {
        let len = self.len(c);
        self.data[c.0 as usize] |= 2;
        self.wasted += len + 2;
    }

    #[inline]
    fn tier(&self, c: CRef) -> u32 {
        (self.data[c.0 as usize] >> 2) & 0b11
    }

    #[inline]
    fn set_tier(&mut self, c: CRef, tier: u32) {
        debug_assert!(tier <= TIER_LOCAL);
        let h = &mut self.data[c.0 as usize];
        *h = (*h & !(0b11 << 2)) | tier << 2;
    }

    #[inline]
    fn is_used(&self, c: CRef) -> bool {
        self.data[c.0 as usize] & (1 << 4) != 0
    }

    #[inline]
    fn set_used(&mut self, c: CRef) {
        self.data[c.0 as usize] |= 1 << 4;
    }

    #[inline]
    fn clear_used(&mut self, c: CRef) {
        self.data[c.0 as usize] &= !(1 << 4);
    }

    #[inline]
    fn lbd(&self, c: CRef) -> u32 {
        self.data[c.0 as usize + 1]
    }

    #[inline]
    fn set_lbd(&mut self, c: CRef, lbd: u32) {
        self.data[c.0 as usize + 1] = lbd;
    }

    #[inline]
    fn lits(&self, c: CRef) -> &[u32] {
        let start = c.0 as usize + 2;
        &self.data[start..start + self.len(c)]
    }

    #[inline]
    fn lit(&self, c: CRef, i: usize) -> Lit {
        Lit(self.data[c.0 as usize + 2 + i])
    }

    #[inline]
    fn swap_lits(&mut self, c: CRef, i: usize, j: usize) {
        let base = c.0 as usize + 2;
        self.data.swap(base + i, base + j);
    }
}

#[derive(Clone, Copy)]
struct Watcher {
    cref: CRef,
    blocker: Lit,
}

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it via [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The solve was stopped by its [`Budget`] (or a cancellation) before
    /// reaching an answer. The solver is left at decision level 0 with all
    /// state intact — re-solving with a larger budget is always valid.
    /// [`Solver::model_value`] and [`Solver::assumption_core`] hold stale
    /// data from the last conclusive solve.
    Unknown(Interrupt),
}

/// Runtime statistics of a solver instance.
///
/// All counters are cumulative over the solver's lifetime, so an
/// incremental client can compute per-solve deltas by snapshotting before
/// and after a [`Solver::solve`] call (the UPEC-SSC procedures do exactly
/// this per fixpoint iteration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnts: u64,
    /// Number of problem clauses added.
    pub clauses: u64,
    /// Number of learnt-database reductions performed.
    pub db_reductions: u64,
    /// Number of clause-arena garbage collections performed.
    pub gcs: u64,
    /// Number of `solve` calls completed.
    pub solves: u64,
    /// Number of variables whose VSIDS activity was re-seeded from the
    /// previous solve's assumption core (the re-solve tuning of long
    /// sessions: consecutive `solve` calls of a proof session differ only
    /// slightly, so the variables the last unsatisfiability proof rested on
    /// are primed to be decided first instead of starting from decayed
    /// activity).
    pub core_seeds: u64,
    /// Number of learnt clauses dropped because the activation era that
    /// produced them was retired (see [`Solver::begin_era`] /
    /// [`Solver::retire_era`] — the fork-aware clause-database hygiene of
    /// long sessions).
    pub era_drops: u64,
    /// Number of `solve` calls that returned [`SolveResult::Unknown`]
    /// because their [`Budget`] ran out or they were cancelled.
    pub interrupts: u64,
    /// Number of literals removed from learnt clauses by conflict-clause
    /// minimization (one-level or recursive, whichever is active).
    pub minimized_lits: u64,
    /// Number of learnt clauses promoted to a better tier of the tiered
    /// database because their recomputed LBD improved (only the tiered
    /// reducer promotes — zero on the legacy path).
    pub tier_promotions: u64,
    /// Number of adaptive restarts postponed because the trail had grown
    /// far past its running average (the "blocking" half of glucose-style
    /// restarts; zero under Luby scheduling).
    pub restarts_blocked: u64,
    /// Number of clauses shortened or discharged by vivification during
    /// [`Solver::inprocess`].
    pub vivified_clauses: u64,
    /// Number of clauses deleted by subsumption or strengthened by
    /// self-subsuming resolution during [`Solver::inprocess`].
    pub subsumed_clauses: u64,
}

impl SolverStats {
    /// The component-wise difference `self - earlier` for cumulative
    /// counters (gauge-like fields such as `learnts`/`clauses` keep the
    /// current value).
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts - earlier.conflicts,
            decisions: self.decisions - earlier.decisions,
            propagations: self.propagations - earlier.propagations,
            restarts: self.restarts - earlier.restarts,
            learnts: self.learnts,
            clauses: self.clauses,
            db_reductions: self.db_reductions - earlier.db_reductions,
            gcs: self.gcs - earlier.gcs,
            solves: self.solves - earlier.solves,
            core_seeds: self.core_seeds - earlier.core_seeds,
            era_drops: self.era_drops - earlier.era_drops,
            interrupts: self.interrupts - earlier.interrupts,
            minimized_lits: self.minimized_lits - earlier.minimized_lits,
            tier_promotions: self.tier_promotions - earlier.tier_promotions,
            restarts_blocked: self.restarts_blocked - earlier.restarts_blocked,
            vivified_clauses: self.vivified_clauses - earlier.vivified_clauses,
            subsumed_clauses: self.subsumed_clauses - earlier.subsumed_clauses,
        }
    }
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} conflicts, {} decisions, {} propagations, {} restarts",
            self.conflicts, self.decisions, self.propagations, self.restarts
        )
    }
}

/// Master switch for the whole modern heuristic tier (`0`/`off`/`false`
/// pins the MiniSat-lineage legacy path, `1`/`on`/`true` enables all four
/// refinements; unset = **on**). The per-feature knobs below override it
/// individually.
pub const SOLVER_MODERN_ENV: &str = "SSC_SOLVER_MODERN";

/// Per-feature switch for recursive (deep) conflict-clause minimization;
/// off falls back to the one-level pass. Unset = follow
/// [`SOLVER_MODERN_ENV`].
pub const SOLVER_CCMIN_ENV: &str = "SSC_SOLVER_CCMIN_DEEP";

/// Per-feature switch for the tiered (core/mid/local) learnt-database
/// reducer; off falls back to the single-sweep half-deletion. Unset =
/// follow [`SOLVER_MODERN_ENV`].
pub const SOLVER_TIERED_ENV: &str = "SSC_SOLVER_TIERED_DB";

/// Per-feature switch for LBD-average adaptive restarts with trail-size
/// blocking; off falls back to Luby scheduling. Unset = follow
/// [`SOLVER_MODERN_ENV`].
pub const SOLVER_RESTARTS_ENV: &str = "SSC_SOLVER_ADAPTIVE_RESTARTS";

/// Per-feature switch for fork-point inprocessing (vivification +
/// subsumption); off makes [`Solver::inprocess`] a no-op. Unset = follow
/// [`SOLVER_MODERN_ENV`].
pub const SOLVER_INPROCESS_ENV: &str = "SSC_SOLVER_INPROCESS";

/// The solver's heuristic configuration: which of the four modern-CDCL
/// refinements are active (see the crate-level *Modern CDCL heuristics*
/// section for the knob table). Every feature is independently gated and
/// the all-off [`Heuristics::legacy`] configuration is exactly the
/// pre-refinement solver, so equivalence tests can pin either engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Heuristics {
    /// Recursive conflict-clause minimization ([`SOLVER_CCMIN_ENV`]).
    pub ccmin_deep: bool,
    /// Tiered learnt-database reduction ([`SOLVER_TIERED_ENV`]).
    pub tiered_db: bool,
    /// LBD-EMA adaptive restarts with blocking ([`SOLVER_RESTARTS_ENV`]).
    pub adaptive_restarts: bool,
    /// Fork-point inprocessing ([`SOLVER_INPROCESS_ENV`]).
    pub inprocessing: bool,
}

impl Default for Heuristics {
    fn default() -> Self {
        Heuristics::modern()
    }
}

impl Heuristics {
    /// All four refinements on (the default).
    pub fn modern() -> Heuristics {
        Heuristics {
            ccmin_deep: true,
            tiered_db: true,
            adaptive_restarts: true,
            inprocessing: true,
        }
    }

    /// All four refinements off: the MiniSat-lineage baseline.
    pub fn legacy() -> Heuristics {
        Heuristics {
            ccmin_deep: false,
            tiered_db: false,
            adaptive_restarts: false,
            inprocessing: false,
        }
    }

    /// Parses the five environment overrides (`None` = variable unset).
    /// The master switch seeds all four features; each per-feature knob
    /// then overrides its own flag.
    ///
    /// # Errors
    ///
    /// Returns `(variable name, offending value)` for the first malformed
    /// override; every knob accepts `0/off/false/1/on/true`.
    pub fn parse_env(
        modern: Option<&str>,
        ccmin: Option<&str>,
        tiered: Option<&str>,
        restarts: Option<&str>,
        inprocess: Option<&str>,
    ) -> Result<Heuristics, (&'static str, String)> {
        let parse = |var: &'static str, raw: Option<&str>, default: bool| match raw {
            None => Ok(default),
            Some("0" | "off" | "false") => Ok(false),
            Some("1" | "on" | "true") => Ok(true),
            Some(bad) => Err((var, bad.to_string())),
        };
        let base = parse(SOLVER_MODERN_ENV, modern, true)?;
        Ok(Heuristics {
            ccmin_deep: parse(SOLVER_CCMIN_ENV, ccmin, base)?,
            tiered_db: parse(SOLVER_TIERED_ENV, tiered, base)?,
            adaptive_restarts: parse(SOLVER_RESTARTS_ENV, restarts, base)?,
            inprocessing: parse(SOLVER_INPROCESS_ENV, inprocess, base)?,
        })
    }

    /// The configuration from the environment (every [`Solver::new`]
    /// starts with this; tests and benches pin explicit configs via
    /// [`Solver::set_heuristics`]).
    ///
    /// # Panics
    ///
    /// Panics — naming the variable and the offending value — on a
    /// malformed override: silently falling back to defaults would make a
    /// mistyped CI matrix entry measure the wrong engine.
    pub fn from_env() -> Heuristics {
        let get = |name: &str| std::env::var(name).ok();
        let (modern, ccmin, tiered, restarts, inprocess) = (
            get(SOLVER_MODERN_ENV),
            get(SOLVER_CCMIN_ENV),
            get(SOLVER_TIERED_ENV),
            get(SOLVER_RESTARTS_ENV),
            get(SOLVER_INPROCESS_ENV),
        );
        match Heuristics::parse_env(
            modern.as_deref(),
            ccmin.as_deref(),
            tiered.as_deref(),
            restarts.as_deref(),
            inprocess.as_deref(),
        ) {
            Ok(cfg) => cfg,
            Err((var, bad)) => panic!("invalid {var}={bad:?}"),
        }
    }
}

/// A CDCL SAT solver.
///
/// # Example
///
/// ```
/// use ssc_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([a.pos(), b.pos()]);
/// s.add_clause([a.neg()]);
/// assert_eq!(s.solve(&[]), SolveResult::Sat);
/// assert_eq!(s.model_value(b.pos()), Some(true));
/// assert_eq!(s.solve(&[b.neg()]), SolveResult::Unsat);
/// ```
#[derive(Clone)]
pub struct Solver {
    db: ClauseDb,
    /// Problem clause refs (for GC).
    clauses: Vec<CRef>,
    /// Learnt clause refs.
    learnts: Vec<CRef>,
    /// Activation era each learnt was derived in, aligned with `learnts`
    /// (era 0 = outside any guarded proof goal).
    learnt_eras: Vec<u32>,
    /// Current activation era — stamped onto subsequently learnt clauses.
    era: u32,
    /// `retired[e]` = era `e` has been retired; its learnts are hygiene
    /// candidates for [`Solver::collect_garbage`] and [`Solver::fork`].
    retired_eras: Vec<bool>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<CRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    heap: VarHeap,
    seen: Vec<bool>,
    /// DFS stack of the recursive minimizer (persistent scratch).
    ccmin_stack: Vec<Lit>,
    /// `seen` marks added by the recursive minimizer beyond the learnt
    /// clause itself, cleared at the end of each analysis.
    ccmin_clear: Vec<Lit>,
    /// Scratch for LBD computation: level -> stamp.
    lbd_stamp: Vec<u64>,
    lbd_counter: u64,
    var_inc: f64,
    max_learnts: f64,
    ok: bool,
    stats: SolverStats,
    model: Vec<LBool>,
    /// Assumption core of the most recent `Unsat` result.
    core: Vec<Lit>,
    /// Resource governance for `solve` calls (see [`Budget`]).
    budget: Budget,
    /// True while inside `solve` — gates the interrupt machinery so that
    /// between-solve propagation (e.g. from `add_clause`) can never be cut
    /// short by a stale limit or a raised cancellation token.
    solving: bool,
    /// Absolute cumulative-counter ceilings for the current solve
    /// (`u64::MAX` = unlimited); derived from `budget` at solve entry.
    limit_conflicts: u64,
    limit_props: u64,
    /// Interrupt cause tripped mid-solve, consumed by the solve loop.
    interrupt: Option<InterruptCause>,
    /// Active heuristic configuration (see [`Heuristics`]).
    heur: Heuristics,
    /// State fingerprint of the last completed [`Solver::inprocess`] run,
    /// so a fork of an untouched solver doesn't redo identical work.
    inprocessed_at: (u64, u64, u64),
}

const VAR_DECAY: f64 = 0.95;
const RESTART_BASE: u64 = 128;

/// Adaptive-restart tuning (glucose lineage): windows of the fast/slow
/// LBD averages and the conflict-time trail average, the degradation
/// margin that fires a restart, the trail margin that blocks one, and
/// the minimum conflicts between consecutive triggers.
const LBD_FAST_WINDOW: u64 = 32;
const LBD_SLOW_WINDOW: u64 = 8192;
const TRAIL_AVG_WINDOW: u64 = 4096;
const RESTART_MARGIN: f64 = 1.25;
const RESTART_BLOCK_MARGIN: f64 = 1.4;
const RESTART_MIN_INTERVAL: u64 = 32;

/// Inprocessing caps. Fork points sit on hot paths, so both passes are
/// bounded deterministically: vivification by a clause-length ceiling and
/// a total propagation budget, subsumption by a literal-scan budget plus
/// a per-literal occurrence cap (dense literals are skipped rather than
/// scanned quadratically). The caps are part of the solver's determinism
/// story — identical state in, identical simplification out, regardless
/// of wall clock or pool size.
const VIVIFY_MAX_LEN: usize = 32;
const VIVIFY_PROP_BUDGET: u64 = 500_000;
const SUBSUME_MAX_LEN: usize = 16;
const SUBSUME_SCAN_BUDGET: u64 = 2_000_000;
const SUBSUME_OCC_CAP: usize = 400;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with the heuristic configuration from the
    /// environment ([`Heuristics::from_env`]).
    pub fn new() -> Self {
        Solver::with_heuristics(Heuristics::from_env())
    }

    /// Creates an empty solver with an explicit heuristic configuration.
    pub fn with_heuristics(heur: Heuristics) -> Self {
        Solver {
            db: ClauseDb::new(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            learnt_eras: Vec::new(),
            era: 0,
            retired_eras: vec![false],
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            heap: VarHeap::new(),
            seen: Vec::new(),
            ccmin_stack: Vec::new(),
            ccmin_clear: Vec::new(),
            lbd_stamp: Vec::new(),
            lbd_counter: 0,
            var_inc: 1.0,
            max_learnts: 4000.0,
            ok: true,
            stats: SolverStats::default(),
            model: Vec::new(),
            core: Vec::new(),
            budget: Budget::default(),
            solving: false,
            limit_conflicts: u64::MAX,
            limit_props: u64::MAX,
            interrupt: None,
            heur,
            inprocessed_at: (u64::MAX, u64::MAX, u64::MAX),
        }
    }

    /// The active heuristic configuration.
    pub fn heuristics(&self) -> Heuristics {
        self.heur
    }

    /// Replaces the heuristic configuration. Safe at any point between
    /// solves: every feature reads the flag at its own use site, and the
    /// per-clause tier/usage bookkeeping is maintained unconditionally
    /// (it is cheap), so toggling never leaves stale state behind.
    pub fn set_heuristics(&mut self, heur: Heuristics) {
        self.heur = heur;
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.level.push(0);
        self.reason.push(CREF_UNDEF);
        self.seen.push(false);
        self.lbd_stamp.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, 0.0);
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Forks the solver into an independent snapshot: the clause arena,
    /// learnt database, node-to-watch indices, saved phases, VSIDS
    /// activities and level-0 trail are all carried over, and the two
    /// solvers diverge freely from here on.
    ///
    /// This is the copy-on-write primitive of shared proof sessions: a base
    /// session encodes the prefix common to a whole scenario portfolio
    /// *once*, and every scenario forks it instead of re-encoding and
    /// re-learning from scratch. Since the arenas are flat `Vec`s, the fork
    /// itself is a handful of memcpys — the work a fork avoids (Tseitin
    /// encoding, propagation, clause learning over the shared prefix) is
    /// what makes it cheap, and each fork pays only for what it adds on top.
    ///
    /// Fork-aware clause hygiene: learnt clauses whose activation era has
    /// been retired ([`Solver::retire_era`]) are derived from a previous
    /// goal's guarded clause — dead weight to a fork that will never
    /// re-assume that goal — so the fork drops them
    /// ([`Solver::purge_retired_learnts`]) instead of carrying them into
    /// every child.
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0 (i.e. from inside a solve;
    /// `solve` always returns at level 0, so any between-solve call is
    /// fine).
    pub fn fork(&self) -> Solver {
        assert_eq!(self.trail_lim.len(), 0, "fork above level 0");
        let mut child = self.clone();
        if child.purge_retired_learnts() > 0 && child.db.wasted > 0 {
            child.garbage_collect();
        }
        child
    }

    /// Starts a new *activation era* and returns its id: learnt clauses
    /// recorded from now on are tagged with it. Clients guarding a proof
    /// goal behind an activation literal open an era alongside the literal,
    /// so the lemmas derived while that goal was active can be identified —
    /// and shed — once the goal is retired.
    ///
    /// Tagging is by the **most recently begun** era (the solver does not
    /// know which assumptions of a given solve are activation literals),
    /// so attribution is only meaningful under a one-goal-at-a-time
    /// discipline: begin an era, solve under its goal, retire it before
    /// beginning the next (`ssc-ipc` enforces this at its activation-literal
    /// layer).
    pub fn begin_era(&mut self) -> u32 {
        // Era ids are allocated monotonically (one slot per era ever
        // begun), so an id is never reused even after the current era
        // falls back to 0 on retirement.
        let id = self.retired_eras.len() as u32;
        self.retired_eras.push(false);
        self.era = id;
        id
    }

    /// The current activation era (0 before any [`Solver::begin_era`]).
    pub fn current_era(&self) -> u32 {
        self.era
    }

    /// Marks an era retired: its learnt clauses become hygiene candidates
    /// that [`Solver::collect_garbage`] and [`Solver::fork`] drop instead
    /// of carrying forward. Era 0 (learnts derived outside any guarded
    /// goal) cannot be retired.
    ///
    /// Dropping a learnt clause is always sound — every learnt is implied
    /// by the problem clauses — so retirement is purely a heuristic
    /// declaration that the era's lemmas are no longer worth their weight.
    ///
    /// # Panics
    ///
    /// Panics if `era` is 0 or was never begun.
    pub fn retire_era(&mut self, era: u32) {
        assert!(era > 0, "era 0 (the unguarded base) cannot be retired");
        assert!((era as usize) < self.retired_eras.len(), "era {era} was never begun");
        self.retired_eras[era as usize] = true;
        // Retiring the *current* era drops back to the unguarded base:
        // lemmas derived between now and the next `begin_era` belong to no
        // goal and must not inherit a retired tag.
        if era == self.era {
            self.era = 0;
        }
    }

    /// Drops every learnt clause whose activation era has been retired
    /// (except clauses currently locked as reasons) and returns how many
    /// were dropped. Called by [`Solver::fork`] so children never inherit
    /// lemmas belonging purely to previous retired goals; exposed for
    /// owners that want the purge in-session (note the caveat on
    /// [`Solver::collect_garbage`] — the time-based tag over-approximates
    /// goal ancestry, so an in-session purge also sheds still-useful
    /// shared-formula lemmas).
    ///
    /// Tier-aware under [`Heuristics::tiered_db`]: core-tier learnts
    /// (LBD ≤ 3 glue) survive the purge regardless of their era, so CoW
    /// forks inherit the core tier intact — glue lemmas are almost always
    /// about the shared formula, exactly what a fork profits from, and
    /// the time-based era tag mislabeling them is the purge's main cost.
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0.
    pub fn purge_retired_learnts(&mut self) -> u64 {
        assert_eq!(self.trail_lim.len(), 0, "purge_retired_learnts above level 0");
        if !self.retired_eras.iter().any(|&r| r) {
            return 0;
        }
        let mut dropped = 0u64;
        for i in 0..self.learnts.len() {
            let c = self.learnts[i];
            if self.heur.tiered_db && self.db.tier(c) == TIER_CORE {
                continue;
            }
            if self.retired_eras[self.learnt_eras[i] as usize] && !self.is_locked(c) {
                self.detach(c);
                self.db.delete(c);
                dropped += 1;
            }
        }
        if dropped > 0 {
            self.retain_live_learnts();
            self.stats.era_drops += dropped;
            self.stats.learnts = self.learnts.len() as u64;
        }
        dropped
    }

    /// Compacts `learnts` and the aligned `learnt_eras` down to the
    /// clauses not marked deleted in the arena.
    fn retain_live_learnts(&mut self) {
        let mut kept = 0usize;
        for i in 0..self.learnts.len() {
            if !self.db.is_deleted(self.learnts[i]) {
                self.learnts[kept] = self.learnts[i];
                self.learnt_eras[kept] = self.learnt_eras[i];
                kept += 1;
            }
        }
        self.learnts.truncate(kept);
        self.learnt_eras.truncate(kept);
    }

    /// Solver statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limits every subsequent [`Solver::solve`] call to `budget` conflicts
    /// *each*; a solve exceeding it stops and returns
    /// [`SolveResult::Unknown`] with [`InterruptCause::Conflicts`] instead
    /// of an answer — it never panics and never reports a wrong verdict.
    /// Use `None` to remove the limit. Shorthand for setting only the
    /// conflict field of the [`Budget`] installed via [`Solver::set_budget`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.budget.conflicts = budget;
    }

    /// Installs the resource [`Budget`] governing subsequent
    /// [`Solver::solve`] calls (replacing the previous one). See [`Budget`]
    /// for the semantics of each limit.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The currently installed [`Budget`].
    ///
    /// Note that [`Solver::fork`] clones it into the child — including any
    /// attached [`crate::CancelToken`], which the child then *shares* with
    /// the parent. Call [`Solver::set_budget`] on the fork for independent
    /// governance.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].xor(l.is_neg())
    }

    /// Adds a clause. Returns `false` if the solver became trivially
    /// unsatisfiable (empty clause, or conflicting units at level 0).
    ///
    /// Duplicate literals are removed; tautologies are silently accepted.
    ///
    /// # Panics
    ///
    /// Panics if called after a solve while not at decision level 0
    /// (incremental use is supported because `solve` always backtracks to
    /// level 0 before returning).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        assert_eq!(self.trail_lim.len(), 0, "add_clause above level 0");
        if !self.ok {
            return false;
        }
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        ls.sort_unstable();
        ls.dedup();
        // Tautology / level-0 simplification.
        let mut simplified: Vec<Lit> = Vec::with_capacity(ls.len());
        let mut prev: Option<Lit> = None;
        for &l in &ls {
            if Some(!l) == prev {
                return true; // tautology: p and ~p adjacent after sort
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => simplified.push(l),
            }
            prev = Some(l);
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], CREF_UNDEF);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                let cref = self.db.alloc(&simplified, false);
                self.clauses.push(cref);
                self.stats.clauses += 1;
                self.attach(cref);
                true
            }
        }
    }

    fn attach(&mut self, cref: CRef) {
        let l0 = self.db.lit(cref, 0);
        let l1 = self.db.lit(cref, 1);
        self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: CRef) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from(!l.is_neg());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    fn propagate(&mut self) -> Option<CRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Budget hot path. The counter limit is a single predictable
            // compare (the ceiling is `u64::MAX` unless a propagation budget
            // is active); wall-clock and cancellation polls are amortized.
            if self.stats.propagations >= self.limit_props {
                self.interrupt = Some(InterruptCause::Propagations);
            } else if self.stats.propagations & 0x3FF == 0 {
                self.poll_interrupt();
            }
            if self.interrupt.is_some() {
                // Stop at a consistent point between trail literals: the
                // remaining queue is simply left unpropagated and the solve
                // loop converts the pending interrupt into `Unknown`.
                self.qhead = self.trail.len();
                return None;
            }

            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut j = 0;
            let mut i = 0;
            'clauses: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value_lit(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                // Make sure the false literal is at position 1.
                let false_lit = !p;
                if self.db.lit(cref, 0) == false_lit {
                    self.db.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.db.lit(cref, 1), false_lit);
                let first = self.db.lit(cref, 0);
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[j] = Watcher { cref, blocker: first };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.len(cref);
                for k in 2..len {
                    let lk = self.db.lit(cref, k);
                    if self.value_lit(lk) != LBool::False {
                        self.db.swap_lits(cref, 1, k);
                        self.watches[(!lk).index()].push(Watcher { cref, blocker: first });
                        continue 'clauses;
                    }
                }
                // Clause is unit or conflicting under the current trail.
                ws[j] = Watcher { cref, blocker: first };
                j += 1;
                if self.value_lit(first) == LBool::False {
                    // Conflict: flush the propagation queue.
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, cref);
                }
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    /// Amortized poll of the wall-clock-driven interrupt sources
    /// (cancellation token, deadline). Gated on `solving` so a raised token
    /// can never truncate between-solve propagation (e.g. `add_clause`
    /// unit propagation), which must always run to completion for
    /// soundness.
    fn poll_interrupt(&mut self) {
        if !self.solving || self.interrupt.is_some() {
            return;
        }
        if self.budget.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.interrupt = Some(InterruptCause::Cancelled);
        } else if self.budget.deadline.is_some_and(|d| Instant::now() >= d) {
            self.interrupt = Some(InterruptCause::Deadline);
        }
    }

    /// Books an interrupted solve: bumps the counter and builds the
    /// `Unknown` result carrying this solve's work delta.
    fn interrupted(&mut self, cause: InterruptCause, entry: &SolverStats) -> SolveResult {
        self.stats.interrupts += 1;
        SolveResult::Unknown(Interrupt { cause, stats: self.stats.delta_since(entry) })
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        for idx in (lim..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var();
            self.assigns[v.index()] = LBool::Undef;
            self.polarity[v.index()] = !l.is_neg();
            self.reason[v.index()] = CREF_UNDEF;
            self.heap.reinsert(v);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn var_bump(&mut self, v: Var) {
        let a = self.heap.activity(v) + self.var_inc;
        self.heap.set_activity(v, a);
        if a > 1e100 {
            self.rescale_activities();
        }
    }

    fn rescale_activities(&mut self) {
        for i in 0..self.num_vars() {
            let v = Var(i as u32);
            let a = self.heap.activity(v);
            self.heap.set_activity(v, a * 1e-100);
        }
        self.var_inc *= 1e-100;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: CRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            debug_assert_ne!(confl, CREF_UNDEF);
            // Bump matched learnt clauses (freshness heuristic via LBD);
            // under the tiered DB an improved LBD also promotes the clause
            // to the tier it now merits, and participating in analysis at
            // all marks it used (the demotion signal of the next reduce).
            if self.db.is_learnt(confl) {
                self.db.set_used(confl);
                let lbd = self.compute_lbd(confl);
                if lbd < self.db.lbd(confl) {
                    self.db.set_lbd(confl, lbd);
                    if self.heur.tiered_db {
                        let t = Self::tier_for_lbd(lbd);
                        if t < self.db.tier(confl) {
                            self.db.set_tier(confl, t);
                            self.stats.tier_promotions += 1;
                        }
                    }
                }
            }
            let start = usize::from(p.is_some());
            for k in start..self.db.len(confl) {
                let q = self.db.lit(confl, k);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.var_bump(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            p = Some(pl);
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()];
        }
        learnt[0] = !p.expect("analysis visits at least the UIP");

        // Clause minimization: drop literals implied by the rest — the
        // recursive (deep) DFS over reason clauses, or the legacy
        // one-level pass.
        let mut minimized: Vec<Lit> = vec![learnt[0]];
        if self.heur.ccmin_deep {
            debug_assert!(self.ccmin_clear.is_empty());
            let mut abstract_levels = 0u32;
            for &l in &learnt[1..] {
                abstract_levels |= self.abstract_level(l.var());
            }
            for &l in &learnt[1..] {
                if self.reason[l.var().index()] == CREF_UNDEF
                    || !self.lit_redundant(l, abstract_levels)
                {
                    minimized.push(l);
                }
            }
        } else {
            for &l in &learnt[1..] {
                if !self.is_redundant(l) {
                    minimized.push(l);
                }
            }
        }
        self.stats.minimized_lits += (learnt.len() - minimized.len()) as u64;

        // Compute backtrack level: second-highest level in the clause.
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };

        // Clear remaining seen flags — the learnt clause's own, plus any
        // extra marks the recursive minimizer left as memoized
        // "redundant" witnesses.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        for i in 0..self.ccmin_clear.len() {
            self.seen[self.ccmin_clear[i].var().index()] = false;
        }
        self.ccmin_clear.clear();
        (minimized, bt)
    }

    /// One-bit-per-level abstraction of a variable's decision level
    /// (MiniSat's `abstractLevel`), used by the recursive minimizer to
    /// cheaply reject reason literals from levels the learnt clause never
    /// touches.
    #[inline]
    fn abstract_level(&self, v: Var) -> u32 {
        1 << (self.level[v.index()] & 31)
    }

    /// Whether `p` is redundant in the learnt clause under construction:
    /// a DFS over reason clauses (MiniSat's `litRedundant`, the deep
    /// ccmin mode) proving `p` implied by seen literals and level-0
    /// facts alone. Newly proven-redundant literals stay marked in `seen`
    /// (memoization across sibling probes of one analysis) and are logged
    /// in `ccmin_clear` for the caller to unmark; a failed probe unwinds
    /// its own marks before returning.
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u32) -> bool {
        debug_assert!(self.ccmin_stack.is_empty());
        self.ccmin_stack.push(p);
        let top = self.ccmin_clear.len();
        while let Some(q) = self.ccmin_stack.pop() {
            let r = self.reason[q.var().index()];
            debug_assert_ne!(r, CREF_UNDEF);
            // A reason clause keeps its propagated literal at position 0
            // while locked, so positions 1.. are exactly the antecedents.
            for k in 1..self.db.len(r) {
                let l = self.db.lit(r, k);
                let v = l.var();
                if self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                if self.reason[v.index()] != CREF_UNDEF
                    && self.abstract_level(v) & abstract_levels != 0
                {
                    self.seen[v.index()] = true;
                    self.ccmin_stack.push(l);
                    self.ccmin_clear.push(l);
                } else {
                    // Hit a decision or a level outside the clause: `p`
                    // is not provably redundant. Undo this probe's marks.
                    for i in top..self.ccmin_clear.len() {
                        self.seen[self.ccmin_clear[i].var().index()] = false;
                    }
                    self.ccmin_clear.truncate(top);
                    self.ccmin_stack.clear();
                    return false;
                }
            }
        }
        true
    }

    /// The tier a learnt clause of the given LBD belongs to.
    #[inline]
    fn tier_for_lbd(lbd: u32) -> u32 {
        if lbd <= CORE_LBD_MAX {
            TIER_CORE
        } else if lbd <= MID_LBD_MAX {
            TIER_MID
        } else {
            TIER_LOCAL
        }
    }

    /// A literal is redundant in the learnt clause if its reason clause
    /// consists only of literals that are already seen (one-level version of
    /// MiniSat's ccmin).
    fn is_redundant(&self, l: Lit) -> bool {
        let r = self.reason[l.var().index()];
        if r == CREF_UNDEF {
            return false;
        }
        for k in 0..self.db.len(r) {
            let q = self.db.lit(r, k);
            if q.var() == l.var() {
                continue;
            }
            if !self.seen[q.var().index()] && self.level[q.var().index()] > 0 {
                return false;
            }
        }
        true
    }

    /// Computes the assumption core after an assumption `p` was found
    /// falsified (MiniSat's `analyzeFinal`): walks the implication graph
    /// backwards from `¬p`'s assignment and collects every *decision* it
    /// rests on. While the solver is still placing assumptions, all
    /// decisions on the trail **are** assumptions, so the result is the
    /// subset of the caller's assumption literals that together imply the
    /// conflict — `p` itself included.
    fn analyze_final(&mut self, p: Lit) {
        self.core.clear();
        self.core.push(p);
        if self.decision_level() == 0 {
            return; // ¬p is a level-0 consequence of the formula alone
        }
        self.seen[p.var().index()] = true;
        for idx in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var();
            if !self.seen[v.index()] {
                continue;
            }
            let r = self.reason[v.index()];
            if r == CREF_UNDEF {
                // A decision: one of the already-placed assumptions. The
                // trail holds the literal as assumed, so it can be handed
                // back verbatim (for `v == p.var()` this is the
                // complementary assumption `¬p`).
                self.core.push(l);
            } else {
                for k in 0..self.db.len(r) {
                    let q = self.db.lit(r, k);
                    if q.var() != v && self.level[q.var().index()] > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        // `¬p` may have been implied at level 0, in which case its variable
        // never appeared in the walk above.
        self.seen[p.var().index()] = false;
    }

    /// Bumps the VSIDS activity of the given literals' variables, as if
    /// they had appeared in a conflict. Deterministic steering hook for
    /// clients that know where the action is — e.g. a freshly installed
    /// proof-goal clause, whose variables the next solve should decide
    /// early.
    pub fn bump_activity(&mut self, lits: impl IntoIterator<Item = Lit>) {
        for l in lits {
            self.var_bump(l.var());
        }
    }

    /// The `k` *free* variables (unassigned at decision level 0 — a
    /// variable fixed by the clause set is useless as a branch or split
    /// point) with the highest VSIDS activity, most active first. Ties are
    /// broken by variable index (lower index first), so the ranking is
    /// fully deterministic for a given solver state.
    ///
    /// This is the read-only sibling of [`Solver::bump_activity`]: where
    /// `bump_activity` *steers* the heuristic toward variables the client
    /// knows matter, `top_vars` *reports* where the heuristic has found the
    /// action — e.g. to pick split variables for a cube-and-conquer
    /// partition of a hard check.
    pub fn top_vars(&self, k: usize) -> Vec<Var> {
        let mut vars: Vec<Var> = (0..self.num_vars())
            .map(|i| Var(i as u32))
            .filter(|v| self.assigns[v.index()] == LBool::Undef)
            .collect();
        // Sort by descending activity, ascending index on ties. Activities
        // are finite (rescaled below 1e100, never NaN), so `total_cmp` is a
        // plain numeric order here.
        vars.sort_by(|&a, &b| {
            self.heap
                .activity(b)
                .total_cmp(&self.heap.activity(a))
                .then(a.index().cmp(&b.index()))
        });
        vars.truncate(k);
        vars
    }

    /// The assumption core of the most recent [`SolveResult::Unsat`]: a
    /// subset of the `solve` call's assumption literals that is already
    /// sufficient for unsatisfiability. An *empty* core means the formula
    /// is unsatisfiable regardless of any assumption.
    ///
    /// Only meaningful directly after an `Unsat` result; a later `Sat`
    /// result leaves the stale core in place.
    pub fn assumption_core(&self) -> &[Lit] {
        &self.core
    }

    fn compute_lbd(&mut self, c: CRef) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        let mut lbd = 0;
        for k in 0..self.db.len(c) {
            let lvl = self.level[self.db.lit(c, k).var().index()] as usize;
            if self.lbd_stamp.len() <= lvl {
                self.lbd_stamp.resize(lvl + 1, 0);
            }
            if self.lbd_stamp[lvl] != stamp {
                self.lbd_stamp[lvl] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// Installs a learnt clause and enqueues its asserting literal.
    /// Returns the clause's LBD (1 for unit learnts), which feeds the
    /// adaptive-restart averages.
    fn record_learnt(&mut self, lits: Vec<Lit>) -> u32 {
        if lits.len() == 1 {
            self.unchecked_enqueue(lits[0], CREF_UNDEF);
            return 1;
        }
        let cref = self.db.alloc(&lits, true);
        let lbd = self.compute_lbd(cref);
        self.db.set_lbd(cref, lbd);
        // Tier bookkeeping is unconditional (one store) so toggling
        // `tiered_db` mid-life never sees stale tiers.
        self.db.set_tier(cref, Self::tier_for_lbd(lbd));
        self.learnts.push(cref);
        self.learnt_eras.push(self.era);
        self.stats.learnts = self.learnts.len() as u64;
        self.attach(cref);
        self.unchecked_enqueue(lits[0], cref);
        lbd
    }

    /// A clause is locked while it is the reason of its first literal's
    /// assignment (MiniSat's invariant: the propagated literal is moved to
    /// position 0 when the clause becomes a reason).
    #[inline]
    fn is_locked(&self, c: CRef) -> bool {
        let v = self.db.lit(c, 0).var().index();
        self.reason[v] == c && self.assigns[v] != LBool::Undef
    }

    fn reduce_db(&mut self) {
        self.stats.db_reductions += 1;
        if self.heur.tiered_db {
            self.reduce_db_tiered();
        } else {
            self.reduce_db_legacy();
        }
        self.retain_live_learnts();
        self.stats.learnts = self.learnts.len() as u64;
        if self.db.wasted * 2 > self.db.data.len() {
            self.garbage_collect();
        }
    }

    /// The legacy single-sweep reducer: sort learnts by LBD descending and
    /// delete the worse half, keeping glue clauses (LBD <= 2) and locked
    /// clauses (reason of a trail lit).
    fn reduce_db_legacy(&mut self) {
        let mut ranked: Vec<(u32, CRef)> = self
            .learnts
            .iter()
            .map(|&c| (self.db.lbd(c), c))
            .collect();
        ranked.sort_unstable_by_key(|&(lbd, _)| std::cmp::Reverse(lbd));
        let target = ranked.len() / 2;
        let mut deleted = 0;
        for (lbd, c) in ranked {
            if deleted >= target || lbd <= 2 {
                break;
            }
            if self.is_locked(c) {
                continue;
            }
            self.detach(c);
            self.db.delete(c);
            deleted += 1;
        }
    }

    /// The tiered reducer: the core tier (LBD ≤ 3) is never deleted; mid
    /// clauses untouched since the previous reduction demote to local;
    /// the worse (higher-LBD, older on ties) half of the local tier is
    /// deleted, skipping locked clauses. Promotion back up happens in
    /// conflict analysis, where an improved LBD re-tiers the clause.
    fn reduce_db_tiered(&mut self) {
        let mut local: Vec<(u32, CRef)> = Vec::new();
        for i in 0..self.learnts.len() {
            let c = self.learnts[i];
            match self.db.tier(c) {
                TIER_CORE => {}
                TIER_MID => {
                    if self.db.is_used(c) {
                        self.db.clear_used(c);
                    } else {
                        self.db.set_tier(c, TIER_LOCAL);
                        local.push((self.db.lbd(c), c));
                    }
                }
                _ => {
                    if self.db.is_used(c) {
                        // A local clause that just participated in a
                        // conflict gets one more round before it is a
                        // deletion candidate.
                        self.db.clear_used(c);
                    } else {
                        local.push((self.db.lbd(c), c));
                    }
                }
            }
        }
        // Higher LBD first; on equal LBD the *older* clause (lower arena
        // offset) is deleted first — recency is the cheapest proxy for
        // relevance the arena gives us deterministically.
        local.sort_unstable_by_key(|&(lbd, c)| (std::cmp::Reverse(lbd), c.0));
        let target = local.len() / 2;
        let mut deleted = 0;
        for (_, c) in local {
            if deleted >= target {
                break;
            }
            if self.is_locked(c) {
                continue;
            }
            self.detach(c);
            self.db.delete(c);
            deleted += 1;
        }
    }

    /// Reduces the learnt database and compacts the clause arena *between*
    /// incremental `solve` calls.
    ///
    /// Long-lived sessions (one solver across an entire UPEC-SSC fixpoint
    /// run) accumulate learnt clauses from hundreds of solves; this hook
    /// lets the owner shed stale learnts at a window boundary without
    /// discarding the solver. Glue clauses (LBD ≤ 2) and clauses locked as
    /// level-0 reasons survive, so the call never loses soundness or the
    /// most valuable lemmas.
    ///
    /// Retired-era learnts are deliberately **not** purged here: era
    /// tagging is by time, not ancestry, so within one session a retired
    /// goal's era mostly holds lemmas about the shared formula that the
    /// *next* window's near-identical goal still profits from — purging
    /// them at every boundary would undo the persistent session's
    /// cross-window clause reuse. The purge belongs to [`Solver::fork`]
    /// (a fork for a new scenario never re-assumes the retired goals);
    /// owners that do want it in-session call
    /// [`Solver::purge_retired_learnts`] explicitly.
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0 (i.e. from inside a solve).
    pub fn collect_garbage(&mut self) {
        assert_eq!(self.trail_lim.len(), 0, "collect_garbage above level 0");
        if !self.ok {
            return;
        }
        self.reduce_db();
        if self.db.wasted > 0 {
            self.garbage_collect();
        }
    }

    /// Inprocessing: clause **vivification** followed by occurrence-list
    /// **subsumption / self-subsuming resolution**, at decision level 0.
    /// Returns `(vivified, subsumed)` — the counts also accumulated into
    /// [`SolverStats::vivified_clauses`] / [`SolverStats::subsumed_clauses`].
    ///
    /// Designed for the moments the clause DB is about to be duplicated
    /// (a proof prefix finishing its encode, a session fork): simplifying
    /// once there is amortized over every copy. All rewrites are
    /// model-set-preserving, so verdicts and extracted models are
    /// unaffected:
    ///
    /// - vivification only shortens a clause to a subset `K` when `¬K`
    ///   propagates a conflict or another literal of the clause — i.e.
    ///   when `∨K` (or its resolvent with the implied literal) is entailed;
    /// - a clause is only deleted when a remaining clause subsumes it
    ///   (problem clauses only by other *problem* clauses, so the
    ///   irredundant set never leans on a learnt that a later reduction
    ///   could drop; learnts are deletable by anything since dropping a
    ///   learnt is always sound);
    /// - self-subsuming resolution replaces a problem clause by an
    ///   entailed strict subset.
    ///
    /// A no-op when [`Heuristics::inprocessing`] is off, when the solver
    /// is already unsat, or when nothing changed since the last run (so
    /// forking an untouched solver costs nothing). Work is capped by
    /// deterministic propagation/scan budgets — fork points sit on hot
    /// paths, and a bounded pass keeps the fork cheap while still
    /// discharging the bulk of the simplifiable clauses.
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0.
    pub fn inprocess(&mut self) -> (u64, u64) {
        assert_eq!(self.trail_lim.len(), 0, "inprocess above level 0");
        if !self.heur.inprocessing || !self.ok {
            return (0, 0);
        }
        let fp = |s: &Solver| (s.stats.conflicts, s.stats.propagations, s.trail.len() as u64);
        if fp(self) == self.inprocessed_at {
            return (0, 0);
        }
        debug_assert_eq!(self.qhead, self.trail.len());
        // Release level-0 reasons. A level-0 assignment is permanent and
        // its reason clause is never dereferenced again (conflict analysis
        // and final-core extraction both skip level-0 variables), but as
        // long as the clause counts as locked it could be neither deleted
        // nor strengthened.
        for i in 0..self.trail.len() {
            self.reason[self.trail[i].var().index()] = CREF_UNDEF;
        }
        let vivified = self.vivify_pass();
        let subsumed = if self.ok { self.subsume_pass() } else { 0 };
        let db = &self.db;
        self.clauses.retain(|&c| !db.is_deleted(c));
        self.retain_live_learnts();
        self.stats.clauses = self.clauses.len() as u64;
        self.stats.learnts = self.learnts.len() as u64;
        self.stats.vivified_clauses += vivified;
        self.stats.subsumed_clauses += subsumed;
        if self.db.wasted * 2 > self.db.data.len() {
            self.garbage_collect();
        }
        self.inprocessed_at = fp(self);
        (vivified, subsumed)
    }

    /// Vivification (clause distillation): for each problem clause
    /// `l1 ∨ … ∨ lk`, assume `¬l1, ¬l2, …` one literal at a time with
    /// full propagation in between (the clause itself detached).
    /// A conflict proves the assumed prefix's clause entailed (shorten to
    /// it); a literal found true is kept and ends the clause there; a
    /// literal found false is resolved away. Clauses satisfied at level 0
    /// are discharged outright. Bounded by a propagation budget.
    fn vivify_pass(&mut self) -> u64 {
        let mut shrunk = 0u64;
        let budget_end = self.stats.propagations.saturating_add(VIVIFY_PROP_BUDGET);
        let n = self.clauses.len();
        for i in 0..n {
            let c = self.clauses[i];
            if self.db.is_deleted(c) {
                continue;
            }
            let len = self.db.len(c);
            if len > VIVIFY_MAX_LEN {
                continue;
            }
            if self.stats.propagations >= budget_end {
                break;
            }
            let lits: Vec<Lit> = self.db.lits(c).iter().map(|&l| Lit(l)).collect();
            if lits.iter().any(|&l| self.value_lit(l) == LBool::True) {
                // Satisfied at level 0: true forever.
                self.detach(c);
                self.db.delete(c);
                shrunk += 1;
                continue;
            }
            self.detach(c);
            let mut kept: Vec<Lit> = Vec::with_capacity(len);
            for (j, &l) in lits.iter().enumerate() {
                match self.value_lit(l) {
                    LBool::True => {
                        // ¬(kept) ⊨ l, so (∨kept ∨ l) is entailed.
                        kept.push(l);
                        break;
                    }
                    LBool::False => {
                        // ¬(kept) ⊨ ¬l: resolving (∨kept ∨ ¬l is entailed)
                        // with the clause drops l.
                    }
                    LBool::Undef => {
                        kept.push(l);
                        if j + 1 == lits.len() {
                            break; // nothing left to learn from a decision
                        }
                        self.new_decision_level();
                        self.unchecked_enqueue(!l, CREF_UNDEF);
                        if self.propagate().is_some() {
                            // ¬(kept) is contradictory: (∨kept) is entailed.
                            break;
                        }
                    }
                }
            }
            self.cancel_until(0);
            if kept.len() == lits.len() {
                self.attach(c);
                continue;
            }
            self.db.delete(c);
            shrunk += 1;
            self.install_shrunk(&kept);
            if !self.ok {
                break;
            }
        }
        shrunk
    }

    /// Occurrence-list subsumption + self-subsuming resolution, one pass
    /// in deterministic clause order (problem clauses first, then
    /// learnts, as subsumers). Bounded by a literal-scan budget and a
    /// per-literal occurrence cap.
    fn subsume_pass(&mut self) -> u64 {
        let mut subsumed = 0u64;
        let nlits = 2 * self.num_vars();
        let mut occ: Vec<Vec<CRef>> = vec![Vec::new(); nlits];
        let problem: Vec<CRef> =
            self.clauses.iter().copied().filter(|&c| !self.db.is_deleted(c)).collect();
        let learnt: Vec<CRef> =
            self.learnts.iter().copied().filter(|&c| !self.db.is_deleted(c)).collect();
        for &c in problem.iter().chain(learnt.iter()) {
            for &l in self.db.lits(c) {
                occ[Lit(l).index()].push(c);
            }
        }
        let mut stamp: Vec<u64> = vec![0; nlits];
        let mut stamp_ctr = 0u64;
        let mut scans = 0u64;
        'subsumers: for (list, a_is_problem) in [(&problem, true), (&learnt, false)] {
            for &a in list.iter() {
                if self.db.is_deleted(a) {
                    continue;
                }
                let alen = self.db.len(a);
                if alen > SUBSUME_MAX_LEN {
                    continue;
                }
                if scans >= SUBSUME_SCAN_BUDGET {
                    break 'subsumers;
                }
                // Probe through the rarest literal's occurrence list.
                let mut min_lit = self.db.lit(a, 0);
                for k in 1..alen {
                    let l = self.db.lit(a, k);
                    if occ[l.index()].len() < occ[min_lit.index()].len() {
                        min_lit = l;
                    }
                }
                if occ[min_lit.index()].len() > SUBSUME_OCC_CAP {
                    continue;
                }
                stamp_ctr += 1;
                for k in 0..alen {
                    stamp[self.db.lit(a, k).index()] = stamp_ctr;
                }
                let cands: Vec<CRef> = occ[min_lit.index()].clone();
                for b in cands {
                    if b == a || self.db.is_deleted(b) {
                        continue;
                    }
                    let blen = self.db.len(b);
                    if blen < alen {
                        continue;
                    }
                    scans += blen as u64;
                    let mut hits = 0usize;
                    let mut neg: Option<Lit> = None;
                    let mut negs = 0usize;
                    for k in 0..blen {
                        let l = self.db.lit(b, k);
                        if stamp[l.index()] == stamp_ctr {
                            hits += 1;
                        } else if stamp[(!l).index()] == stamp_ctr {
                            negs += 1;
                            neg = Some(l);
                        }
                    }
                    if hits == alen {
                        // a ⊆ b. A problem clause may only lean on another
                        // problem clause for its deletion; learnts are fair
                        // game for anyone.
                        if a_is_problem || self.db.is_learnt(b) {
                            self.detach(b);
                            self.db.delete(b);
                            subsumed += 1;
                        }
                    } else if hits + 1 == alen && negs == 1 && !self.db.is_learnt(b) {
                        // Self-subsuming resolution: resolving a with b on
                        // the clashing literal yields a strict subset of b.
                        let drop = neg.expect("negs == 1");
                        let new_lits: Vec<Lit> = self
                            .db
                            .lits(b)
                            .iter()
                            .map(|&l| Lit(l))
                            .filter(|&l| l != drop)
                            .collect();
                        self.detach(b);
                        self.db.delete(b);
                        self.install_shrunk(&new_lits);
                        subsumed += 1;
                        if !self.ok {
                            break 'subsumers;
                        }
                    }
                }
            }
        }
        subsumed
    }

    /// Installs the shortened replacement of an (already detached and
    /// deleted) problem clause: empty → unsat, unit → level-0 enqueue +
    /// propagation, else allocate/attach and append to the clause list
    /// (the caller compacts the list afterwards).
    fn install_shrunk(&mut self, lits: &[Lit]) {
        match lits.len() {
            0 => self.ok = false,
            1 => match self.value_lit(lits[0]) {
                LBool::True => {}
                LBool::False => self.ok = false,
                LBool::Undef => {
                    self.unchecked_enqueue(lits[0], CREF_UNDEF);
                    self.ok = self.propagate().is_none() && self.ok;
                }
            },
            _ => {
                let cref = self.db.alloc(lits, false);
                self.clauses.push(cref);
                self.attach(cref);
            }
        }
    }

    fn detach(&mut self, cref: CRef) {
        let l0 = self.db.lit(cref, 0);
        let l1 = self.db.lit(cref, 1);
        self.watches[(!l0).index()].retain(|w| w.cref != cref);
        self.watches[(!l1).index()].retain(|w| w.cref != cref);
    }

    /// Compacts the clause arena, dropping deleted clauses and rebuilding
    /// all watch lists and reason references.
    ///
    /// Relocation is recorded with forwarding pointers written into the old
    /// arena (the moved clause's now-unused LBD slot), so the remap is O(1)
    /// per reference with no side table — the GC survives arbitrarily many
    /// incremental solve/grow cycles without allocation churn.
    fn garbage_collect(&mut self) {
        self.stats.gcs += 1;
        let mut new_db = ClauseDb::new();
        let mut move_clause = |db: &mut ClauseDb, c: CRef| -> CRef {
            let lits: Vec<Lit> = db.lits(c).iter().map(|&l| Lit(l)).collect();
            let n = new_db.alloc(&lits, db.is_learnt(c));
            // Carry the full header (tier/used flags included) minus the
            // deleted bit, then the LBD.
            new_db.data[n.0 as usize] = db.data[c.0 as usize] & !2;
            new_db.set_lbd(n, db.lbd(c));
            // Mark the old copy deleted and store the forwarding pointer in
            // its LBD slot.
            db.data[c.0 as usize] |= 2;
            db.data[c.0 as usize + 1] = n.0;
            n
        };
        for c in &mut self.clauses {
            *c = move_clause(&mut self.db, *c);
        }
        for c in &mut self.learnts {
            *c = move_clause(&mut self.db, *c);
        }
        for r in &mut self.reason {
            if *r != CREF_UNDEF {
                // Reasons only exist for currently-assigned variables, whose
                // clauses are locked and therefore were moved above (a
                // deleted clause is never a live reason).
                debug_assert!(self.db.is_deleted(*r), "live reason was not forwarded");
                *r = CRef(self.db.data[r.0 as usize + 1]);
            }
        }
        self.db = new_db;
        for w in &mut self.watches {
            w.clear();
        }
        let all: Vec<CRef> = self.clauses.iter().chain(self.learnts.iter()).copied().collect();
        for c in all {
            self.attach(c);
        }
    }

    /// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    fn luby(x: u64) -> u64 {
        let mut size = 1u64;
        let mut seq = 0u64;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        let mut x = x;
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Solves the formula under the given assumptions.
    ///
    /// After `Sat`, the model is available via [`Solver::model_value`]. The
    /// solver is left at decision level 0 and can be reused incrementally
    /// (more clauses/vars may be added, different assumptions tried).
    ///
    /// If a [`Budget`] is installed ([`Solver::set_budget`] /
    /// [`Solver::set_conflict_budget`]) and runs out — or an attached
    /// [`CancelToken`] is raised — the solve stops at decision level 0 and
    /// returns [`SolveResult::Unknown`] instead of an answer; it never
    /// panics on exhaustion and never converts a budget limit into a wrong
    /// `Sat`/`Unsat`. A budgeted `Unknown` leaves the solver fully valid:
    /// the same call with a larger budget picks up with everything learnt
    /// so far.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        let entry_stats = self.stats;
        self.stats.solves += 1;
        if !self.ok {
            self.core.clear(); // unsat without any assumption
            return SolveResult::Unsat;
        }
        // Fault injection (no-op unless a chaos plan targeting this solve's
        // budget tag is armed): a panic fault unwinds out of `point`, an
        // exhaustion fault shrinks this call's conflict budget to zero so it
        // trips the genuine interrupt path, a cancel fault behaves like a
        // token raised before the solve started.
        let mut conflicts_allowed = self.budget.conflicts;
        match chaos::point(chaos::Site::Solve, self.budget.tag) {
            Some(chaos::Fault::ExhaustBudget) => conflicts_allowed = Some(0),
            Some(chaos::Fault::Cancel) => {
                return self.interrupted(InterruptCause::Cancelled, &entry_stats);
            }
            _ => {}
        }
        self.limit_conflicts = conflicts_allowed.map_or(u64::MAX, |b| self.stats.conflicts + b);
        self.limit_props =
            self.budget.propagations.map_or(u64::MAX, |b| self.stats.propagations + b);
        self.interrupt = None;
        self.solving = true;
        self.poll_interrupt(); // pre-raised token / already-past deadline
        // Re-solve tuning: consecutive solves of a persistent session ask
        // near-identical questions, so prime the decision heuristic with the
        // variables the previous unsatisfiability proof rested on — one
        // activity bump each, lifting them back above the decayed bulk
        // without erasing the accumulated VSIDS ranking. Saved phases and
        // activities already persist across solves; this re-focuses them.
        if !self.core.is_empty() {
            let seeds = std::mem::take(&mut self.core);
            for l in &seeds {
                self.var_bump(l.var());
            }
            self.stats.core_seeds += seeds.len() as u64;
            self.core = seeds;
        }
        let mut restart_count: u64 = 0;
        let mut conflicts_until_restart = Self::luby(restart_count) * RESTART_BASE;
        let mut conflicts_in_run: u64 = 0;
        // Adaptive-restart state (glucose lineage), all per-solve and
        // purely counter-driven, so schedules are deterministic: a fast
        // LBD average over the recent window versus the slow whole-solve
        // average triggers a restart when recent conflicts degrade; a
        // trail far above its own average blocks (postpones) the restart
        // instead, because the solver is visibly filling in a model that
        // a restart would throw away. During the first `window` conflicts
        // the update rule degenerates to an exact running mean, so the
        // averages need no seed value.
        let mut lbd_fast = 0.0f64;
        let mut lbd_slow = 0.0f64;
        let mut trail_avg = 0.0f64;
        let mut solve_conflicts: u64 = 0;

        let result = loop {
            if let Some(cause) = self.interrupt.take() {
                break self.interrupted(cause, &entry_stats);
            }
            let confl = self.propagate();
            if let Some(cause) = self.interrupt.take() {
                break self.interrupted(cause, &entry_stats);
            }
            if let Some(confl) = confl {
                self.stats.conflicts += 1;
                conflicts_in_run += 1;
                if self.decision_level() == 0 {
                    // A sound answer beats an exhausted budget: level-0
                    // conflicts prove unsatisfiability outright.
                    self.ok = false;
                    self.core.clear(); // unsat without any assumption
                    break SolveResult::Unsat;
                }
                if self.stats.conflicts > self.limit_conflicts {
                    break self.interrupted(InterruptCause::Conflicts, &entry_stats);
                }
                let (learnt, bt_level) = self.analyze(confl);
                // Never backtrack past the assumptions that are still valid:
                // cancel_until handles re-enqueueing since decisions are
                // re-derived from `assumptions` in the decision phase.
                self.cancel_until(bt_level);
                let lbd = self.record_learnt(learnt);
                if self.heur.adaptive_restarts {
                    solve_conflicts += 1;
                    let fast_n = solve_conflicts.min(LBD_FAST_WINDOW) as f64;
                    let slow_n = solve_conflicts.min(LBD_SLOW_WINDOW) as f64;
                    let trail_n = solve_conflicts.min(TRAIL_AVG_WINDOW) as f64;
                    lbd_fast += (f64::from(lbd) - lbd_fast) / fast_n;
                    lbd_slow += (f64::from(lbd) - lbd_slow) / slow_n;
                    trail_avg += (self.trail.len() as f64 - trail_avg) / trail_n;
                }
                self.var_inc /= VAR_DECAY;
                if self.learnts.len() as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
            } else {
                let restart_due = if self.heur.adaptive_restarts {
                    conflicts_in_run >= RESTART_MIN_INTERVAL
                        && lbd_fast > lbd_slow * RESTART_MARGIN
                } else {
                    conflicts_in_run >= conflicts_until_restart
                };
                if restart_due
                    && self.heur.adaptive_restarts
                    && self.trail.len() as f64 > trail_avg * RESTART_BLOCK_MARGIN
                {
                    // Blocked: the trail is far past its average, i.e. the
                    // search is assignment-heavy (SAT-leaning) and close to
                    // something — postpone, damp the trigger, re-arm only
                    // after another minimum interval of conflicts.
                    self.stats.restarts_blocked += 1;
                    conflicts_in_run = 0;
                    lbd_fast = lbd_slow;
                } else if restart_due {
                    // Restart: keep level-0 trail, redo assumptions.
                    self.stats.restarts += 1;
                    restart_count += 1;
                    conflicts_in_run = 0;
                    conflicts_until_restart = Self::luby(restart_count) * RESTART_BASE;
                    if self.heur.adaptive_restarts {
                        // Like glucose clearing its conflict queue: the
                        // trigger re-arms on fresh degradation only.
                        lbd_fast = lbd_slow;
                    }
                    self.cancel_until(0);
                }
                // Extend with assumptions first.
                let mut next_decision: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value_lit(p) {
                        LBool::True => self.new_decision_level(), // dummy level
                        LBool::False => {
                            break;
                        }
                        LBool::Undef => {
                            next_decision = Some(p);
                            break;
                        }
                    }
                }
                if (self.decision_level() as usize) < assumptions.len()
                    && next_decision.is_none()
                {
                    // Some assumption is falsified by level-0/previous units:
                    // record which assumptions that conflict rests on.
                    let p = assumptions[self.decision_level() as usize];
                    self.analyze_final(p);
                    break SolveResult::Unsat;
                }
                let decision = match next_decision {
                    Some(p) => Some(p),
                    None => self.pick_branch(),
                };
                match decision {
                    None => {
                        // All variables assigned: model found.
                        self.model = self.assigns.clone();
                        break SolveResult::Sat;
                    }
                    Some(p) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        self.unchecked_enqueue(p, CREF_UNDEF);
                    }
                }
            }
        };
        self.cancel_until(0);
        self.solving = false;
        self.interrupt = None;
        self.limit_conflicts = u64::MAX;
        self.limit_props = u64::MAX;
        result
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max() {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v.lit(!self.polarity[v.index()]));
            }
        }
        None
    }

    /// The value of `l` in the most recent model (after a `Sat` result).
    /// Returns `None` for variables that were never assigned.
    pub fn model_value(&self, l: Lit) -> Option<bool> {
        self.model
            .get(l.var().index())
            .and_then(|v| v.xor(l.is_neg()).as_bool())
    }

    /// The value of variable `v` in the most recent model.
    pub fn model_var(&self, v: Var) -> Option<bool> {
        self.model.get(v.index()).and_then(|x| x.as_bool())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristics_parse_env_defaults_and_master() {
        // Unset everything: modern.
        let h = Heuristics::parse_env(None, None, None, None, None).unwrap();
        assert_eq!(h, Heuristics::modern());
        // Master off seeds all four off.
        let h = Heuristics::parse_env(Some("0"), None, None, None, None).unwrap();
        assert_eq!(h, Heuristics::legacy());
        // All accepted spellings.
        for (raw, want) in [
            ("0", false),
            ("off", false),
            ("false", false),
            ("1", true),
            ("on", true),
            ("true", true),
        ] {
            let h = Heuristics::parse_env(Some(raw), None, None, None, None).unwrap();
            assert_eq!(h.ccmin_deep, want, "master={raw}");
        }
    }

    #[test]
    fn heuristics_parse_env_per_feature_overrides_master() {
        let h = Heuristics::parse_env(Some("0"), Some("1"), None, None, None).unwrap();
        assert!(h.ccmin_deep && !h.tiered_db && !h.adaptive_restarts && !h.inprocessing);
        let h = Heuristics::parse_env(Some("on"), None, Some("off"), None, None).unwrap();
        assert!(h.ccmin_deep && !h.tiered_db && h.adaptive_restarts && h.inprocessing);
        let h = Heuristics::parse_env(None, None, None, Some("false"), Some("0")).unwrap();
        assert!(h.ccmin_deep && h.tiered_db && !h.adaptive_restarts && !h.inprocessing);
    }

    #[test]
    fn heuristics_parse_env_rejects_junk_naming_the_var() {
        let err = Heuristics::parse_env(Some("yes"), None, None, None, None).unwrap_err();
        assert_eq!(err, (SOLVER_MODERN_ENV, "yes".to_string()));
        let err = Heuristics::parse_env(None, Some("2"), None, None, None).unwrap_err();
        assert_eq!(err, (SOLVER_CCMIN_ENV, "2".to_string()));
        let err = Heuristics::parse_env(None, None, Some(""), None, None).unwrap_err();
        assert_eq!(err, (SOLVER_TIERED_ENV, String::new()));
        let err = Heuristics::parse_env(None, None, None, Some("On"), None).unwrap_err();
        assert_eq!(err, (SOLVER_RESTARTS_ENV, "On".to_string()));
        let err = Heuristics::parse_env(None, None, None, None, Some("nope")).unwrap_err();
        assert_eq!(err, (SOLVER_INPROCESS_ENV, "nope".to_string()));
    }

    #[test]
    fn inprocess_subsumes_and_vivifies_without_changing_verdicts() {
        let mut s = Solver::with_heuristics(Heuristics::modern());
        let v: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        // (a ∨ b) subsumes its duplicate superset (a ∨ b ∨ c); the third
        // clause shares no subset relation and must survive.
        s.add_clause([v[0].lit(false), v[1].lit(false)]);
        s.add_clause([v[0].lit(false), v[1].lit(false), v[2].lit(false)]);
        s.add_clause([v[3].lit(false), v[4].lit(false), v[5].lit(false)]);
        let before = s.stats().clauses;
        let (_, subsumed) = s.inprocess();
        assert!(subsumed >= 1, "duplicate-superset clause must be subsumed");
        assert!(s.stats().clauses < before);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // Idempotent at an unchanged state: second call is a no-op.
        let fp = s.inprocess();
        assert_eq!(fp, (0, 0));
    }

    #[test]
    fn inprocess_is_a_noop_when_disabled_or_off_level_zero() {
        let mut s = Solver::with_heuristics(Heuristics::legacy());
        let v = s.new_var();
        s.add_clause([v.lit(false)]);
        assert_eq!(s.inprocess(), (0, 0));
    }
}
