//! Indexed max-heap over variable activities (the VSIDS order).

use crate::lit::Var;

/// A binary max-heap of variables keyed by activity, with O(log n)
/// increase-key via an index map.
#[derive(Clone, Debug, Default)]
pub struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// position[v] = index in `heap`, or `NOT_IN_HEAP`.
    position: Vec<u32>,
    activity: Vec<f64>,
}

const NOT_IN_HEAP: u32 = u32::MAX;

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        VarHeap::default()
    }

    /// Number of variables currently in the heap.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no variables are queued.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current activity of `v`.
    pub fn activity(&self, v: Var) -> f64 {
        self.activity[v.index()]
    }

    /// Updates the activity of `v` and restores the heap order.
    pub fn set_activity(&mut self, v: Var, a: f64) {
        let old = self.activity[v.index()];
        self.activity[v.index()] = a;
        let pos = self.position[v.index()];
        if pos != NOT_IN_HEAP {
            if a > old {
                self.sift_up(pos as usize);
            } else if a < old {
                self.sift_down(pos as usize);
            }
        }
    }

    /// Registers a new variable with the given activity and queues it.
    ///
    /// # Panics
    ///
    /// Panics if the variable is not the next dense index.
    pub fn insert(&mut self, v: Var, activity: f64) {
        assert_eq!(v.index(), self.activity.len(), "variables must be registered densely");
        self.activity.push(activity);
        self.position.push(NOT_IN_HEAP);
        self.push(v);
    }

    /// Re-queues a variable (after backtracking unassigned it). No-op if it
    /// is already queued.
    pub fn reinsert(&mut self, v: Var) {
        if self.position[v.index()] == NOT_IN_HEAP {
            self.push(v);
        }
    }

    fn push(&mut self, v: Var) {
        let idx = self.heap.len();
        self.heap.push(v.0);
        self.position[v.index()] = idx as u32;
        self.sift_up(idx);
    }

    /// Removes and returns the variable with maximal activity.
    pub fn pop_max(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("nonempty");
        self.position[top as usize] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0);
        }
        Some(Var(top))
    }

    #[inline]
    fn better(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] > self.activity[b as usize]
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.better(self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.better(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.better(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i] as usize] = i as u32;
        self.position[self.heap[j] as usize] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_follows_activity() {
        let mut h = VarHeap::new();
        for (i, a) in [1.0, 5.0, 3.0, 4.0, 2.0].iter().enumerate() {
            h.insert(Var::from_index(i), *a);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_max()).map(|v| v.index()).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn increase_key_reorders() {
        let mut h = VarHeap::new();
        for i in 0..4 {
            h.insert(Var::from_index(i), i as f64);
        }
        h.set_activity(Var::from_index(0), 100.0);
        assert_eq!(h.pop_max().unwrap().index(), 0);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut h = VarHeap::new();
        h.insert(Var::from_index(0), 1.0);
        let v = h.pop_max().unwrap();
        assert!(h.is_empty());
        h.reinsert(v);
        h.reinsert(v);
        assert_eq!(h.len(), 1);
    }
}
