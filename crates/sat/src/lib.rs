//! # ssc-sat — a CDCL SAT solver
//!
//! A from-scratch conflict-driven clause-learning solver used as the
//! decision procedure behind the interval property checker (`ssc-ipc`) and,
//! transitively, the UPEC-SSC security proofs:
//!
//! - two-watched-literal propagation with blocker literals,
//! - first-UIP conflict analysis with **recursive (deep) clause
//!   minimization** (MiniSat's `ccmin-mode=deep`; a one-level pass remains
//!   as the legacy fallback),
//! - exponential VSIDS branching with phase saving,
//! - **glucose-style adaptive restarts** — fast/slow LBD moving averages
//!   with trail-size blocking — over a Luby-sequence legacy fallback,
//! - **tiered (core/mid/local) learnt-database reduction** with LBD-driven
//!   promotion and arena GC; CoW forks inherit the core tier intact,
//! - **fork-point inprocessing**: clause vivification plus occurrence-list
//!   subsumption/self-subsuming resolution ([`Solver::inprocess`]), run
//!   where the clause DB is about to be duplicated anyway,
//! - incremental solving under assumptions (the workhorse of the iterative
//!   UPEC-SSC procedure, which re-solves with shrinking state sets).
//!
//! # Modern CDCL heuristics
//!
//! The four refinements above are independently gated by strict-parsed
//! environment knobs (see [`Heuristics`]); every [`Solver::new`] reads
//! them once, and tests/benches pin explicit configurations via
//! [`Solver::set_heuristics`]. Malformed values panic naming the variable
//! and value — a mistyped CI matrix entry must not silently measure the
//! wrong engine. All knobs accept `0`/`off`/`false` and `1`/`on`/`true`:
//!
//! | Variable | Effect | Unset |
//! |---|---|---|
//! | `SSC_SOLVER_MODERN` | master switch seeding all four features | on |
//! | `SSC_SOLVER_CCMIN_DEEP` | recursive clause minimization | follow master |
//! | `SSC_SOLVER_TIERED_DB` | tiered learnt-DB reduction | follow master |
//! | `SSC_SOLVER_ADAPTIVE_RESTARTS` | LBD-EMA restarts + blocking | follow master |
//! | `SSC_SOLVER_INPROCESS` | fork-point vivification/subsumption | follow master |
//!
//! `SSC_SOLVER_MODERN=0` is the one-stop escape hatch pinning the exact
//! pre-refinement MiniSat-lineage behavior (and CI runs the full suite
//! that way to keep the legacy path green). Heuristic choices never
//! affect *verdicts* — only the route taken to them — which the
//! crosscheck suites assert across the whole scenario matrix.
//!
//! # Bounded effort & graceful degradation
//!
//! A solver can be put under a resource [`Budget`]: a per-solve conflict
//! and/or propagation limit, an absolute wall-clock deadline, and a
//! shareable [`CancelToken`] polled on the propagation hot path. A solve
//! whose budget runs out stops at decision level 0 and returns
//! [`SolveResult::Unknown`] carrying an [`Interrupt`] (the
//! [`InterruptCause`] plus the work performed up to the stop) — it
//! **never panics and never degrades into a wrong `Sat`/`Unsat`**, which
//! is what keeps budgeted verification sound: the layers above map
//! `Unknown` to an explicit inconclusive outcome, so "proved" and "gave
//! up" stay distinguishable all the way to the final verdict. The
//! counter-based limits are measured on the solver's own deterministic
//! counters, so a given formula + assumptions + budget always interrupts
//! at the same point with the same cause; interrupting loses no state,
//! and re-solving with a larger budget resumes from everything learnt so
//! far.
//!
//! The [`chaos`] module hosts the (dependency-root) fault-injection
//! registry used by the robustness test harness; its hooks are a single
//! relaxed atomic load when disarmed.
//!
//! # Example
//!
//! ```
//! use ssc_sat::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let (a, b, c) = (s.new_var(), s.new_var(), s.new_var());
//! s.add_clause([a.pos(), b.pos(), c.pos()]);
//! s.add_clause([a.neg(), b.pos()]);
//! s.add_clause([b.neg(), c.pos()]);
//! assert_eq!(s.solve(&[a.pos()]), SolveResult::Sat);
//! assert_eq!(s.model_value(c.pos()), Some(true));
//! assert_eq!(s.solve(&[a.pos(), c.neg()]), SolveResult::Unsat);
//! // The solver is reusable after every solve.
//! assert_eq!(s.solve(&[]), SolveResult::Sat);
//! ```

#![warn(missing_docs)]

mod budget;
pub mod chaos;
pub mod dimacs;
mod heap;
mod lit;
mod solver;

pub use budget::{Budget, CancelToken, Interrupt, InterruptCause};
pub use lit::{LBool, Lit, Var};
pub use solver::{
    Heuristics, SolveResult, Solver, SolverStats, SOLVER_CCMIN_ENV, SOLVER_INPROCESS_ENV,
    SOLVER_MODERN_ENV, SOLVER_RESTARTS_ENV, SOLVER_TIERED_ENV,
};

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // hole/pigeon indices are semantic
mod tests {
    use super::*;

    fn all_clauses_satisfied(s: &Solver, clauses: &[Vec<Lit>]) -> bool {
        clauses.iter().all(|c| c.iter().any(|&l| s.model_value(l) == Some(true)))
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn top_vars_ranks_by_activity_with_index_tiebreak() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..5).map(|_| s.new_var()).collect();
        // All activities start equal, so the ranking is the index order.
        assert_eq!(s.top_vars(3), vars[0..3]);
        // Bump 3 twice and 1 once: they move ahead of everything else.
        s.bump_activity([vars[3].pos()]);
        s.bump_activity([vars[3].neg(), vars[1].pos()]);
        assert_eq!(s.top_vars(2), vec![vars[3], vars[1]]);
        // Oversized k returns every variable, still ranked.
        assert_eq!(s.top_vars(99).len(), 5);
        assert_eq!(s.top_vars(99)[..2], [vars[3], vars[1]]);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let vars = s.new_vars(10);
        s.add_clause([vars[0].pos()]);
        for w in vars.windows(2) {
            s.add_clause([w[0].neg(), w[1].pos()]);
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for v in &vars {
            assert_eq!(s.model_var(*v), Some(true));
        }
    }

    #[test]
    fn conflicting_units_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([a.pos()]));
        assert!(!s.add_clause([a.neg()]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, ... forces alternation.
        let mut s = Solver::new();
        let vars = s.new_vars(8);
        for w in vars.windows(2) {
            // a ^ b: (a|b) & (~a|~b)
            s.add_clause([w[0].pos(), w[1].pos()]);
            s.add_clause([w[0].neg(), w[1].neg()]);
        }
        s.add_clause([vars[0].pos()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(s.model_var(*v), Some(i % 2 == 0));
        }
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        // PHP(4,3): 4 pigeons, 3 holes. Classic hard UNSAT instance that
        // exercises learning and backjumping.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..4).map(|_| s.new_vars(3)).collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().map(|v| v.pos()));
        }
        for hole in 0..3 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    s.add_clause([p[i][hole].neg(), p[j][hole].neg()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn pigeonhole_3_into_3_sat() {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| s.new_vars(3)).collect();
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for pigeon in &p {
            clauses.push(pigeon.iter().map(|v| v.pos()).collect());
        }
        for hole in 0..3 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    clauses.push(vec![p[i][hole].neg(), p[j][hole].neg()]);
                }
            }
        }
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(all_clauses_satisfied(&s, &clauses));
    }

    #[test]
    fn assumptions_flip_outcome() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.pos(), b.pos()]);
        assert_eq!(s.solve(&[a.neg(), b.neg()]), SolveResult::Unsat);
        assert_eq!(s.solve(&[a.neg()]), SolveResult::Sat);
        assert_eq!(s.model_var(b), Some(true));
        assert_eq!(s.solve(&[a.pos(), b.pos()]), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.pos(), b.pos()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause([a.neg()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_var(b), Some(true));
        s.add_clause([b.neg()]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn tautology_and_duplicates_handled() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause([a.pos(), a.neg()])); // tautology: dropped
        assert!(s.add_clause([b.pos(), b.pos(), b.pos()])); // dedup to unit
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_var(b), Some(true));
    }

    #[test]
    fn duplicate_assumptions_ok() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.neg(), b.pos()]);
        assert_eq!(s.solve(&[a.pos(), a.pos(), b.pos()]), SolveResult::Sat);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for round in 0..60 {
            let n = 3 + (round % 8);
            let m = 2 + (round % 20);
            let clauses: Vec<Vec<Lit>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = Var::from_index(rng.random_range(0..n));
                            v.lit(rng.random_bool(0.5))
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for bits in 0u32..(1 << n) {
                for c in &clauses {
                    let ok = c.iter().any(|l| {
                        let val = (bits >> l.var().index()) & 1 == 1;
                        val != l.is_neg()
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            s.new_vars(n);
            let mut trivially_unsat = false;
            for c in &clauses {
                if !s.add_clause(c.iter().copied()) {
                    trivially_unsat = true;
                }
            }
            let got = if trivially_unsat {
                SolveResult::Unsat
            } else {
                s.solve(&[])
            };
            let want = if brute_sat { SolveResult::Sat } else { SolveResult::Unsat };
            assert_eq!(got, want, "round {round}: clauses {clauses:?}");
            if got == SolveResult::Sat {
                assert!(all_clauses_satisfied(&s, &clauses), "model check round {round}");
            }
        }
    }

    #[test]
    fn large_random_instance_model_is_valid() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200;
        let m = 600; // ratio 3.0: almost surely SAT
        let mut s = Solver::new();
        s.new_vars(n);
        let clauses: Vec<Vec<Lit>> = (0..m)
            .map(|_| {
                (0..3)
                    .map(|_| Var::from_index(rng.random_range(0..n)).lit(rng.random_bool(0.5)))
                    .collect()
            })
            .collect();
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        if s.solve(&[]) == SolveResult::Sat {
            assert!(all_clauses_satisfied(&s, &clauses));
        }
    }

    #[test]
    fn collect_garbage_between_incremental_solves() {
        // A sequence of solves under assumptions with interleaved GC calls
        // must keep verdicts consistent: PHP(5,5) is satisfiable, but
        // blocking one hole via assumptions turns it into PHP(5,4).
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..5).map(|_| s.new_vars(5)).collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().map(|v| v.pos()));
        }
        for hole in 0..5 {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    s.add_clause([p[i][hole].neg(), p[j][hole].neg()]);
                }
            }
        }
        let block_hole4: Vec<Lit> = (0..5).map(|i| p[i][4].neg()).collect();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.collect_garbage();
        assert_eq!(s.solve(&block_hole4), SolveResult::Unsat);
        s.collect_garbage();
        assert_eq!(s.solve(&block_hole4), SolveResult::Unsat);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let st = s.stats();
        assert_eq!(st.solves, 4);
    }

    #[test]
    fn stats_are_populated() {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..5).map(|_| s.new_vars(4)).collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().map(|v| v.pos()));
        }
        for hole in 0..4 {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    s.add_clause([p[i][hole].neg(), p[j][hole].neg()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.decisions > 0);
        assert!(st.propagations > 0);
    }

    #[test]
    fn assumption_core_names_the_responsible_assumptions() {
        // a ∧ (a → b) makes ¬b unsat; c is irrelevant and must not appear
        // in the core.
        let mut s = Solver::new();
        let (a, b, c) = (s.new_var(), s.new_var(), s.new_var());
        s.add_clause([a.neg(), b.pos()]);
        assert_eq!(s.solve(&[c.pos(), a.pos(), b.neg()]), SolveResult::Unsat);
        let core = s.assumption_core();
        assert!(core.contains(&b.neg()), "the falsified assumption is in the core");
        assert!(core.contains(&a.pos()), "the implying assumption is in the core");
        assert!(!core.contains(&c.pos()), "irrelevant assumptions stay out");
    }

    #[test]
    fn complementary_assumptions_form_a_two_literal_core() {
        let mut s = Solver::new();
        let (a, b) = (s.new_var(), s.new_var());
        let _ = b;
        assert_eq!(s.solve(&[a.pos(), a.neg()]), SolveResult::Unsat);
        let mut core = s.assumption_core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![a.pos(), a.neg()]);
    }

    #[test]
    fn unconditionally_unsat_formula_has_empty_core() {
        let mut s = Solver::new();
        let (a, b) = (s.new_var(), s.new_var());
        s.add_clause([a.pos()]);
        s.add_clause([a.neg()]);
        assert_eq!(s.solve(&[b.pos()]), SolveResult::Unsat);
        assert!(s.assumption_core().is_empty(), "no assumption was needed");
    }

    #[test]
    fn core_extraction_survives_learnt_clauses() {
        // Unsat discovered only after conflict-driven learning: the core
        // must still be a subset of the assumptions implying the conflict.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..4).map(|_| s.new_vars(3)).collect();
        for pigeon in &p {
            s.add_clause(pigeon.iter().map(|v| v.pos()));
        }
        for hole in 0..3 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    s.add_clause([p[i][hole].neg(), p[j][hole].neg()]);
                }
            }
        }
        let extra = s.new_var();
        let assumptions = [extra.pos()];
        assert_eq!(s.solve(&assumptions), SolveResult::Unsat);
        for l in s.assumption_core() {
            assert!(
                assumptions.contains(l),
                "core literal {l:?} is not one of the assumptions"
            );
        }
    }
}
