//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub(crate) u32);

// `neg` constructs a literal rather than negating the variable; the name
// matches the SAT literature, not `std::ops::Neg`.
#[allow(clippy::should_implement_trait)]
impl Var {
    /// The raw variable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a variable from its raw index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Var(i as u32)
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn neg(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given sign (`true` = negated).
    #[inline]
    pub fn lit(self, negated: bool) -> Lit {
        Lit((self.0 << 1) | (negated as u32))
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, encoded as `var << 1 | sign`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is a negated literal.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index usable for watch lists (`2 * var + sign`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::index`].
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Lit(i as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "~x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

/// Ternary assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    /// Assigned false.
    False,
    /// Assigned true.
    True,
    /// Unassigned.
    Undef,
}

impl LBool {
    /// XORs the value with a sign: `True ^ true = False`.
    #[inline]
    pub fn xor(self, sign: bool) -> LBool {
        match (self, sign) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, false) | (LBool::False, true) => LBool::True,
            _ => LBool::False,
        }
    }

    /// Converts to `Some(bool)` when assigned.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

impl From<bool> for LBool {
    #[inline]
    fn from(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var::from_index(7);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(!v.pos().is_neg());
        assert!(v.neg().is_neg());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!!v.pos(), v.pos());
        assert_eq!(Lit::from_index(v.neg().index()), v.neg());
    }

    #[test]
    fn lbool_xor() {
        assert_eq!(LBool::True.xor(true), LBool::False);
        assert_eq!(LBool::False.xor(true), LBool::True);
        assert_eq!(LBool::True.xor(false), LBool::True);
        assert_eq!(LBool::Undef.xor(true), LBool::Undef);
    }

    #[test]
    fn display() {
        let v = Var::from_index(3);
        assert_eq!(v.pos().to_string(), "x3");
        assert_eq!(v.neg().to_string(), "~x3");
    }
}
