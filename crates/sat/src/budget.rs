//! Resource governance for [`Solver::solve`](crate::Solver::solve):
//! effort budgets, a shareable cooperative cancellation token, and the
//! [`Interrupt`] record a budgeted solve returns instead of an answer.
//!
//! A [`Budget`] never changes *what* the solver concludes, only *whether*
//! it is allowed to keep working: a solve that would exceed its budget
//! stops at a consistent point (decision level 0, state intact) and
//! returns [`SolveResult::Unknown`](crate::SolveResult::Unknown). Conflict
//! and propagation budgets are counted on the solver's own deterministic
//! counters, so the same formula + assumptions + budget always interrupts
//! at the same point with the same cause; deadlines and cancellation are
//! wall-clock driven and therefore not deterministic.

use crate::solver::SolverStats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable cooperative cancellation flag.
///
/// Clones share the underlying flag: hand one clone to the solver via
/// [`Budget::cancel`] and keep another on the controlling thread;
/// [`CancelToken::cancel`] makes every in-flight solve holding the token
/// return [`SolveResult::Unknown`](crate::SolveResult::Unknown) with
/// [`InterruptCause::Cancelled`] at its next poll point (the token is
/// checked on the propagation hot path, amortized every few hundred
/// propagations).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a new, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; there is no way to lower it again —
    /// create a fresh token for the next run.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called (on this clone or
    /// any other clone of the same token).
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Resource limits for [`Solver::solve`](crate::Solver::solve) calls.
///
/// `conflicts` and `propagations` are **per-solve** limits (counted from
/// the start of each solve call), so one budget governs every check of a
/// long incremental session uniformly. `deadline` is an absolute instant,
/// naturally bounding a whole run of consecutive solves. The default
/// budget is unlimited.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum conflicts a single solve may encounter (`None` = unlimited).
    pub conflicts: Option<u64>,
    /// Maximum literals a single solve may propagate (`None` = unlimited).
    pub propagations: Option<u64>,
    /// Absolute wall-clock deadline (`None` = unlimited). Checked at
    /// amortized poll points, so a solve may overrun it by a sliver.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation token (`None` = not cancellable).
    pub cancel: Option<CancelToken>,
    /// Opaque caller tag identifying the governed work unit (e.g. a
    /// portfolio cell seed). The solver only passes it to the
    /// fault-injection registry ([`crate::chaos`]) as the key of its
    /// solve-path injection point, which keeps injected faults addressed
    /// at *logical* work units rather than schedule-dependent call counts.
    pub tag: u64,
}

impl Budget {
    /// An unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets the per-solve conflict limit.
    pub fn with_conflicts(mut self, conflicts: u64) -> Self {
        self.conflicts = Some(conflicts);
        self
    }

    /// Sets the per-solve propagation limit.
    pub fn with_propagations(mut self, propagations: u64) -> Self {
        self.propagations = Some(propagations);
        self
    }

    /// Sets the absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches (a clone of) a cancellation token.
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Sets the caller tag (see [`Budget::tag`]).
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Whether this budget imposes no limit at all.
    pub fn is_unlimited(&self) -> bool {
        self.conflicts.is_none()
            && self.propagations.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none()
    }
}

/// Why a solve stopped without reaching a verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InterruptCause {
    /// The per-solve conflict budget was exhausted.
    Conflicts,
    /// The per-solve propagation budget was exhausted.
    Propagations,
    /// The wall-clock deadline passed.
    Deadline,
    /// The cancellation token was raised.
    Cancelled,
}

impl InterruptCause {
    /// Stable machine-readable code for reports and fingerprints.
    pub fn code(&self) -> &'static str {
        match self {
            InterruptCause::Conflicts => "conflict-budget",
            InterruptCause::Propagations => "propagation-budget",
            InterruptCause::Deadline => "deadline",
            InterruptCause::Cancelled => "cancelled",
        }
    }

    /// Whether this cause is a deterministic function of the formula,
    /// assumptions and budget (true for the counter-based budgets, false
    /// for the wall-clock-driven ones).
    pub fn is_deterministic(&self) -> bool {
        matches!(self, InterruptCause::Conflicts | InterruptCause::Propagations)
    }
}

impl std::fmt::Display for InterruptCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// The record of an interrupted solve, carried by
/// [`SolveResult::Unknown`](crate::SolveResult::Unknown).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interrupt {
    /// What stopped the solve.
    pub cause: InterruptCause,
    /// The work the interrupted solve performed before stopping:
    /// per-solve deltas of the cumulative counters (gauge fields such as
    /// `learnts` hold the value at the interrupt). Deterministic whenever
    /// [`InterruptCause::is_deterministic`] holds.
    pub stats: SolverStats,
}
