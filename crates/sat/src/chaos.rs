//! Deterministic fault injection for robustness testing.
//!
//! A process-global registry holding at most one armed [`ChaosPlan`].
//! Instrumented code paths call [`point`] with their [`Site`] and a
//! caller-chosen key (e.g. a portfolio cell seed, carried to the solver
//! via [`Budget::tag`](crate::Budget::tag)); when the armed plan matches,
//! the fault fires — a panic, a forced budget exhaustion, or a forced
//! cancellation — through the *genuine* failure machinery of the
//! instrumented layer, never through a separate code path.
//!
//! Keying by logical work unit (rather than by call count) makes
//! injection deterministic under parallel schedules: the same plan hits
//! the same cell no matter how jobs interleave across pool workers.
//!
//! The disarmed fast path is one relaxed atomic load, so the hooks are
//! free in production use. The registry is process-global: tests that arm
//! plans must serialize among themselves and disarm before unrelated
//! work runs (dropping the [`ChaosGuard`] returned by [`arm`] does this).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

/// An instrumented code path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Site {
    /// Entry of [`Solver::solve`](crate::Solver::solve); keyed by the
    /// solver's [`Budget::tag`](crate::Budget::tag).
    Solve,
    /// CNF encoding of a not-yet-encoded AIG node (`ssc-aig`); unkeyed
    /// (callers pass key 0).
    Encode,
    /// Portfolio cell setup (`ssc-bench`); keyed by the cell seed.
    CellSetup,
}

/// The fault an injection point fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Panic with a `"chaos: injected panic..."` message.
    Panic,
    /// Force the budget of the matching solve to zero conflicts, so it
    /// interrupts with [`InterruptCause::Conflicts`](crate::InterruptCause::Conflicts)
    /// at its first conflict (a solve that needs no conflicts still
    /// completes — exhaustion can only be observed where effort is
    /// actually spent). Only meaningful at [`Site::Solve`].
    ExhaustBudget,
    /// Behave as if a cancellation token was raised before the matching
    /// solve started: it returns
    /// [`InterruptCause::Cancelled`](crate::InterruptCause::Cancelled)
    /// without doing any work. Only meaningful at [`Site::Solve`].
    Cancel,
}

/// A single armed fault: fire `fault` at `site`, but only for calls
/// carrying the matching `key` (`None` matches every key).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChaosPlan {
    /// Which instrumented path to hit.
    pub site: Site,
    /// Restrict to calls carrying this key; `None` matches any call at
    /// the site. Note that an unkeyed [`Site::Solve`] plan hits *every*
    /// solve in the process, including ones in unrelated subsystems.
    pub key: Option<u64>,
    /// What to do when the plan matches.
    pub fault: Fault,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static FIRED: AtomicU64 = AtomicU64::new(0);
static PLAN: RwLock<Option<ChaosPlan>> = RwLock::new(None);

/// Disarms the registry when dropped, so a test cannot leak its plan
/// into subsequent work even if it exits early.
#[must_use = "dropping the guard disarms the plan immediately"]
pub struct ChaosGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arms `plan` and resets the fired counter. Returns a guard that
/// disarms on drop.
///
/// # Panics
///
/// Panics if a plan is already armed: the registry holds one plan at a
/// time, and concurrent arming is almost certainly a test-isolation bug.
pub fn arm(plan: ChaosPlan) -> ChaosGuard {
    let mut slot = PLAN.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(slot.is_none(), "a chaos plan is already armed: {:?}", slot.unwrap());
    *slot = Some(plan);
    FIRED.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    ChaosGuard { _not_send: std::marker::PhantomData }
}

fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *PLAN.write().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// How many times the armed plan has fired since [`arm`]. Tests use this
/// to assert the injection actually happened.
pub fn fired() -> u64 {
    FIRED.load(Ordering::SeqCst)
}

/// The injection hook instrumented paths call: returns the matching
/// fault, panicking directly for [`Fault::Panic`]. `None` (the common
/// case — nothing armed, or the plan targets another site/key) costs one
/// relaxed atomic load.
#[inline]
pub fn point(site: Site, key: u64) -> Option<Fault> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    point_slow(site, key)
}

#[cold]
fn point_slow(site: Site, key: u64) -> Option<Fault> {
    let plan = (*PLAN.read().unwrap_or_else(std::sync::PoisonError::into_inner))?;
    if plan.site != site || plan.key.is_some_and(|k| k != key) {
        return None;
    }
    FIRED.fetch_add(1, Ordering::SeqCst);
    if plan.fault == Fault::Panic {
        panic!("chaos: injected panic at {site:?} (key {key:#x})");
    }
    Some(plan.fault)
}

/// Whether `message` is the payload of a chaos-injected panic.
pub fn is_injected_panic(message: &str) -> bool {
    message.starts_with("chaos: injected panic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; serialize the tests touching it.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_points_are_silent() {
        let _s = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(point(Site::Solve, 7), None);
        assert_eq!(point(Site::Encode, 0), None);
    }

    #[test]
    fn keyed_plan_fires_only_on_matching_key_and_site() {
        let _s = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let guard = arm(ChaosPlan { site: Site::Solve, key: Some(42), fault: Fault::ExhaustBudget });
        assert_eq!(point(Site::Solve, 41), None);
        assert_eq!(point(Site::Encode, 42), None);
        assert_eq!(fired(), 0);
        assert_eq!(point(Site::Solve, 42), Some(Fault::ExhaustBudget));
        assert_eq!(fired(), 1);
        drop(guard);
        assert_eq!(point(Site::Solve, 42), None);
    }

    #[test]
    fn panic_fault_panics_with_recognizable_message() {
        let _s = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _guard = arm(ChaosPlan { site: Site::CellSetup, key: None, fault: Fault::Panic });
        let err = std::panic::catch_unwind(|| point(Site::CellSetup, 3)).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(is_injected_panic(msg), "unexpected payload: {msg}");
        assert_eq!(fired(), 1);
    }
}
