//! Property-based solver validation: random CNFs against brute force.

use proptest::prelude::*;
use ssc_sat::{Lit, SolveResult, Solver, Var};

fn brute_force_sat(n_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
    'outer: for bits in 0u32..(1 << n_vars) {
        for c in clauses {
            let sat = c.iter().any(|&(v, neg)| (((bits >> v) & 1) == 1) != neg);
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn clause_strategy(n_vars: usize) -> impl Strategy<Value = Vec<(usize, bool)>> {
    proptest::collection::vec((0..n_vars, any::<bool>()), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_agrees_with_brute_force(
        n_vars in 2usize..10,
        clauses in proptest::collection::vec(clause_strategy(9), 1..24),
    ) {
        // Clamp variable indices to the actual count.
        let clauses: Vec<Vec<(usize, bool)>> = clauses
            .into_iter()
            .map(|c| c.into_iter().map(|(v, s)| (v % n_vars, s)).collect())
            .collect();

        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..n_vars).map(|_| solver.new_var()).collect();
        let mut trivially_unsat = false;
        for c in &clauses {
            let lits: Vec<Lit> = c.iter().map(|&(v, neg)| vars[v].lit(neg)).collect();
            if !solver.add_clause(lits) {
                trivially_unsat = true;
            }
        }
        let got = if trivially_unsat { SolveResult::Unsat } else { solver.solve(&[]) };
        let want = if brute_force_sat(n_vars, &clauses) {
            SolveResult::Sat
        } else {
            SolveResult::Unsat
        };
        prop_assert_eq!(got, want);

        // If satisfiable, the model must satisfy every clause.
        if got == SolveResult::Sat {
            for c in &clauses {
                let ok = c.iter().any(|&(v, neg)| {
                    solver.model_value(vars[v].lit(neg)) == Some(true)
                });
                prop_assert!(ok, "model violates clause {:?}", c);
            }
        }
    }

    #[test]
    fn assumptions_are_respected(
        n_vars in 2usize..8,
        clauses in proptest::collection::vec(clause_strategy(7), 1..12),
        picks in proptest::collection::vec((0usize..7, any::<bool>()), 1..4),
    ) {
        let clauses: Vec<Vec<(usize, bool)>> = clauses
            .into_iter()
            .map(|c| c.into_iter().map(|(v, s)| (v % n_vars, s)).collect())
            .collect();
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..n_vars).map(|_| solver.new_var()).collect();
        let mut ok = true;
        for c in &clauses {
            let lits: Vec<Lit> = c.iter().map(|&(v, neg)| vars[v].lit(neg)).collect();
            ok &= solver.add_clause(lits);
        }
        prop_assume!(ok);
        let assumptions: Vec<Lit> = picks
            .iter()
            .map(|&(v, neg)| vars[v % n_vars].lit(neg))
            .collect();
        if solver.solve(&assumptions) == SolveResult::Sat {
            for a in &assumptions {
                prop_assert_eq!(solver.model_value(*a), Some(true), "assumption {} violated", a);
            }
        } else {
            // Adding the assumptions as units must also be unsatisfiable.
            let mut s2 = Solver::new();
            let vars2: Vec<Var> = (0..n_vars).map(|_| s2.new_var()).collect();
            let mut ok2 = true;
            for c in &clauses {
                let lits: Vec<Lit> = c.iter().map(|&(v, neg)| vars2[v].lit(neg)).collect();
                ok2 &= s2.add_clause(lits);
            }
            for &(v, neg) in &picks {
                ok2 &= s2.add_clause([vars2[v % n_vars].lit(neg)]);
            }
            let r = if ok2 { s2.solve(&[]) } else { SolveResult::Unsat };
            prop_assert_eq!(r, SolveResult::Unsat);
        }
    }

    #[test]
    fn solving_is_deterministic(
        n_vars in 2usize..8,
        clauses in proptest::collection::vec(clause_strategy(7), 1..16),
    ) {
        let run = || {
            let mut solver = Solver::new();
            let vars: Vec<Var> = (0..n_vars).map(|_| solver.new_var()).collect();
            let mut ok = true;
            for c in &clauses {
                let lits: Vec<Lit> =
                    c.iter().map(|&(v, neg)| vars[v % n_vars].lit(neg)).collect();
                ok &= solver.add_clause(lits);
            }
            if ok { solver.solve(&[]) } else { SolveResult::Unsat }
        };
        prop_assert_eq!(run(), run());
    }
}
