//! Solver-level regression corpus: committed DIMACS instances with known
//! verdicts, driven through `ssc_sat::dimacs` under **every** heuristic
//! knob combination. The proof stack's crosschecks pin verdict equivalence
//! end-to-end; this harness pins it at the solver boundary, where a
//! heuristic bug would first appear — and on SAT instances it also checks
//! the returned model against the clause list, so a simplification pass
//! that merely *preserved satisfiability* while breaking model soundness
//! would be caught here.

use ssc_sat::{dimacs, Heuristics, SolveResult, Solver};

/// `(file name, DIMACS text, expected satisfiable)`. The expectation is
/// encoded in the file name prefix; `include_str!` keeps the harness
/// independent of the test working directory.
const CORPUS: &[(&str, &str, bool)] = &[
    ("sat_chain20.cnf", include_str!("corpus/sat_chain20.cnf"), true),
    ("sat_php33.cnf", include_str!("corpus/sat_php33.cnf"), true),
    ("sat_random3.cnf", include_str!("corpus/sat_random3.cnf"), true),
    ("sat_xor_cycle8.cnf", include_str!("corpus/sat_xor_cycle8.cnf"), true),
    ("unsat_chain10.cnf", include_str!("corpus/unsat_chain10.cnf"), false),
    ("unsat_php43.cnf", include_str!("corpus/unsat_php43.cnf"), false),
    ("unsat_php54.cnf", include_str!("corpus/unsat_php54.cnf"), false),
    ("unsat_random3.cnf", include_str!("corpus/unsat_random3.cnf"), false),
    ("unsat_xor_cycle7.cnf", include_str!("corpus/unsat_xor_cycle7.cnf"), false),
];

/// All 16 combinations of the four feature flags.
fn all_heuristics() -> Vec<Heuristics> {
    let mut out = Vec::with_capacity(16);
    for bits in 0u8..16 {
        out.push(Heuristics {
            ccmin_deep: bits & 1 != 0,
            tiered_db: bits & 2 != 0,
            adaptive_restarts: bits & 4 != 0,
            inprocessing: bits & 8 != 0,
        });
    }
    out
}

fn run(name: &str, src: &str, want_sat: bool, heur: Heuristics, inprocess_first: bool) {
    let problem = dimacs::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let (mut solver, _, mut ok) = dimacs::load(&problem);
    solver.set_heuristics(heur);
    if inprocess_first && ok {
        // Exercise the standalone simplification entry point exactly like a
        // fork point would, before any search has happened.
        solver.inprocess();
    }
    let got = if ok {
        match solver.solve(&[]) {
            SolveResult::Sat => true,
            SolveResult::Unsat => {
                ok = false;
                false
            }
            SolveResult::Unknown(int) => panic!("{name}: unbudgeted solve interrupted: {int:?}"),
        }
    } else {
        false
    };
    assert_eq!(got, want_sat, "{name} under {heur:?} (inprocess_first={inprocess_first})");
    if got {
        model_satisfies(name, &solver, &problem, heur);
    }
    let _ = ok;
}

fn model_satisfies(name: &str, solver: &Solver, problem: &dimacs::DimacsProblem, heur: Heuristics) {
    for (i, clause) in problem.clauses.iter().enumerate() {
        assert!(
            clause.iter().any(|&l| solver.model_value(l) == Some(true)),
            "{name} under {heur:?}: model violates clause {i}: {clause:?}"
        );
    }
}

#[test]
fn corpus_verdicts_under_every_knob_combination() {
    for &(name, src, want_sat) in CORPUS {
        for heur in all_heuristics() {
            run(name, src, want_sat, heur, false);
        }
    }
}

#[test]
fn corpus_verdicts_survive_presolve_inprocessing() {
    // Only the inprocessing flag matters for the pass itself, but run the
    // full legacy and modern bracket so the simplified DB is then searched
    // by both engines.
    for &(name, src, want_sat) in CORPUS {
        for heur in [Heuristics::legacy(), Heuristics::modern()] {
            let heur = Heuristics { inprocessing: true, ..heur };
            run(name, src, want_sat, heur, true);
        }
    }
}

#[test]
fn corpus_roundtrips_through_emit() {
    for &(name, src, _) in CORPUS {
        let p = dimacs::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let p2 = dimacs::parse(&dimacs::emit(&p)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(p, p2, "{name}: emit/parse roundtrip changed the problem");
    }
}
