//! Budget, cancellation and interrupt behaviour of the solver: exhausting
//! any budget yields `SolveResult::Unknown` (never a panic, never a wrong
//! answer), interrupts are deterministic for the counter-based causes, and
//! an interrupted solver stays fully usable.

use ssc_sat::{Budget, CancelToken, InterruptCause, SolveResult, Solver, Var};
use std::time::{Duration, Instant};

/// PHP(pigeons, holes): unsatisfiable for pigeons > holes, and hard enough
/// to guarantee plenty of conflicts — the canonical budget-exercising load.
fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
    let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
    for pigeon in &p {
        s.add_clause(pigeon.iter().map(|v| v.pos()));
    }
    for hole in 0..holes {
        for (i, pi) in p.iter().enumerate() {
            for pj in &p[i + 1..] {
                s.add_clause([pi[hole].neg(), pj[hole].neg()]);
            }
        }
    }
}

fn expect_interrupt(r: SolveResult, cause: InterruptCause) -> ssc_sat::Interrupt {
    match r {
        SolveResult::Unknown(int) => {
            assert_eq!(int.cause, cause);
            int
        }
        other => panic!("expected Unknown({cause:?}), got {other:?}"),
    }
}

#[test]
fn conflict_budget_interrupts_instead_of_panicking() {
    let mut s = Solver::new();
    pigeonhole(&mut s, 7, 6);
    s.set_conflict_budget(Some(10));
    let int = expect_interrupt(s.solve(&[]), InterruptCause::Conflicts);
    assert_eq!(int.stats.conflicts, 11, "interrupts on the first conflict past the budget");
    assert_eq!(int.stats.interrupts, 1);
    assert_eq!(s.stats().interrupts, 1);
    // Removing the limit completes the proof on the same solver instance.
    s.set_conflict_budget(None);
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
}

#[test]
fn propagation_budget_interrupts() {
    let mut s = Solver::new();
    pigeonhole(&mut s, 7, 6);
    s.set_budget(Budget::unlimited().with_propagations(50));
    let int = expect_interrupt(s.solve(&[]), InterruptCause::Propagations);
    assert!(int.stats.propagations >= 50);
    s.set_budget(Budget::unlimited());
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
}

#[test]
fn pre_raised_cancel_token_stops_before_any_work() {
    let token = CancelToken::new();
    token.cancel();
    let mut s = Solver::new();
    pigeonhole(&mut s, 7, 6);
    let int = expect_interrupt(
        {
            s.set_budget(Budget::unlimited().with_cancel(&token));
            s.solve(&[])
        },
        InterruptCause::Cancelled,
    );
    assert_eq!(int.stats.conflicts, 0, "cancelled before searching");
    // A fresh token restores normal operation.
    s.set_budget(Budget::unlimited().with_cancel(&CancelToken::new()));
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
}

#[test]
fn past_deadline_interrupts() {
    let mut s = Solver::new();
    pigeonhole(&mut s, 7, 6);
    s.set_budget(Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1)));
    expect_interrupt(s.solve(&[]), InterruptCause::Deadline);
    s.set_budget(Budget::unlimited());
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
}

#[test]
fn counter_budget_interrupts_are_deterministic() {
    let run = |budget: Budget| {
        let mut s = Solver::new();
        pigeonhole(&mut s, 8, 7);
        s.set_budget(budget);
        s.solve(&[])
    };
    let a = run(Budget::unlimited().with_conflicts(25));
    let b = run(Budget::unlimited().with_conflicts(25));
    assert_eq!(a, b, "same budget + same formula -> bit-identical interrupt");
    let c = run(Budget::unlimited().with_propagations(2000));
    let d = run(Budget::unlimited().with_propagations(2000));
    assert_eq!(c, d);
}

#[test]
fn budget_never_flips_an_easy_answer() {
    // A solve that needs no conflicts completes even under a zero budget.
    let mut s = Solver::new();
    let (a, b) = (s.new_var(), s.new_var());
    s.add_clause([a.pos(), b.pos()]);
    s.add_clause([a.neg()]);
    s.set_conflict_budget(Some(0));
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    assert_eq!(s.model_value(b.pos()), Some(true));
    assert_eq!(s.solve(&[b.neg()]), SolveResult::Unsat);
    assert_eq!(s.stats().interrupts, 0);
}

#[test]
fn interrupted_solver_remains_incrementally_usable() {
    let mut s = Solver::new();
    pigeonhole(&mut s, 7, 6);
    s.set_conflict_budget(Some(5));
    expect_interrupt(s.solve(&[]), InterruptCause::Conflicts);
    // Adding clauses and re-solving after an interrupt is fully supported.
    let extra = s.new_var();
    s.add_clause([extra.pos()]);
    s.set_conflict_budget(None);
    assert_eq!(s.solve(&[extra.pos()]), SolveResult::Unsat);
    let mut unbudgeted = Solver::new();
    pigeonhole(&mut unbudgeted, 7, 6);
    assert_eq!(unbudgeted.solve(&[]), SolveResult::Unsat, "oracle agrees");
}

#[test]
fn cancel_token_is_shared_across_clones() {
    let token = CancelToken::new();
    let clone = token.clone();
    assert!(!clone.is_cancelled());
    token.cancel();
    assert!(clone.is_cancelled());
}

#[test]
fn budget_interrupt_accounting_in_stats_delta() {
    let mut s = Solver::new();
    pigeonhole(&mut s, 7, 6);
    s.set_conflict_budget(Some(3));
    let before = s.stats();
    expect_interrupt(s.solve(&[]), InterruptCause::Conflicts);
    let delta = s.stats().delta_since(&before);
    assert_eq!(delta.interrupts, 1);
    assert_eq!(delta.solves, 1);
    assert_eq!(delta.conflicts, 4);
}
