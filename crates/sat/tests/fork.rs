//! The copy-on-write fork snapshot: a forked solver inherits the clause
//! database, phases and activities, and the two solvers diverge freely —
//! plus the core-seeding re-solve tuning it composes with.

use ssc_sat::{SolveResult, Solver};

#[test]
fn fork_inherits_clauses_and_diverges() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause([a.pos(), b.pos()]);
    assert_eq!(s.solve(&[]), SolveResult::Sat);

    let mut f = s.fork();
    // Diverge: the fork forbids `a`, the original forbids `b`.
    f.add_clause([a.neg()]);
    s.add_clause([b.neg()]);
    assert_eq!(f.solve(&[a.pos()]), SolveResult::Unsat);
    assert_eq!(f.solve(&[]), SolveResult::Sat);
    assert_eq!(f.model_value(b.pos()), Some(true));
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    assert_eq!(s.model_value(a.pos()), Some(true));
    // The original never saw the fork's clause: `a` is still assumable.
    assert_eq!(s.solve(&[a.pos()]), SolveResult::Sat);
}

#[test]
fn fork_carries_statistics_and_diverges_them() {
    let mut s = Solver::new();
    let vars: Vec<_> = (0..8).map(|_| s.new_var()).collect();
    for w in vars.windows(2) {
        s.add_clause([w[0].pos(), w[1].neg()]);
    }
    assert_eq!(s.solve(&[vars[7].pos()]), SolveResult::Sat);
    let base_solves = s.stats().solves;

    let mut f = s.fork();
    assert_eq!(f.stats().solves, base_solves, "stats snapshot carries over");
    assert_eq!(f.solve(&[]), SolveResult::Sat);
    assert_eq!(f.stats().solves, base_solves + 1);
    assert_eq!(s.stats().solves, base_solves, "the original is untouched");
}

#[test]
fn core_seeding_reprioritizes_previous_core_vars() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause([a.pos()]);
    // Unsat under ¬a; the core is {¬a}.
    assert_eq!(s.solve(&[a.neg()]), SolveResult::Unsat);
    assert_eq!(s.assumption_core().len(), 1);
    let before = s.stats().core_seeds;
    // The next solve seeds activity from that core (one variable).
    assert_eq!(s.solve(&[b.pos()]), SolveResult::Sat);
    assert_eq!(s.stats().core_seeds, before + 1);
}
