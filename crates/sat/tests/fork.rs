//! The copy-on-write fork snapshot: a forked solver inherits the clause
//! database, phases and activities, and the two solvers diverge freely —
//! plus the core-seeding re-solve tuning it composes with.

use ssc_sat::{SolveResult, Solver};

#[test]
fn fork_inherits_clauses_and_diverges() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause([a.pos(), b.pos()]);
    assert_eq!(s.solve(&[]), SolveResult::Sat);

    let mut f = s.fork();
    // Diverge: the fork forbids `a`, the original forbids `b`.
    f.add_clause([a.neg()]);
    s.add_clause([b.neg()]);
    assert_eq!(f.solve(&[a.pos()]), SolveResult::Unsat);
    assert_eq!(f.solve(&[]), SolveResult::Sat);
    assert_eq!(f.model_value(b.pos()), Some(true));
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    assert_eq!(s.model_value(a.pos()), Some(true));
    // The original never saw the fork's clause: `a` is still assumable.
    assert_eq!(s.solve(&[a.pos()]), SolveResult::Sat);
}

#[test]
fn fork_carries_statistics_and_diverges_them() {
    let mut s = Solver::new();
    let vars: Vec<_> = (0..8).map(|_| s.new_var()).collect();
    for w in vars.windows(2) {
        s.add_clause([w[0].pos(), w[1].neg()]);
    }
    assert_eq!(s.solve(&[vars[7].pos()]), SolveResult::Sat);
    let base_solves = s.stats().solves;

    let mut f = s.fork();
    assert_eq!(f.stats().solves, base_solves, "stats snapshot carries over");
    assert_eq!(f.solve(&[]), SolveResult::Sat);
    assert_eq!(f.stats().solves, base_solves + 1);
    assert_eq!(s.stats().solves, base_solves, "the original is untouched");
}

#[test]
fn core_seeding_reprioritizes_previous_core_vars() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause([a.pos()]);
    // Unsat under ¬a; the core is {¬a}.
    assert_eq!(s.solve(&[a.neg()]), SolveResult::Unsat);
    assert_eq!(s.assumption_core().len(), 1);
    let before = s.stats().core_seeds;
    // The next solve seeds activity from that core (one variable).
    assert_eq!(s.solve(&[b.pos()]), SolveResult::Sat);
    assert_eq!(s.stats().core_seeds, before + 1);
}

/// Installs a pigeonhole instance PHP(pigeons, holes) whose per-pigeon
/// clauses are guarded by `act` (hole exclusivity is unguarded): solving
/// under `act` is unsatisfiable and needs real conflict analysis, so the
/// solver derives learnt clauses attributable to the guarded goal.
fn guarded_pigeonhole(s: &mut Solver, act: ssc_sat::Lit, pigeons: usize, holes: usize) {
    let p: Vec<Vec<_>> =
        (0..pigeons).map(|_| (0..holes).map(|_| s.new_var()).collect()).collect();
    for row in &p {
        let mut clause = vec![!act];
        clause.extend(row.iter().map(|v| v.pos()));
        s.add_clause(clause);
    }
    for a in 0..pigeons {
        for b in a + 1..pigeons {
            for (pa, pb) in p[a].iter().zip(&p[b]) {
                s.add_clause([pa.neg(), pb.neg()]);
            }
        }
    }
}

#[test]
fn retired_era_learnts_are_dropped_by_fork_and_collect_garbage() {
    let mut s = Solver::new();
    let act = s.new_var().pos();
    let era = s.begin_era();
    assert_eq!(s.current_era(), era);
    guarded_pigeonhole(&mut s, act, 6, 5);
    assert_eq!(s.solve(&[act]), SolveResult::Unsat, "PHP under the goal is unsat");
    let learnts_before = s.stats().learnts;
    assert!(learnts_before > 0, "the guarded goal must actually produce lemmas");

    // Retire the goal: unit ¬act plus the era retirement.
    s.add_clause([!act]);
    s.retire_era(era);
    assert_eq!(s.current_era(), 0, "retiring the current era falls back to the base");

    // A fork sheds the retired goal's lemmas instead of copying them.
    let mut f = s.fork();
    assert!(f.stats().era_drops > 0, "fork must drop retired-era learnts");
    assert!(
        f.stats().learnts < learnts_before,
        "fork carries {} learnts, expected fewer than {learnts_before}",
        f.stats().learnts
    );
    // The within-session GC deliberately does NOT era-purge (the
    // time-based tag over-approximates goal ancestry, and the next
    // window's near-identical goal still profits from shared-formula
    // lemmas); the purge is explicit for session owners.
    s.collect_garbage();
    assert_eq!(s.stats().era_drops, 0, "collect_garbage must not era-purge");
    let dropped = s.purge_retired_learnts();
    assert_eq!(s.stats().era_drops, dropped, "explicit purge is accounted");

    // Both solvers remain correct: without the goal the formula is
    // satisfiable, and re-assuming the retired activation is futile.
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    assert_eq!(f.solve(&[]), SolveResult::Sat);
    assert_eq!(f.solve(&[act]), SolveResult::Unsat, "retired activation stays retired");
}

#[test]
fn unretired_eras_survive_garbage_collection() {
    let mut s = Solver::new();
    let act = s.new_var().pos();
    let era = s.begin_era();
    guarded_pigeonhole(&mut s, act, 6, 5);
    assert_eq!(s.solve(&[act]), SolveResult::Unsat);
    assert!(s.stats().learnts > 0);
    // No era retired: the hygiene pass must not touch anything (ordinary
    // LBD-ranked reduction may still shed the worse half).
    s.collect_garbage();
    assert_eq!(s.stats().era_drops, 0, "no retired era, no era-based drops");
    // The goal is still active and still unsat.
    assert_eq!(s.solve(&[act]), SolveResult::Unsat);
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    let _ = era;
}
