//! Soundness crosscheck for the modern CDCL heuristic tier
//! (`SSC_SOLVER_*`): on every scenario configuration and at two SoC
//! sizes, running Alg. 2 with the legacy MiniSat-lineage engine and with
//! all four modern refinements (recursive minimization, tiered DB,
//! adaptive restarts, fork-point inprocessing) must reach the **same
//! verdict**. Heuristics may legitimately change the route — different
//! counterexamples, different refinement orders, different solver effort —
//! but never the destination; a verdict flip here is a solver soundness
//! bug, not noise.
//!
//! The second half pins the resource-governance paths under the new
//! machinery: budget interrupts and the `ExhaustBudget`/`Cancel` chaos
//! faults must still surface as clean `Inconclusive` verdicts while the
//! adaptive-restart/tiered-reduction code is driving the search.

use std::sync::{Arc, Mutex};

use ssc_sat::chaos::{self, ChaosPlan, Fault, Site};
use ssc_sat::Heuristics;
use ssc_soc::{Soc, SocConfig};
use upec_ssc::{
    Budget, InconclusiveCause, ProductArtifact, Session, SessionPrefix, UpecAnalysis, UpecSpec,
    Verdict,
};

/// The formal twin of each simulation scenario: `(name, spec, leaky)` —
/// same matrix as `static_prune_crosscheck.rs` and the bench portfolio.
fn scenario_specs() -> Vec<(&'static str, UpecSpec, bool)> {
    let hwpe_memory_patched = {
        let fixed = UpecSpec::soc_fixed();
        let mut spec = UpecSpec::soc_vulnerable_hwpe_memory();
        spec.range_in_device = fixed.range_in_device;
        spec.constraints = fixed.constraints;
        spec
    };
    vec![
        ("dma_timer/leaky", UpecSpec::soc_vulnerable(), true),
        ("hwpe_memory/leaky", UpecSpec::soc_vulnerable_hwpe_memory(), true),
        ("dma_timer/patched", UpecSpec::soc_fixed(), false),
        ("hwpe_memory/patched", hwpe_memory_patched, false),
    ]
}

fn verdict_kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::Secure(_) => "secure",
        Verdict::Vulnerable(_) => "vulnerable",
        Verdict::Inconclusive(_) => "inconclusive",
    }
}

/// The chaos registry and the env-derived default heuristics are process
/// globals; the chaos tests in this binary serialize on this.
static SERIAL: Mutex<()> = Mutex::new(());

/// Chaos key for this file's tagged solves — distinct from the cube tags
/// (FNV mixes) and the default tag 0 other tests' solves carry, so an
/// armed plan here can never hit a concurrently running test.
const CHAOS_TAG: u64 = 0xE13C;

#[test]
fn verdicts_identical_with_modern_heuristics_on_and_off() {
    for words in [8u32, 12] {
        let soc = Soc::build(SocConfig::verification_sized(words, words));
        let seed = UpecSpec::soc_vulnerable();
        let art = Arc::new(ProductArtifact::for_spec(&soc.netlist, &seed).expect("spec ok"));
        // One prefix per engine, both forked by every scenario cell — the
        // same sharing shape the portfolio uses, so the crosscheck also
        // covers fork-inherited heuristics and fork-point inprocessing.
        let legacy = SessionPrefix::build_with_solver_heuristics(
            &art,
            &seed,
            1,
            Some(Heuristics::legacy()),
        )
        .expect("spec ok");
        let modern = SessionPrefix::build_with_solver_heuristics(
            &art,
            &seed,
            1,
            Some(Heuristics::modern()),
        )
        .expect("spec ok");
        for (name, spec, leaky) in scenario_specs() {
            let an = UpecAnalysis::bind(art.clone(), spec).expect("scenario binds");
            let v_legacy = an.alg2_with_session(Session::with_prefix(&an, legacy.fork()));
            let v_modern = an.alg2_with_session(Session::with_prefix(&an, modern.fork()));
            assert_eq!(
                v_legacy.is_vulnerable(),
                leaky,
                "unexpected legacy verdict on {name}@{words}: {v_legacy}"
            );
            assert_eq!(
                verdict_kind(&v_legacy),
                verdict_kind(&v_modern),
                "heuristics changed the verdict on {name}@{words}: \
                 legacy={v_legacy} modern={v_modern}"
            );
            // The modern engine must actually have been the modern engine:
            // at least one of its solves exercised a refinement the legacy
            // path cannot (legacy reports all-zero for these counters).
            let mut modern_activity = 0u64;
            for it in v_modern.iterations() {
                modern_activity += it.solver.minimized_lits + it.solver.vivified_clauses;
            }
            assert!(
                modern_activity > 0,
                "{name}@{words}: modern run shows no heuristic activity — knob plumbing broken?"
            );
            for it in v_legacy.iterations() {
                assert_eq!(
                    it.solver.tier_promotions + it.solver.restarts_blocked
                        + it.solver.vivified_clauses
                        + it.solver.subsumed_clauses,
                    0,
                    "{name}@{words}: legacy run reported modern-only counters"
                );
            }
        }
    }
}

#[test]
fn budget_interrupt_still_surfaces_cleanly_under_modern_heuristics() {
    // A conflict budget far below what the secure fixpoint needs: the run
    // must stop as `Inconclusive(Interrupted)` — never panic, never decide
    // — while the modern restart/reduction machinery drives the search.
    let soc = Soc::build(SocConfig::verification_sized(8, 8));
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).expect("spec ok");
    match an.alg2_budgeted(Budget::unlimited().with_conflicts(3)) {
        Verdict::Inconclusive(r) => {
            assert!(
                matches!(r.cause, InconclusiveCause::Interrupted(_)),
                "expected an interrupt, got {}",
                r.cause
            );
        }
        other => panic!("a 3-conflict budget cannot complete the secure proof: {other}"),
    }
}

#[test]
fn chaos_exhaust_budget_yields_inconclusive_not_wrong_verdict() {
    let _s = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let soc = Soc::build(SocConfig::verification_sized(8, 8));
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).expect("spec ok");
    let _guard = chaos::arm(ChaosPlan {
        site: Site::Solve,
        key: Some(CHAOS_TAG),
        fault: Fault::ExhaustBudget,
    });
    let v = an.alg2_budgeted(Budget::unlimited().with_tag(CHAOS_TAG));
    assert!(chaos::fired() >= 1, "the exhaustion must actually have been injected");
    match v {
        Verdict::Inconclusive(r) => assert_eq!(r.cause.code(), "interrupt:conflict-budget"),
        other => panic!("an exhausted solve must never decide: {other}"),
    }
}

#[test]
fn chaos_cancel_yields_inconclusive_not_wrong_verdict() {
    let _s = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let soc = Soc::build(SocConfig::verification_sized(8, 8));
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).expect("spec ok");
    let _guard = chaos::arm(ChaosPlan {
        site: Site::Solve,
        key: Some(CHAOS_TAG),
        fault: Fault::Cancel,
    });
    let v = an.alg2_budgeted(Budget::unlimited().with_tag(CHAOS_TAG));
    assert!(chaos::fired() >= 1, "the cancellation must actually have been injected");
    match v {
        Verdict::Inconclusive(r) => assert_eq!(r.cause.code(), "interrupt:cancelled"),
        other => panic!("a cancelled solve must never decide: {other}"),
    }
}
