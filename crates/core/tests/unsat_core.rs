//! The assumption-core plumbing behind the Alg. 2 saturation fast-path:
//! `Session::check_window` reports, after a `Holds`, whether the proof
//! rested on any tracked atom's state-equality assumption.

use ssc_ipc::PropertyResult;
use upec_ssc::{AtomSet, Session, UpecAnalysis, UpecSpec};

#[test]
fn vacuous_window_check_is_core_free() {
    let soc = ssc_soc::Soc::verification_view();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).expect("spec ok");
    let mut sess = Session::new(&an, 1);
    // No tracked atoms at all: the obligation is vacuous, so it holds with
    // an assumption core free of state-equality terms.
    let empty = AtomSet::new();
    let r = sess.check_window(1, &empty, &[(1, &empty)]);
    assert_eq!(r, PropertyResult::Holds);
    assert_eq!(sess.last_core_without_state_eq(), Some(true));
}

#[test]
fn violated_check_clears_the_core_flag() {
    let soc = ssc_soc::Soc::verification_view();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).expect("spec ok");
    let mut sess = Session::new(&an, 1);
    let mut s = an.s_not_victim();
    // Mirror the Alg. 1 refinement until the first violated check (the
    // vulnerable configuration guarantees one within the fixpoint).
    for _ in 0..64 {
        let r = sess.check_window(1, &s, &[(1, &s)]);
        match r {
            PropertyResult::Violated => {
                assert_eq!(sess.last_core_without_state_eq(), None);
                return;
            }
            PropertyResult::Holds => {
                // A hold before any counterexample would mean the config is
                // not vulnerable at window 1; keep shrinking via diffs.
                let diffs = sess.extract_diffs(&s, 1);
                assert!(!diffs.is_empty(), "hold with nothing to refine");
                for d in &diffs {
                    s.remove(&d.atom);
                }
            }
            PropertyResult::Interrupted(int) => {
                panic!("unbudgeted check interrupted: {:?}", int.cause)
            }
        }
    }
    panic!("no violated check within the iteration bound");
}

#[test]
fn nonvacuous_hold_reports_a_core_verdict() {
    // On the fixed configuration Alg. 1 terminates with a genuine `Holds`
    // whose proof needs the pre-state equalities — the flag must be
    // `Some(false)` there (a `Some(true)` would mean the induction was
    // vacuous, which the secure fixpoint is not).
    let soc = ssc_soc::Soc::verification_view();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).expect("spec ok");
    let mut sess = Session::new(&an, 1);
    let mut s = an.s_not_victim();
    for _ in 0..256 {
        match sess.check_window(1, &s, &[(1, &s)]) {
            PropertyResult::Holds => {
                assert_eq!(
                    sess.last_core_without_state_eq(),
                    Some(false),
                    "the inductive proof must rest on state-equality assumptions"
                );
                return;
            }
            PropertyResult::Violated => {
                let diffs = sess.extract_diffs(&s, 1);
                assert!(!diffs.is_empty(), "violated without extractable divergence");
                assert!(
                    diffs.iter().all(|d| !d.persistent),
                    "fixed config must not reach a persistent divergence"
                );
                for d in &diffs {
                    s.remove(&d.atom);
                }
            }
            PropertyResult::Interrupted(int) => {
                panic!("unbudgeted check interrupted: {:?}", int.cause)
            }
        }
    }
    panic!("fixpoint did not converge within the iteration bound");
}
