//! Failure-injection tests: UPEC-SSC must flag designs with deliberately
//! planted leaks and pass their leak-free twins. This guards against the
//! method silently losing its teeth (a "secure" verdict is only meaningful
//! if the same machinery finds planted bugs).

use ssc_netlist::{Bv, Netlist, StateMeta};
use upec_ssc::{DeviceMap, PersistencePolicy, UpecAnalysis, UpecSpec, VictimPort};

const RAM_BASE: u64 = 0x1C00_0000;

/// A minimal system: a victim port in front of one RAM, with an optional
/// *snoop register* in the interconnect that latches the last address seen
/// on the bus — a textbook SoC-wide leak (an IP spying on victim accesses).
fn tiny_system(with_snoop: bool) -> Netlist {
    let mut n = Netlist::new(if with_snoop { "tiny_leaky" } else { "tiny_clean" });
    let req = n.input("cpu.dport_req", 1);
    let addr = n.input("cpu.dport_addr", 32);
    let we = n.input("cpu.dport_we", 1);
    let wdata = n.input("cpu.dport_wdata", 32);

    let mem = n.memory("bus.ram", 8, 32, StateMeta::memory(true));
    let idx = n.slice(addr, 19, 2);
    let wen = n.and(req, we);
    n.mem_write(mem, wen, idx, wdata);
    let rdata = n.mem_read(mem, idx);
    n.mark_output("cpu_rdata", rdata);
    n.mark_output("cpu_gnt", req);

    if with_snoop {
        // An attacker-readable register that records the last bus address.
        let snoop = n.reg("bus.snoop_addr", 32, Some(Bv::zero(32)), StateMeta::ip_register());
        let next = n.mux(req, addr, snoop.wire());
        n.connect_reg(snoop, next);
        n.mark_output("snoop", snoop.wire());
    } else {
        // Same structure, but the register only records a constant.
        let r = n.reg("bus.heartbeat", 32, Some(Bv::zero(32)), StateMeta::ip_register());
        let one = n.lit(32, 1);
        let next = n.add(r.wire(), one);
        n.connect_reg(r, next);
        n.mark_output("heartbeat", r.wire());
    }
    n.check().unwrap();
    n
}

fn tiny_spec() -> UpecSpec {
    UpecSpec {
        port: VictimPort::soc_default(),
        ip_ports: vec![],
        devices: vec![DeviceMap { mem_name: "bus.ram".into(), base: RAM_BASE }],
        range_mask: 0xFFFF_FFF0,
        range_in_device: Some(RAM_BASE),
        device_mask: 0xFFF0_0000,
        constraints: vec![],
        quiesced_ips: vec![],
        persistence: PersistencePolicy::new(),
        max_unroll: 8,
    }
}

#[test]
fn snoop_register_is_detected() {
    let n = tiny_system(true);
    let an = UpecAnalysis::new(&n, tiny_spec()).unwrap();
    let verdict = an.alg1();
    assert!(verdict.is_vulnerable(), "snoop register must be flagged: {verdict}");
    if let upec_ssc::Verdict::Vulnerable(r) = verdict {
        assert!(
            r.cex.diffs.iter().any(|d| d.name == "bus.snoop_addr"),
            "the snoop register must appear in the counterexample: {:?}",
            r.cex.diffs
        );
    }
}

#[test]
fn clean_twin_is_proven_secure() {
    let n = tiny_system(false);
    let an = UpecAnalysis::new(&n, tiny_spec()).unwrap();
    let verdict = an.alg1();
    assert!(verdict.is_secure(), "leak-free twin must verify: {verdict}");
}

#[test]
fn alg2_finds_snoop_with_explicit_trace() {
    let n = tiny_system(true);
    let an = UpecAnalysis::new(&n, tiny_spec()).unwrap();
    match an.alg2() {
        upec_ssc::Verdict::Vulnerable(r) => {
            assert!(r.cex.trace.iter().any(|c| c.port_a.protected || c.port_b.protected));
        }
        other => panic!("expected vulnerable, got {other}"),
    }
}

#[test]
fn snoop_leak_replays_concretely() {
    let n = tiny_system(true);
    let an = UpecAnalysis::new(&n, tiny_spec()).unwrap();
    match an.alg2() {
        upec_ssc::Verdict::Vulnerable(r) => {
            upec_ssc::replay_on_simulator(&an, &r.cex).expect("replay must confirm the leak");
        }
        other => panic!("expected vulnerable, got {other}"),
    }
}

/// Reclassifying the snoop register as transient (e.g. the engineer claims
/// it is scrubbed on context switch) must flip the verdict — the policy
/// hooks work.
#[test]
fn policy_override_changes_the_verdict() {
    let n = tiny_system(true);
    let mut spec = tiny_spec();
    spec.persistence.force_transient.insert("bus.snoop_addr".into());
    let an = UpecAnalysis::new(&n, spec).unwrap();
    let verdict = an.alg1();
    assert!(
        verdict.is_secure(),
        "with the snoop declared transient nothing persistent remains: {verdict}"
    );
}

/// The victim's own memory words must be exempt from the equivalence
/// obligations: a system whose only "leak" is the victim's data sitting in
/// its own protected range is secure.
#[test]
fn victim_range_words_are_exempt() {
    let mut n = Netlist::new("victim_only");
    let req = n.input("cpu.dport_req", 1);
    let addr = n.input("cpu.dport_addr", 32);
    let we = n.input("cpu.dport_we", 1);
    let wdata = n.input("cpu.dport_wdata", 32);
    let mem = n.memory("bus.ram", 8, 32, StateMeta::memory(true));
    let idx = n.slice(addr, 19, 2);
    let wen = n.and(req, we);
    n.mem_write(mem, wen, idx, wdata);
    let rd = n.mem_read(mem, idx);
    n.mark_output("cpu_rdata", rd);
    n.check().unwrap();

    let an = UpecAnalysis::new(&n, tiny_spec()).unwrap();
    let verdict = an.alg1();
    assert!(
        verdict.is_secure(),
        "writes confined to the protected range must not be flagged: {verdict}"
    );
}
