//! End-to-end UPEC-SSC runs on the Pulpissimo-style SoC: the paper's case
//! study as an executable test suite.

use ssc_soc::{Soc, SocConfig};
use upec_ssc::{replay_on_simulator, UpecAnalysis, UpecSpec, Verdict};

fn verification_soc() -> Soc {
    Soc::verification_view()
}

#[test]
fn vulnerable_soc_is_flagged_by_alg1() {
    let soc = verification_soc();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    let verdict = an.alg1();
    assert!(verdict.is_vulnerable(), "expected vulnerable, got {verdict}");
    if let Verdict::Vulnerable(r) = &verdict {
        assert!(
            r.cex.persistent_diffs().next().is_some(),
            "vulnerability must name a persistent diff"
        );
    }
}

#[test]
fn vulnerable_soc_is_flagged_by_alg2_with_explicit_trace() {
    let soc = verification_soc();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    let verdict = an.alg2();
    assert!(verdict.is_vulnerable(), "expected vulnerable, got {verdict}");
    if let Verdict::Vulnerable(r) = &verdict {
        // The explicit counterexample must show a protected victim access in
        // exactly one instance — the confidential behaviour being spied on.
        let asym = r.cex.trace.iter().any(|c| {
            (c.port_a.protected && !c.port_b.protected)
                || (!c.port_a.protected && c.port_b.protected)
        });
        assert!(asym, "explicit trace must contain an asymmetric protected access:\n{}", r.cex);
    }
}

#[test]
fn hwpe_memory_variant_leaks_through_primed_memory_without_timer() {
    // Paper Sec. 4.1: with the DMA quiescent, HWPE registers treated as
    // transient and the timer denied, the only remaining persistent medium
    // is the attacker-primed memory region — and the channel still exists.
    let soc = verification_soc();
    let an =
        UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable_hwpe_memory()).unwrap();
    let verdict = an.alg2();
    assert!(verdict.is_vulnerable(), "expected vulnerable, got {verdict}");
    if let Verdict::Vulnerable(r) = &verdict {
        let pers: Vec<_> = r.cex.persistent_diffs().collect();
        assert!(
            pers.iter().any(|d| d.name.contains("ram[")),
            "the persistent medium must be a memory word, got {pers:?}"
        );
    }
}

#[test]
fn fixed_soc_is_proven_secure_by_alg1() {
    let soc = verification_soc();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).unwrap();
    let verdict = an.alg1();
    assert!(verdict.is_secure(), "expected secure, got {verdict}");
    if let Verdict::Secure(r) = &verdict {
        assert!(
            r.iterations.len() >= 2,
            "the proof should need at least one refinement iteration"
        );
        assert!(r.final_set_size > 0);
    }
}

#[test]
fn fixed_soc_firmware_constraints_are_inductive() {
    let soc = verification_soc();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).unwrap();
    an.prove_constraints_inductive()
        .expect("legal HWPE configurations must stay legal");
}

#[test]
fn counterexample_replays_on_the_concrete_simulator() {
    let soc = verification_soc();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    match an.alg2() {
        Verdict::Vulnerable(r) => {
            let confirmed = replay_on_simulator(&an, &r.cex)
                .expect("formal counterexample must replay concretely");
            assert!(!confirmed.is_empty());
        }
        other => panic!("expected vulnerable, got {other}"),
    }
}

#[test]
fn counterexample_neighbourhood_reports_sensitivity() {
    let soc = verification_soc();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    match an.alg2() {
        Verdict::Vulnerable(r) => {
            let n = upec_ssc::replay_neighborhood(&an, &r.cex)
                .expect("the exact lane must replay like replay_on_simulator");
            // 32-bit wdata + 32-bit addr give >= 63 distinct single-bit
            // perturbations even for a 1-cycle counterexample.
            assert_eq!(n.lanes, 64);
            assert_eq!(n.perturbations.len(), 63);
            let unique: std::collections::BTreeSet<String> =
                n.perturbations.iter().map(|p| format!("{p:?}")).collect();
            assert_eq!(unique.len(), 63, "perturbations must be distinct");
            assert!(n.diverging & 1 == 1, "the exact counterexample lane must diverge");
            assert!(
                (0.0..=1.0).contains(&n.sensitivity()),
                "sensitivity out of range: {}",
                n.sensitivity()
            );
            assert!(n.to_string().contains("sensitivity"));
        }
        other => panic!("expected vulnerable, got {other}"),
    }
}

#[test]
fn s_pers_is_contained_in_s_not_victim() {
    let soc = verification_soc();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    let nv = an.s_not_victim();
    for a in an.s_pers() {
        assert!(nv.contains(&a), "S_pers ⊂ S_not_victim violated");
    }
    assert!(!an.s_pers().is_empty(), "the SoC has persistent state");
}

#[test]
fn spec_validation_rejects_sim_view() {
    // The simulation view's port signals are internal wires, not inputs; the
    // analysis must refuse them.
    let soc = Soc::sim_view();
    let err = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap_err();
    assert!(err.contains("not a free input"), "unexpected error: {err}");
}

#[test]
fn spec_validation_rejects_unknown_signals() {
    let soc = verification_soc();
    let mut spec = UpecSpec::soc_vulnerable();
    spec.port.req = "no.such.signal".into();
    let err = UpecAnalysis::new(&soc.netlist, spec).unwrap_err();
    assert!(err.contains("not found"));
}

#[test]
fn verdicts_scale_with_memory_size() {
    // A larger memory must not change the verdicts, only the work.
    let soc = Soc::build(SocConfig::verification_sized(16, 16));
    let vuln = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    assert!(vuln.alg1().is_vulnerable());
    let fixed = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).unwrap();
    assert!(fixed.alg1().is_secure());
}
