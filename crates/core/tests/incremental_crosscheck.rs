//! Cross-check of the persistent-session (incremental) Alg. 2 engine
//! against the fresh-session-per-check reference implementation.
//!
//! One formal configuration per attack scenario of
//! `ssc-attacks/src/scenarios.rs` (`Channel::DmaTimer` and
//! `Channel::HwpeMemory`, each in the leaky `in_public` and the patched
//! `in_private` victim layout): the incremental engine must reach the same
//! verdict as the reference on every one of them, and its per-window
//! encoding growth must stay bounded by the newly unrolled cycle's cone
//! (i.e. zero full re-encodings across windows).

use std::sync::Arc;

use ssc_soc::{Soc, SocConfig};
use upec_ssc::{ProductArtifact, Session, SessionPrefix, UpecAnalysis, UpecSpec, Verdict};

/// The formal twin of each simulation scenario: `(name, spec, leaky)`.
/// The patched (`in_private`) layouts map to `soc_fixed`, whose
/// countermeasure moves the victim range into private memory — for the
/// HWPE/memory channel additionally with that scenario's quiescing and
/// transience overrides.
fn scenario_specs() -> Vec<(&'static str, UpecSpec, bool)> {
    let hwpe_memory_patched = {
        // `soc_fixed`'s countermeasure applied to the HWPE+memory scenario
        // spec (same override set as `soc_vulnerable_hwpe_memory`).
        let fixed = UpecSpec::soc_fixed();
        let mut spec = UpecSpec::soc_vulnerable_hwpe_memory();
        spec.range_in_device = fixed.range_in_device;
        spec.constraints = fixed.constraints;
        spec
    };
    vec![
        ("dma_timer/leaky", UpecSpec::soc_vulnerable(), true),
        ("hwpe_memory/leaky", UpecSpec::soc_vulnerable_hwpe_memory(), true),
        ("dma_timer/patched", UpecSpec::soc_fixed(), false),
        ("hwpe_memory/patched", hwpe_memory_patched, false),
    ]
}

fn kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::Secure(_) => "secure",
        Verdict::Vulnerable(_) => "vulnerable",
        Verdict::Inconclusive(_) => "inconclusive",
    }
}

#[test]
fn incremental_alg2_matches_fresh_session_reference_on_all_scenarios() {
    let soc = Soc::verification_view();
    for (name, spec, leaky) in scenario_specs() {
        let an = UpecAnalysis::new(&soc.netlist, spec).expect("spec matches the SoC");
        let incremental = an.alg2();
        let reference = an.alg2_fresh_baseline();
        assert_eq!(
            kind(&incremental),
            kind(&reference),
            "engines disagree on {name}: incremental={incremental}, reference={reference}"
        );
        assert_eq!(
            kind(&incremental),
            if leaky { "vulnerable" } else { "secure" },
            "unexpected verdict on {name}: {incremental}"
        );
        // The 2-cycle procedure must agree with the unrolled one as well.
        let alg1 = an.alg1();
        assert_eq!(kind(&alg1), kind(&incremental), "alg1 disagrees on {name}");

        // Boundedness: the shared prefix (unrolling, macros, state-equality
        // cones) is encoded eagerly at session construction, so no *check*
        // may re-encode it — every iteration's encoding delta must stay far
        // below the cumulative prefix encoding the first iteration reports.
        let iters = incremental.iterations();
        let first = iters.first().expect("procedures always iterate");
        assert!(
            first.encoded_nodes > 0,
            "{name}: the session must have encoded the prefix"
        );
        for it in iters {
            assert!(
                it.encoded_delta * 4 < first.encoded_nodes,
                "{name}: iteration {} (window {}) encoded {} nodes, \
                 suspiciously close to a full prefix re-encoding ({})",
                it.iteration,
                it.window,
                it.encoded_delta,
                first.encoded_nodes
            );
        }
    }
}

/// The deterministic content of a verdict: kind, counterexample diff atoms
/// / removed-atom lists, and the full refinement trajectory including the
/// encoding counters — everything except wall-clock and solver effort.
fn trajectory(v: &Verdict) -> String {
    use std::fmt::Write as _;

    let mut out = match v {
        Verdict::Secure(r) => {
            format!("secure(set={},removed={:?})", r.final_set_size, r.removed_atoms)
        }
        Verdict::Vulnerable(r) => format!(
            "vulnerable(at={},diffs={:?})",
            r.cex.at_cycle,
            r.cex.diffs.iter().map(|d| d.name.as_str()).collect::<Vec<_>>()
        ),
        Verdict::Inconclusive(r) => format!("inconclusive({})", r.cause.code()),
    };
    for it in v.iterations() {
        let _ = write!(
            out,
            ";i{}w{}s{}r{}e{}d{}a{}",
            it.iteration,
            it.window,
            it.set_size,
            it.removed,
            it.encoded_nodes,
            it.encoded_delta,
            it.aig_nodes
        );
    }
    out
}

/// The fork-vs-fresh acceptance criterion of the shared-artifact
/// refactor: on every scenario configuration and at two SoC sizes, running
/// Alg. 2 in a session **forked from one shared per-size prefix** must be
/// state-identical — verdicts, diff-atom sets, refinement trajectories and
/// even the encoding counters — to an independently built analysis
/// (private artifact, private prefix). `Session::new` routes through the
/// same prefix construction as `SessionPrefix::build`, so any divergence
/// here means the fork leaked scenario state across cells.
#[test]
fn forked_sessions_match_independently_built_analyses() {
    for words in [8u32, 12] {
        let soc = Soc::build(SocConfig::verification_sized(words, words));
        // The shared core (port, devices, range mask, IP ports) is common
        // to all four scenarios; seed the artifact and prefix from the
        // first one.
        let seed = UpecSpec::soc_vulnerable();
        let art =
            Arc::new(ProductArtifact::for_spec(&soc.netlist, &seed).expect("spec ok"));
        let prefix = SessionPrefix::build(&art, &seed, 1).expect("spec ok");
        for (name, spec, leaky) in scenario_specs() {
            let shared = UpecAnalysis::bind(art.clone(), spec.clone())
                .expect("scenario binds to the shared artifact");
            let forked =
                shared.alg2_with_session(Session::with_prefix(&shared, prefix.fork()));
            let independent =
                UpecAnalysis::new(&soc.netlist, spec).expect("spec ok").alg2();
            assert_eq!(
                forked.is_vulnerable(),
                leaky,
                "unexpected verdict on {name}@{words}: {forked}"
            );
            assert_eq!(
                trajectory(&forked),
                trajectory(&independent),
                "forked session diverges from the independent analysis on {name}@{words}"
            );
        }
    }
}

#[test]
fn secure_scenarios_keep_s_pers_in_the_inductive_set() {
    let soc = Soc::verification_view();
    for (name, spec, leaky) in scenario_specs() {
        if leaky {
            continue;
        }
        let an = UpecAnalysis::new(&soc.netlist, spec).expect("spec matches the SoC");
        let pers = an.s_pers().len();
        match an.alg2() {
            Verdict::Secure(r) => assert!(
                r.final_set_size >= pers,
                "{name}: inductive set ({}) must contain S_pers ({pers})",
                r.final_set_size
            ),
            other => panic!("{name}: expected secure, got {other}"),
        }
    }
}

#[test]
fn secure_reports_are_deterministic_across_runs() {
    // Sorted `removed_atoms` and stable iteration accounting: two runs of
    // the same analysis must produce identical report skeletons.
    let soc = Soc::verification_view();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).expect("spec ok");
    let (a, b) = (an.alg1(), an.alg1());
    match (a, b) {
        (Verdict::Secure(ra), Verdict::Secure(rb)) => {
            assert_eq!(ra.removed_atoms, rb.removed_atoms);
            assert_eq!(ra.final_set_size, rb.final_set_size);
            assert_eq!(ra.iterations.len(), rb.iterations.len());
        }
        (a, b) => panic!("expected secure verdicts, got {a} / {b}"),
    }
}
