//! Tests for the extension features: channel enumeration and transience
//! proofs.

use ssc_soc::Soc;
use upec_ssc::{UpecAnalysis, UpecSpec};

#[test]
fn channel_enumeration_inventories_the_vulnerable_soc() {
    let soc = Soc::verification_view();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    let channels = an.enumerate_channels(8);
    assert!(
        channels.len() >= 2,
        "the shared-memory layout has several media, got {channels:#?}"
    );
    let media: Vec<&str> = channels.iter().map(|c| c.medium.as_str()).collect();
    // The accelerator/DMA engines and the shared memory must both appear.
    assert!(
        media.iter().any(|m| *m == "hwpe" || *m == "dma"),
        "an IP engine must be implicated: {media:?}"
    );
    assert!(
        media.iter().any(|m| m.contains("ram")),
        "the shared memory must be implicated: {media:?}"
    );
}

#[test]
fn channel_enumeration_is_empty_for_the_fixed_soc() {
    let soc = Soc::verification_view();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).unwrap();
    assert!(an.enumerate_channels(8).is_empty());
}

#[test]
fn arbiter_pointer_is_provably_transient_on_grant() {
    // The round-robin pointer is rewritten by every grant with the grantee
    // index — independent of its previous value. This is exactly the
    // paper's justification for excluding interconnect buffers from S_pers.
    let soc = Soc::verification_view();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    // Condition: the public crossbar issued some grant. Use the CPU's gnt
    // combined with... simplest: the arbiter updates when any master is
    // granted; "pub_xbar.gnt0" | "gnt1" | "gnt2" are named signals, but the
    // proof takes one condition signal — use the DMA's request (it requests
    // whenever busy, and busy+gnt implies an update). Instead we check
    // under "cpu access granted to the public RAM":
    let ok = an
        .prove_transient_under("pub_xbar.arb.rr", "pub_xbar.gnt0")
        .expect("signals exist");
    assert!(ok, "a granted transaction overwrites the arbiter pointer");
}

#[test]
fn progress_register_is_not_transient() {
    // The HWPE progress register *retains* its value across foreign grants
    // — that persistence is what makes it a channel medium.
    let soc = Soc::verification_view();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    let ok = an
        .prove_transient_under("hwpe.progress", "pub_xbar.gnt0")
        .expect("signals exist");
    assert!(!ok, "progress must be able to hold information");
}

#[test]
fn transience_proof_validates_inputs() {
    let soc = Soc::verification_view();
    let an = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
    assert!(an.prove_transient_under("no.such.reg", "pub_xbar.gnt0").is_err());
    assert!(an.prove_transient_under("pub_xbar.arb.rr", "no.such.cond").is_err());
    // A non-register signal is rejected.
    assert!(an.prove_transient_under("cpu_gnt", "pub_xbar.gnt0").is_err());
}
