//! Property-based soundness check of the static cleanliness certificate
//! over randomly wired register designs: whatever the topology,
//!
//! 1. running Alg. 2 with static pruning on and off must be observation-
//!    identical (verdict, diff atoms, refinement trajectory) under the
//!    legacy solver engine, whose search trajectory is insensitive to the
//!    goal clause's pruned-away (provably false) literals on these
//!    designs,
//! 2. under the modern heuristic tier — whose restart points and clause
//!    minimization legitimately react to the goal clause's shape — the
//!    two runs must still agree on the verdict (the certificate's actual
//!    theorem: an omitted disjunct is false in every model, so omission
//!    can steer *which* of several valid counterexamples the solver
//!    lands on, never whether one exists), and
//! 3. an atom the certificate classifies forever-clean must never show up
//!    in a counterexample diff or a refinement's removed set.
//!
//! Designs are generated from a seeded xorshift stream (the proptest shim
//! supplies the seeds), mixing port-fed, register-fed, mux-arbitrated and
//! isolated state so both reachable and unreachable atoms occur — and
//! with them both solver-backed and fully-certified window checks.

use proptest::prelude::*;
use ssc_netlist::{Bv, Netlist, StateMeta};
use upec_ssc::{
    statically_clean, PersistencePolicy, Session, SessionPrefix, UpecAnalysis, UpecSpec, Verdict,
    VictimPort,
};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.0 = s;
        s
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random register design with a victim port: 4–9 registers of mixed
/// classification, each wired to the port, to other registers, through a
/// request-selected mux, or to itself (isolated).
fn random_design(seed: u64) -> Netlist {
    let mut rng = XorShift(seed | 1);
    let mut n = Netlist::new("rand");
    let req = n.input("p.req", 1);
    let addr = n.input("p.addr", 32);
    let _we = n.input("p.we", 1);
    let wdata = n.input("p.wdata", 32);
    let count = 4 + rng.below(6) as usize;
    let regs: Vec<_> = (0..count)
        .map(|i| {
            let meta = match rng.below(4) {
                0 => StateMeta::ip_register(),
                1 => StateMeta::peripheral(),
                2 => StateMeta::interconnect(),
                _ => StateMeta::cpu(),
            };
            let name = format!("r{i}");
            n.reg(&name, 32, Some(Bv::zero(32)), meta)
        })
        .collect();
    for i in 0..count {
        let a = regs[rng.below(count as u64) as usize].wire();
        let b = regs[rng.below(count as u64) as usize].wire();
        let next = match rng.below(6) {
            0 => addr,
            1 => wdata,
            2 => a,
            3 => n.mux(req, a, b),
            4 => n.add(a, b),
            _ => regs[i].wire(), // self-loop: isolated unless fed elsewhere
        };
        n.connect_reg(regs[i], next);
    }
    for (i, r) in regs.iter().enumerate() {
        n.mark_output(&format!("r{i}"), r.wire());
    }
    n.check().expect("generated netlist is well-formed");
    n
}

fn spec() -> UpecSpec {
    UpecSpec {
        port: VictimPort {
            req: "p.req".into(),
            addr: "p.addr".into(),
            we: "p.we".into(),
            wdata: "p.wdata".into(),
        },
        ip_ports: vec![],
        devices: vec![],
        range_mask: 0xFFFF_FFF0,
        range_in_device: None,
        device_mask: 0xFFFF_F000,
        constraints: vec![],
        quiesced_ips: vec![],
        persistence: PersistencePolicy::new(),
        max_unroll: 3,
    }
}

/// Verdict kind + diff atoms + removed atoms + per-iteration trajectory,
/// excluding the pruning counters (which legitimately differ).
fn trajectory(v: &Verdict) -> String {
    use std::fmt::Write as _;

    let mut out = match v {
        Verdict::Secure(r) => {
            format!("secure(set={},removed={:?})", r.final_set_size, r.removed_atoms)
        }
        Verdict::Vulnerable(r) => format!(
            "vulnerable(at={},diffs={:?})",
            r.cex.at_cycle,
            r.cex.diffs.iter().map(|d| d.name.as_str()).collect::<Vec<_>>()
        ),
        Verdict::Inconclusive(r) => format!("inconclusive({})", r.cause.code()),
    };
    for it in v.iterations() {
        let _ = write!(
            out,
            ";i{}w{}s{}r{}e{}d{}",
            it.iteration, it.window, it.set_size, it.removed, it.encoded_nodes, it.encoded_delta
        );
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pruning_is_observation_identical_on_random_designs(seed: u64) {
        // Pinned to the legacy engine: its search never reacts to the
        // pruned-away (provably false) goal literals, so pruned and
        // unpruned runs are trajectory-identical bit for bit. The modern
        // tier's verdict-level equivalence is the next property.
        let n = random_design(seed);
        let an = UpecAnalysis::new(&n, spec()).expect("spec matches the design");
        let run = |prune: bool| {
            let prefix = SessionPrefix::build_with_solver_heuristics(
                an.artifact(),
                an.spec(),
                1,
                Some(ssc_sat::Heuristics::legacy()),
            )
            .expect("a bound spec was already validated");
            let mut sess = Session::with_prefix(&an, prefix);
            sess.set_static_prune(prune);
            an.alg2_with_session(sess)
        };
        let pruned = run(true);
        let unpruned = run(false);
        prop_assert_eq!(
            trajectory(&pruned),
            trajectory(&unpruned),
            "divergence on seed {:#x}",
            seed
        );
    }

    #[test]
    fn pruning_preserves_verdicts_under_modern_heuristics(seed: u64) {
        // The modern tier's adaptive restarts and clause minimization are
        // sensitive to the goal clause's literal count, so pruning can
        // legitimately steer the solver to a *different valid*
        // counterexample — what it can never do is change whether one
        // exists. Both runs' diffs staying clear of certified-clean atoms
        // is the third property below.
        let n = random_design(seed);
        let an = UpecAnalysis::new(&n, spec()).expect("spec matches the design");
        let run = |prune: bool| {
            let prefix = SessionPrefix::build_with_solver_heuristics(
                an.artifact(),
                an.spec(),
                1,
                Some(ssc_sat::Heuristics::modern()),
            )
            .expect("a bound spec was already validated");
            let mut sess = Session::with_prefix(&an, prefix);
            sess.set_static_prune(prune);
            an.alg2_with_session(sess)
        };
        let pruned = run(true);
        let unpruned = run(false);
        let kind = |v: &Verdict| match v {
            Verdict::Secure(_) => "secure",
            Verdict::Vulnerable(_) => "vulnerable",
            Verdict::Inconclusive(_) => "inconclusive",
        };
        prop_assert_eq!(
            kind(&pruned),
            kind(&unpruned),
            "pruning changed the verdict on seed {:#x}",
            seed
        );
    }

    #[test]
    fn certified_clean_atoms_never_diverge_on_random_designs(seed: u64) {
        let n = random_design(seed);
        let clean = statically_clean(&n, &spec()).expect("spec matches the design");
        let an = UpecAnalysis::new(&n, spec()).expect("spec matches the design");
        let clean_names: Vec<String> = clean.iter().map(|&a| an.atom_name(a)).collect();
        match an.alg2() {
            Verdict::Vulnerable(r) => {
                for d in &r.cex.diffs {
                    prop_assert!(
                        !clean_names.contains(&d.name),
                        "seed {:#x}: certified-clean atom `{}` diverged",
                        seed,
                        &d.name
                    );
                }
            }
            Verdict::Secure(r) => {
                for removed in &r.removed_atoms {
                    prop_assert!(
                        !clean_names.contains(removed),
                        "seed {:#x}: certified-clean atom `{}` was refined away",
                        seed,
                        removed
                    );
                }
            }
            Verdict::Inconclusive(_) => {}
        }
    }
}
