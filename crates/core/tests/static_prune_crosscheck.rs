//! Soundness crosscheck for static-certificate goal pruning
//! (`SSC_STATIC_PRUNE`): on every scenario configuration and at two SoC
//! sizes, running Alg. 2 with pruning on and off must be observation-
//! identical — verdicts, counterexample diff atoms, refinement
//! trajectories and the encoding counters. Pruning only omits goal
//! disjuncts the influence certificate (or the proven-prefix ledger)
//! proves false, so any divergence here is an unsoundness bug, not noise.

use std::sync::Arc;

use ssc_soc::{Soc, SocConfig};
use upec_ssc::{
    statically_clean, ProductArtifact, Session, SessionPrefix, UpecAnalysis, UpecSpec, Verdict,
};

/// The formal twin of each simulation scenario: `(name, spec, leaky)` —
/// same matrix as `incremental_crosscheck.rs` and the bench portfolio.
fn scenario_specs() -> Vec<(&'static str, UpecSpec, bool)> {
    let hwpe_memory_patched = {
        let fixed = UpecSpec::soc_fixed();
        let mut spec = UpecSpec::soc_vulnerable_hwpe_memory();
        spec.range_in_device = fixed.range_in_device;
        spec.constraints = fixed.constraints;
        spec
    };
    vec![
        ("dma_timer/leaky", UpecSpec::soc_vulnerable(), true),
        ("hwpe_memory/leaky", UpecSpec::soc_vulnerable_hwpe_memory(), true),
        ("dma_timer/patched", UpecSpec::soc_fixed(), false),
        ("hwpe_memory/patched", hwpe_memory_patched, false),
    ]
}

/// The deterministic content of a verdict: kind, counterexample diff
/// atoms / removed-atom lists, and the full refinement trajectory with the
/// encoding counters — everything except wall-clock, solver effort and the
/// pruning counters themselves (which legitimately differ between runs).
fn trajectory(v: &Verdict) -> String {
    use std::fmt::Write as _;

    let mut out = match v {
        Verdict::Secure(r) => {
            format!("secure(set={},removed={:?})", r.final_set_size, r.removed_atoms)
        }
        Verdict::Vulnerable(r) => format!(
            "vulnerable(at={},diffs={:?})",
            r.cex.at_cycle,
            r.cex.diffs.iter().map(|d| d.name.as_str()).collect::<Vec<_>>()
        ),
        Verdict::Inconclusive(r) => format!("inconclusive({})", r.cause.code()),
    };
    for it in v.iterations() {
        let _ = write!(
            out,
            ";i{}w{}s{}r{}e{}d{}a{}",
            it.iteration,
            it.window,
            it.set_size,
            it.removed,
            it.encoded_nodes,
            it.encoded_delta,
            it.aig_nodes
        );
    }
    out
}

fn run(an: &UpecAnalysis, prefix: &SessionPrefix<'_>, prune: bool) -> Verdict {
    let mut sess = Session::with_prefix(an, prefix.fork());
    sess.set_static_prune(prune);
    an.alg2_with_session(sess)
}

#[test]
fn pruned_and_unpruned_runs_are_observation_identical_on_all_scenarios() {
    let mut total_pruned = 0usize;
    let mut disjuncts_on = 0usize;
    let mut disjuncts_off = 0usize;
    for words in [8u32, 12] {
        let soc = Soc::build(SocConfig::verification_sized(words, words));
        let seed = UpecSpec::soc_vulnerable();
        let art = Arc::new(ProductArtifact::for_spec(&soc.netlist, &seed).expect("spec ok"));
        let prefix = SessionPrefix::build(&art, &seed, 1).expect("spec ok");
        for (name, spec, leaky) in scenario_specs() {
            let an = UpecAnalysis::bind(art.clone(), spec).expect("scenario binds");
            let pruned = run(&an, &prefix, true);
            let unpruned = run(&an, &prefix, false);
            assert_eq!(
                pruned.is_vulnerable(),
                leaky,
                "unexpected verdict on {name}@{words}: {pruned}"
            );
            assert_eq!(
                trajectory(&pruned),
                trajectory(&unpruned),
                "static pruning changed the observable behavior on {name}@{words}"
            );
            for it in pruned.iterations() {
                total_pruned += it.atoms_static_pruned;
                disjuncts_on += it.goal_disjuncts;
            }
            for it in unpruned.iterations() {
                assert_eq!(
                    it.atoms_static_pruned, 0,
                    "{name}@{words}: unpruned run must report zero static pruning"
                );
                disjuncts_off += it.goal_disjuncts;
            }
        }
    }
    // The equivalence above must not be vacuous: pruning has to actually
    // fire somewhere on this matrix, and the installed goal clauses have
    // to be smaller in aggregate.
    assert!(total_pruned > 0, "static pruning never fired on the whole scenario matrix");
    assert!(
        disjuncts_on < disjuncts_off,
        "pruned runs must install fewer goal disjuncts ({disjuncts_on} vs {disjuncts_off})"
    );
}

/// The certificate's forever-clean subset must be disjoint from every
/// atom a counterexample reports diverging, and from every atom any
/// refinement removes — on the real SoC, across the whole matrix.
#[test]
fn statically_clean_atoms_never_diverge() {
    let soc = Soc::verification_view();
    for (name, spec, _) in scenario_specs() {
        let clean = statically_clean(&soc.netlist, &spec).expect("spec ok");
        let an = UpecAnalysis::new(&soc.netlist, spec).expect("spec ok");
        let clean_names: Vec<String> =
            clean.iter().map(|&a| an.atom_name(a)).collect();
        match an.alg2() {
            Verdict::Vulnerable(r) => {
                for d in &r.cex.diffs {
                    assert!(
                        !clean_names.contains(&d.name),
                        "{name}: certified-clean atom `{}` diverged",
                        d.name
                    );
                }
            }
            Verdict::Secure(r) => {
                for removed in &r.removed_atoms {
                    assert!(
                        !clean_names.contains(removed),
                        "{name}: certified-clean atom `{removed}` was refined away"
                    );
                }
            }
            other => panic!("{name}: unexpected verdict {other}"),
        }
    }
}
