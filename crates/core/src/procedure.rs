//! The UPEC-SSC proof procedures (paper Alg. 1 and Alg. 2).

use std::time::Instant;

use crate::atoms::AtomSet;
use crate::engine::{Session, UpecAnalysis};
use crate::report::{IterationStat, SecureReport, Verdict, VulnReport};
use ssc_ipc::PropertyResult;

impl UpecAnalysis {
    /// **Algorithm 1** (UPEC-SSC): the 2-cycle iterative fixpoint.
    ///
    /// Starting from `S = S_not_victim`, repeatedly checks the 2-cycle
    /// property *assume `State_Equivalence(S)` at `t`, prove it at `t+1`*.
    /// Counterexamples hitting `S_pers` prove a vulnerability; transient
    /// counterexamples shrink `S`. An `UNSAT` result makes the property
    /// inductive: combined with the trivial induction base (before the
    /// victim's first access nothing is influenced) this yields an
    /// *unbounded* security proof from a two-clock-cycle window.
    pub fn alg1(&self) -> Verdict {
        self.alg1_from(self.s_not_victim())
    }

    /// Algorithm 1 starting from a caller-provided set (used as the
    /// induction step after Alg. 2, with `S = S[k]`).
    pub fn alg1_from(&self, initial: AtomSet) -> Verdict {
        let start = Instant::now();
        let mut sess = Session::new(self, 1);
        let mut s = initial;
        let mut iterations: Vec<IterationStat> = Vec::new();
        let mut removed_atoms: Vec<String> = Vec::new();

        // Standing assumptions are window-invariant: build once.
        let base = sess.base_assumptions(1);

        loop {
            let iter_start = Instant::now();
            let pre = sess.state_eq(&s, 0);
            let goal = sess.state_eq(&s, 1);
            let mut assumptions = base.clone();
            assumptions.push(pre);
            let result = sess.ipc.check(&assumptions, goal);
            let runtime = iter_start.elapsed();

            match result {
                PropertyResult::Holds => {
                    iterations.push(IterationStat {
                        iteration: iterations.len() + 1,
                        window: 1,
                        set_size: s.len(),
                        removed: 0,
                        runtime,
                    });
                    debug_assert!(
                        self.s_pers().iter().all(|a| s.contains(a)),
                        "S_pers must be contained in the final inductive set"
                    );
                    return Verdict::Secure(SecureReport {
                        iterations,
                        final_set_size: s.len(),
                        removed_atoms,
                        total_runtime: start.elapsed(),
                    });
                }
                PropertyResult::Violated => {
                    let diffs = sess.extract_diffs(&s, 1);
                    if diffs.is_empty() {
                        return Verdict::Inconclusive(
                            "solver produced a model without an observable state difference"
                                .into(),
                        );
                    }
                    let hit_pers = diffs.iter().any(|d| d.persistent);
                    iterations.push(IterationStat {
                        iteration: iterations.len() + 1,
                        window: 1,
                        set_size: s.len(),
                        removed: if hit_pers { 0 } else { diffs.len() },
                        runtime,
                    });
                    if hit_pers {
                        let cex = sess.capture_cex(diffs, 1, 1);
                        return Verdict::Vulnerable(VulnReport {
                            iterations,
                            cex,
                            total_runtime: start.elapsed(),
                        });
                    }
                    for d in &diffs {
                        removed_atoms.push(d.name.clone());
                        s.remove(&d.atom);
                    }
                }
            }
        }
    }

    /// **Algorithm 2** (unrolled UPEC-SSC): grows the property window cycle
    /// by cycle, maintaining one state set per cycle, until either a
    /// persistent divergence is found (vulnerable, with an *explicit*
    /// multi-cycle counterexample) or the influenced sets saturate
    /// (`S[k] == S[k-1]`), after which Algorithm 1 performs the final
    /// inductive proof with `S = S[k]`.
    pub fn alg2(&self) -> Verdict {
        let start = Instant::now();
        let s_init = self.s_not_victim();
        let mut s: Vec<AtomSet> = vec![s_init.clone(), s_init];
        let mut k = 1usize;
        let mut sess = Session::new(self, 1);
        let mut iterations: Vec<IterationStat> = Vec::new();

        loop {
            sess.ensure_window(k);
            let iter_start = Instant::now();
            let base = sess.base_assumptions(k);
            let pre = sess.state_eq(&s[0], 0);
            let mut assumptions = base;
            assumptions.push(pre);
            // Obligations at every cycle 1..=k for the per-cycle sets.
            let goals: Vec<_> = (1..=k).map(|c| sess.state_eq(&s[c], c)).collect();
            let goal = {
                let aig = sess.ipc.unroller_mut().aig_mut();
                aig.and_all(goals)
            };
            let result = sess.ipc.check(&assumptions, goal);
            let runtime = iter_start.elapsed();

            match result {
                PropertyResult::Holds => {
                    iterations.push(IterationStat {
                        iteration: iterations.len() + 1,
                        window: k,
                        set_size: s[k].len(),
                        removed: 0,
                        runtime,
                    });
                    if s[k] == s[k - 1] {
                        // Saturated: finish with the inductive step.
                        let tail = self.alg1_from(s[k].clone());
                        return merge_alg2_result(tail, iterations, start);
                    }
                    if k >= self.spec().max_unroll {
                        return Verdict::Inconclusive(format!(
                            "no fixpoint within the unroll limit of {} cycles",
                            self.spec().max_unroll
                        ));
                    }
                    k += 1;
                    let prev = s[k - 1].clone();
                    s.push(prev);
                }
                PropertyResult::Violated => {
                    // Find the earliest cycle with a divergence.
                    let mut removed_total = 0;
                    let mut vulnerable = None;
                    for c in 1..=k {
                        let diffs = sess.extract_diffs(&s[c], c);
                        if diffs.is_empty() {
                            continue;
                        }
                        if diffs.iter().any(|d| d.persistent) {
                            vulnerable = Some((diffs, c));
                            break;
                        }
                        removed_total += diffs.len();
                        for d in &diffs {
                            s[c].remove(&d.atom);
                        }
                    }
                    iterations.push(IterationStat {
                        iteration: iterations.len() + 1,
                        window: k,
                        set_size: s[k].len(),
                        removed: removed_total,
                        runtime,
                    });
                    if let Some((diffs, c)) = vulnerable {
                        let cex = sess.capture_cex(diffs, c, k);
                        return Verdict::Vulnerable(VulnReport {
                            iterations,
                            cex,
                            total_runtime: start.elapsed(),
                        });
                    }
                    if removed_total == 0 {
                        return Verdict::Inconclusive(
                            "violated check without extractable divergence".into(),
                        );
                    }
                }
            }
        }
    }

    /// Proves that the spec's `RegOutsideDevice` firmware constraints are
    /// *inductive*: if all constraints hold in a symbolic state and software
    /// obeys the port-write constraints, they hold one cycle later. This
    /// discharges the soundness obligation of assuming them on the symbolic
    /// starting state (paper Sec. 3.4's invariant methodology).
    ///
    /// # Errors
    ///
    /// Returns the names of registers whose constraint is not inductive.
    pub fn prove_constraints_inductive(&self) -> Result<(), Vec<String>> {
        use crate::engine::Instance;
        use crate::spec::FirmwareConstraint;
        use ssc_aig::words;

        let regs: Vec<(String, u64, u64)> = self
            .spec()
            .constraints
            .iter()
            .filter_map(|c| match c {
                FirmwareConstraint::RegOutsideDevice { reg, mask, device } => {
                    Some((reg.clone(), *mask, *device))
                }
                _ => None,
            })
            .collect();
        if regs.is_empty() {
            return Ok(());
        }
        let mut sess = Session::new(self, 1);
        let assumptions = sess.base_assumptions(1);
        let mut failing = Vec::new();
        for (reg, mask, device) in regs {
            let w = self.src().find(&reg).expect("validated");
            for inst in [Instance::A, Instance::B] {
                let post = sess.atom_word(inst, crate::atoms::StateAtom::Reg(w.id()), 1);
                let aig = sess.ipc.unroller_mut().aig_mut();
                let m = words::constant(aig, ssc_netlist::Bv::new(32, mask));
                let masked = words::and(aig, &post, &m);
                let hit = words::eq_const(aig, &masked, device);
                let goal = hit.not();
                if sess.ipc.check(&assumptions, goal) == PropertyResult::Violated {
                    failing.push(format!("{reg} ({inst:?})"));
                }
            }
        }
        if failing.is_empty() {
            Ok(())
        } else {
            Err(failing)
        }
    }
}

fn merge_alg2_result(
    tail: Verdict,
    mut iterations: Vec<IterationStat>,
    start: Instant,
) -> Verdict {
    match tail {
        Verdict::Secure(mut r) => {
            iterations.extend(r.iterations);
            r.iterations = iterations;
            r.total_runtime = start.elapsed();
            Verdict::Secure(r)
        }
        Verdict::Vulnerable(mut r) => {
            iterations.extend(r.iterations);
            r.iterations = iterations;
            r.total_runtime = start.elapsed();
            Verdict::Vulnerable(r)
        }
        other => other,
    }
}
