//! The UPEC-SSC proof procedures (paper Alg. 1 and Alg. 2).
//!
//! Both procedures run inside **one persistent [`Session`]**: the unrolled
//! procedure (Alg. 2) grows the property window cycle by cycle in place,
//! and on saturation hands the *same* session to the inductive fixpoint
//! (Alg. 1), so the SAT solver, the CNF encoding of the unrolled prefix
//! and every learnt clause survive from the first check to the last. The
//! session may come from a shared per-size prefix fork
//! ([`UpecAnalysis::alg2_with_session`] — the portfolio entry point) or be
//! built privately ([`UpecAnalysis::alg2`]); both are state-identical.
//! [`UpecAnalysis::alg2_fresh_baseline`] keeps the tear-down-per-check
//! variant alive as a cross-check reference and performance baseline.

use std::time::Instant;

use crate::atoms::AtomSet;
use crate::engine::{Session, UpecAnalysis};
use crate::report::{
    InconclusiveCause, InconclusiveReport, IterationStat, SecureReport, Verdict, VulnReport,
};
use ssc_ipc::PropertyResult;

/// Snapshot of the measurable session state taken around one solver call.
struct IterSnapshot {
    t: Instant,
    encoded: usize,
    stats: ssc_sat::SolverStats,
}

impl IterSnapshot {
    fn take(sess: &Session<'_>) -> Self {
        IterSnapshot {
            t: Instant::now(),
            encoded: sess.encoded_nodes(),
            stats: sess.solver_stats(),
        }
    }

    fn finish(
        self,
        sess: &mut Session<'_>,
        iteration: usize,
        window: usize,
        set_size: usize,
        removed: usize,
    ) -> IterationStat {
        IterationStat {
            iteration,
            window,
            set_size,
            removed,
            runtime: self.t.elapsed(),
            encoded_nodes: sess.encoded_nodes(),
            encoded_delta: sess.encoded_nodes() - self.encoded,
            aig_nodes: sess.ipc().unroller().aig().num_nodes(),
            solver: sess.solver_stats().delta_since(&self.stats),
            atoms_core_dropped: sess.take_atoms_core_dropped(),
            atoms_static_pruned: sess.take_atoms_static_pruned(),
            goal_disjuncts: sess.take_goal_disjuncts(),
            cube: sess.take_cube_report(),
        }
    }
}

impl UpecAnalysis {
    /// **Algorithm 1** (UPEC-SSC): the 2-cycle iterative fixpoint.
    ///
    /// Starting from `S = S_not_victim`, repeatedly checks the 2-cycle
    /// property *assume `State_Equivalence(S)` at `t`, prove it at `t+1`*.
    /// Counterexamples hitting `S_pers` prove a vulnerability; transient
    /// counterexamples shrink `S`. An `UNSAT` result makes the property
    /// inductive: combined with the trivial induction base (before the
    /// victim's first access nothing is influenced) this yields an
    /// *unbounded* security proof from a two-clock-cycle window.
    pub fn alg1(&self) -> Verdict {
        self.alg1_from(self.s_not_victim())
    }

    /// Algorithm 1 starting from a caller-provided set (used as the
    /// induction step after Alg. 2, with `S = S[k]`).
    pub fn alg1_from(&self, initial: AtomSet) -> Verdict {
        let mut sess = Session::new(self, 1);
        self.alg1_in_session(&mut sess, initial)
    }

    /// Algorithm 1 running inside an **existing** session.
    ///
    /// This is how Alg. 2 finishes: the session that grew the unrolled
    /// window performs the final inductive proof too, so the fixpoint
    /// reuses the 2-cycle prefix encoding and all learnt clauses instead
    /// of rebuilding a solver. The standing assumptions are cached by the
    /// session and passed as a slice — no per-iteration cloning.
    pub fn alg1_in_session(&self, sess: &mut Session<'_>, initial: AtomSet) -> Verdict {
        let start = Instant::now();
        let mut s = initial;
        let mut iterations: Vec<IterationStat> = Vec::new();
        let mut removed_atoms: Vec<String> = Vec::new();

        loop {
            let snap = IterSnapshot::take(sess);
            let set_size = s.len();
            let result = sess.check_window(1, &s, &[(1, &s)]);

            match result {
                PropertyResult::Holds => {
                    iterations.push(snap.finish(sess, iterations.len() + 1, 1, set_size, 0));
                    debug_assert!(
                        self.s_pers().iter().all(|a| s.contains(a)),
                        "S_pers must be contained in the final inductive set"
                    );
                    // Deterministic report: removal order depends on model
                    // extraction order, the report must not.
                    removed_atoms.sort_unstable();
                    return Verdict::Secure(SecureReport {
                        iterations,
                        final_set_size: s.len(),
                        removed_atoms,
                        total_runtime: start.elapsed(),
                    });
                }
                PropertyResult::Interrupted(int) => {
                    // Bounded effort surfaces as an explicit gave-up verdict
                    // with the partial trajectory — never as Secure/Vulnerable.
                    iterations.push(snap.finish(sess, iterations.len() + 1, 1, set_size, 0));
                    return Verdict::Inconclusive(InconclusiveReport {
                        cause: InconclusiveCause::Interrupted(int),
                        iterations,
                        total_runtime: start.elapsed(),
                    });
                }
                PropertyResult::Violated => {
                    let diffs = sess.extract_diffs(&s, 1);
                    if diffs.is_empty() {
                        iterations.push(snap.finish(sess, iterations.len() + 1, 1, set_size, 0));
                        return Verdict::Inconclusive(InconclusiveReport {
                            cause: InconclusiveCause::NoObservableDifference,
                            iterations,
                            total_runtime: start.elapsed(),
                        });
                    }
                    sess.note_shrunk(&diffs);
                    let hit_pers = diffs.iter().any(|d| d.persistent);
                    let removed = if hit_pers { 0 } else { diffs.len() };
                    iterations.push(snap.finish(
                        sess,
                        iterations.len() + 1,
                        1,
                        set_size,
                        removed,
                    ));
                    if hit_pers {
                        let cex = sess.capture_cex(diffs, 1, 1);
                        return Verdict::Vulnerable(VulnReport {
                            iterations,
                            cex,
                            total_runtime: start.elapsed(),
                        });
                    }
                    for d in &diffs {
                        removed_atoms.push(d.name.clone());
                        s.remove(&d.atom);
                    }
                }
            }
        }
    }

    /// **Algorithm 2** (unrolled UPEC-SSC): grows the property window cycle
    /// by cycle, maintaining one state set per cycle, until either a
    /// persistent divergence is found (vulnerable, with an *explicit*
    /// multi-cycle counterexample) or the influenced sets saturate
    /// (`S[k] == S[k-1]`), after which Algorithm 1 performs the final
    /// inductive proof with `S = S[k]`.
    ///
    /// The whole fixpoint — every window growth, every refinement
    /// iteration and the concluding Alg. 1 — runs in one persistent
    /// [`Session`]: the unroller and CNF encoding grow in place, and the
    /// per-iteration [`IterationStat::encoded_delta`] counter records that
    /// the encoding work per window stays bounded by the newly unrolled
    /// cycle's cone.
    pub fn alg2(&self) -> Verdict {
        self.alg2_impl(Some(Session::new(self, 1)))
    }

    /// Algorithm 2 running inside a caller-provided session — the entry
    /// point of the shared-prefix portfolio: fork a per-size
    /// [`crate::SessionPrefix`], bind it with [`Session::with_prefix`] and
    /// hand it here, and the whole procedure runs on top of the shared
    /// product encoding instead of rebuilding it.
    ///
    /// # Panics
    ///
    /// Panics if `sess` was created for a different analysis — its
    /// scenario assumptions would not match the atom sets and persistence
    /// classification this procedure derives from `self`.
    pub fn alg2_with_session<'s>(&'s self, sess: Session<'s>) -> Verdict {
        assert!(
            std::ptr::eq(sess.analysis(), self),
            "session belongs to a different analysis"
        );
        self.alg2_impl(Some(sess))
    }

    /// [`UpecAnalysis::alg2`] under a resource [`ssc_sat::Budget`]: every
    /// solver call of the run (window growths, refinements, the concluding
    /// induction) is governed by `budget`. A call whose budget runs out
    /// surfaces as [`Verdict::Inconclusive`] with
    /// [`InconclusiveCause::Interrupted`] and the partial iteration
    /// trajectory — the analysis never panics on exhaustion and never maps
    /// an interrupted run to `Secure`/`Vulnerable`.
    pub fn alg2_budgeted(&self, budget: ssc_sat::Budget) -> Verdict {
        let mut sess = Session::new(self, 1);
        sess.set_budget(budget);
        self.alg2_impl(Some(sess))
    }

    /// The fresh-session reference implementation of Alg. 2: a new
    /// [`Session`] (unroller, CNF encoding, solver) is constructed for
    /// **every solver call**, discarding all learnt clauses and re-encoding
    /// the entire prefix each time.
    ///
    /// Exists as (a) the semantic cross-check oracle for the incremental
    /// engine — both must produce identical verdicts — and (b) the
    /// performance baseline the `e6_scaling`/`e7_alg1_vs_alg2` experiments
    /// measure the persistent session against.
    pub fn alg2_fresh_baseline(&self) -> Verdict {
        self.alg2_impl(None)
    }

    fn alg2_impl<'s>(&'s self, initial_sess: Option<Session<'s>>) -> Verdict {
        let start = Instant::now();
        let incremental = initial_sess.is_some();
        let s_init = self.s_not_victim();
        let mut s: Vec<AtomSet> = vec![s_init.clone(), s_init];
        let mut k = 1usize;
        let mut sess_slot: Option<Session<'_>> = initial_sess;
        let mut iterations: Vec<IterationStat> = Vec::new();

        loop {
            if !incremental {
                // Baseline semantics: tear the whole session down before
                // every check.
                sess_slot = Some(Session::new(self, k));
            }
            let sess = sess_slot.as_mut().expect("session exists in both modes");
            sess.ensure_window(k);
            let snap = IterSnapshot::take(sess);
            let set_size = s[k].len();
            let result = if incremental {
                let goals: Vec<(usize, &AtomSet)> = (1..=k).map(|c| (c, &s[c])).collect();
                sess.check_window(k, &s[0], &goals)
            } else {
                // Baseline goal construction: one monolithic conjunction,
                // re-encoded from scratch in the fresh session.
                let mut assumptions = sess.base_assumptions(k);
                assumptions.push(sess.state_eq(&s[0], 0));
                let goals: Vec<_> = (1..=k).map(|c| sess.state_eq(&s[c], c)).collect();
                let goal = {
                    let aig = sess.ipc_mut().unroller_mut().aig_mut();
                    aig.and_all(goals)
                };
                sess.ipc_mut().check(&assumptions, goal)
            };

            match result {
                PropertyResult::Holds => {
                    iterations.push(snap.finish(sess, iterations.len() + 1, k, set_size, 0));
                    // Unsat-core fast-path (incremental engine only): when
                    // the proof rested on *no* tracked atom's state-equality
                    // assumption, the window obligation is discharged
                    // independently of the sets — growing the window cannot
                    // refine them further, so the whole-set saturation
                    // comparison is skipped and the fixpoint concludes now.
                    // Soundness is unaffected: the concluding Alg. 1 still
                    // performs the genuine inductive proof on `s[k]`.
                    let core_saturated =
                        incremental && sess.last_core_without_state_eq() == Some(true);
                    if core_saturated || s[k] == s[k - 1] {
                        // Saturated: finish with the inductive step — in the
                        // same session when incremental.
                        let tail = if incremental {
                            self.alg1_in_session(sess, s[k].clone())
                        } else {
                            self.alg1_from(s[k].clone())
                        };
                        return merge_alg2_result(tail, iterations, start);
                    }
                    if k >= self.spec().max_unroll {
                        return Verdict::Inconclusive(InconclusiveReport {
                            cause: InconclusiveCause::UnrollLimitReached {
                                max_unroll: self.spec().max_unroll,
                            },
                            iterations,
                            total_runtime: start.elapsed(),
                        });
                    }
                    k += 1;
                    let prev = s[k - 1].clone();
                    s.push(prev);
                    if incremental {
                        // Window boundary: shed stale learnt clauses while
                        // keeping glue/locked ones — the long-session GC
                        // hook of the persistent architecture.
                        sess.ipc_mut().collect_garbage();
                    }
                }
                PropertyResult::Violated => {
                    // Find the earliest cycle with a divergence.
                    let mut removed_total = 0;
                    let mut vulnerable = None;
                    #[allow(clippy::needless_range_loop)] // `c` is the cycle index, not just a subscript
                    for c in 1..=k {
                        let diffs = sess.extract_diffs(&s[c], c);
                        if diffs.is_empty() {
                            continue;
                        }
                        if diffs.iter().any(|d| d.persistent) {
                            vulnerable = Some((diffs, c));
                            break;
                        }
                        sess.note_shrunk(&diffs);
                        removed_total += diffs.len();
                        for d in &diffs {
                            s[c].remove(&d.atom);
                        }
                    }
                    iterations.push(snap.finish(
                        sess,
                        iterations.len() + 1,
                        k,
                        set_size,
                        removed_total,
                    ));
                    if let Some((diffs, c)) = vulnerable {
                        let cex = sess.capture_cex(diffs, c, k);
                        return Verdict::Vulnerable(VulnReport {
                            iterations,
                            cex,
                            total_runtime: start.elapsed(),
                        });
                    }
                    if removed_total == 0 {
                        return Verdict::Inconclusive(InconclusiveReport {
                            cause: InconclusiveCause::NoExtractableDivergence,
                            iterations,
                            total_runtime: start.elapsed(),
                        });
                    }
                }
                PropertyResult::Interrupted(int) => {
                    iterations.push(snap.finish(sess, iterations.len() + 1, k, set_size, 0));
                    return Verdict::Inconclusive(InconclusiveReport {
                        cause: InconclusiveCause::Interrupted(int),
                        iterations,
                        total_runtime: start.elapsed(),
                    });
                }
            }
        }
    }

    /// Proves that the spec's `RegOutsideDevice` firmware constraints are
    /// *inductive*: if all constraints hold in a symbolic state and software
    /// obeys the port-write constraints, they hold one cycle later. This
    /// discharges the soundness obligation of assuming them on the symbolic
    /// starting state (paper Sec. 3.4's invariant methodology).
    ///
    /// # Errors
    ///
    /// Returns the names of registers whose constraint is not inductive.
    pub fn prove_constraints_inductive(&self) -> Result<(), Vec<String>> {
        use crate::engine::Instance;
        use crate::spec::FirmwareConstraint;
        use ssc_aig::words;

        let regs: Vec<(String, u64, u64)> = self
            .spec()
            .constraints
            .iter()
            .filter_map(|c| match c {
                FirmwareConstraint::RegOutsideDevice { reg, mask, device } => {
                    Some((reg.clone(), *mask, *device))
                }
                _ => None,
            })
            .collect();
        if regs.is_empty() {
            return Ok(());
        }
        let mut sess = Session::new(self, 1);
        let assumptions = sess.base_assumptions(1);
        let mut failing = Vec::new();
        for (reg, mask, device) in regs {
            let w = self.src().find(&reg).expect("validated");
            for inst in [Instance::A, Instance::B] {
                let post = sess.atom_word(inst, crate::atoms::StateAtom::Reg(w.id()), 1);
                let aig = sess.ipc_mut().unroller_mut().aig_mut();
                let m = words::constant(aig, ssc_netlist::Bv::new(32, mask));
                let masked = words::and(aig, &post, &m);
                let hit = words::eq_const(aig, &masked, device);
                let goal = hit.not();
                match sess.ipc_mut().check(&assumptions, goal) {
                    PropertyResult::Holds => {}
                    PropertyResult::Violated => failing.push(format!("{reg} ({inst:?})")),
                    // Fail closed: an interrupted obligation is *not proven*,
                    // so it must count as failing rather than pass silently.
                    PropertyResult::Interrupted(int) => failing
                        .push(format!("{reg} ({inst:?}) [interrupted: {}]", int.cause.code())),
                }
            }
        }
        if failing.is_empty() {
            Ok(())
        } else {
            Err(failing)
        }
    }
}

fn merge_alg2_result(
    tail: Verdict,
    mut iterations: Vec<IterationStat>,
    start: Instant,
) -> Verdict {
    match tail {
        Verdict::Secure(mut r) => {
            iterations.extend(r.iterations);
            r.iterations = iterations;
            r.total_runtime = start.elapsed();
            Verdict::Secure(r)
        }
        Verdict::Vulnerable(mut r) => {
            iterations.extend(r.iterations);
            r.iterations = iterations;
            r.total_runtime = start.elapsed();
            Verdict::Vulnerable(r)
        }
        // An inconclusive tail (e.g. an interrupt inside the concluding
        // Alg. 1) keeps the full trajectory too: the window-growth
        // iterations followed by the partial inductive ones.
        Verdict::Inconclusive(mut r) => {
            iterations.extend(r.iterations);
            r.iterations = iterations;
            r.total_runtime = start.elapsed();
            Verdict::Inconclusive(r)
        }
    }
}
