//! Verdicts, counterexamples and human-readable reports.

use std::fmt;
use std::time::Duration;

use crate::atoms::StateAtom;

/// The difference of one state atom between the two product instances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomDiff {
    /// The diverging atom.
    pub atom: StateAtom,
    /// Hierarchical name.
    pub name: String,
    /// Value in instance A.
    pub value_a: u64,
    /// Value in instance B.
    pub value_b: u64,
    /// Whether the atom is in `S_pers`.
    pub persistent: bool,
}

/// Port activity of one instance in one counterexample cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortActivity {
    /// Request strobe.
    pub req: bool,
    /// Byte address.
    pub addr: u64,
    /// Write enable.
    pub we: bool,
    /// Write data.
    pub wdata: u64,
    /// Whether the address falls in the protected range.
    pub protected: bool,
}

/// One cycle of a counterexample trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CexCycle {
    /// Cycle index within the property window.
    pub cycle: usize,
    /// Victim port of instance A.
    pub port_a: PortActivity,
    /// Victim port of instance B.
    pub port_b: PortActivity,
}

/// A complete counterexample to the UPEC-SSC property.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The cycle (state time) at which the divergence was observed.
    pub at_cycle: usize,
    /// Diverging atoms (with persistence classification).
    pub diffs: Vec<AtomDiff>,
    /// Concrete protected-range base chosen by the solver.
    pub prot_base: u64,
    /// Per-cycle victim port activity.
    pub trace: Vec<CexCycle>,
    /// Initial (cycle 0) values of every tracked atom for both instances —
    /// enables concrete replay of the symbolic starting state.
    pub initial_state: Vec<(StateAtom, String, u64, u64)>,
}

impl Counterexample {
    /// Diffs that are persistent (the exploitable ones).
    pub fn persistent_diffs(&self) -> impl Iterator<Item = &AtomDiff> {
        self.diffs.iter().filter(|d| d.persistent)
    }

    /// A one-line summary of the strongest finding.
    pub fn headline(&self) -> String {
        match self.persistent_diffs().next() {
            Some(d) => format!(
                "persistent state `{}` diverges ({:#x} vs {:#x}) at cycle {}",
                d.name, d.value_a, d.value_b, self.at_cycle
            ),
            None => format!(
                "{} transient state variable(s) diverge at cycle {}",
                self.diffs.len(),
                self.at_cycle
            ),
        }
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample at cycle {} (prot_base = {:#010x})", self.at_cycle, self.prot_base)?;
        for c in &self.trace {
            writeln!(
                f,
                "  cycle {}: A[req={} addr={:#010x} we={} prot={}]  B[req={} addr={:#010x} we={} prot={}]",
                c.cycle,
                u8::from(c.port_a.req),
                c.port_a.addr,
                u8::from(c.port_a.we),
                u8::from(c.port_a.protected),
                u8::from(c.port_b.req),
                c.port_b.addr,
                u8::from(c.port_b.we),
                u8::from(c.port_b.protected),
            )?;
        }
        for d in &self.diffs {
            writeln!(
                f,
                "  diff{}: {} = {:#x} vs {:#x}",
                if d.persistent { " [PERSISTENT]" } else { "" },
                d.name,
                d.value_a,
                d.value_b
            )?;
        }
        Ok(())
    }
}

/// Statistics of one procedure iteration.
#[derive(Clone, Debug)]
pub struct IterationStat {
    /// Iteration index (1-based).
    pub iteration: usize,
    /// Unrolled window length during this iteration (Alg. 2) or 1 (Alg. 1).
    pub window: usize,
    /// `|S|` before the check.
    pub set_size: usize,
    /// Number of atoms removed by this iteration's counterexample.
    pub removed: usize,
    /// Wall-clock time of the solver call.
    pub runtime: Duration,
    /// Total CNF-encoded AIG nodes after this iteration's check.
    pub encoded_nodes: usize,
    /// AIG nodes newly encoded *by* this iteration.
    ///
    /// For the incremental engine this is the per-window proof obligation
    /// of the persistent-session architecture: growth is bounded by the
    /// newly unrolled cycle's cone (plus the goal clause), never by a full
    /// re-encoding of the prefix.
    pub encoded_delta: usize,
    /// AIG nodes in the unrolling after this iteration.
    pub aig_nodes: usize,
    /// Solver-statistics delta attributable to this iteration's solve
    /// (cumulative gauges like `learnts` hold the post-solve value).
    pub solver: ssc_sat::SolverStats,
    /// Atoms still tracked in `S` whose equality assumption was omitted
    /// from this iteration's goal clause because no final assumption core
    /// has ever named it (unsat-core-guided atom dropping; only active at
    /// window ≥ 2 — the concluding Alg. 1 check never drops).
    pub atoms_core_dropped: usize,
    /// Goal disjuncts omitted from this iteration's clause by the *sound*
    /// static discharge: influence-certificate cleanliness plus the
    /// proven-prefix ledger. 0 under `SSC_STATIC_PRUNE=0`. Pruning never
    /// changes verdicts or refinement trajectories, so — like
    /// `atoms_core_dropped` — this counter stays out of every fingerprint.
    pub atoms_static_pruned: usize,
    /// Disjuncts actually installed in this iteration's goal clause, after
    /// static discharge and core-guided dropping. The e12 bench's
    /// goal-size-reduction ratio compares this between pruned and unpruned
    /// runs; excluded from fingerprints for the same reason as above.
    pub goal_disjuncts: usize,
    /// Cube-and-conquer escalation report, if this iteration's check was
    /// escalated to a cube race. `None` when the check stayed sequential.
    ///
    /// These are *observability* numbers: which cube won and how much work
    /// the cancelled siblings burned is schedule-dependent, so nothing in
    /// here may feed the verdict or the fingerprint.
    pub cube: Option<CubeReport>,
}

/// What a cube-and-conquer escalation of one induction check did.
///
/// Produced by the `upec-ssc` engine when a window-≥2 check trips the
/// conflict threshold (or is predicted hard) and is re-run as a race of
/// cube-constrained copy-on-write session forks. The verdict itself is
/// order-independent (any SAT cube ⇒ Violated, all cubes UNSAT ⇒ Holds);
/// everything in this struct except `cubes` and `fallback` is
/// schedule-dependent bookkeeping for the bench record.
#[derive(Clone, Debug, Default)]
pub struct CubeReport {
    /// Number of cubes spawned (always `2^split_vars`, independent of the
    /// worker count, so the partition is identical across pool sizes).
    pub cubes: usize,
    /// Index of the cube whose verdict concluded the race: the first SAT
    /// cube to finish, or `None` when every cube ran to UNSAT (or the race
    /// fell back to a sequential re-solve).
    pub winner: Option<usize>,
    /// Wall-clock µs spent inside cubes whose result was not used —
    /// cancelled losers and panicked forks. The overhead price of racing.
    pub wasted_us: u64,
    /// Conflicts each cube's solver spent, indexed by cube. Cancelled
    /// cubes report the count at the point the cancel token stopped them;
    /// panicked cubes report 0.
    pub conflicts: Vec<u64>,
    /// True when the race was inconclusive (e.g. a cube fork panicked
    /// under chaos injection without a SAT winner) and the parent session
    /// re-solved sequentially to produce the verdict.
    pub fallback: bool,
}

/// The result of a UPEC-SSC procedure run.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The design is secure w.r.t. the threat model: the final set `S` is
    /// inductive and contains all of `S_pers`.
    Secure(SecureReport),
    /// A vulnerability was found: victim behaviour reaches persistent,
    /// attacker-accessible state.
    Vulnerable(VulnReport),
    /// The procedure gave up without an answer — see
    /// [`InconclusiveReport::cause`]. Soundness of bounded effort rests on
    /// this variant: an interrupted or exhausted run is *never* mapped to
    /// `Secure` or `Vulnerable`.
    Inconclusive(InconclusiveReport),
}

/// Machine-readable cause of an inconclusive verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InconclusiveCause {
    /// The unroll bound was exhausted before the fixpoint saturated.
    UnrollLimitReached {
        /// The bound that was exhausted.
        max_unroll: usize,
    },
    /// A violated check whose model shows no observable state difference
    /// (diagnostic; points at a modelling gap).
    NoObservableDifference,
    /// A violated check without an extractable divergence in any cycle
    /// (diagnostic; points at a modelling gap).
    NoExtractableDivergence,
    /// A solver call was stopped by its resource budget or a cancellation
    /// before reaching an answer.
    Interrupted(ssc_sat::Interrupt),
}

impl InconclusiveCause {
    /// Stable machine-readable code (used in fingerprints and reports).
    /// Interrupts encode their [`ssc_sat::InterruptCause`], e.g.
    /// `"interrupt:conflict-budget"`.
    pub fn code(&self) -> &'static str {
        use ssc_sat::InterruptCause::*;
        match self {
            InconclusiveCause::UnrollLimitReached { .. } => "unroll-limit",
            InconclusiveCause::NoObservableDifference => "no-observable-difference",
            InconclusiveCause::NoExtractableDivergence => "no-extractable-divergence",
            InconclusiveCause::Interrupted(int) => match int.cause {
                Conflicts => "interrupt:conflict-budget",
                Propagations => "interrupt:propagation-budget",
                Deadline => "interrupt:deadline",
                Cancelled => "interrupt:cancelled",
            },
        }
    }

    /// The interrupt record, if this cause is [`InconclusiveCause::Interrupted`].
    pub fn interrupt(&self) -> Option<&ssc_sat::Interrupt> {
        match self {
            InconclusiveCause::Interrupted(int) => Some(int),
            _ => None,
        }
    }
}

impl fmt::Display for InconclusiveCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InconclusiveCause::UnrollLimitReached { max_unroll } => {
                write!(f, "no fixpoint within the unroll bound of {max_unroll} cycles")
            }
            InconclusiveCause::NoObservableDifference => {
                f.write_str("solver produced a model without an observable state difference")
            }
            InconclusiveCause::NoExtractableDivergence => {
                f.write_str("counterexample without an extractable divergence")
            }
            InconclusiveCause::Interrupted(int) => {
                write!(f, "solve interrupted ({})", int.cause.code())
            }
        }
    }
}

/// Report for a run that gave up: why, and the partial iteration
/// trajectory completed before the stop (the interrupted iteration is
/// included last, with the work it performed up to the interrupt).
#[derive(Clone, Debug)]
pub struct InconclusiveReport {
    /// Why the run gave up.
    pub cause: InconclusiveCause,
    /// Per-iteration statistics up to (and including) the aborted one.
    pub iterations: Vec<IterationStat>,
    /// Total wall-clock time until the stop.
    pub total_runtime: Duration,
}

impl Verdict {
    /// `true` for [`Verdict::Secure`].
    pub fn is_secure(&self) -> bool {
        matches!(self, Verdict::Secure(_))
    }

    /// `true` for [`Verdict::Vulnerable`].
    pub fn is_vulnerable(&self) -> bool {
        matches!(self, Verdict::Vulnerable(_))
    }

    /// The iteration statistics of the run (for an inconclusive run, the
    /// partial trajectory up to the stop).
    pub fn iterations(&self) -> &[IterationStat] {
        match self {
            Verdict::Secure(r) => &r.iterations,
            Verdict::Vulnerable(r) => &r.iterations,
            Verdict::Inconclusive(r) => &r.iterations,
        }
    }
}

/// Report for a secure design.
#[derive(Clone, Debug)]
pub struct SecureReport {
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStat>,
    /// Size of the final inductive set `S`.
    pub final_set_size: usize,
    /// Names of atoms removed from `S` along the way (influenced but
    /// transient).
    pub removed_atoms: Vec<String>,
    /// Total wall-clock time.
    pub total_runtime: Duration,
}

/// Report for a vulnerable design.
#[derive(Clone, Debug)]
pub struct VulnReport {
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStat>,
    /// The exploitable counterexample.
    pub cex: Counterexample,
    /// Total wall-clock time.
    pub total_runtime: Duration,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Secure(r) => write!(
                f,
                "SECURE after {} iteration(s); inductive |S| = {}; {} transient atom(s) excluded; total {:.2?}",
                r.iterations.len(),
                r.final_set_size,
                r.removed_atoms.len(),
                r.total_runtime
            ),
            Verdict::Vulnerable(r) => write!(
                f,
                "VULNERABLE after {} iteration(s): {} (total {:.2?})",
                r.iterations.len(),
                r.cex.headline(),
                r.total_runtime
            ),
            Verdict::Inconclusive(r) => write!(
                f,
                "INCONCLUSIVE [{}]: {} after {} iteration(s) (total {:.2?})",
                r.cause.code(),
                r.cause,
                r.iterations.len(),
                r.total_runtime
            ),
        }
    }
}
