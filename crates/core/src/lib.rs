//! # upec-ssc — UPEC for System Side Channels
//!
//! The core contribution of *MCU-Wide Timing Side Channels and Their
//! Detection* (DAC 2024), reimplemented on the `ssc-*` stack:
//!
//! - [`atoms`]: state variables (`S_all`, `S_not_victim`) and the
//!   persistence policy compiling `S_pers`,
//! - [`UpecSpec`]: the verification specification — victim port, symbolic
//!   protected address ranges, victim-allocatable devices, firmware
//!   constraints of a countermeasure,
//! - [`ProductArtifact`]: the scenario-independent 2-safety product (two
//!   instances of the design in one netlist), built once per design and
//!   `Arc`-shared across every scenario analysis of that design,
//! - [`UpecAnalysis`]: a thin binding of a spec to a (possibly shared)
//!   artifact, plus the paper's property macros
//!   (`Primary_Input_Constraints`, `Victim_Task_Executing`,
//!   `State_Equivalence(S)`),
//! - [`UpecAnalysis::alg1`]: the 2-cycle iterative fixpoint procedure
//!   (paper Alg. 1) — *bounded property, unbounded proof*,
//! - [`UpecAnalysis::alg2`]: the unrolled procedure (paper Alg. 2)
//!   producing explicit multi-cycle counterexamples,
//! - [`UpecAnalysis::prove_constraints_inductive`]: discharges the
//!   invariant obligations behind countermeasure assumptions,
//! - [`Verdict`]/[`Counterexample`]: machine-checkable reports, including
//!   the full symbolic-start state for concrete replay on `ssc-sim`.
//!
//! # The persistent proof session
//!
//! Both procedures run inside **one incremental SAT session** per analysis
//! ([`Session`]): Alg. 2 grows its [`ssc_ipc::Unroller`] and CNF encoding
//! in place as the property window extends, and on saturation hands the
//! *same* session to the final Alg. 1 induction
//! ([`UpecAnalysis::alg1_in_session`]). Three mechanisms keep the solver
//! valid while the property changes shape:
//!
//! - the standing assumptions are cached per cycle and only *appended*
//!   when the window grows ([`Session::base_assumptions`] copies out of
//!   the cache),
//! - per-atom state-equality terms are cached ([`Session::atom_eq_term`]),
//!   so shrinking a state set between fixpoint iterations reuses every
//!   surviving atom's encoding,
//! - the negated goal is a clause guarded by an *activation literal*
//!   ([`Session::check_window`]); retiring the literal removes the
//!   obligation while the learnt-clause database carries over, and
//!   `ssc_ipc::Ipc::collect_garbage` sheds stale learnt clauses at window
//!   boundaries.
//!
//! # Shared artifacts and copy-on-write session forks
//!
//! A session splits along the scenario boundary. The **scenario-
//! independent** half — product unrolling, input-equality and victim
//! macros, range-alignment validity, and the state-equality cone of every
//! `S_not_victim` atom — lives in a [`SessionPrefix`], eagerly encoded
//! into the solver at construction. The **scenario** half (device-window
//! validity, firmware constraints, quiescing) is a second assumption
//! ledger [`Session::with_prefix`] adds on top.
//!
//! That split is what makes a portfolio cheap: build one
//! [`ProductArtifact`] and one prefix per SoC size, then
//! [`SessionPrefix::fork`] per scenario — a copy-on-write snapshot of the
//! encoded solver state (`ssc_ipc::Ipc::fork`) that inherits the shared
//! encoding *and* everything the solver learnt on it, instead of paying
//! product construction + prefix encoding once per cell.
//! [`Session::new`] routes through the same prefix construction, so a
//! forked session is state-identical to a privately built one — verdicts,
//! refinement trajectories, even the encoding counters (asserted by
//! `tests/incremental_crosscheck.rs`).
//!
//! Two re-solve tunings keep consecutive checks of one session fast: the
//! solver seeds VSIDS activity from the previous check's assumption core
//! (`ssc_sat::SolverStats::core_seeds` counts it), and
//! [`Session::check_window`] orders the pre-state equality assumptions
//! most-recently-shrunk-atoms-first ([`Session::note_shrunk`]).
//!
//! # Cube-and-conquer escalation
//!
//! One window-2 induction check dominates the runtime of every secure
//! portfolio cell (60–70% of cell wall clock in `BENCH_e9_portfolio.json`),
//! and portfolio-level parallelism cannot help a serial critical path. So
//! [`Session::check_window`] *escalates* hard checks instead of grinding
//! through them: a check at window ≥ 2 under an unlimited budget first
//! runs as a sequential **probe** capped at
//! [`CubeConfig::conflict_threshold`] conflicts. Cheap checks finish
//! inside the cap and never pay anything; a check that exhausts it (or
//! whose window already escalated once — then it is *predicted hard* and
//! the probe is skipped) is re-run as a **cube race**:
//!
//! - the engine picks `j = ` [`CubeConfig::split_vars`] split variables —
//!   the most VSIDS-active free solver variables not already fixed by the
//!   check's assumptions (`ssc_ipc::Ipc::top_vars`), i.e. exactly where
//!   the probe's search struggled — and forms all `2^j` sign combinations
//!   (**cubes**, a complete partition of the search space),
//! - each cube gets its own copy-on-write session fork
//!   (`ssc_ipc::Ipc::fork_with_budget` — a handful of memcpys) with a
//!   private budget carrying a shared [`CancelToken`] and a per-cube
//!   [`cube_tag`] chaos tag, and solves the original assumptions *plus*
//!   its cube literals,
//! - the forks race across `ssc_pool::Pool::race`: the **first SAT cube
//!   cancels its siblings** and the parent re-solves (sequentially,
//!   unlimited) to obtain a schedule-independent counterexample model;
//!   **all-UNSAT concludes UNSAT**, with the union of the cube cores
//!   (cube literals stripped) serving as the check's assumption core.
//!
//! Both race outcomes are independent of racing order and worker count —
//! *any* SAT cube proves the formula satisfiable, and UNSAT needs *all*
//! cubes — so verdicts stay deterministic by construction: the
//! `ssc-bench` fingerprint machinery asserts identical trajectories
//! across `SSC_POOL_WORKERS` 1/2/4 and shuffled cube orderings. A cube
//! that dies (fault injection, see `ssc_sat::chaos`) is isolated by the
//! pool; without a SAT sibling its subspace counts as unverified and the
//! parent falls back to the sequential solve — a failed or cancelled cube
//! never decides a verdict. Per-race observability (cubes spawned, winner
//! index, cancelled-cube wasted wall clock, conflicts per cube) lands in
//! [`CubeReport`] on [`IterationStat::cube`].
//!
//! Escalation composes with portfolio parallelism rather than replacing
//! it: during a portfolio's serial tail, idle workers become cube
//! workers. Configuration comes from [`CubeConfig::from_env`]
//! (`SSC_CUBE_ESCALATE`, `SSC_CUBE_CONFLICT_THRESHOLD`,
//! `SSC_CUBE_SPLIT_VARS`, `SSC_CUBE_ORDER_SEED`) or explicitly via
//! [`Session::set_cube_config`]. With the switch unset, escalation is on
//! exactly when the cube pool has a second worker to race on: a
//! single-worker race serializes the cubes and can only lose to the
//! sequential solve it replaced (`SSC_CUBE_ESCALATE=1` still forces it,
//! which is how the determinism suite exercises one-worker races).
//!
//! The same assumption-core plumbing feeds **unsat-core-guided atom
//! dropping**: a tracked atom whose pre-state equality assumption has
//! been offered to a core-reporting check but never appeared in any final
//! assumption core has never carried a proof, so window-≥ 2 checks omit
//! its divergence disjunct from the goal clause
//! ([`IterationStat::atoms_core_dropped`] counts the omissions). Dropping
//! only weakens the negated goal — it can steer the Alg. 2 window search
//! but never fake a verdict, because the concluding window-1 Alg. 1 check
//! always proves the genuine induction with the full goal.
//!
//! # Static influence analysis — sound goal pruning
//!
//! A second, *sound* pruning layer sits in front of core-guided dropping.
//! [`SessionPrefix::build`] compiles a [`StaticCertificate`] from
//! `ssc_netlist::influence`: the sequential influence graph of the design
//! plus the per-check divergence closure — a BFS assigning every state
//! element the minimal number of clock steps from any divergence source
//! (the victim-port inputs; state elements outside the cycle-0 equality
//! assumption; and every victim-allocatable device memory, whose words'
//! cycle-0 assumption is only the range-guarded `in_range ∨ eq`). An atom
//! whose element sits strictly deeper than the goal cycle — or is
//! unreachable outright — **provably cannot differ** at that cycle, so
//! [`Session::check_window`] omits its disjunct from the goal clause
//! without weakening the property: the omitted disjunct is false in every
//! model. A **proven-prefix ledger** composes with it: once a window
//! `Holds`, every non-core-dropped goal pair `(atom, cycle)` it covered is
//! discharged for all larger windows under the same pre-state set, because
//! the larger window's standing assumptions are a strict superset of the
//! proving check's. [`IterationStat::atoms_static_pruned`] counts both;
//! [`IterationStat::goal_disjuncts`] reports the installed clause size.
//!
//! The soundness contrast with core-guided dropping matters: static
//! discharge removes only provably-false disjuncts, so it applies to
//! *every* check — window-1, the concluding Alg. 1 induction, everything —
//! and needs no backstop. Core-guided dropping is a heuristic that can
//! remove live disjuncts, so it is confined to window ≥ 2 and leans on
//! the full-goal window-1 check. The two compose per disjunct:
//! certificate first, ledger second, heuristic last. `SSC_STATIC_PRUNE=0`
//! ([`STATIC_PRUNE_ENV`]) switches the static layer off; the
//! `static_prune_crosscheck` suite proves verdicts, refinement
//! trajectories and fingerprints identical either way, and
//! [`atoms::statically_clean`] exposes the certificate's forever-clean
//! subset as a standalone query.
//!
//! # Bounded effort & graceful degradation
//!
//! Every procedure can run under a resource [`Budget`] (per-solve conflict
//! / propagation limits, a wall-clock deadline, a shareable [`CancelToken`]):
//! install it with [`Session::set_budget`] or use the
//! [`UpecAnalysis::alg2_budgeted`] entry point. A solver call whose budget
//! runs out is converted into [`Verdict::Inconclusive`] carrying the
//! machine-readable [`InconclusiveCause`] and the **partial iteration
//! trajectory** up to the stop — exhaustion never panics. The soundness
//! argument is simple and structural: `Unknown`/`Interrupted` results are
//! *never* mapped to `Secure` or `Vulnerable` anywhere in the stack (and
//! [`UpecAnalysis::prove_constraints_inductive`] fails closed, counting an
//! interrupted obligation as unproven), so a budgeted run can only ever
//! degrade from an answer to an explicit "gave up", never to a wrong
//! verdict. Counter-based budgets interrupt deterministically: the same
//! scenario under the same budget reproduces the same cause and the same
//! partial trajectory.
//!
//! [`IterationStat`] records the proof of incrementality per iteration:
//! `encoded_delta` (new CNF work, bounded by the newly unrolled cycle's
//! cone), plus solver-statistics deltas (conflicts, propagations,
//! restarts, learnt counts, database reductions, GCs) and wall time. The
//! tear-down-per-check reference engine
//! ([`UpecAnalysis::alg2_fresh_baseline`]) remains available as the
//! semantic cross-check oracle and performance baseline.
//!
//! # Example: detecting the HWPE/memory channel and proving the fix
//!
//! ```no_run
//! use ssc_soc::Soc;
//! use upec_ssc::{UpecAnalysis, UpecSpec};
//!
//! let soc = Soc::verification_view();
//! // Vulnerable configuration: victim data in the shared public memory.
//! let vuln = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
//! assert!(vuln.alg1().is_vulnerable());
//!
//! // Countermeasure: victim data in private memory + firmware constraints.
//! let fixed = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).unwrap();
//! fixed.prove_constraints_inductive().unwrap();
//! assert!(fixed.alg1().is_secure());
//! ```

#![warn(missing_docs)]

pub mod atoms;
mod engine;
mod extensions;
mod procedure;
mod replay;
mod report;
mod spec;

pub use atoms::{
    atom_handle, statically_clean, AtomSet, PersistencePolicy, StateAtom, StaticCertificate,
};
pub use engine::{
    cube_tag, parse_static_prune_env, static_prune_from_env, CubeConfig, Instance,
    ProductArtifact, Session, SessionPrefix, UpecAnalysis, CUBE_ESCALATE_ENV,
    CUBE_ORDER_SEED_ENV, CUBE_SPLIT_VARS_ENV, CUBE_THRESHOLD_ENV, STATIC_PRUNE_ENV,
};
pub use extensions::ChannelFinding;
pub use replay::{replay_neighborhood, replay_on_simulator, NeighborhoodReport, Perturbation};
pub use report::{
    AtomDiff, CexCycle, Counterexample, CubeReport, InconclusiveCause, InconclusiveReport,
    IterationStat, PortActivity, SecureReport, Verdict, VulnReport,
};
pub use ssc_sat::{Budget, CancelToken, Interrupt, InterruptCause};
pub use spec::{DeviceMap, FirmwareConstraint, IpPort, UpecSpec, VictimPort};
