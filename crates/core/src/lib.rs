//! # upec-ssc — UPEC for System Side Channels
//!
//! The core contribution of *MCU-Wide Timing Side Channels and Their
//! Detection* (DAC 2024), reimplemented on the `ssc-*` stack:
//!
//! - [`atoms`]: state variables (`S_all`, `S_not_victim`) and the
//!   persistence policy compiling `S_pers`,
//! - [`UpecSpec`]: the verification specification — victim port, symbolic
//!   protected address ranges, victim-allocatable devices, firmware
//!   constraints of a countermeasure,
//! - [`UpecAnalysis`]: the 2-safety product (two instances of the design in
//!   one netlist) plus the paper's property macros
//!   (`Primary_Input_Constraints`, `Victim_Task_Executing`,
//!   `State_Equivalence(S)`),
//! - [`UpecAnalysis::alg1`]: the 2-cycle iterative fixpoint procedure
//!   (paper Alg. 1) — *bounded property, unbounded proof*,
//! - [`UpecAnalysis::alg2`]: the unrolled procedure (paper Alg. 2)
//!   producing explicit multi-cycle counterexamples,
//! - [`UpecAnalysis::prove_constraints_inductive`]: discharges the
//!   invariant obligations behind countermeasure assumptions,
//! - [`Verdict`]/[`Counterexample`]: machine-checkable reports, including
//!   the full symbolic-start state for concrete replay on `ssc-sim`.
//!
//! # Example: detecting the HWPE/memory channel and proving the fix
//!
//! ```no_run
//! use ssc_soc::Soc;
//! use upec_ssc::{UpecAnalysis, UpecSpec};
//!
//! let soc = Soc::verification_view();
//! // Vulnerable configuration: victim data in the shared public memory.
//! let vuln = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_vulnerable()).unwrap();
//! assert!(vuln.alg1().is_vulnerable());
//!
//! // Countermeasure: victim data in private memory + firmware constraints.
//! let fixed = UpecAnalysis::new(&soc.netlist, UpecSpec::soc_fixed()).unwrap();
//! fixed.prove_constraints_inductive().unwrap();
//! assert!(fixed.alg1().is_secure());
//! ```

#![warn(missing_docs)]

pub mod atoms;
mod engine;
mod extensions;
mod procedure;
mod replay;
mod report;
mod spec;

pub use atoms::{AtomSet, PersistencePolicy, StateAtom};
pub use engine::{Instance, Session, UpecAnalysis};
pub use extensions::ChannelFinding;
pub use replay::replay_on_simulator;
pub use report::{
    AtomDiff, CexCycle, Counterexample, IterationStat, PortActivity, SecureReport, Verdict,
    VulnReport,
};
pub use spec::{DeviceMap, FirmwareConstraint, IpPort, UpecSpec, VictimPort};
