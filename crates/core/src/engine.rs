//! The 2-safety product and the UPEC-SSC property macros.
//!
//! [`UpecAnalysis`] instantiates the design under verification **twice**
//! inside one product netlist (instances `a` and `b`), adds the shared
//! symbolic protected-range base, and provides the paper's property macros
//! (Fig. 3):
//!
//! * `Primary_Input_Constraints` — non-port inputs equal between instances,
//! * `Victim_Task_Executing` — protected accesses may differ, all other
//!   port activity is equal,
//! * `State_Equivalence(S)` — equality of a state-atom set, with symbolic
//!   range guards on victim-allocatable memory words.

use std::collections::HashMap;

use ssc_aig::fx::FxHashMap;
use ssc_aig::words::{self, Word};
use ssc_aig::AigRef;
use ssc_ipc::{Ipc, PropertyResult};
use ssc_netlist::{ImportMap, MemId, Netlist, Node, Wire};
use ssc_sat::Lit;

use crate::atoms::{self, AtomSet, StateAtom};
use crate::report::{AtomDiff, CexCycle, Counterexample, PortActivity};
use crate::spec::{FirmwareConstraint, UpecSpec};

/// Instance selector within the product.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instance {
    /// Instance `a`.
    A,
    /// Instance `b`.
    B,
}

/// A UPEC-SSC analysis context: the product netlist plus the specification.
///
/// Create once per design/spec pair, then run [`UpecAnalysis::alg1`] /
/// [`UpecAnalysis::alg2`] (see `procedure.rs`).
pub struct UpecAnalysis {
    src: Netlist,
    product: Netlist,
    spec: UpecSpec,
    map_a: ImportMap,
    map_b: ImportMap,
    prot_base: Wire,
    /// Source-netlist port wires (inputs).
    port_src: PortSrc,
    /// Victim-allocatable device base per source memory.
    device_base: HashMap<MemId, u64>,
}

#[derive(Clone, Copy, Debug)]
struct PortSrc {
    req: Wire,
    addr: Wire,
    we: Wire,
    wdata: Wire,
}

impl std::fmt::Debug for UpecAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpecAnalysis")
            .field("design", &self.src.name())
            .field("product_nodes", &self.product.num_nodes())
            .finish()
    }
}

impl UpecAnalysis {
    /// Builds the 2-safety product for `src` under `spec`.
    ///
    /// # Errors
    ///
    /// Returns a message if the spec references signals/memories that do
    /// not exist, or the port signals are not free inputs (i.e. the netlist
    /// is not a verification view).
    pub fn new(src: &Netlist, spec: UpecSpec) -> Result<Self, String> {
        let find_input = |name: &str| -> Result<Wire, String> {
            let w = src
                .find(name)
                .ok_or_else(|| format!("port signal `{name}` not found"))?;
            match src.node(w.id()) {
                Node::Input { .. } => Ok(w),
                _ => Err(format!(
                    "port signal `{name}` is not a free input — use the verification view"
                )),
            }
        };
        let port_src = PortSrc {
            req: find_input(&spec.port.req)?,
            addr: find_input(&spec.port.addr)?,
            we: find_input(&spec.port.we)?,
            wdata: find_input(&spec.port.wdata)?,
        };
        let mut device_base = HashMap::new();
        for dev in &spec.devices {
            let mem = src
                .find_mem(&dev.mem_name)
                .ok_or_else(|| format!("device memory `{}` not found", dev.mem_name))?;
            device_base.insert(mem, dev.base);
        }
        for c in &spec.constraints {
            if let FirmwareConstraint::RegOutsideDevice { reg, .. } = c {
                src.find(reg)
                    .ok_or_else(|| format!("constraint register `{reg}` not found"))?;
            }
        }
        for ip in &spec.ip_ports {
            for name in [&ip.req, &ip.addr] {
                src.find(name)
                    .ok_or_else(|| format!("IP port signal `{name}` not found"))?;
            }
        }
        for name in &spec.quiesced_ips {
            let w = src
                .find(name)
                .ok_or_else(|| format!("quiesced IP flag `{name}` not found"))?;
            if !matches!(src.node(w.id()), Node::Reg(_)) {
                return Err(format!("quiesced IP flag `{name}` must be a register"));
            }
        }

        let mut product = Netlist::new(format!("{}_upec_product", src.name()));
        let map_a = product.import(src, "a");
        let map_b = product.import(src, "b");
        let prot_base = product.input("prot_base", 32);
        product.check().map_err(|e| format!("product netlist invalid: {e}"))?;

        Ok(UpecAnalysis {
            src: src.clone(),
            product,
            spec,
            map_a,
            map_b,
            prot_base,
            port_src,
            device_base,
        })
    }

    /// The design under verification (single instance).
    pub fn src(&self) -> &Netlist {
        &self.src
    }

    /// The 2-safety product netlist.
    pub fn product(&self) -> &Netlist {
        &self.product
    }

    /// The specification.
    pub fn spec(&self) -> &UpecSpec {
        &self.spec
    }

    /// Compiles `S_not_victim` (paper Def. 1).
    pub fn s_not_victim(&self) -> AtomSet {
        atoms::not_victim_atoms(&self.src)
    }

    /// Compiles `S_pers` (paper Def. 2) under the spec's policy.
    pub fn s_pers(&self) -> AtomSet {
        self.spec.persistence.pers_atoms(&self.src)
    }

    /// Is `atom` persistent under the spec's policy?
    pub fn is_persistent(&self, atom: StateAtom) -> bool {
        self.spec.persistence.is_persistent(&self.src, atom)
    }

    /// Human-readable atom name.
    pub fn atom_name(&self, atom: StateAtom) -> String {
        atoms::atom_name(&self.src, atom)
    }

    fn map(&self, inst: Instance) -> &ImportMap {
        match inst {
            Instance::A => &self.map_a,
            Instance::B => &self.map_b,
        }
    }
}

/// A *persistent* proof session: the product unrolled over a growing
/// window, with macro construction and counterexample extraction.
///
/// One session is designed to serve an **entire procedure run** — all
/// windows of Alg. 2 *and* the Alg. 1 fixpoint that finishes it — against
/// one SAT solver, so learnt clauses carry over and nothing is re-encoded:
///
/// - the standing assumptions (range validity, firmware constraints,
///   quiescing, per-cycle input equality and victim macro) are cached in
///   `base` and only *extended* when the window grows ([`Session::ensure_window`]);
/// - per-atom state-equality terms are cached in `eq_terms`, so shrinking a
///   state set between fixpoint iterations reuses every surviving atom's
///   AIG cone and CNF encoding;
/// - the negated proof goal is installed as an activation-literal-guarded
///   clause ([`Session::check_window`]) and retired when the sets change,
///   which removes the obligation without invalidating the learnt-clause
///   database.
pub struct Session<'p> {
    /// The underlying interval property checker (exposed so downstream
    /// experiment harnesses can time individual checks).
    pub ipc: Ipc<'p>,
    an: &'p UpecAnalysis,
    /// Cached standing assumptions: the window-invariant block first, then
    /// one block per unrolled cycle.
    base: Vec<AigRef>,
    /// `base[..base_offsets[w]]` is the assumption set valid for a
    /// `w`-transition window (`base_offsets[0]` ends the invariant block).
    base_offsets: Vec<usize>,
    /// `(atom, t)` → guarded equality term, shared by every check that
    /// mentions the atom at that time.
    eq_terms: FxHashMap<(StateAtom, usize), AigRef>,
    /// Scratch assumption-literal buffer reused across checks.
    lit_buf: Vec<Lit>,
    /// After a `Holds` from [`Session::check_window`]: whether the
    /// assumption core avoided every pre-state atom-equality assumption
    /// (`None` after a violated check).
    last_core_without_state_eq: Option<bool>,
}

impl<'p> Session<'p> {
    /// Opens a session with `window` transitions unrolled (states
    /// `0..=window` available).
    pub fn new(an: &'p UpecAnalysis, window: usize) -> Self {
        let ipc = Ipc::new(&an.product);
        let mut sess = Session {
            ipc,
            an,
            base: Vec::new(),
            base_offsets: Vec::new(),
            eq_terms: FxHashMap::default(),
            lit_buf: Vec::new(),
            last_core_without_state_eq: None,
        };
        // Window-invariant standing assumptions: symbolic-range validity,
        // starting-state firmware constraints, IP quiescing.
        let mut invariant = sess.range_validity();
        invariant.extend(sess.firmware_state_assumptions());
        invariant.extend(sess.quiescing_assumptions());
        sess.base = invariant;
        sess.base_offsets.push(sess.base.len());
        sess.ensure_window(window.max(1));
        sess
    }

    /// Grows the window to `window` transitions, extending the unrolling
    /// and the cached standing assumptions by exactly the new cycles.
    pub fn ensure_window(&mut self, window: usize) {
        self.ipc.unroller_mut().ensure_cycle(window.saturating_sub(1));
        while self.base_offsets.len() <= window {
            let cycle = self.base_offsets.len() - 1;
            let mut block = self.input_eq(cycle);
            block.extend(self.victim_macro(cycle));
            block.extend(self.firmware_port_assumptions(cycle));
            self.base.extend(block);
            self.base_offsets.push(self.base.len());
        }
    }

    /// The number of transitions the session currently supports.
    pub fn window(&self) -> usize {
        self.base_offsets.len() - 1
    }

    /// Solver statistics (for experiment reporting).
    pub fn solver_stats(&self) -> ssc_sat::SolverStats {
        self.ipc.solver_stats()
    }

    /// Cumulative count of CNF-encoded AIG nodes (see
    /// [`Ipc::encoded_nodes`]); deltas of this counter prove the per-window
    /// encoding work of the incremental engine is bounded by the newly
    /// unrolled cycle's cone.
    pub fn encoded_nodes(&self) -> usize {
        self.ipc.encoded_nodes()
    }

    // ------------------------------------------------------------------
    // Word access
    // ------------------------------------------------------------------

    fn input_word(&self, inst: Instance, src_wire: Wire, cycle: usize) -> Word {
        let mapped = self.an.map(inst).signal(src_wire.id());
        let w = self.an.product.wire_of(mapped);
        self.ipc.unroller().input(w, cycle).clone()
    }

    /// The value of an arbitrary source-netlist signal in `inst` during
    /// `cycle`.
    pub fn signal_word(&self, inst: Instance, src_wire: Wire, cycle: usize) -> Word {
        let mapped = self.an.map(inst).signal(src_wire.id());
        let w = self.an.product.wire_of(mapped);
        self.ipc.unroller().signal(w, cycle).clone()
    }

    /// The shared protected-range base (cycle-0 symbol; the base is an
    /// allocation-time constant, so one symbol serves all cycles).
    fn prot_word(&self) -> Word {
        self.ipc.unroller().input(self.an.prot_base, 0).clone()
    }

    /// The state word of `atom` in `inst` at time `t`.
    pub fn atom_word(&self, inst: Instance, atom: StateAtom, t: usize) -> Word {
        match atom {
            StateAtom::Reg(id) => {
                let mapped = self.an.map(inst).signal(id);
                self.ipc.unroller().reg_state(mapped, t).clone()
            }
            StateAtom::MemWord(mem, i) => {
                let mapped = self.an.map(inst).mem(mem);
                self.ipc.unroller().mem_word_state(mapped, i, t).clone()
            }
        }
    }

    // ------------------------------------------------------------------
    // Macros
    // ------------------------------------------------------------------

    /// `in_range(addr) = (addr & range_mask) == prot_base`.
    fn in_range(&mut self, addr: &Word) -> AigRef {
        let prot = self.prot_word();
        let mask = self.an.spec.range_mask;
        let aig = self.ipc.unroller_mut().aig_mut();
        let mask_w = words::constant(aig, ssc_netlist::Bv::new(32, mask));
        let masked = words::and(aig, addr, &mask_w);
        words::eq(aig, &masked, &prot)
    }

    /// For a guarded memory word: the literal "this word lies in the
    /// protected range" (a function of `prot_base` only).
    fn word_in_range(&mut self, mem: MemId, index: u32) -> Option<AigRef> {
        let base = *self.an.device_base.get(&mem)?;
        let addr = (base + 4 * u64::from(index)) & self.an.spec.range_mask;
        let prot = self.prot_word();
        let aig = self.ipc.unroller_mut().aig_mut();
        Some(words::eq_const(aig, &prot, addr))
    }

    /// Validity of the symbolic range: aligned to the mask, and (if
    /// specified) inside the designated device window.
    pub fn range_validity(&mut self) -> Vec<AigRef> {
        let prot = self.prot_word();
        let spec_mask = self.an.spec.range_mask;
        let dev_mask = self.an.spec.device_mask;
        let in_dev = self.an.spec.range_in_device;
        let aig = self.ipc.unroller_mut().aig_mut();
        let mut out = Vec::new();
        // Alignment: bits outside the mask are zero.
        let inv = words::constant(aig, ssc_netlist::Bv::new(32, !spec_mask));
        let low = words::and(aig, &prot, &inv);
        out.push(words::eq_const(aig, &low, 0));
        if let Some(dev) = in_dev {
            let dm = words::constant(aig, ssc_netlist::Bv::new(32, dev_mask));
            let masked = words::and(aig, &prot, &dm);
            out.push(words::eq_const(aig, &masked, dev));
        }
        out
    }

    /// `Primary_Input_Constraints` at `cycle`: all non-port inputs equal
    /// between the instances.
    pub fn input_eq(&mut self, cycle: usize) -> Vec<AigRef> {
        let port = [
            self.an.port_src.req.id(),
            self.an.port_src.addr.id(),
            self.an.port_src.we.id(),
            self.an.port_src.wdata.id(),
        ];
        let inputs: Vec<Wire> = self
            .an
            .src
            .iter_nodes()
            .filter_map(|(id, node)| match node {
                Node::Input { .. } if !port.contains(&id) => Some(self.an.src.wire_of(id)),
                _ => None,
            })
            .collect();
        let mut out = Vec::new();
        for w in inputs {
            let a = self.input_word(Instance::A, w, cycle);
            let b = self.input_word(Instance::B, w, cycle);
            let aig = self.ipc.unroller_mut().aig_mut();
            out.push(words::eq(aig, &a, &b));
        }
        out
    }

    /// `Victim_Task_Executing` at `cycle` (paper Sec. 3.3): accesses to
    /// protected addresses may differ between the instances (they are the
    /// confidential information); all other accesses are equal.
    pub fn victim_macro(&mut self, cycle: usize) -> Vec<AigRef> {
        let p = self.an.port_src;
        let req_a = self.input_word(Instance::A, p.req, cycle);
        let req_b = self.input_word(Instance::B, p.req, cycle);
        let addr_a = self.input_word(Instance::A, p.addr, cycle);
        let addr_b = self.input_word(Instance::B, p.addr, cycle);
        let we_a = self.input_word(Instance::A, p.we, cycle);
        let we_b = self.input_word(Instance::B, p.we, cycle);
        let wd_a = self.input_word(Instance::A, p.wdata, cycle);
        let wd_b = self.input_word(Instance::B, p.wdata, cycle);

        let in_a = self.in_range(&addr_a);
        let in_b = self.in_range(&addr_b);
        let aig = self.ipc.unroller_mut().aig_mut();

        let norm_a = aig.and(req_a[0], in_a.not());
        let norm_b = aig.and(req_b[0], in_b.not());

        let mut out = Vec::new();
        // Non-protected activity is identical in both instances.
        out.push(aig.xnor(norm_a, norm_b));
        let addr_eq = words::eq(aig, &addr_a, &addr_b);
        let we_eq = aig.xnor(we_a[0], we_b[0]);
        let wd_eq = words::eq(aig, &wd_a, &wd_b);
        out.push(aig.implies(norm_a, addr_eq));
        out.push(aig.implies(norm_a, we_eq));
        out.push(aig.implies(norm_a, wd_eq));

        // Threat-model restriction: spying IPs have no direct access to the
        // protected range — their bus requests never target it.
        let ip_ports = self.an.spec.ip_ports.clone();
        for ip in &ip_ports {
            let req_w = self.an.src.find(&ip.req).expect("validated in new()");
            let addr_w = self.an.src.find(&ip.addr).expect("validated in new()");
            for inst in [Instance::A, Instance::B] {
                let req = self.signal_word(inst, req_w, cycle);
                let addr = self.signal_word(inst, addr_w, cycle);
                let hit = self.in_range(&addr);
                let aig = self.ipc.unroller_mut().aig_mut();
                out.push(aig.implies(req[0], hit.not()));
            }
        }
        out
    }

    /// Firmware-constraint assumptions on the symbolic *starting state*
    /// (the window-invariant half of the constraints).
    pub fn firmware_state_assumptions(&mut self) -> Vec<AigRef> {
        let mut out = Vec::new();
        let constraints = self.an.spec.constraints.clone();
        for c in &constraints {
            if let FirmwareConstraint::RegOutsideDevice { reg, mask, device } = c {
                let w = self.an.src.find(reg).expect("validated in new()");
                for inst in [Instance::A, Instance::B] {
                    let state = self.atom_word(inst, StateAtom::Reg(w.id()), 0);
                    let aig = self.ipc.unroller_mut().aig_mut();
                    let m = words::constant(aig, ssc_netlist::Bv::new(32, *mask));
                    let masked = words::and(aig, &state, &m);
                    let hit = words::eq_const(aig, &masked, *device);
                    out.push(hit.not());
                }
            }
        }
        out
    }

    /// Firmware port-write constraints for one `cycle` (the per-cycle half
    /// of the constraints, appended as the window grows).
    pub fn firmware_port_assumptions(&mut self, cycle: usize) -> Vec<AigRef> {
        let mut out = Vec::new();
        let constraints = self.an.spec.constraints.clone();
        for c in &constraints {
            if let FirmwareConstraint::PortWriteOutsideDevice { cfg_addr, mask, device } = c {
                let p = self.an.port_src;
                for inst in [Instance::A, Instance::B] {
                    let req = self.input_word(inst, p.req, cycle);
                    let we = self.input_word(inst, p.we, cycle);
                    let addr = self.input_word(inst, p.addr, cycle);
                    let wd = self.input_word(inst, p.wdata, cycle);
                    let aig = self.ipc.unroller_mut().aig_mut();
                    let is_cfg = words::eq_const(aig, &addr, *cfg_addr);
                    let wr0 = aig.and(req[0], we[0]);
                    let wr = aig.and(wr0, is_cfg);
                    let m = words::constant(aig, ssc_netlist::Bv::new(32, *mask));
                    let masked = words::and(aig, &wd, &m);
                    let hit = words::eq_const(aig, &masked, *device);
                    out.push(aig.implies(wr, hit.not()));
                }
            }
        }
        out
    }

    /// All standing assumptions for a `window`-transition property:
    /// range validity, firmware constraints, IP quiescing, and per-cycle
    /// input equality + victim macro.
    ///
    /// The result is a slice into the session's cache: repeated calls (and
    /// calls for smaller windows) perform no AIG construction at all, and a
    /// larger window only builds the newly added cycles' blocks.
    pub fn base_assumptions(&mut self, window: usize) -> &[AigRef] {
        self.ensure_window(window);
        &self.base[..self.base_offsets[window]]
    }

    /// Quiescing assumptions: the named busy flags are 0 in the symbolic
    /// starting state of both instances.
    pub fn quiescing_assumptions(&mut self) -> Vec<AigRef> {
        let names = self.an.spec.quiesced_ips.clone();
        let mut out = Vec::new();
        for name in &names {
            let w = self.an.src.find(name).expect("validated in new()");
            for inst in [Instance::A, Instance::B] {
                let state = self.atom_word(inst, StateAtom::Reg(w.id()), 0);
                out.push(state[0].not());
            }
        }
        out
    }

    /// The guarded equality term of one atom at time `t`: *atom equal
    /// between the instances*, weakened by the "inside the protected range"
    /// exemption for victim-allocatable memory words.
    ///
    /// Terms are cached per `(atom, t)`, so every check of a fixpoint run
    /// reuses the same AIG node — and therefore the same CNF variables —
    /// for an atom regardless of how the surrounding set shrinks.
    pub fn atom_eq_term(&mut self, atom: StateAtom, t: usize) -> AigRef {
        if let Some(&term) = self.eq_terms.get(&(atom, t)) {
            return term;
        }
        let a = self.atom_word(Instance::A, atom, t);
        let b = self.atom_word(Instance::B, atom, t);
        let guard = match atom {
            StateAtom::MemWord(mem, i) => self.word_in_range(mem, i),
            StateAtom::Reg(_) => None,
        };
        let aig = self.ipc.unroller_mut().aig_mut();
        let eq = words::eq(aig, &a, &b);
        let term = match guard {
            Some(in_range) => aig.or(in_range, eq),
            None => eq,
        };
        self.eq_terms.insert((atom, t), term);
        term
    }

    /// `State_Equivalence(S)` at time `t`: every atom in `S` equal between
    /// the instances; victim-allocatable memory words are exempt while they
    /// lie inside the protected range.
    pub fn state_eq(&mut self, set: &AtomSet, t: usize) -> AigRef {
        let conj: Vec<AigRef> = set.iter().map(|&atom| self.atom_eq_term(atom, t)).collect();
        let aig = self.ipc.unroller_mut().aig_mut();
        aig.and_all(conj)
    }

    /// The incremental UPEC-SSC check: *assume the standing assumptions of
    /// `window` and `State_Equivalence(pre)` at time 0, prove
    /// `State_Equivalence(set)` at time `c` for every `(c, set)` in
    /// `goals`*.
    ///
    /// The negated goal (some tracked atom diverges at its cycle) is a
    /// disjunction of cached per-atom terms, installed as a clause guarded
    /// by a fresh activation literal and retired right after the solve —
    /// so consecutive checks with shrinking sets add only the clause and
    /// whatever cones are genuinely new, and the solver's learnt-clause
    /// database survives the whole fixpoint.
    pub fn check_window(
        &mut self,
        window: usize,
        pre: &AtomSet,
        goals: &[(usize, &AtomSet)],
    ) -> PropertyResult {
        self.ensure_window(window);

        let mut neg_goal = Vec::new();
        for &(cycle, set) in goals {
            debug_assert!(cycle <= window, "goal cycle outside the window");
            for &atom in set {
                neg_goal.push(self.atom_eq_term(atom, cycle).not());
            }
        }
        let act = self.ipc.activation_literal();
        self.ipc.add_clause_under(act, &neg_goal);

        let mut lits = std::mem::take(&mut self.lit_buf);
        lits.clear();
        for i in 0..self.base_offsets[window] {
            let r = self.base[i];
            lits.push(self.ipc.lit_of(r));
        }
        // `State_Equivalence(pre)` enters as one assumption literal *per
        // atom* (not one conjunction): logically identical, but on `Holds`
        // the solver's assumption core then reports which atoms' equalities
        // the proof actually rested on.
        let pre_start = lits.len();
        for &atom in pre {
            let term = self.atom_eq_term(atom, 0);
            let lit = self.ipc.lit_of(term);
            lits.push(lit);
        }
        lits.push(act);
        let result = self.ipc.check_lits(&lits);
        self.last_core_without_state_eq = match result {
            PropertyResult::Holds => {
                let core = self.ipc.assumption_core();
                Some(!lits[pre_start..lits.len() - 1].iter().any(|l| core.contains(l)))
            }
            PropertyResult::Violated => None,
        };
        self.lit_buf = lits;
        // The goal clause belongs to this check only; retiring it keeps the
        // clause database additive while the state sets shrink.
        self.ipc.retire_activation(act);
        result
    }

    /// After a `Holds` from [`Session::check_window`]: `Some(true)` iff
    /// **no** pre-state atom-equality assumption appears in the solver's
    /// assumption core — i.e. the window property held independently of
    /// `State_Equivalence(pre)`, so further refinement of the tracked sets
    /// cannot change the verdict. `None` if the last check was violated.
    pub fn last_core_without_state_eq(&self) -> Option<bool> {
        self.last_core_without_state_eq
    }

    // ------------------------------------------------------------------
    // Counterexample extraction
    // ------------------------------------------------------------------

    /// After a violated check: the atoms of `set` that genuinely diverge at
    /// time `t` under the model (range-guarded words that fall inside the
    /// protected range are not counted).
    pub fn extract_diffs(&self, set: &AtomSet, t: usize) -> Vec<AtomDiff> {
        let prot = self
            .ipc
            .model_word(&self.prot_word())
            .expect("prot_base encoded by range validity");
        let mut out = Vec::new();
        for &atom in set {
            let wa = self.atom_word(Instance::A, atom, t);
            let wb = self.atom_word(Instance::B, atom, t);
            let (Ok(va), Ok(vb)) = (self.ipc.model_word(&wa), self.ipc.model_word(&wb))
            else {
                continue;
            };
            if va == vb {
                continue;
            }
            if let StateAtom::MemWord(mem, i) = atom {
                if let Some(base) = self.an.device_base.get(&mem) {
                    let addr = (base + 4 * u64::from(i)) & self.an.spec.range_mask;
                    if addr == prot {
                        continue; // victim-allocated word: exempt
                    }
                }
            }
            out.push(AtomDiff {
                atom,
                name: self.an.atom_name(atom),
                value_a: va,
                value_b: vb,
                persistent: self.an.is_persistent(atom),
            });
        }
        out
    }

    /// Builds the full counterexample record after a violated check.
    pub fn capture_cex(&self, diffs: Vec<AtomDiff>, at_cycle: usize, window: usize) -> Counterexample {
        let prot = self.ipc.model_word(&self.prot_word()).unwrap_or(0);
        let p = self.an.port_src;
        let mut trace = Vec::new();
        for c in 0..window {
            let get =
                |s: &Self, inst, w| s.ipc.model_word(&s.input_word(inst, w, c)).unwrap_or(0);
            let act = |s: &Self, inst: Instance| -> PortActivity {
                let req = get(s, inst, p.req) == 1;
                let addr = get(s, inst, p.addr);
                let we = get(s, inst, p.we) == 1;
                let wdata = get(s, inst, p.wdata);
                PortActivity {
                    req,
                    addr,
                    we,
                    wdata,
                    protected: req && (addr & self.an.spec.range_mask) == prot,
                }
            };
            trace.push(CexCycle { cycle: c, port_a: act(self, Instance::A), port_b: act(self, Instance::B) });
        }
        // Initial state of both instances for concrete replay.
        let mut initial_state = Vec::new();
        for atom in atoms::all_atoms(&self.an.src) {
            let wa = self.atom_word(Instance::A, atom, 0);
            let wb = self.atom_word(Instance::B, atom, 0);
            if let (Ok(va), Ok(vb)) = (self.ipc.model_word(&wa), self.ipc.model_word(&wb)) {
                initial_state.push((atom, self.an.atom_name(atom), va, vb));
            }
        }
        Counterexample { at_cycle, diffs, prot_base: prot, trace, initial_state }
    }
}

/// Compile-time thread-safety audit for the portfolio runner
/// (`ssc-bench::portfolio`): a parallel analysis fleet constructs one
/// [`UpecAnalysis`] + [`Session`] **per worker** (sessions borrow their
/// analysis, so neither is shared across threads), which only requires
/// the analysis inputs and the verdicts to cross thread boundaries. If a
/// future change introduces interior mutability or thread-bound state in
/// these types, this fails to compile instead of racing at runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<UpecAnalysis>();
    assert_send_sync::<crate::spec::UpecSpec>();
    assert_send::<crate::report::Verdict>();
    assert_send::<Session<'static>>();
};
