//! The 2-safety product and the UPEC-SSC property macros.
//!
//! Three layers build on each other:
//!
//! * [`ProductArtifact`] — the **scenario-independent** half of an
//!   analysis: the source netlist instantiated **twice** inside one product
//!   netlist (instances `a` and `b`), the shared symbolic protected-range
//!   base, and the resolved victim-port/device signals. Built once per
//!   design (one per SoC size in a portfolio) and `Arc`-shared by every
//!   scenario analysis of that design.
//! * [`UpecAnalysis`] — a *thin binding* of a [`UpecSpec`] to a shared
//!   artifact ([`UpecAnalysis::bind`]): the spec-dependent pieces
//!   (firmware constraints, spying-IP restrictions, quiesced IPs,
//!   persistence policy) are validated here, never inside product
//!   construction.
//! * [`SessionPrefix`] / [`Session`] — the proof sessions. A prefix holds
//!   everything scenario-independent *and already encoded into the
//!   solver*: the unrolled cycles, the per-cycle input-equality and
//!   victim macros (Fig. 3's `Primary_Input_Constraints` and
//!   `Victim_Task_Executing`), the range-alignment validity and the
//!   per-atom state-equality cones. [`SessionPrefix::fork`] snapshots it
//!   (copy-on-write session forking via [`Ipc::fork`]), and
//!   [`Session::with_prefix`] binds a fork to one scenario by adding only
//!   the scenario's own assumptions on top.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ssc_aig::fx::{FxHashMap, FxHashSet};
use ssc_aig::words::{self, Word};
use ssc_aig::AigRef;
use ssc_ipc::{Ipc, PropertyResult};
use ssc_netlist::{ImportMap, MemId, Netlist, Node, Wire};
use ssc_pool::Pool;
use ssc_sat::{Budget, CancelToken, InterruptCause, Lit, Var};

use crate::atoms::{self, AtomSet, StateAtom, StaticCertificate};
use ssc_netlist::influence::InfluenceClosure;
use crate::report::{AtomDiff, CexCycle, Counterexample, CubeReport, PortActivity};
use crate::spec::{DeviceMap, FirmwareConstraint, IpPort, UpecSpec, VictimPort};

/// Instance selector within the product.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instance {
    /// Instance `a`.
    A,
    /// Instance `b`.
    B,
}

#[derive(Clone, Copy, Debug)]
struct PortSrc {
    req: Wire,
    addr: Wire,
    we: Wire,
    wdata: Wire,
}

/// The scenario-independent product of one design: source netlist,
/// 2-safety product, import maps and resolved victim-port/device signals.
///
/// Build once per design ([`ProductArtifact::build`]), wrap in an [`Arc`]
/// and [`UpecAnalysis::bind`] every scenario of a portfolio to the same
/// artifact — the product netlist (the expensive double instantiation) is
/// then constructed once instead of once per scenario.
pub struct ProductArtifact {
    src: Netlist,
    product: Netlist,
    map_a: ImportMap,
    map_b: ImportMap,
    prot_base: Wire,
    /// Source-netlist port wires (inputs).
    port_src: PortSrc,
    /// Victim-allocatable device base per source memory.
    device_base: HashMap<MemId, u64>,
    /// The port names the artifact was resolved with (bind-time check).
    port: VictimPort,
    /// The device maps the artifact was resolved with (bind-time check).
    devices: Vec<DeviceMap>,
}

impl std::fmt::Debug for ProductArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProductArtifact")
            .field("design", &self.src.name())
            .field("product_nodes", &self.product.num_nodes())
            .finish()
    }
}

impl ProductArtifact {
    /// Builds the 2-safety product for `src`, resolving the victim `port`
    /// and the victim-allocatable `devices`.
    ///
    /// # Errors
    ///
    /// Returns a message if the port signals are not free inputs (i.e. the
    /// netlist is not a verification view) or a device memory does not
    /// exist.
    pub fn build(
        src: &Netlist,
        port: &VictimPort,
        devices: &[DeviceMap],
    ) -> Result<ProductArtifact, String> {
        let find_input = |name: &str| -> Result<Wire, String> {
            let w = src
                .find(name)
                .ok_or_else(|| format!("port signal `{name}` not found"))?;
            match src.node(w.id()) {
                Node::Input { .. } => Ok(w),
                _ => Err(format!(
                    "port signal `{name}` is not a free input — use the verification view"
                )),
            }
        };
        let port_src = PortSrc {
            req: find_input(&port.req)?,
            addr: find_input(&port.addr)?,
            we: find_input(&port.we)?,
            wdata: find_input(&port.wdata)?,
        };
        let mut device_base = HashMap::new();
        for dev in devices {
            let mem = src
                .find_mem(&dev.mem_name)
                .ok_or_else(|| format!("device memory `{}` not found", dev.mem_name))?;
            device_base.insert(mem, dev.base);
        }

        let mut product = Netlist::new(format!("{}_upec_product", src.name()));
        let map_a = product.import(src, "a");
        let map_b = product.import(src, "b");
        let prot_base = product.input("prot_base", 32);
        product.check().map_err(|e| format!("product netlist invalid: {e}"))?;

        Ok(ProductArtifact {
            src: src.clone(),
            product,
            map_a,
            map_b,
            prot_base,
            port_src,
            device_base,
            port: port.clone(),
            devices: devices.to_vec(),
        })
    }

    /// [`ProductArtifact::build`] with the port/devices taken from `spec`
    /// (the artifact-relevant subset — the rest of the spec is not needed
    /// until [`UpecAnalysis::bind`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ProductArtifact::build`].
    pub fn for_spec(src: &Netlist, spec: &UpecSpec) -> Result<ProductArtifact, String> {
        ProductArtifact::build(src, &spec.port, &spec.devices)
    }

    /// The design under verification (single instance).
    pub fn src(&self) -> &Netlist {
        &self.src
    }

    /// The 2-safety product netlist.
    pub fn product(&self) -> &Netlist {
        &self.product
    }

    fn map(&self, inst: Instance) -> &ImportMap {
        match inst {
            Instance::A => &self.map_a,
            Instance::B => &self.map_b,
        }
    }
}

/// A UPEC-SSC analysis context: a (possibly shared) [`ProductArtifact`]
/// bound to one [`UpecSpec`].
///
/// Create with [`UpecAnalysis::new`] (builds a private artifact) or
/// [`UpecAnalysis::bind`] (shares an existing one across scenarios), then
/// run [`UpecAnalysis::alg1`] / [`UpecAnalysis::alg2`] (see
/// `procedure.rs`).
pub struct UpecAnalysis {
    art: Arc<ProductArtifact>,
    spec: UpecSpec,
}

impl std::fmt::Debug for UpecAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpecAnalysis")
            .field("design", &self.art.src.name())
            .field("product_nodes", &self.art.product.num_nodes())
            .finish()
    }
}

impl UpecAnalysis {
    /// Builds a private 2-safety product for `src` and binds `spec` to it.
    ///
    /// For a portfolio of scenarios over one design, build the product once
    /// with [`ProductArtifact::build`] and use [`UpecAnalysis::bind`]
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns a message if the spec references signals/memories that do
    /// not exist, or the port signals are not free inputs (i.e. the netlist
    /// is not a verification view).
    pub fn new(src: &Netlist, spec: UpecSpec) -> Result<Self, String> {
        let art = Arc::new(ProductArtifact::for_spec(src, &spec)?);
        UpecAnalysis::bind(art, spec)
    }

    /// Binds `spec` to a shared artifact, validating only the
    /// spec-dependent pieces (firmware constraints, spying-IP ports,
    /// quiesced IPs) — the artifact already resolved the port and devices.
    ///
    /// # Errors
    ///
    /// Returns a message if the spec's port/devices differ from the ones
    /// the artifact was built with, or a spec-referenced signal does not
    /// exist in the design.
    pub fn bind(art: Arc<ProductArtifact>, spec: UpecSpec) -> Result<Self, String> {
        if spec.port != art.port {
            return Err("spec victim port differs from the artifact's".into());
        }
        if spec.devices != art.devices {
            return Err("spec device maps differ from the artifact's".into());
        }
        let src = &art.src;
        for c in &spec.constraints {
            if let FirmwareConstraint::RegOutsideDevice { reg, .. } = c {
                src.find(reg)
                    .ok_or_else(|| format!("constraint register `{reg}` not found"))?;
            }
        }
        for ip in &spec.ip_ports {
            for name in [&ip.req, &ip.addr] {
                src.find(name)
                    .ok_or_else(|| format!("IP port signal `{name}` not found"))?;
            }
        }
        for name in &spec.quiesced_ips {
            let w = src
                .find(name)
                .ok_or_else(|| format!("quiesced IP flag `{name}` not found"))?;
            if !matches!(src.node(w.id()), Node::Reg(_)) {
                return Err(format!("quiesced IP flag `{name}` must be a register"));
            }
        }
        Ok(UpecAnalysis { art, spec })
    }

    /// The shared product artifact this analysis is bound to.
    pub fn artifact(&self) -> &Arc<ProductArtifact> {
        &self.art
    }

    /// The design under verification (single instance).
    pub fn src(&self) -> &Netlist {
        &self.art.src
    }

    /// The 2-safety product netlist.
    pub fn product(&self) -> &Netlist {
        &self.art.product
    }

    /// The specification.
    pub fn spec(&self) -> &UpecSpec {
        &self.spec
    }

    /// Compiles `S_not_victim` (paper Def. 1).
    pub fn s_not_victim(&self) -> AtomSet {
        atoms::not_victim_atoms(&self.art.src)
    }

    /// Compiles `S_pers` (paper Def. 2) under the spec's policy.
    pub fn s_pers(&self) -> AtomSet {
        self.spec.persistence.pers_atoms(&self.art.src)
    }

    /// Is `atom` persistent under the spec's policy?
    pub fn is_persistent(&self, atom: StateAtom) -> bool {
        self.spec.persistence.is_persistent(&self.art.src, atom)
    }

    /// Human-readable atom name.
    pub fn atom_name(&self, atom: StateAtom) -> String {
        atoms::atom_name(&self.art.src, atom)
    }
}

/// One assumption ledger of a session: AIG refs, their pre-encoded solver
/// literals, and per-window offsets (`offsets[w]` bounds the prefix valid
/// for a `w`-transition window; `offsets[0]` ends the window-invariant
/// block).
#[derive(Clone, Default)]
struct Ledger {
    refs: Vec<AigRef>,
    lits: Vec<Lit>,
    offsets: Vec<usize>,
}

impl Ledger {
    fn window(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }
}

/// The scenario-independent shared core of a prefix: everything beyond the
/// artifact that the shared macros depend on. Scenarios bound to the same
/// prefix must agree on it ([`Session::with_prefix`] asserts this).
#[derive(Clone)]
struct PrefixCore {
    range_mask: u64,
    ip_ports: Vec<IpPort>,
}

/// The shared, already-encoded prefix of a proof session: product
/// unrolling, range-alignment validity, per-cycle input-equality and
/// victim macros, and the per-atom state-equality cones for every
/// `S_not_victim` atom — all scenario-independent, all Tseitin-encoded
/// into the prefix's solver at construction time.
///
/// Build once per design/size ([`SessionPrefix::build`]), then
/// [`SessionPrefix::fork`] per scenario: a fork snapshots the AIG, the
/// node→variable table and the solver (see [`Ipc::fork`]) so the shared
/// encoding work is paid exactly once, and every scenario's [`Session`]
/// starts from it instead of re-encoding four (or forty) times.
pub struct SessionPrefix<'p> {
    ipc: Ipc<'p>,
    art: &'p ProductArtifact,
    core: PrefixCore,
    /// Shared standing assumptions: alignment validity (invariant block),
    /// then one input-eq + victim-macro block per unrolled cycle.
    shared: Ledger,
    /// `(atom, t)` → guarded equality term, shared by every check that
    /// mentions the atom at that time.
    eq_terms: FxHashMap<(StateAtom, usize), AigRef>,
    /// The atom universe whose equality terms are pre-built per time step.
    universe: AtomSet,
    /// The static cleanliness certificate (sequential influence graph over
    /// the source design), shared across forks — scenario-independent like
    /// everything else here because it only reads the victim port, the
    /// device list and the netlist structure.
    cert: Arc<StaticCertificate>,
}

impl std::fmt::Debug for SessionPrefix<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPrefix")
            .field("design", &self.art.src.name())
            .field("window", &self.window())
            .field("encoded_nodes", &self.ipc.encoded_nodes())
            .finish()
    }
}

impl<'p> SessionPrefix<'p> {
    /// Builds and encodes the shared prefix for `window` transitions. The
    /// scenario-independent core (range mask, spying-IP ports) is taken
    /// from `spec`; any scenario later bound to this prefix must agree on
    /// it.
    ///
    /// # Errors
    ///
    /// Returns a message if a spying-IP port signal does not exist in the
    /// design.
    pub fn build(
        art: &'p ProductArtifact,
        spec: &UpecSpec,
        window: usize,
    ) -> Result<SessionPrefix<'p>, String> {
        Self::build_with_solver_heuristics(art, spec, window, None)
    }

    /// [`SessionPrefix::build`] with an explicitly pinned solver heuristic
    /// configuration (`None` = environment default). Equivalence harnesses
    /// and the e13 bench use this to hold legacy and modern CDCL engines
    /// side by side in one process; forks inherit the pinned config.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SessionPrefix::build`].
    pub fn build_with_solver_heuristics(
        art: &'p ProductArtifact,
        spec: &UpecSpec,
        window: usize,
        heur: Option<ssc_sat::Heuristics>,
    ) -> Result<SessionPrefix<'p>, String> {
        for ip in &spec.ip_ports {
            for name in [&ip.req, &ip.addr] {
                art.src
                    .find(name)
                    .ok_or_else(|| format!("IP port signal `{name}` not found"))?;
            }
        }
        let cert = Arc::new(StaticCertificate::build(&art.src, spec)?);
        let mut ipc = Ipc::new(&art.product);
        if let Some(h) = heur {
            ipc.set_solver_heuristics(h);
        }
        let mut p = SessionPrefix {
            ipc,
            art,
            core: PrefixCore {
                range_mask: spec.range_mask,
                ip_ports: spec.ip_ports.clone(),
            },
            shared: Ledger::default(),
            eq_terms: FxHashMap::default(),
            universe: atoms::not_victim_atoms(&art.src),
            cert,
        };
        let inv = p.alignment_validity();
        p.push_shared_block(inv);
        p.build_eq_terms(0);
        p.ensure_window(window.max(1));
        // Encode-complete inprocessing: every scenario cell forks this
        // prefix, so one vivification/subsumption pass here is amortized
        // across the whole portfolio (and makes the immediate per-cell
        // fork's own pass a fingerprint-guarded no-op).
        p.ipc.inprocess();
        Ok(p)
    }

    /// Forks the prefix into an independent snapshot (see [`Ipc::fork`]):
    /// the encoded shared formula, every cached term and all solver state
    /// carry over; the fork and the original diverge freely from here on.
    pub fn fork(&self) -> SessionPrefix<'p> {
        SessionPrefix {
            ipc: self.ipc.fork(),
            art: self.art,
            core: self.core.clone(),
            shared: self.shared.clone(),
            eq_terms: self.eq_terms.clone(),
            universe: self.universe.clone(),
            cert: Arc::clone(&self.cert),
        }
    }

    /// The shared static cleanliness certificate.
    pub fn static_certificate(&self) -> &Arc<StaticCertificate> {
        &self.cert
    }

    /// The number of transitions the prefix currently supports.
    pub fn window(&self) -> usize {
        self.shared.window()
    }

    /// Cumulative count of CNF-encoded AIG nodes (see
    /// [`Ipc::encoded_nodes`]).
    pub fn encoded_nodes(&self) -> usize {
        self.ipc.encoded_nodes()
    }

    /// Grows the shared prefix to `window` transitions: unrolls the new
    /// cycles, appends their input-eq + victim-macro blocks and pre-builds
    /// the new time step's state-equality terms — everything encoded
    /// eagerly so later forks inherit it.
    pub fn ensure_window(&mut self, window: usize) {
        self.ipc.unroller_mut().ensure_cycle(window.saturating_sub(1));
        while self.shared.window() < window {
            let cycle = self.shared.window();
            let mut block = self.input_eq(cycle);
            block.extend(self.victim_macro(cycle));
            self.push_shared_block(block);
            self.build_eq_terms(cycle + 1);
        }
    }

    /// Appends one block of shared assumptions, encoding each literal.
    fn push_shared_block(&mut self, refs: Vec<AigRef>) {
        for r in refs {
            let lit = self.ipc.lit_of(r);
            self.shared.refs.push(r);
            self.shared.lits.push(lit);
        }
        self.shared.offsets.push(self.shared.refs.len());
    }

    /// Pre-builds (and encodes) the equality term of every universe atom at
    /// time `t`.
    fn build_eq_terms(&mut self, t: usize) {
        let atoms: Vec<StateAtom> = self.universe.iter().copied().collect();
        for atom in atoms {
            let term = self.atom_eq_term(atom, t);
            let _ = self.ipc.lit_of(term);
        }
    }

    // ------------------------------------------------------------------
    // Word access
    // ------------------------------------------------------------------

    fn input_word(&self, inst: Instance, src_wire: Wire, cycle: usize) -> Word {
        let mapped = self.art.map(inst).signal(src_wire.id());
        let w = self.art.product.wire_of(mapped);
        self.ipc.unroller().input(w, cycle).clone()
    }

    /// The value of an arbitrary source-netlist signal in `inst` during
    /// `cycle`.
    pub fn signal_word(&self, inst: Instance, src_wire: Wire, cycle: usize) -> Word {
        let mapped = self.art.map(inst).signal(src_wire.id());
        let w = self.art.product.wire_of(mapped);
        self.ipc.unroller().signal(w, cycle).clone()
    }

    /// The shared protected-range base (cycle-0 symbol; the base is an
    /// allocation-time constant, so one symbol serves all cycles).
    fn prot_word(&self) -> Word {
        self.ipc.unroller().input(self.art.prot_base, 0).clone()
    }

    /// The state word of `atom` in `inst` at time `t`.
    pub fn atom_word(&self, inst: Instance, atom: StateAtom, t: usize) -> Word {
        match atom {
            StateAtom::Reg(id) => {
                let mapped = self.art.map(inst).signal(id);
                self.ipc.unroller().reg_state(mapped, t).clone()
            }
            StateAtom::MemWord(mem, i) => {
                let mapped = self.art.map(inst).mem(mem);
                self.ipc.unroller().mem_word_state(mapped, i, t).clone()
            }
        }
    }

    // ------------------------------------------------------------------
    // Shared macros
    // ------------------------------------------------------------------

    /// `in_range(addr) = (addr & range_mask) == prot_base`.
    fn in_range(&mut self, addr: &Word) -> AigRef {
        let prot = self.prot_word();
        let mask = self.core.range_mask;
        let aig = self.ipc.unroller_mut().aig_mut();
        let mask_w = words::constant(aig, ssc_netlist::Bv::new(32, mask));
        let masked = words::and(aig, addr, &mask_w);
        words::eq(aig, &masked, &prot)
    }

    /// For a guarded memory word: the literal "this word lies in the
    /// protected range" (a function of `prot_base` only).
    fn word_in_range(&mut self, mem: MemId, index: u32) -> Option<AigRef> {
        let base = *self.art.device_base.get(&mem)?;
        let addr = (base + 4 * u64::from(index)) & self.core.range_mask;
        let prot = self.prot_word();
        let aig = self.ipc.unroller_mut().aig_mut();
        Some(words::eq_const(aig, &prot, addr))
    }

    /// The scenario-independent half of the range validity: the symbolic
    /// base is aligned to the range mask (bits outside the mask are zero).
    fn alignment_validity(&mut self) -> Vec<AigRef> {
        let prot = self.prot_word();
        let spec_mask = self.core.range_mask;
        let aig = self.ipc.unroller_mut().aig_mut();
        let inv = words::constant(aig, ssc_netlist::Bv::new(32, !spec_mask));
        let low = words::and(aig, &prot, &inv);
        vec![words::eq_const(aig, &low, 0)]
    }

    /// `Primary_Input_Constraints` at `cycle`: all non-port inputs equal
    /// between the instances.
    pub fn input_eq(&mut self, cycle: usize) -> Vec<AigRef> {
        let port = [
            self.art.port_src.req.id(),
            self.art.port_src.addr.id(),
            self.art.port_src.we.id(),
            self.art.port_src.wdata.id(),
        ];
        let inputs: Vec<Wire> = self
            .art
            .src
            .iter_nodes()
            .filter_map(|(id, node)| match node {
                Node::Input { .. } if !port.contains(&id) => Some(self.art.src.wire_of(id)),
                _ => None,
            })
            .collect();
        let mut out = Vec::new();
        for w in inputs {
            let a = self.input_word(Instance::A, w, cycle);
            let b = self.input_word(Instance::B, w, cycle);
            let aig = self.ipc.unroller_mut().aig_mut();
            out.push(words::eq(aig, &a, &b));
        }
        out
    }

    /// `Victim_Task_Executing` at `cycle` (paper Sec. 3.3): accesses to
    /// protected addresses may differ between the instances (they are the
    /// confidential information); all other accesses are equal.
    pub fn victim_macro(&mut self, cycle: usize) -> Vec<AigRef> {
        let p = self.art.port_src;
        let req_a = self.input_word(Instance::A, p.req, cycle);
        let req_b = self.input_word(Instance::B, p.req, cycle);
        let addr_a = self.input_word(Instance::A, p.addr, cycle);
        let addr_b = self.input_word(Instance::B, p.addr, cycle);
        let we_a = self.input_word(Instance::A, p.we, cycle);
        let we_b = self.input_word(Instance::B, p.we, cycle);
        let wd_a = self.input_word(Instance::A, p.wdata, cycle);
        let wd_b = self.input_word(Instance::B, p.wdata, cycle);

        let in_a = self.in_range(&addr_a);
        let in_b = self.in_range(&addr_b);
        let aig = self.ipc.unroller_mut().aig_mut();

        let norm_a = aig.and(req_a[0], in_a.not());
        let norm_b = aig.and(req_b[0], in_b.not());

        let mut out = Vec::new();
        // Non-protected activity is identical in both instances.
        out.push(aig.xnor(norm_a, norm_b));
        let addr_eq = words::eq(aig, &addr_a, &addr_b);
        let we_eq = aig.xnor(we_a[0], we_b[0]);
        let wd_eq = words::eq(aig, &wd_a, &wd_b);
        out.push(aig.implies(norm_a, addr_eq));
        out.push(aig.implies(norm_a, we_eq));
        out.push(aig.implies(norm_a, wd_eq));

        // Threat-model restriction: spying IPs have no direct access to the
        // protected range — their bus requests never target it.
        let ip_ports = self.core.ip_ports.clone();
        for ip in &ip_ports {
            let req_w = self.art.src.find(&ip.req).expect("validated in build()");
            let addr_w = self.art.src.find(&ip.addr).expect("validated in build()");
            for inst in [Instance::A, Instance::B] {
                let req = self.signal_word(inst, req_w, cycle);
                let addr = self.signal_word(inst, addr_w, cycle);
                let hit = self.in_range(&addr);
                let aig = self.ipc.unroller_mut().aig_mut();
                out.push(aig.implies(req[0], hit.not()));
            }
        }
        out
    }

    /// The guarded equality term of one atom at time `t`: *atom equal
    /// between the instances*, weakened by the "inside the protected range"
    /// exemption for victim-allocatable memory words.
    ///
    /// Terms are cached per `(atom, t)` — for the universe atoms they are
    /// pre-built (and encoded) when the prefix grows, so every fork and
    /// every fixpoint iteration reuses the same AIG node and CNF variables
    /// regardless of how the surrounding set shrinks.
    pub fn atom_eq_term(&mut self, atom: StateAtom, t: usize) -> AigRef {
        if let Some(&term) = self.eq_terms.get(&(atom, t)) {
            return term;
        }
        let a = self.atom_word(Instance::A, atom, t);
        let b = self.atom_word(Instance::B, atom, t);
        let guard = match atom {
            StateAtom::MemWord(mem, i) => self.word_in_range(mem, i),
            StateAtom::Reg(_) => None,
        };
        let aig = self.ipc.unroller_mut().aig_mut();
        let eq = words::eq(aig, &a, &b);
        let term = match guard {
            Some(in_range) => aig.or(in_range, eq),
            None => eq,
        };
        self.eq_terms.insert((atom, t), term);
        term
    }
}

/// Environment variable: master switch for the cube-and-conquer
/// escalation of hard window checks. `0`/`off`/`false` disable it,
/// `1`/`on`/`true` force it on; unset, escalation is on exactly when the
/// cube pool has at least two workers — a single-worker race serializes
/// the cubes and can only lose to the sequential solve it replaced.
pub const CUBE_ESCALATE_ENV: &str = "SSC_CUBE_ESCALATE";

/// Environment variable overriding [`CubeConfig::conflict_threshold`].
pub const CUBE_THRESHOLD_ENV: &str = "SSC_CUBE_CONFLICT_THRESHOLD";

/// Environment variable overriding [`CubeConfig::split_vars`].
pub const CUBE_SPLIT_VARS_ENV: &str = "SSC_CUBE_SPLIT_VARS";

/// Environment variable overriding [`CubeConfig::order_seed`].
pub const CUBE_ORDER_SEED_ENV: &str = "SSC_CUBE_ORDER_SEED";

/// Environment variable: master switch for static-certificate goal
/// pruning in [`Session::check_window`] (`0`/`off`/`false` disable,
/// `1`/`on`/`true` enable; unset = **on**). Unlike core-guided dropping,
/// static pruning is *sound* — it only omits disjuncts the influence
/// certificate proves false — so it also applies to window-1 checks and
/// the concluding induction.
pub const STATIC_PRUNE_ENV: &str = "SSC_STATIC_PRUNE";

/// Parses [`STATIC_PRUNE_ENV`] (`None` = variable unset = on).
///
/// # Errors
///
/// Returns `(variable name, offending value)` for anything other than
/// `0/off/false/1/on/true`.
pub fn parse_static_prune_env(raw: Option<&str>) -> Result<bool, (&'static str, String)> {
    match raw {
        None => Ok(true),
        Some("0" | "off" | "false") => Ok(false),
        Some("1" | "on" | "true") => Ok(true),
        Some(bad) => Err((STATIC_PRUNE_ENV, bad.to_string())),
    }
}

/// The static-pruning switch from the environment (every session starts
/// with this; tests and benches pin it via [`Session::set_static_prune`]).
///
/// # Panics
///
/// Panics — naming the variable and the offending value — on a malformed
/// setting: silently falling back to the default would make a mistyped CI
/// matrix entry measure the wrong engine.
pub fn static_prune_from_env() -> bool {
    let raw = std::env::var(STATIC_PRUNE_ENV).ok();
    match parse_static_prune_env(raw.as_deref()) {
        Ok(v) => v,
        Err((var, bad)) => panic!("invalid {var}={bad:?}"),
    }
}

/// Checks at window 1 (Alg. 1 and the concluding genuine induction) never
/// drop goal disjuncts — unsat-core-guided atom dropping is a Alg. 2
/// window-search heuristic, and the window-1 check is the soundness
/// backstop it leans on.
const DROP_MIN_WINDOW: usize = 2;

/// Configuration of the cube-and-conquer escalation of
/// [`Session::check_window`] (see the crate-level *Cube-and-conquer
/// escalation* section).
#[derive(Clone, Debug)]
pub struct CubeConfig {
    /// Master switch ([`CUBE_ESCALATE_ENV`]). Disabled, every check runs
    /// on the sequential incremental path exactly as before.
    pub enabled: bool,
    /// Conflict count at which a probe solve is abandoned and the check
    /// escalates to a cube race ([`CUBE_THRESHOLD_ENV`]). Checks cheaper
    /// than this never pay a fork.
    pub conflict_threshold: u64,
    /// Number of split variables `j`; a race spawns all `2^j` sign
    /// combinations as cubes ([`CUBE_SPLIT_VARS_ENV`]). The cube count
    /// depends only on this — never on the worker count — so the
    /// partition is identical across pool sizes.
    pub split_vars: u32,
    /// Smallest window escalation applies to; window-1 checks (Alg. 1 and
    /// the concluding induction) always stay sequential.
    pub min_window: usize,
    /// Worker threads racing the cubes (from [`ssc_pool::Pool::from_env`],
    /// i.e. `SSC_POOL_WORKERS`).
    pub workers: usize,
    /// Seed permuting the cube → race-slot mapping
    /// ([`CUBE_ORDER_SEED_ENV`], `0` = identity). Exists so tests can
    /// prove verdicts and fingerprints are independent of racing order.
    pub order_seed: u64,
}

impl CubeConfig {
    /// The built-in defaults: enabled whenever the pool has a second
    /// worker to race on (on one worker the cubes serialize and the race
    /// is pure overhead — [`CUBE_ESCALATE_ENV`]`=1` still forces it),
    /// 10k-conflict threshold (the e9 secure-cell window-2 checks cost
    /// 33–53k), 2 split variables (4 cubes), window ≥ 2, pool-sized
    /// workers, identity order.
    fn defaults() -> CubeConfig {
        let workers = Pool::from_env().workers();
        CubeConfig {
            enabled: workers >= 2,
            conflict_threshold: 10_000,
            split_vars: 2,
            min_window: 2,
            workers,
            order_seed: 0,
        }
    }

    /// A configuration with escalation off (and defaults everywhere else).
    pub fn disabled() -> CubeConfig {
        CubeConfig { enabled: false, ..CubeConfig::defaults() }
    }

    /// Parses the four environment overrides (`None` = variable unset).
    ///
    /// # Errors
    ///
    /// Returns `(variable name, offending value)` for the first malformed
    /// override: the switch accepts `0/off/false/1/on/true`, the threshold
    /// a positive integer, the split count an integer in `1..=8` (256
    /// cubes at most), the seed any `u64`.
    pub fn parse_env(
        escalate: Option<&str>,
        threshold: Option<&str>,
        split_vars: Option<&str>,
        order_seed: Option<&str>,
    ) -> Result<CubeConfig, (&'static str, String)> {
        let mut cfg = CubeConfig::defaults();
        match escalate {
            None => {}
            Some("0" | "off" | "false") => cfg.enabled = false,
            Some("1" | "on" | "true") => cfg.enabled = true,
            Some(bad) => return Err((CUBE_ESCALATE_ENV, bad.to_string())),
        }
        if let Some(raw) = threshold {
            match raw.parse::<u64>() {
                Ok(n) if n > 0 => cfg.conflict_threshold = n,
                _ => return Err((CUBE_THRESHOLD_ENV, raw.to_string())),
            }
        }
        if let Some(raw) = split_vars {
            match raw.parse::<u32>() {
                Ok(n) if (1..=8).contains(&n) => cfg.split_vars = n,
                _ => return Err((CUBE_SPLIT_VARS_ENV, raw.to_string())),
            }
        }
        if let Some(raw) = order_seed {
            match raw.parse::<u64>() {
                Ok(n) => cfg.order_seed = n,
                Err(_) => return Err((CUBE_ORDER_SEED_ENV, raw.to_string())),
            }
        }
        Ok(cfg)
    }

    /// The configuration from the environment (every session starts with
    /// this; tests and benches pin explicit configs via
    /// [`Session::set_cube_config`]).
    ///
    /// # Panics
    ///
    /// Panics — naming the variable and the offending value — on a
    /// malformed override: silently falling back to defaults would make a
    /// mistyped CI matrix entry measure the wrong engine.
    pub fn from_env() -> CubeConfig {
        let get = |name: &str| std::env::var(name).ok();
        let (esc, thr, split, seed) = (
            get(CUBE_ESCALATE_ENV),
            get(CUBE_THRESHOLD_ENV),
            get(CUBE_SPLIT_VARS_ENV),
            get(CUBE_ORDER_SEED_ENV),
        );
        match CubeConfig::parse_env(
            esc.as_deref(),
            thr.as_deref(),
            split.as_deref(),
            seed.as_deref(),
        ) {
            Ok(cfg) => cfg,
            Err((var, bad)) => panic!("invalid {var}={bad:?}"),
        }
    }
}

/// The [`ssc_sat::Budget::tag`] of cube `cube` under a parent check
/// tagged `parent`: a deterministic FNV-1a-style mix, distinct from the
/// parent tag and from every sibling. Public so chaos tests can address
/// the solve of one specific cube ([`ssc_sat::chaos::Site::Solve`] is
/// keyed by the budget tag).
pub fn cube_tag(parent: u64, cube: usize) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ parent;
    h = h.wrapping_mul(PRIME);
    h ^= cube as u64 + 1;
    h.wrapping_mul(PRIME)
}

/// The cube → race-slot permutation for `seed` (`0` = identity): a
/// Fisher–Yates shuffle over a xorshift stream. Verdict and fingerprint
/// must not depend on it — that is what the shuffled-order tests pin.
fn cube_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    if seed == 0 {
        return order;
    }
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for i in (1..n).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        order.swap(i, (s as usize) % (i + 1));
    }
    order
}

/// What one cube's fork reported back to the race.
struct CubeOutcome {
    /// Cube index (sign combination), not race slot.
    cube: usize,
    result: PropertyResult,
    /// On `Holds`: the fork's assumption core with cube literals stripped.
    core: Vec<Lit>,
    /// Conflicts this cube's solve spent (delta over the parent counter).
    conflicts: u64,
    elapsed: std::time::Duration,
}

/// A *persistent* proof session: one scenario bound to a (possibly forked)
/// [`SessionPrefix`], with macro construction, the incremental check and
/// counterexample extraction.
///
/// One session is designed to serve an **entire procedure run** — all
/// windows of Alg. 2 *and* the Alg. 1 fixpoint that finishes it — against
/// one SAT solver, so learnt clauses carry over and nothing is re-encoded:
///
/// - the scenario-independent standing assumptions (range alignment,
///   per-cycle input equality and victim macro) and the per-atom
///   state-equality terms live in the prefix, pre-encoded — a session
///   created from a fork ([`Session::with_prefix`]) inherits them without
///   re-encoding anything;
/// - the scenario's own assumptions (device-window validity, firmware
///   constraints, quiescing) are kept in a second ledger and only
///   *extended* when the window grows ([`Session::ensure_window`]);
/// - the negated proof goal is installed as an activation-literal-guarded
///   clause ([`Session::check_window`]) and retired when the sets change,
///   which removes the obligation without invalidating the learnt-clause
///   database.
pub struct Session<'p> {
    prefix: SessionPrefix<'p>,
    an: &'p UpecAnalysis,
    /// Scenario-specific standing assumptions: device-window validity,
    /// firmware-state and quiescing assumptions (invariant block), then
    /// one firmware-port block per unrolled cycle.
    scenario: Ledger,
    /// Scratch assumption-literal buffer reused across checks.
    lit_buf: Vec<Lit>,
    /// After a `Holds` from [`Session::check_window`]: whether the
    /// assumption core avoided every pre-state atom-equality assumption
    /// (`None` after a violated check).
    last_core_without_state_eq: Option<bool>,
    /// Atom → epoch of the last refinement that named it
    /// ([`Session::note_shrunk`]); orders the pre-state assumptions
    /// most-recently-shrunk-first.
    shrink_stamp: FxHashMap<StateAtom, u64>,
    shrink_epoch: u64,
    /// Cube-and-conquer escalation policy (defaults to
    /// [`CubeConfig::from_env`]).
    cube: CubeConfig,
    /// Report of the most recent escalated check, drained per iteration by
    /// [`Session::take_cube_report`].
    last_cube: Option<CubeReport>,
    /// Goal disjuncts dropped by unsat-core-guided atom dropping in the
    /// most recent check, drained by [`Session::take_atoms_core_dropped`].
    atoms_core_dropped: usize,
    /// Static-certificate pruning switch (defaults to
    /// [`static_prune_from_env`]).
    static_prune: bool,
    /// Cached influence closure for the current pre-state set (recomputed
    /// when the pre-state set changes between checks).
    static_closure: Option<(AtomSet, InfluenceClosure)>,
    /// Proven-prefix ledger: goal pairs `(atom, cycle)` a `Holds` check
    /// already discharged, mapped to the window they were proven at. Valid
    /// only for the pre-state set in `proven_pre` — a later check with the
    /// same `pre` and a window ≥ the stored one runs under a superset of
    /// the proving check's assumptions, so the pair stays proven.
    proven: FxHashMap<(StateAtom, usize), usize>,
    /// The pre-state set `proven` was accumulated under.
    proven_pre: Option<AtomSet>,
    /// Goal disjuncts omitted from the most recent check by the sound
    /// static discharge (certificate + proven prefix), drained by
    /// [`Session::take_atoms_static_pruned`].
    atoms_static_pruned: usize,
    /// Disjuncts actually installed in the most recent check's goal
    /// clause, drained by [`Session::take_goal_disjuncts`].
    goal_disjuncts: usize,
    /// Atoms whose pre-state equality assumption has appeared in at least
    /// one final assumption core of this session.
    core_seen: FxHashSet<StateAtom>,
    /// Atoms whose pre-state equality assumption has been *offered* to at
    /// least one core-reporting (`Holds`) check — only a tested-but-never-
    /// seen atom is droppable, so atoms start out undroppable.
    core_tested: FxHashSet<StateAtom>,
    /// Conflicts the most recent check of each window size cost;
    /// `u64::MAX` once a window escalated (predicted hard from then on,
    /// skipping the probe).
    window_conflicts: FxHashMap<usize, u64>,
}

impl<'p> Session<'p> {
    /// Opens a session with `window` transitions unrolled (states
    /// `0..=window` available), building a private prefix.
    ///
    /// This routes through exactly the same construction as a shared
    /// prefix plus [`Session::with_prefix`], so a session over a private
    /// prefix and a session forked from a shared one are state-identical —
    /// the guarantee behind the fork-vs-fresh equivalence tests.
    pub fn new(an: &'p UpecAnalysis, window: usize) -> Self {
        let prefix = SessionPrefix::build(an.artifact(), an.spec(), window)
            .expect("a bound spec was already validated");
        Session::with_prefix(an, prefix)
    }

    /// Binds a (typically forked) prefix to one scenario: appends the
    /// scenario's own standing assumptions on top of the inherited shared
    /// encoding.
    ///
    /// # Panics
    ///
    /// Panics if the prefix was built over a different [`ProductArtifact`]
    /// than `an` is bound to, or the scenario disagrees with the prefix's
    /// shared core (range mask, spying-IP ports) — both are programming
    /// errors, not data-dependent conditions.
    pub fn with_prefix(an: &'p UpecAnalysis, prefix: SessionPrefix<'p>) -> Self {
        assert!(
            std::ptr::eq(prefix.art, Arc::as_ptr(&an.art)),
            "session prefix was built over a different product artifact"
        );
        assert!(
            prefix.core.range_mask == an.spec.range_mask
                && prefix.core.ip_ports == an.spec.ip_ports,
            "scenario disagrees with the prefix's shared core (range mask / IP ports)"
        );
        let mut sess = Session {
            prefix,
            an,
            scenario: Ledger::default(),
            lit_buf: Vec::new(),
            last_core_without_state_eq: None,
            shrink_stamp: FxHashMap::default(),
            shrink_epoch: 0,
            cube: CubeConfig::from_env(),
            last_cube: None,
            atoms_core_dropped: 0,
            static_prune: static_prune_from_env(),
            static_closure: None,
            proven: FxHashMap::default(),
            proven_pre: None,
            atoms_static_pruned: 0,
            goal_disjuncts: 0,
            core_seen: FxHashSet::default(),
            core_tested: FxHashSet::default(),
            window_conflicts: FxHashMap::default(),
        };
        let mut inv = sess.device_range_validity();
        inv.extend(sess.firmware_state_assumptions());
        inv.extend(sess.quiescing_assumptions());
        sess.push_scenario_block(inv);
        let window = sess.prefix.window();
        while sess.scenario.window() < window {
            let cycle = sess.scenario.window();
            let block = sess.firmware_port_assumptions(cycle);
            sess.push_scenario_block(block);
        }
        sess
    }

    /// Grows the window to `window` transitions, extending the unrolling
    /// and both assumption ledgers by exactly the new cycles.
    pub fn ensure_window(&mut self, window: usize) {
        self.prefix.ensure_window(window);
        while self.scenario.window() < window {
            let cycle = self.scenario.window();
            let block = self.firmware_port_assumptions(cycle);
            self.push_scenario_block(block);
        }
    }

    /// Appends one block of scenario assumptions, encoding each literal.
    fn push_scenario_block(&mut self, refs: Vec<AigRef>) {
        for r in refs {
            let lit = self.prefix.ipc.lit_of(r);
            self.scenario.refs.push(r);
            self.scenario.lits.push(lit);
        }
        self.scenario.offsets.push(self.scenario.refs.len());
    }

    /// The analysis this session is bound to.
    pub fn analysis(&self) -> &'p UpecAnalysis {
        self.an
    }

    /// The underlying interval property checker (exposed so downstream
    /// experiment harnesses can time individual checks).
    pub fn ipc(&self) -> &Ipc<'p> {
        &self.prefix.ipc
    }

    /// Mutable access to the underlying checker.
    pub fn ipc_mut(&mut self) -> &mut Ipc<'p> {
        &mut self.prefix.ipc
    }

    /// The number of transitions the session currently supports.
    pub fn window(&self) -> usize {
        self.prefix.window()
    }

    /// Solver statistics (for experiment reporting).
    pub fn solver_stats(&self) -> ssc_sat::SolverStats {
        self.prefix.ipc.solver_stats()
    }

    /// Installs the resource [`ssc_sat::Budget`] governing every subsequent
    /// check of this session. A check whose budget runs out surfaces as
    /// `PropertyResult::Interrupted`, which the procedures convert into
    /// [`crate::Verdict::Inconclusive`] with the partial trajectory.
    ///
    /// Note a session under a *limited* budget never escalates to a cube
    /// race (see [`Session::set_cube_config`]): the budget's limits and
    /// cancellation token belong to the caller, and racing forks need
    /// budgets of their own.
    pub fn set_budget(&mut self, budget: ssc_sat::Budget) {
        self.prefix.ipc.set_budget(budget);
    }

    /// Replaces the cube-and-conquer escalation policy (sessions start
    /// from [`CubeConfig::from_env`]).
    pub fn set_cube_config(&mut self, cfg: CubeConfig) {
        self.cube = cfg;
    }

    /// The active cube-and-conquer escalation policy.
    pub fn cube_config(&self) -> &CubeConfig {
        &self.cube
    }

    /// Drains the [`CubeReport`] of the most recent check, if that check
    /// escalated to a cube race (`None` after a sequential check).
    pub fn take_cube_report(&mut self) -> Option<CubeReport> {
        self.last_cube.take()
    }

    /// Drains the count of goal disjuncts omitted from the most recent
    /// check by unsat-core-guided atom dropping.
    pub fn take_atoms_core_dropped(&mut self) -> usize {
        std::mem::take(&mut self.atoms_core_dropped)
    }

    /// Enables/disables sound static-certificate goal pruning (sessions
    /// start from [`static_prune_from_env`]).
    pub fn set_static_prune(&mut self, on: bool) {
        self.static_prune = on;
    }

    /// Whether static-certificate goal pruning is active.
    pub fn static_prune(&self) -> bool {
        self.static_prune
    }

    /// Drains the count of goal disjuncts omitted from the most recent
    /// check by the sound static discharge (influence certificate plus
    /// proven-prefix ledger).
    pub fn take_atoms_static_pruned(&mut self) -> usize {
        std::mem::take(&mut self.atoms_static_pruned)
    }

    /// Drains the count of disjuncts actually installed in the most recent
    /// check's goal clause.
    pub fn take_goal_disjuncts(&mut self) -> usize {
        std::mem::take(&mut self.goal_disjuncts)
    }

    /// Cumulative count of CNF-encoded AIG nodes (see
    /// [`Ipc::encoded_nodes`]); deltas of this counter prove the per-window
    /// encoding work of the incremental engine is bounded by the newly
    /// unrolled cycle's cone.
    pub fn encoded_nodes(&self) -> usize {
        self.prefix.ipc.encoded_nodes()
    }

    /// The value of an arbitrary source-netlist signal in `inst` during
    /// `cycle`.
    pub fn signal_word(&self, inst: Instance, src_wire: Wire, cycle: usize) -> Word {
        self.prefix.signal_word(inst, src_wire, cycle)
    }

    /// The state word of `atom` in `inst` at time `t`.
    pub fn atom_word(&self, inst: Instance, atom: StateAtom, t: usize) -> Word {
        self.prefix.atom_word(inst, atom, t)
    }

    /// `Primary_Input_Constraints` at `cycle` (see
    /// [`SessionPrefix::input_eq`]).
    pub fn input_eq(&mut self, cycle: usize) -> Vec<AigRef> {
        self.prefix.input_eq(cycle)
    }

    /// `Victim_Task_Executing` at `cycle` (see
    /// [`SessionPrefix::victim_macro`]).
    pub fn victim_macro(&mut self, cycle: usize) -> Vec<AigRef> {
        self.prefix.victim_macro(cycle)
    }

    // ------------------------------------------------------------------
    // Scenario macros
    // ------------------------------------------------------------------

    /// The scenario half of the range validity: if specified, the symbolic
    /// base lies inside the designated device window.
    fn device_range_validity(&mut self) -> Vec<AigRef> {
        let Some(dev) = self.an.spec.range_in_device else {
            return Vec::new();
        };
        let dev_mask = self.an.spec.device_mask;
        let prot = self.prefix.prot_word();
        let aig = self.prefix.ipc.unroller_mut().aig_mut();
        let dm = words::constant(aig, ssc_netlist::Bv::new(32, dev_mask));
        let masked = words::and(aig, &prot, &dm);
        vec![words::eq_const(aig, &masked, dev)]
    }

    /// Firmware-constraint assumptions on the symbolic *starting state*
    /// (the window-invariant half of the constraints).
    pub fn firmware_state_assumptions(&mut self) -> Vec<AigRef> {
        let mut out = Vec::new();
        let constraints = self.an.spec.constraints.clone();
        for c in &constraints {
            if let FirmwareConstraint::RegOutsideDevice { reg, mask, device } = c {
                let w = self.an.src().find(reg).expect("validated in bind()");
                for inst in [Instance::A, Instance::B] {
                    let state = self.atom_word(inst, StateAtom::Reg(w.id()), 0);
                    let aig = self.prefix.ipc.unroller_mut().aig_mut();
                    let m = words::constant(aig, ssc_netlist::Bv::new(32, *mask));
                    let masked = words::and(aig, &state, &m);
                    let hit = words::eq_const(aig, &masked, *device);
                    out.push(hit.not());
                }
            }
        }
        out
    }

    /// Firmware port-write constraints for one `cycle` (the per-cycle half
    /// of the constraints, appended as the window grows).
    pub fn firmware_port_assumptions(&mut self, cycle: usize) -> Vec<AigRef> {
        let mut out = Vec::new();
        let constraints = self.an.spec.constraints.clone();
        for c in &constraints {
            if let FirmwareConstraint::PortWriteOutsideDevice { cfg_addr, mask, device } = c {
                let p = self.an.art.port_src;
                for inst in [Instance::A, Instance::B] {
                    let req = self.prefix.input_word(inst, p.req, cycle);
                    let we = self.prefix.input_word(inst, p.we, cycle);
                    let addr = self.prefix.input_word(inst, p.addr, cycle);
                    let wd = self.prefix.input_word(inst, p.wdata, cycle);
                    let aig = self.prefix.ipc.unroller_mut().aig_mut();
                    let is_cfg = words::eq_const(aig, &addr, *cfg_addr);
                    let wr0 = aig.and(req[0], we[0]);
                    let wr = aig.and(wr0, is_cfg);
                    let m = words::constant(aig, ssc_netlist::Bv::new(32, *mask));
                    let masked = words::and(aig, &wd, &m);
                    let hit = words::eq_const(aig, &masked, *device);
                    out.push(aig.implies(wr, hit.not()));
                }
            }
        }
        out
    }

    /// Quiescing assumptions: the named busy flags are 0 in the symbolic
    /// starting state of both instances.
    pub fn quiescing_assumptions(&mut self) -> Vec<AigRef> {
        let names = self.an.spec.quiesced_ips.clone();
        let mut out = Vec::new();
        for name in &names {
            let w = self.an.src().find(name).expect("validated in bind()");
            for inst in [Instance::A, Instance::B] {
                let state = self.atom_word(inst, StateAtom::Reg(w.id()), 0);
                out.push(state[0].not());
            }
        }
        out
    }

    /// All standing assumptions for a `window`-transition property: range
    /// validity, firmware constraints, IP quiescing, and per-cycle input
    /// equality + victim macro — the shared ledger first, then the
    /// scenario ledger.
    ///
    /// Repeated calls (and calls for smaller windows) copy cached refs and
    /// perform no AIG construction at all; a larger window only builds the
    /// newly added cycles' blocks.
    pub fn base_assumptions(&mut self, window: usize) -> Vec<AigRef> {
        self.ensure_window(window);
        let mut out = Vec::new();
        self.for_base_blocks(window, |ledger, range| out.extend_from_slice(&ledger.refs[range]));
        out
    }

    /// Visits the standing-assumption blocks for `window` in solve order:
    /// per block boundary, the shared ledger's slice first, then the
    /// scenario ledger's. Assumptions become solver decisions in order, so
    /// the strongly pruning scenario constraints (device window, firmware,
    /// quiescing) must follow their window block immediately — deferring
    /// them to the end measurably slows satisfiable checks down.
    fn for_base_blocks(&self, window: usize, mut f: impl FnMut(&Ledger, std::ops::Range<usize>)) {
        let shared = &self.prefix.shared;
        for w in 0..=window {
            let start = if w == 0 { 0 } else { shared.offsets[w - 1] };
            f(shared, start..shared.offsets[w]);
            let start = if w == 0 { 0 } else { self.scenario.offsets[w - 1] };
            f(&self.scenario, start..self.scenario.offsets[w]);
        }
    }

    /// The guarded equality term of one atom at time `t` (see
    /// [`SessionPrefix::atom_eq_term`]).
    pub fn atom_eq_term(&mut self, atom: StateAtom, t: usize) -> AigRef {
        self.prefix.atom_eq_term(atom, t)
    }

    /// `State_Equivalence(S)` at time `t`: every atom in `S` equal between
    /// the instances; victim-allocatable memory words are exempt while they
    /// lie inside the protected range.
    pub fn state_eq(&mut self, set: &AtomSet, t: usize) -> AigRef {
        let conj: Vec<AigRef> = set.iter().map(|&atom| self.atom_eq_term(atom, t)).collect();
        let aig = self.prefix.ipc.unroller_mut().aig_mut();
        aig.and_all(conj)
    }

    /// Records a refinement step: the given diff atoms were just named by a
    /// counterexample (and removed from some tracked cycle set). Their
    /// pre-state equality assumptions are the hottest constraints of the
    /// next re-solve, so [`Session::check_window`] orders them first
    /// (most-recently-shrunk-first — see `ssc_sat::SolverStats::core_seeds`
    /// for the solver-side half of the re-solve tuning).
    pub fn note_shrunk(&mut self, diffs: &[AtomDiff]) {
        if diffs.is_empty() {
            return;
        }
        self.shrink_epoch += 1;
        for d in diffs {
            self.shrink_stamp.insert(d.atom, self.shrink_epoch);
        }
    }

    /// The incremental UPEC-SSC check: *assume the standing assumptions of
    /// `window` and `State_Equivalence(pre)` at time 0, prove
    /// `State_Equivalence(set)` at time `c` for every `(c, set)` in
    /// `goals`*.
    ///
    /// The negated goal (some tracked atom diverges at its cycle) is a
    /// disjunction of cached per-atom terms, installed as a clause guarded
    /// by a fresh activation literal and retired right after the solve —
    /// so consecutive checks with shrinking sets add only the clause and
    /// whatever cones are genuinely new, and the solver's learnt-clause
    /// database survives the whole fixpoint.
    pub fn check_window(
        &mut self,
        window: usize,
        pre: &AtomSet,
        goals: &[(usize, &AtomSet)],
    ) -> PropertyResult {
        self.ensure_window(window);
        self.last_cube = None;

        // Sound static discharge: the influence certificate proves a
        // disjunct false when its atom's element is farther from every
        // divergence source than the goal cycle; the proven-prefix ledger
        // proves it false when an earlier `Holds` under the same `pre` and
        // a window ≤ this one (i.e. under a *subset* of this check's
        // standing assumptions) already covered the pair. Either way the
        // omitted disjunct is false in every model, so omission never
        // changes the check's verdict — unlike core-guided dropping below,
        // this also applies to window-1 checks and the concluding
        // induction.
        let mut static_pruned = 0usize;
        if self.static_prune {
            if self.static_closure.as_ref().is_none_or(|(p, _)| p != pre) {
                let cl = self.prefix.cert.closure_for(pre);
                self.static_closure = Some((pre.clone(), cl));
            }
            if self.proven_pre.as_ref() != Some(pre) {
                self.proven.clear();
                self.proven_pre = Some(pre.clone());
            }
        }

        // Unsat-core-guided atom dropping (window ≥ 2 only): an atom whose
        // pre-state equality assumption was offered to a core-reporting
        // check but never appeared in any final assumption core has never
        // carried a proof, so its divergence disjunct is dead weight in
        // the goal clause. Dropping weakens the *negated* goal — it can
        // only steer the Alg. 2 window search, never fake a verdict: the
        // concluding window-1 check proves the genuine induction with the
        // full goal.
        let mut neg_goal = Vec::new();
        let mut dropped = 0usize;
        let mut dropped_pairs: FxHashSet<(StateAtom, usize)> = FxHashSet::default();
        let mut survivors: Vec<(usize, StateAtom)> = Vec::new();
        let mut total_pairs = 0usize;
        for &(cycle, set) in goals {
            debug_assert!(cycle <= window, "goal cycle outside the window");
            for &atom in set {
                total_pairs += 1;
                if self.static_prune {
                    let discharged = self
                        .static_closure
                        .as_ref()
                        .is_some_and(|(_, cl)| self.prefix.cert.certified_clean(cl, atom, cycle))
                        || self.proven.get(&(atom, cycle)).is_some_and(|&w| w <= window);
                    if discharged {
                        static_pruned += 1;
                        continue;
                    }
                }
                survivors.push((cycle, atom));
            }
        }
        if survivors.is_empty() && total_pairs > 0 {
            // Every pair was statically discharged. Answering `Holds`
            // without the solver would be sound, but Alg. 2's unsat-core
            // saturation fast-path then has no assumption core to inspect —
            // claiming one either way can steer the window search off the
            // unpruned run's trajectory. Fall back to the full goal: the
            // solver's verdict is a foregone conclusion (every disjunct is
            // provably false), but its core makes the saturation decision
            // exactly as an unpruned run would.
            static_pruned = 0;
            survivors = goals
                .iter()
                .flat_map(|&(cycle, set)| set.iter().map(move |&atom| (cycle, atom)))
                .collect();
        }
        for &(cycle, atom) in &survivors {
            let droppable = window >= DROP_MIN_WINDOW
                && self.core_tested.contains(&atom)
                && !self.core_seen.contains(&atom);
            if droppable {
                dropped += 1;
                dropped_pairs.insert((atom, cycle));
                continue;
            }
            neg_goal.push(self.prefix.atom_eq_term(atom, cycle).not());
        }
        if neg_goal.is_empty() && dropped > 0 {
            // Dropping every remaining disjunct would make the goal
            // vacuous (the guarded clause degenerates to `¬act` and the
            // check "holds" for free) — rebuild the heuristically dropped
            // disjuncts. Statically discharged ones stay omitted: their
            // omission is certificate-backed, not heuristic.
            dropped = 0;
            dropped_pairs.clear();
            for &(cycle, atom) in &survivors {
                neg_goal.push(self.prefix.atom_eq_term(atom, cycle).not());
            }
        }
        self.atoms_core_dropped = dropped;
        self.atoms_static_pruned = static_pruned;
        self.goal_disjuncts = neg_goal.len();
        if neg_goal.is_empty() {
            // The goal list itself was empty (the all-discharged case fell
            // back to the full goal above): the window property holds
            // outright, identically with pruning on or off. Skip the solver
            // — and the core-dropping bookkeeping, since no pre-state
            // assumption was actually offered to a check.
            self.last_core_without_state_eq = Some(true);
            return PropertyResult::Holds;
        }

        let act = self.prefix.ipc.activation_literal();
        self.prefix.ipc.add_clause_under(act, &neg_goal);

        let mut lits = std::mem::take(&mut self.lit_buf);
        lits.clear();
        self.for_base_blocks(window, |ledger, range| lits.extend_from_slice(&ledger.lits[range]));
        // `State_Equivalence(pre)` enters as one assumption literal *per
        // atom* (not one conjunction): logically identical, but on `Holds`
        // the solver's assumption core then reports which atoms' equalities
        // the proof actually rested on. Atoms named by recent refinements
        // go first (a stable sort keeps the deterministic atom order within
        // equal epochs).
        let pre_start = lits.len();
        let mut order: Vec<StateAtom> = pre.iter().copied().collect();
        order.sort_by_key(|a| {
            std::cmp::Reverse(self.shrink_stamp.get(a).copied().unwrap_or(0))
        });
        for &atom in &order {
            let term = self.prefix.atom_eq_term(atom, 0);
            let lit = self.prefix.ipc.lit_of(term);
            lits.push(lit);
        }
        lits.push(act);
        let (result, raced_core) = if self.escalation_applies(window) {
            self.check_lits_cubed(window, &lits)
        } else {
            let before = self.prefix.ipc.solver_stats().conflicts;
            let r = self.prefix.ipc.check_lits(&lits);
            let spent = self.prefix.ipc.solver_stats().conflicts - before;
            self.window_conflicts.insert(window, spent);
            (r, None)
        };
        self.last_core_without_state_eq = match result {
            PropertyResult::Holds => {
                // Which pre-state assumptions the proof rested on: from the
                // merged cube core after an all-UNSAT race (the parent
                // solver never ran, its own core is stale), else from the
                // parent solver directly.
                let pre_lits = &lits[pre_start..lits.len() - 1];
                let in_core: Vec<bool> = match &raced_core {
                    Some(core) => {
                        pre_lits.iter().map(|l| core.binary_search(l).is_ok()).collect()
                    }
                    None => {
                        let core = self.prefix.ipc.assumption_core();
                        pre_lits.iter().map(|l| core.contains(l)).collect()
                    }
                };
                for (&atom, &hit) in order.iter().zip(&in_core) {
                    self.core_tested.insert(atom);
                    if hit {
                        self.core_seen.insert(atom);
                    }
                }
                Some(!in_core.iter().any(|&hit| hit))
            }
            PropertyResult::Violated | PropertyResult::Interrupted(_) => None,
        };
        if self.static_prune && matches!(result, PropertyResult::Holds) {
            // Holds proved every *non-core-dropped* goal pair false (the
            // discharged ones by the certificate or an earlier proof, the
            // installed ones by the solver) under this window's standing
            // assumptions — record them so larger-window re-checks of the
            // same pairs under the same `pre` skip their disjuncts.
            // Core-dropped pairs were absent from the solved clause, so
            // this Holds says nothing about them.
            for &(cycle, set) in goals {
                for &atom in set {
                    if dropped_pairs.contains(&(atom, cycle)) {
                        continue;
                    }
                    let w = self.proven.entry((atom, cycle)).or_insert(window);
                    if window < *w {
                        *w = window;
                    }
                }
            }
        }
        self.lit_buf = lits;
        // The goal clause belongs to this check only; retiring it keeps the
        // clause database additive while the state sets shrink.
        self.prefix.ipc.retire_activation(act);
        result
    }

    /// Whether [`Session::check_window`] may escalate this check to a cube
    /// race: escalation on, window large enough, and the session under an
    /// *unlimited* budget — a caller-imposed budget (limits, cancellation
    /// token) governs the sequential path only, and racing forks install
    /// budgets of their own.
    fn escalation_applies(&self, window: usize) -> bool {
        self.cube.enabled
            && window >= self.cube.min_window
            && self.cube.split_vars >= 1
            && self.prefix.ipc.budget().is_unlimited()
    }

    /// The escalating solve of [`Session::check_window`]: probe
    /// sequentially under a conflict cap (unless this window already
    /// escalated once — then it is predicted hard and the probe is
    /// skipped), and on cap exhaustion re-run the check as a cube race.
    ///
    /// Returns the result plus, after an all-UNSAT race, the merged
    /// assumption core — the sorted, deduplicated union of the cube cores
    /// with cube literals stripped. The union is a valid core of the
    /// un-cubed check: each cube proved `F ∧ assumptions ∧ cubeᵢ` UNSAT
    /// from its stripped core, and the cubes exhaust all sign
    /// combinations.
    fn check_lits_cubed(
        &mut self,
        window: usize,
        lits: &[Lit],
    ) -> (PropertyResult, Option<Vec<Lit>>) {
        let threshold = self.cube.conflict_threshold;
        let predicted_hard =
            self.window_conflicts.get(&window).copied().is_some_and(|c| c >= threshold);
        if !predicted_hard {
            let ipc = &mut self.prefix.ipc;
            let saved = ipc.budget().clone();
            ipc.set_budget(saved.clone().with_conflicts(threshold));
            let before = ipc.solver_stats().conflicts;
            let result = ipc.check_lits(lits);
            let spent = ipc.solver_stats().conflicts - before;
            ipc.set_budget(saved);
            match result {
                PropertyResult::Interrupted(int)
                    if int.cause == InterruptCause::Conflicts =>
                {
                    // Hard check: race it, and skip the probe next time
                    // this window is checked.
                    self.window_conflicts.insert(window, u64::MAX);
                }
                other => {
                    self.window_conflicts.insert(window, spent);
                    return (other, None);
                }
            }
        }
        self.race_cubes(lits)
    }

    /// Races all `2^j` cubes over `j` split variables across forked
    /// sessions; first SAT cancels the siblings, all-UNSAT concludes
    /// UNSAT. Both outcomes are independent of racing order and worker
    /// count, so the verdict stays deterministic by construction.
    fn race_cubes(&mut self, lits: &[Lit]) -> (PropertyResult, Option<Vec<Lit>>) {
        let j = self.cube.split_vars as usize;
        // Split variables: the most VSIDS-active free variables not
        // already constrained by the assumption vector. The probe solve
        // primed the activities, so these are where the search struggles.
        let assumed: FxHashSet<Var> = lits.iter().map(|l| l.var()).collect();
        let split: Vec<Var> = self
            .prefix
            .ipc
            .top_vars(j + lits.len())
            .into_iter()
            .filter(|v| !assumed.contains(v))
            .take(j)
            .collect();
        if split.is_empty() {
            // Nothing to split on (tiny instance): solve sequentially.
            return (self.prefix.ipc.check_lits(lits), None);
        }
        let n = 1usize << split.len();
        let order = cube_order(n, self.cube.order_seed);
        let token = CancelToken::new();
        let parent_tag = self.prefix.ipc.budget().tag;
        let base_conflicts = self.prefix.ipc.solver_stats().conflicts;
        let ipc = &self.prefix.ipc;
        let outcomes = Pool::new(self.cube.workers).race(
            n,
            |slot| {
                let ci = order[slot];
                // Each fork gets a private budget — unlimited but for the
                // shared race token, and tagged per cube so chaos plans
                // can address one cube's solve. (A plain fork would
                // *share* the parent's budget, token and all.)
                let mut fork = ipc.fork_with_budget(
                    Budget::unlimited()
                        .with_cancel(&token)
                        .with_tag(cube_tag(parent_tag, ci)),
                );
                let mut cube_lits = lits.to_vec();
                for (bit, &v) in split.iter().enumerate() {
                    cube_lits.push(v.lit(ci >> bit & 1 == 1));
                }
                let started = Instant::now();
                let result = fork.check_lits(&cube_lits);
                let core = if result == PropertyResult::Holds {
                    fork.assumption_core()
                        .iter()
                        .copied()
                        .filter(|l| !split.contains(&l.var()))
                        .collect()
                } else {
                    Vec::new()
                };
                CubeOutcome {
                    cube: ci,
                    result,
                    core,
                    conflicts: fork.solver_stats().conflicts - base_conflicts,
                    elapsed: started.elapsed(),
                }
            },
            |_, out| out.result == PropertyResult::Violated,
            || token.cancel(),
        );

        let mut report = CubeReport {
            cubes: n,
            winner: None,
            wasted_us: 0,
            conflicts: vec![0; n],
            fallback: false,
        };
        let mut winner = None;
        let mut all_unsat = true;
        for outcome in &outcomes {
            match outcome {
                Ok(out) => {
                    report.conflicts[out.cube] = out.conflicts;
                    match out.result {
                        PropertyResult::Violated => {
                            winner.get_or_insert(out.cube);
                        }
                        PropertyResult::Holds => {}
                        PropertyResult::Interrupted(_) => all_unsat = false,
                    }
                }
                Err(_) => all_unsat = false,
            }
        }
        if let Some(w) = winner {
            for out in outcomes.iter().flatten() {
                if out.cube != w {
                    report.wasted_us += out.elapsed.as_micros() as u64;
                }
            }
            report.winner = Some(w);
            self.last_cube = Some(report);
            // The race only established *that* a counterexample exists —
            // the model lives in the winning fork, which is gone. Re-solve
            // in the parent so `extract_diffs`/`capture_cex` read a model
            // that is deterministic regardless of which cube won first or
            // how many workers raced.
            return (self.prefix.ipc.check_lits(lits), None);
        }
        if all_unsat {
            let mut merged: Vec<Lit> =
                outcomes.iter().flatten().flat_map(|o| o.core.iter().copied()).collect();
            merged.sort_unstable();
            merged.dedup();
            self.last_cube = Some(report);
            return (PropertyResult::Holds, Some(merged));
        }
        // A cube died (e.g. a chaos-injected panic, isolated by the
        // pool's `try_run`) and no sibling found a model: the dead cube's
        // subspace is unverified, so the race is inconclusive. Fall back
        // to the parent's sequential solve — a failed or cancelled cube
        // never decides a verdict.
        report.fallback = true;
        self.last_cube = Some(report);
        (self.prefix.ipc.check_lits(lits), None)
    }

    /// After a `Holds` from [`Session::check_window`]: `Some(true)` iff
    /// **no** pre-state atom-equality assumption appears in the solver's
    /// assumption core — i.e. the window property held independently of
    /// `State_Equivalence(pre)`, so further refinement of the tracked sets
    /// cannot change the verdict. `None` if the last check was violated.
    pub fn last_core_without_state_eq(&self) -> Option<bool> {
        self.last_core_without_state_eq
    }

    // ------------------------------------------------------------------
    // Counterexample extraction
    // ------------------------------------------------------------------

    /// After a violated check: the atoms of `set` that genuinely diverge at
    /// time `t` under the model (range-guarded words that fall inside the
    /// protected range are not counted).
    pub fn extract_diffs(&self, set: &AtomSet, t: usize) -> Vec<AtomDiff> {
        let prot = self
            .prefix
            .ipc
            .model_word(&self.prefix.prot_word())
            .expect("prot_base encoded by range validity");
        let mut out = Vec::new();
        for &atom in set {
            let wa = self.atom_word(Instance::A, atom, t);
            let wb = self.atom_word(Instance::B, atom, t);
            let (Ok(va), Ok(vb)) =
                (self.prefix.ipc.model_word(&wa), self.prefix.ipc.model_word(&wb))
            else {
                continue;
            };
            if va == vb {
                continue;
            }
            if let StateAtom::MemWord(mem, i) = atom {
                if let Some(base) = self.an.art.device_base.get(&mem) {
                    let addr = (base + 4 * u64::from(i)) & self.an.spec.range_mask;
                    if addr == prot {
                        continue; // victim-allocated word: exempt
                    }
                }
            }
            out.push(AtomDiff {
                atom,
                name: self.an.atom_name(atom),
                value_a: va,
                value_b: vb,
                persistent: self.an.is_persistent(atom),
            });
        }
        out
    }

    /// Builds the full counterexample record after a violated check.
    pub fn capture_cex(&self, diffs: Vec<AtomDiff>, at_cycle: usize, window: usize) -> Counterexample {
        let prot = self.prefix.ipc.model_word(&self.prefix.prot_word()).unwrap_or(0);
        let p = self.an.art.port_src;
        let mut trace = Vec::new();
        for c in 0..window {
            let get = |s: &Self, inst, w| {
                s.prefix.ipc.model_word(&s.prefix.input_word(inst, w, c)).unwrap_or(0)
            };
            let act = |s: &Self, inst: Instance| -> PortActivity {
                let req = get(s, inst, p.req) == 1;
                let addr = get(s, inst, p.addr);
                let we = get(s, inst, p.we) == 1;
                let wdata = get(s, inst, p.wdata);
                PortActivity {
                    req,
                    addr,
                    we,
                    wdata,
                    protected: req && (addr & self.an.spec.range_mask) == prot,
                }
            };
            trace.push(CexCycle { cycle: c, port_a: act(self, Instance::A), port_b: act(self, Instance::B) });
        }
        // Initial state of both instances for concrete replay.
        let mut initial_state = Vec::new();
        for atom in atoms::all_atoms(self.an.src()) {
            let wa = self.atom_word(Instance::A, atom, 0);
            let wb = self.atom_word(Instance::B, atom, 0);
            if let (Ok(va), Ok(vb)) =
                (self.prefix.ipc.model_word(&wa), self.prefix.ipc.model_word(&wb))
            {
                initial_state.push((atom, self.an.atom_name(atom), va, vb));
            }
        }
        Counterexample { at_cycle, diffs, prot_base: prot, trace, initial_state }
    }
}

/// Compile-time thread-safety audit for the portfolio runner
/// (`ssc-bench::portfolio`): phase one builds one [`ProductArtifact`] and
/// one [`SessionPrefix`] per SoC size and **shares both by reference**
/// across the pool workers (the prefix is only forked, never mutated, on
/// worker threads), while phase two constructs one [`UpecAnalysis`] +
/// [`Session`] per job. If a future change introduces interior mutability
/// or thread-bound state in any of these types, this fails to compile
/// instead of racing at runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<ProductArtifact>();
    assert_send_sync::<UpecAnalysis>();
    assert_send_sync::<SessionPrefix<'static>>();
    assert_send_sync::<crate::spec::UpecSpec>();
    assert_send::<crate::report::Verdict>();
    assert_send::<Session<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_tags_are_deterministic_and_collision_free_across_a_race() {
        // Chaos plans address one cube's solve by its tag, so within a
        // race every tag must be distinct from the siblings' and from the
        // parent's.
        let parent = 0xdead_beef;
        let tags: Vec<u64> = (0..256).map(|c| cube_tag(parent, c)).collect();
        let mut dedup = tags.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), tags.len(), "sibling cube tags collided");
        assert!(!tags.contains(&parent), "a cube tag collided with the parent tag");
        assert_eq!(cube_tag(parent, 3), cube_tag(parent, 3));
        assert_ne!(cube_tag(parent, 3), cube_tag(parent ^ 1, 3));
    }

    #[test]
    fn cube_order_is_a_permutation_and_seed_zero_is_identity() {
        assert_eq!(cube_order(4, 0), vec![0, 1, 2, 3]);
        for seed in [1u64, 0x5eed, u64::MAX] {
            let order = cube_order(8, seed);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "seed {seed} is not a permutation");
            assert_eq!(order, cube_order(8, seed), "seed {seed} is not deterministic");
        }
        // The shuffle must actually shuffle for at least some seed, or the
        // shuffled-order determinism tests would be vacuous.
        assert!((1..100u64).any(|s| cube_order(8, s) != cube_order(8, 0)));
    }

    #[test]
    fn cube_config_env_parsing_accepts_documented_forms_and_rejects_junk() {
        let cfg = CubeConfig::parse_env(None, None, None, None).unwrap();
        assert_eq!(
            cfg.enabled,
            cfg.workers >= 2,
            "unset switch must default to escalating exactly when a race can win"
        );
        assert_eq!(cfg.conflict_threshold, 10_000);
        assert_eq!(cfg.split_vars, 2);

        let cfg = CubeConfig::parse_env(Some("off"), Some("500"), Some("3"), Some("7")).unwrap();
        assert!(!cfg.enabled);
        assert_eq!(cfg.conflict_threshold, 500);
        assert_eq!(cfg.split_vars, 3);
        assert_eq!(cfg.order_seed, 7);
        assert!(CubeConfig::parse_env(Some("1"), None, None, None).unwrap().enabled);

        assert_eq!(
            CubeConfig::parse_env(Some("maybe"), None, None, None).unwrap_err().0,
            CUBE_ESCALATE_ENV
        );
        assert_eq!(
            CubeConfig::parse_env(None, Some("0"), None, None).unwrap_err().0,
            CUBE_THRESHOLD_ENV
        );
        assert_eq!(
            CubeConfig::parse_env(None, None, Some("9"), None).unwrap_err().0,
            CUBE_SPLIT_VARS_ENV
        );
        assert_eq!(
            CubeConfig::parse_env(None, None, Some("0"), None).unwrap_err().0,
            CUBE_SPLIT_VARS_ENV
        );
        assert_eq!(
            CubeConfig::parse_env(None, None, None, Some("x")).unwrap_err().0,
            CUBE_ORDER_SEED_ENV
        );
    }

    #[test]
    fn static_prune_env_parsing_accepts_documented_forms_and_rejects_junk() {
        assert!(parse_static_prune_env(None).unwrap(), "unset must default to on");
        for raw in ["1", "on", "true"] {
            assert!(parse_static_prune_env(Some(raw)).unwrap(), "{raw} must enable");
        }
        for raw in ["0", "off", "false"] {
            assert!(!parse_static_prune_env(Some(raw)).unwrap(), "{raw} must disable");
        }
        for raw in ["yes", "ON", "2", ""] {
            let (var, bad) = parse_static_prune_env(Some(raw)).unwrap_err();
            assert_eq!(var, STATIC_PRUNE_ENV);
            assert_eq!(bad, raw);
        }
    }
}
