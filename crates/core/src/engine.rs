//! The 2-safety product and the UPEC-SSC property macros.
//!
//! Three layers build on each other:
//!
//! * [`ProductArtifact`] — the **scenario-independent** half of an
//!   analysis: the source netlist instantiated **twice** inside one product
//!   netlist (instances `a` and `b`), the shared symbolic protected-range
//!   base, and the resolved victim-port/device signals. Built once per
//!   design (one per SoC size in a portfolio) and `Arc`-shared by every
//!   scenario analysis of that design.
//! * [`UpecAnalysis`] — a *thin binding* of a [`UpecSpec`] to a shared
//!   artifact ([`UpecAnalysis::bind`]): the spec-dependent pieces
//!   (firmware constraints, spying-IP restrictions, quiesced IPs,
//!   persistence policy) are validated here, never inside product
//!   construction.
//! * [`SessionPrefix`] / [`Session`] — the proof sessions. A prefix holds
//!   everything scenario-independent *and already encoded into the
//!   solver*: the unrolled cycles, the per-cycle input-equality and
//!   victim macros (Fig. 3's `Primary_Input_Constraints` and
//!   `Victim_Task_Executing`), the range-alignment validity and the
//!   per-atom state-equality cones. [`SessionPrefix::fork`] snapshots it
//!   (copy-on-write session forking via [`Ipc::fork`]), and
//!   [`Session::with_prefix`] binds a fork to one scenario by adding only
//!   the scenario's own assumptions on top.

use std::collections::HashMap;
use std::sync::Arc;

use ssc_aig::fx::FxHashMap;
use ssc_aig::words::{self, Word};
use ssc_aig::AigRef;
use ssc_ipc::{Ipc, PropertyResult};
use ssc_netlist::{ImportMap, MemId, Netlist, Node, Wire};
use ssc_sat::Lit;

use crate::atoms::{self, AtomSet, StateAtom};
use crate::report::{AtomDiff, CexCycle, Counterexample, PortActivity};
use crate::spec::{DeviceMap, FirmwareConstraint, IpPort, UpecSpec, VictimPort};

/// Instance selector within the product.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instance {
    /// Instance `a`.
    A,
    /// Instance `b`.
    B,
}

#[derive(Clone, Copy, Debug)]
struct PortSrc {
    req: Wire,
    addr: Wire,
    we: Wire,
    wdata: Wire,
}

/// The scenario-independent product of one design: source netlist,
/// 2-safety product, import maps and resolved victim-port/device signals.
///
/// Build once per design ([`ProductArtifact::build`]), wrap in an [`Arc`]
/// and [`UpecAnalysis::bind`] every scenario of a portfolio to the same
/// artifact — the product netlist (the expensive double instantiation) is
/// then constructed once instead of once per scenario.
pub struct ProductArtifact {
    src: Netlist,
    product: Netlist,
    map_a: ImportMap,
    map_b: ImportMap,
    prot_base: Wire,
    /// Source-netlist port wires (inputs).
    port_src: PortSrc,
    /// Victim-allocatable device base per source memory.
    device_base: HashMap<MemId, u64>,
    /// The port names the artifact was resolved with (bind-time check).
    port: VictimPort,
    /// The device maps the artifact was resolved with (bind-time check).
    devices: Vec<DeviceMap>,
}

impl std::fmt::Debug for ProductArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProductArtifact")
            .field("design", &self.src.name())
            .field("product_nodes", &self.product.num_nodes())
            .finish()
    }
}

impl ProductArtifact {
    /// Builds the 2-safety product for `src`, resolving the victim `port`
    /// and the victim-allocatable `devices`.
    ///
    /// # Errors
    ///
    /// Returns a message if the port signals are not free inputs (i.e. the
    /// netlist is not a verification view) or a device memory does not
    /// exist.
    pub fn build(
        src: &Netlist,
        port: &VictimPort,
        devices: &[DeviceMap],
    ) -> Result<ProductArtifact, String> {
        let find_input = |name: &str| -> Result<Wire, String> {
            let w = src
                .find(name)
                .ok_or_else(|| format!("port signal `{name}` not found"))?;
            match src.node(w.id()) {
                Node::Input { .. } => Ok(w),
                _ => Err(format!(
                    "port signal `{name}` is not a free input — use the verification view"
                )),
            }
        };
        let port_src = PortSrc {
            req: find_input(&port.req)?,
            addr: find_input(&port.addr)?,
            we: find_input(&port.we)?,
            wdata: find_input(&port.wdata)?,
        };
        let mut device_base = HashMap::new();
        for dev in devices {
            let mem = src
                .find_mem(&dev.mem_name)
                .ok_or_else(|| format!("device memory `{}` not found", dev.mem_name))?;
            device_base.insert(mem, dev.base);
        }

        let mut product = Netlist::new(format!("{}_upec_product", src.name()));
        let map_a = product.import(src, "a");
        let map_b = product.import(src, "b");
        let prot_base = product.input("prot_base", 32);
        product.check().map_err(|e| format!("product netlist invalid: {e}"))?;

        Ok(ProductArtifact {
            src: src.clone(),
            product,
            map_a,
            map_b,
            prot_base,
            port_src,
            device_base,
            port: port.clone(),
            devices: devices.to_vec(),
        })
    }

    /// [`ProductArtifact::build`] with the port/devices taken from `spec`
    /// (the artifact-relevant subset — the rest of the spec is not needed
    /// until [`UpecAnalysis::bind`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ProductArtifact::build`].
    pub fn for_spec(src: &Netlist, spec: &UpecSpec) -> Result<ProductArtifact, String> {
        ProductArtifact::build(src, &spec.port, &spec.devices)
    }

    /// The design under verification (single instance).
    pub fn src(&self) -> &Netlist {
        &self.src
    }

    /// The 2-safety product netlist.
    pub fn product(&self) -> &Netlist {
        &self.product
    }

    fn map(&self, inst: Instance) -> &ImportMap {
        match inst {
            Instance::A => &self.map_a,
            Instance::B => &self.map_b,
        }
    }
}

/// A UPEC-SSC analysis context: a (possibly shared) [`ProductArtifact`]
/// bound to one [`UpecSpec`].
///
/// Create with [`UpecAnalysis::new`] (builds a private artifact) or
/// [`UpecAnalysis::bind`] (shares an existing one across scenarios), then
/// run [`UpecAnalysis::alg1`] / [`UpecAnalysis::alg2`] (see
/// `procedure.rs`).
pub struct UpecAnalysis {
    art: Arc<ProductArtifact>,
    spec: UpecSpec,
}

impl std::fmt::Debug for UpecAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpecAnalysis")
            .field("design", &self.art.src.name())
            .field("product_nodes", &self.art.product.num_nodes())
            .finish()
    }
}

impl UpecAnalysis {
    /// Builds a private 2-safety product for `src` and binds `spec` to it.
    ///
    /// For a portfolio of scenarios over one design, build the product once
    /// with [`ProductArtifact::build`] and use [`UpecAnalysis::bind`]
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns a message if the spec references signals/memories that do
    /// not exist, or the port signals are not free inputs (i.e. the netlist
    /// is not a verification view).
    pub fn new(src: &Netlist, spec: UpecSpec) -> Result<Self, String> {
        let art = Arc::new(ProductArtifact::for_spec(src, &spec)?);
        UpecAnalysis::bind(art, spec)
    }

    /// Binds `spec` to a shared artifact, validating only the
    /// spec-dependent pieces (firmware constraints, spying-IP ports,
    /// quiesced IPs) — the artifact already resolved the port and devices.
    ///
    /// # Errors
    ///
    /// Returns a message if the spec's port/devices differ from the ones
    /// the artifact was built with, or a spec-referenced signal does not
    /// exist in the design.
    pub fn bind(art: Arc<ProductArtifact>, spec: UpecSpec) -> Result<Self, String> {
        if spec.port != art.port {
            return Err("spec victim port differs from the artifact's".into());
        }
        if spec.devices != art.devices {
            return Err("spec device maps differ from the artifact's".into());
        }
        let src = &art.src;
        for c in &spec.constraints {
            if let FirmwareConstraint::RegOutsideDevice { reg, .. } = c {
                src.find(reg)
                    .ok_or_else(|| format!("constraint register `{reg}` not found"))?;
            }
        }
        for ip in &spec.ip_ports {
            for name in [&ip.req, &ip.addr] {
                src.find(name)
                    .ok_or_else(|| format!("IP port signal `{name}` not found"))?;
            }
        }
        for name in &spec.quiesced_ips {
            let w = src
                .find(name)
                .ok_or_else(|| format!("quiesced IP flag `{name}` not found"))?;
            if !matches!(src.node(w.id()), Node::Reg(_)) {
                return Err(format!("quiesced IP flag `{name}` must be a register"));
            }
        }
        Ok(UpecAnalysis { art, spec })
    }

    /// The shared product artifact this analysis is bound to.
    pub fn artifact(&self) -> &Arc<ProductArtifact> {
        &self.art
    }

    /// The design under verification (single instance).
    pub fn src(&self) -> &Netlist {
        &self.art.src
    }

    /// The 2-safety product netlist.
    pub fn product(&self) -> &Netlist {
        &self.art.product
    }

    /// The specification.
    pub fn spec(&self) -> &UpecSpec {
        &self.spec
    }

    /// Compiles `S_not_victim` (paper Def. 1).
    pub fn s_not_victim(&self) -> AtomSet {
        atoms::not_victim_atoms(&self.art.src)
    }

    /// Compiles `S_pers` (paper Def. 2) under the spec's policy.
    pub fn s_pers(&self) -> AtomSet {
        self.spec.persistence.pers_atoms(&self.art.src)
    }

    /// Is `atom` persistent under the spec's policy?
    pub fn is_persistent(&self, atom: StateAtom) -> bool {
        self.spec.persistence.is_persistent(&self.art.src, atom)
    }

    /// Human-readable atom name.
    pub fn atom_name(&self, atom: StateAtom) -> String {
        atoms::atom_name(&self.art.src, atom)
    }
}

/// One assumption ledger of a session: AIG refs, their pre-encoded solver
/// literals, and per-window offsets (`offsets[w]` bounds the prefix valid
/// for a `w`-transition window; `offsets[0]` ends the window-invariant
/// block).
#[derive(Clone, Default)]
struct Ledger {
    refs: Vec<AigRef>,
    lits: Vec<Lit>,
    offsets: Vec<usize>,
}

impl Ledger {
    fn window(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }
}

/// The scenario-independent shared core of a prefix: everything beyond the
/// artifact that the shared macros depend on. Scenarios bound to the same
/// prefix must agree on it ([`Session::with_prefix`] asserts this).
#[derive(Clone)]
struct PrefixCore {
    range_mask: u64,
    ip_ports: Vec<IpPort>,
}

/// The shared, already-encoded prefix of a proof session: product
/// unrolling, range-alignment validity, per-cycle input-equality and
/// victim macros, and the per-atom state-equality cones for every
/// `S_not_victim` atom — all scenario-independent, all Tseitin-encoded
/// into the prefix's solver at construction time.
///
/// Build once per design/size ([`SessionPrefix::build`]), then
/// [`SessionPrefix::fork`] per scenario: a fork snapshots the AIG, the
/// node→variable table and the solver (see [`Ipc::fork`]) so the shared
/// encoding work is paid exactly once, and every scenario's [`Session`]
/// starts from it instead of re-encoding four (or forty) times.
pub struct SessionPrefix<'p> {
    ipc: Ipc<'p>,
    art: &'p ProductArtifact,
    core: PrefixCore,
    /// Shared standing assumptions: alignment validity (invariant block),
    /// then one input-eq + victim-macro block per unrolled cycle.
    shared: Ledger,
    /// `(atom, t)` → guarded equality term, shared by every check that
    /// mentions the atom at that time.
    eq_terms: FxHashMap<(StateAtom, usize), AigRef>,
    /// The atom universe whose equality terms are pre-built per time step.
    universe: AtomSet,
}

impl std::fmt::Debug for SessionPrefix<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPrefix")
            .field("design", &self.art.src.name())
            .field("window", &self.window())
            .field("encoded_nodes", &self.ipc.encoded_nodes())
            .finish()
    }
}

impl<'p> SessionPrefix<'p> {
    /// Builds and encodes the shared prefix for `window` transitions. The
    /// scenario-independent core (range mask, spying-IP ports) is taken
    /// from `spec`; any scenario later bound to this prefix must agree on
    /// it.
    ///
    /// # Errors
    ///
    /// Returns a message if a spying-IP port signal does not exist in the
    /// design.
    pub fn build(
        art: &'p ProductArtifact,
        spec: &UpecSpec,
        window: usize,
    ) -> Result<SessionPrefix<'p>, String> {
        for ip in &spec.ip_ports {
            for name in [&ip.req, &ip.addr] {
                art.src
                    .find(name)
                    .ok_or_else(|| format!("IP port signal `{name}` not found"))?;
            }
        }
        let mut p = SessionPrefix {
            ipc: Ipc::new(&art.product),
            art,
            core: PrefixCore {
                range_mask: spec.range_mask,
                ip_ports: spec.ip_ports.clone(),
            },
            shared: Ledger::default(),
            eq_terms: FxHashMap::default(),
            universe: atoms::not_victim_atoms(&art.src),
        };
        let inv = p.alignment_validity();
        p.push_shared_block(inv);
        p.build_eq_terms(0);
        p.ensure_window(window.max(1));
        Ok(p)
    }

    /// Forks the prefix into an independent snapshot (see [`Ipc::fork`]):
    /// the encoded shared formula, every cached term and all solver state
    /// carry over; the fork and the original diverge freely from here on.
    pub fn fork(&self) -> SessionPrefix<'p> {
        SessionPrefix {
            ipc: self.ipc.fork(),
            art: self.art,
            core: self.core.clone(),
            shared: self.shared.clone(),
            eq_terms: self.eq_terms.clone(),
            universe: self.universe.clone(),
        }
    }

    /// The number of transitions the prefix currently supports.
    pub fn window(&self) -> usize {
        self.shared.window()
    }

    /// Cumulative count of CNF-encoded AIG nodes (see
    /// [`Ipc::encoded_nodes`]).
    pub fn encoded_nodes(&self) -> usize {
        self.ipc.encoded_nodes()
    }

    /// Grows the shared prefix to `window` transitions: unrolls the new
    /// cycles, appends their input-eq + victim-macro blocks and pre-builds
    /// the new time step's state-equality terms — everything encoded
    /// eagerly so later forks inherit it.
    pub fn ensure_window(&mut self, window: usize) {
        self.ipc.unroller_mut().ensure_cycle(window.saturating_sub(1));
        while self.shared.window() < window {
            let cycle = self.shared.window();
            let mut block = self.input_eq(cycle);
            block.extend(self.victim_macro(cycle));
            self.push_shared_block(block);
            self.build_eq_terms(cycle + 1);
        }
    }

    /// Appends one block of shared assumptions, encoding each literal.
    fn push_shared_block(&mut self, refs: Vec<AigRef>) {
        for r in refs {
            let lit = self.ipc.lit_of(r);
            self.shared.refs.push(r);
            self.shared.lits.push(lit);
        }
        self.shared.offsets.push(self.shared.refs.len());
    }

    /// Pre-builds (and encodes) the equality term of every universe atom at
    /// time `t`.
    fn build_eq_terms(&mut self, t: usize) {
        let atoms: Vec<StateAtom> = self.universe.iter().copied().collect();
        for atom in atoms {
            let term = self.atom_eq_term(atom, t);
            let _ = self.ipc.lit_of(term);
        }
    }

    // ------------------------------------------------------------------
    // Word access
    // ------------------------------------------------------------------

    fn input_word(&self, inst: Instance, src_wire: Wire, cycle: usize) -> Word {
        let mapped = self.art.map(inst).signal(src_wire.id());
        let w = self.art.product.wire_of(mapped);
        self.ipc.unroller().input(w, cycle).clone()
    }

    /// The value of an arbitrary source-netlist signal in `inst` during
    /// `cycle`.
    pub fn signal_word(&self, inst: Instance, src_wire: Wire, cycle: usize) -> Word {
        let mapped = self.art.map(inst).signal(src_wire.id());
        let w = self.art.product.wire_of(mapped);
        self.ipc.unroller().signal(w, cycle).clone()
    }

    /// The shared protected-range base (cycle-0 symbol; the base is an
    /// allocation-time constant, so one symbol serves all cycles).
    fn prot_word(&self) -> Word {
        self.ipc.unroller().input(self.art.prot_base, 0).clone()
    }

    /// The state word of `atom` in `inst` at time `t`.
    pub fn atom_word(&self, inst: Instance, atom: StateAtom, t: usize) -> Word {
        match atom {
            StateAtom::Reg(id) => {
                let mapped = self.art.map(inst).signal(id);
                self.ipc.unroller().reg_state(mapped, t).clone()
            }
            StateAtom::MemWord(mem, i) => {
                let mapped = self.art.map(inst).mem(mem);
                self.ipc.unroller().mem_word_state(mapped, i, t).clone()
            }
        }
    }

    // ------------------------------------------------------------------
    // Shared macros
    // ------------------------------------------------------------------

    /// `in_range(addr) = (addr & range_mask) == prot_base`.
    fn in_range(&mut self, addr: &Word) -> AigRef {
        let prot = self.prot_word();
        let mask = self.core.range_mask;
        let aig = self.ipc.unroller_mut().aig_mut();
        let mask_w = words::constant(aig, ssc_netlist::Bv::new(32, mask));
        let masked = words::and(aig, addr, &mask_w);
        words::eq(aig, &masked, &prot)
    }

    /// For a guarded memory word: the literal "this word lies in the
    /// protected range" (a function of `prot_base` only).
    fn word_in_range(&mut self, mem: MemId, index: u32) -> Option<AigRef> {
        let base = *self.art.device_base.get(&mem)?;
        let addr = (base + 4 * u64::from(index)) & self.core.range_mask;
        let prot = self.prot_word();
        let aig = self.ipc.unroller_mut().aig_mut();
        Some(words::eq_const(aig, &prot, addr))
    }

    /// The scenario-independent half of the range validity: the symbolic
    /// base is aligned to the range mask (bits outside the mask are zero).
    fn alignment_validity(&mut self) -> Vec<AigRef> {
        let prot = self.prot_word();
        let spec_mask = self.core.range_mask;
        let aig = self.ipc.unroller_mut().aig_mut();
        let inv = words::constant(aig, ssc_netlist::Bv::new(32, !spec_mask));
        let low = words::and(aig, &prot, &inv);
        vec![words::eq_const(aig, &low, 0)]
    }

    /// `Primary_Input_Constraints` at `cycle`: all non-port inputs equal
    /// between the instances.
    pub fn input_eq(&mut self, cycle: usize) -> Vec<AigRef> {
        let port = [
            self.art.port_src.req.id(),
            self.art.port_src.addr.id(),
            self.art.port_src.we.id(),
            self.art.port_src.wdata.id(),
        ];
        let inputs: Vec<Wire> = self
            .art
            .src
            .iter_nodes()
            .filter_map(|(id, node)| match node {
                Node::Input { .. } if !port.contains(&id) => Some(self.art.src.wire_of(id)),
                _ => None,
            })
            .collect();
        let mut out = Vec::new();
        for w in inputs {
            let a = self.input_word(Instance::A, w, cycle);
            let b = self.input_word(Instance::B, w, cycle);
            let aig = self.ipc.unroller_mut().aig_mut();
            out.push(words::eq(aig, &a, &b));
        }
        out
    }

    /// `Victim_Task_Executing` at `cycle` (paper Sec. 3.3): accesses to
    /// protected addresses may differ between the instances (they are the
    /// confidential information); all other accesses are equal.
    pub fn victim_macro(&mut self, cycle: usize) -> Vec<AigRef> {
        let p = self.art.port_src;
        let req_a = self.input_word(Instance::A, p.req, cycle);
        let req_b = self.input_word(Instance::B, p.req, cycle);
        let addr_a = self.input_word(Instance::A, p.addr, cycle);
        let addr_b = self.input_word(Instance::B, p.addr, cycle);
        let we_a = self.input_word(Instance::A, p.we, cycle);
        let we_b = self.input_word(Instance::B, p.we, cycle);
        let wd_a = self.input_word(Instance::A, p.wdata, cycle);
        let wd_b = self.input_word(Instance::B, p.wdata, cycle);

        let in_a = self.in_range(&addr_a);
        let in_b = self.in_range(&addr_b);
        let aig = self.ipc.unroller_mut().aig_mut();

        let norm_a = aig.and(req_a[0], in_a.not());
        let norm_b = aig.and(req_b[0], in_b.not());

        let mut out = Vec::new();
        // Non-protected activity is identical in both instances.
        out.push(aig.xnor(norm_a, norm_b));
        let addr_eq = words::eq(aig, &addr_a, &addr_b);
        let we_eq = aig.xnor(we_a[0], we_b[0]);
        let wd_eq = words::eq(aig, &wd_a, &wd_b);
        out.push(aig.implies(norm_a, addr_eq));
        out.push(aig.implies(norm_a, we_eq));
        out.push(aig.implies(norm_a, wd_eq));

        // Threat-model restriction: spying IPs have no direct access to the
        // protected range — their bus requests never target it.
        let ip_ports = self.core.ip_ports.clone();
        for ip in &ip_ports {
            let req_w = self.art.src.find(&ip.req).expect("validated in build()");
            let addr_w = self.art.src.find(&ip.addr).expect("validated in build()");
            for inst in [Instance::A, Instance::B] {
                let req = self.signal_word(inst, req_w, cycle);
                let addr = self.signal_word(inst, addr_w, cycle);
                let hit = self.in_range(&addr);
                let aig = self.ipc.unroller_mut().aig_mut();
                out.push(aig.implies(req[0], hit.not()));
            }
        }
        out
    }

    /// The guarded equality term of one atom at time `t`: *atom equal
    /// between the instances*, weakened by the "inside the protected range"
    /// exemption for victim-allocatable memory words.
    ///
    /// Terms are cached per `(atom, t)` — for the universe atoms they are
    /// pre-built (and encoded) when the prefix grows, so every fork and
    /// every fixpoint iteration reuses the same AIG node and CNF variables
    /// regardless of how the surrounding set shrinks.
    pub fn atom_eq_term(&mut self, atom: StateAtom, t: usize) -> AigRef {
        if let Some(&term) = self.eq_terms.get(&(atom, t)) {
            return term;
        }
        let a = self.atom_word(Instance::A, atom, t);
        let b = self.atom_word(Instance::B, atom, t);
        let guard = match atom {
            StateAtom::MemWord(mem, i) => self.word_in_range(mem, i),
            StateAtom::Reg(_) => None,
        };
        let aig = self.ipc.unroller_mut().aig_mut();
        let eq = words::eq(aig, &a, &b);
        let term = match guard {
            Some(in_range) => aig.or(in_range, eq),
            None => eq,
        };
        self.eq_terms.insert((atom, t), term);
        term
    }
}

/// A *persistent* proof session: one scenario bound to a (possibly forked)
/// [`SessionPrefix`], with macro construction, the incremental check and
/// counterexample extraction.
///
/// One session is designed to serve an **entire procedure run** — all
/// windows of Alg. 2 *and* the Alg. 1 fixpoint that finishes it — against
/// one SAT solver, so learnt clauses carry over and nothing is re-encoded:
///
/// - the scenario-independent standing assumptions (range alignment,
///   per-cycle input equality and victim macro) and the per-atom
///   state-equality terms live in the prefix, pre-encoded — a session
///   created from a fork ([`Session::with_prefix`]) inherits them without
///   re-encoding anything;
/// - the scenario's own assumptions (device-window validity, firmware
///   constraints, quiescing) are kept in a second ledger and only
///   *extended* when the window grows ([`Session::ensure_window`]);
/// - the negated proof goal is installed as an activation-literal-guarded
///   clause ([`Session::check_window`]) and retired when the sets change,
///   which removes the obligation without invalidating the learnt-clause
///   database.
pub struct Session<'p> {
    prefix: SessionPrefix<'p>,
    an: &'p UpecAnalysis,
    /// Scenario-specific standing assumptions: device-window validity,
    /// firmware-state and quiescing assumptions (invariant block), then
    /// one firmware-port block per unrolled cycle.
    scenario: Ledger,
    /// Scratch assumption-literal buffer reused across checks.
    lit_buf: Vec<Lit>,
    /// After a `Holds` from [`Session::check_window`]: whether the
    /// assumption core avoided every pre-state atom-equality assumption
    /// (`None` after a violated check).
    last_core_without_state_eq: Option<bool>,
    /// Atom → epoch of the last refinement that named it
    /// ([`Session::note_shrunk`]); orders the pre-state assumptions
    /// most-recently-shrunk-first.
    shrink_stamp: FxHashMap<StateAtom, u64>,
    shrink_epoch: u64,
}

impl<'p> Session<'p> {
    /// Opens a session with `window` transitions unrolled (states
    /// `0..=window` available), building a private prefix.
    ///
    /// This routes through exactly the same construction as a shared
    /// prefix plus [`Session::with_prefix`], so a session over a private
    /// prefix and a session forked from a shared one are state-identical —
    /// the guarantee behind the fork-vs-fresh equivalence tests.
    pub fn new(an: &'p UpecAnalysis, window: usize) -> Self {
        let prefix = SessionPrefix::build(an.artifact(), an.spec(), window)
            .expect("a bound spec was already validated");
        Session::with_prefix(an, prefix)
    }

    /// Binds a (typically forked) prefix to one scenario: appends the
    /// scenario's own standing assumptions on top of the inherited shared
    /// encoding.
    ///
    /// # Panics
    ///
    /// Panics if the prefix was built over a different [`ProductArtifact`]
    /// than `an` is bound to, or the scenario disagrees with the prefix's
    /// shared core (range mask, spying-IP ports) — both are programming
    /// errors, not data-dependent conditions.
    pub fn with_prefix(an: &'p UpecAnalysis, prefix: SessionPrefix<'p>) -> Self {
        assert!(
            std::ptr::eq(prefix.art, Arc::as_ptr(&an.art)),
            "session prefix was built over a different product artifact"
        );
        assert!(
            prefix.core.range_mask == an.spec.range_mask
                && prefix.core.ip_ports == an.spec.ip_ports,
            "scenario disagrees with the prefix's shared core (range mask / IP ports)"
        );
        let mut sess = Session {
            prefix,
            an,
            scenario: Ledger::default(),
            lit_buf: Vec::new(),
            last_core_without_state_eq: None,
            shrink_stamp: FxHashMap::default(),
            shrink_epoch: 0,
        };
        let mut inv = sess.device_range_validity();
        inv.extend(sess.firmware_state_assumptions());
        inv.extend(sess.quiescing_assumptions());
        sess.push_scenario_block(inv);
        let window = sess.prefix.window();
        while sess.scenario.window() < window {
            let cycle = sess.scenario.window();
            let block = sess.firmware_port_assumptions(cycle);
            sess.push_scenario_block(block);
        }
        sess
    }

    /// Grows the window to `window` transitions, extending the unrolling
    /// and both assumption ledgers by exactly the new cycles.
    pub fn ensure_window(&mut self, window: usize) {
        self.prefix.ensure_window(window);
        while self.scenario.window() < window {
            let cycle = self.scenario.window();
            let block = self.firmware_port_assumptions(cycle);
            self.push_scenario_block(block);
        }
    }

    /// Appends one block of scenario assumptions, encoding each literal.
    fn push_scenario_block(&mut self, refs: Vec<AigRef>) {
        for r in refs {
            let lit = self.prefix.ipc.lit_of(r);
            self.scenario.refs.push(r);
            self.scenario.lits.push(lit);
        }
        self.scenario.offsets.push(self.scenario.refs.len());
    }

    /// The analysis this session is bound to.
    pub fn analysis(&self) -> &'p UpecAnalysis {
        self.an
    }

    /// The underlying interval property checker (exposed so downstream
    /// experiment harnesses can time individual checks).
    pub fn ipc(&self) -> &Ipc<'p> {
        &self.prefix.ipc
    }

    /// Mutable access to the underlying checker.
    pub fn ipc_mut(&mut self) -> &mut Ipc<'p> {
        &mut self.prefix.ipc
    }

    /// The number of transitions the session currently supports.
    pub fn window(&self) -> usize {
        self.prefix.window()
    }

    /// Solver statistics (for experiment reporting).
    pub fn solver_stats(&self) -> ssc_sat::SolverStats {
        self.prefix.ipc.solver_stats()
    }

    /// Installs the resource [`ssc_sat::Budget`] governing every subsequent
    /// check of this session. A check whose budget runs out surfaces as
    /// `PropertyResult::Interrupted`, which the procedures convert into
    /// [`crate::Verdict::Inconclusive`] with the partial trajectory.
    pub fn set_budget(&mut self, budget: ssc_sat::Budget) {
        self.prefix.ipc.set_budget(budget);
    }

    /// Cumulative count of CNF-encoded AIG nodes (see
    /// [`Ipc::encoded_nodes`]); deltas of this counter prove the per-window
    /// encoding work of the incremental engine is bounded by the newly
    /// unrolled cycle's cone.
    pub fn encoded_nodes(&self) -> usize {
        self.prefix.ipc.encoded_nodes()
    }

    /// The value of an arbitrary source-netlist signal in `inst` during
    /// `cycle`.
    pub fn signal_word(&self, inst: Instance, src_wire: Wire, cycle: usize) -> Word {
        self.prefix.signal_word(inst, src_wire, cycle)
    }

    /// The state word of `atom` in `inst` at time `t`.
    pub fn atom_word(&self, inst: Instance, atom: StateAtom, t: usize) -> Word {
        self.prefix.atom_word(inst, atom, t)
    }

    /// `Primary_Input_Constraints` at `cycle` (see
    /// [`SessionPrefix::input_eq`]).
    pub fn input_eq(&mut self, cycle: usize) -> Vec<AigRef> {
        self.prefix.input_eq(cycle)
    }

    /// `Victim_Task_Executing` at `cycle` (see
    /// [`SessionPrefix::victim_macro`]).
    pub fn victim_macro(&mut self, cycle: usize) -> Vec<AigRef> {
        self.prefix.victim_macro(cycle)
    }

    // ------------------------------------------------------------------
    // Scenario macros
    // ------------------------------------------------------------------

    /// The scenario half of the range validity: if specified, the symbolic
    /// base lies inside the designated device window.
    fn device_range_validity(&mut self) -> Vec<AigRef> {
        let Some(dev) = self.an.spec.range_in_device else {
            return Vec::new();
        };
        let dev_mask = self.an.spec.device_mask;
        let prot = self.prefix.prot_word();
        let aig = self.prefix.ipc.unroller_mut().aig_mut();
        let dm = words::constant(aig, ssc_netlist::Bv::new(32, dev_mask));
        let masked = words::and(aig, &prot, &dm);
        vec![words::eq_const(aig, &masked, dev)]
    }

    /// Firmware-constraint assumptions on the symbolic *starting state*
    /// (the window-invariant half of the constraints).
    pub fn firmware_state_assumptions(&mut self) -> Vec<AigRef> {
        let mut out = Vec::new();
        let constraints = self.an.spec.constraints.clone();
        for c in &constraints {
            if let FirmwareConstraint::RegOutsideDevice { reg, mask, device } = c {
                let w = self.an.src().find(reg).expect("validated in bind()");
                for inst in [Instance::A, Instance::B] {
                    let state = self.atom_word(inst, StateAtom::Reg(w.id()), 0);
                    let aig = self.prefix.ipc.unroller_mut().aig_mut();
                    let m = words::constant(aig, ssc_netlist::Bv::new(32, *mask));
                    let masked = words::and(aig, &state, &m);
                    let hit = words::eq_const(aig, &masked, *device);
                    out.push(hit.not());
                }
            }
        }
        out
    }

    /// Firmware port-write constraints for one `cycle` (the per-cycle half
    /// of the constraints, appended as the window grows).
    pub fn firmware_port_assumptions(&mut self, cycle: usize) -> Vec<AigRef> {
        let mut out = Vec::new();
        let constraints = self.an.spec.constraints.clone();
        for c in &constraints {
            if let FirmwareConstraint::PortWriteOutsideDevice { cfg_addr, mask, device } = c {
                let p = self.an.art.port_src;
                for inst in [Instance::A, Instance::B] {
                    let req = self.prefix.input_word(inst, p.req, cycle);
                    let we = self.prefix.input_word(inst, p.we, cycle);
                    let addr = self.prefix.input_word(inst, p.addr, cycle);
                    let wd = self.prefix.input_word(inst, p.wdata, cycle);
                    let aig = self.prefix.ipc.unroller_mut().aig_mut();
                    let is_cfg = words::eq_const(aig, &addr, *cfg_addr);
                    let wr0 = aig.and(req[0], we[0]);
                    let wr = aig.and(wr0, is_cfg);
                    let m = words::constant(aig, ssc_netlist::Bv::new(32, *mask));
                    let masked = words::and(aig, &wd, &m);
                    let hit = words::eq_const(aig, &masked, *device);
                    out.push(aig.implies(wr, hit.not()));
                }
            }
        }
        out
    }

    /// Quiescing assumptions: the named busy flags are 0 in the symbolic
    /// starting state of both instances.
    pub fn quiescing_assumptions(&mut self) -> Vec<AigRef> {
        let names = self.an.spec.quiesced_ips.clone();
        let mut out = Vec::new();
        for name in &names {
            let w = self.an.src().find(name).expect("validated in bind()");
            for inst in [Instance::A, Instance::B] {
                let state = self.atom_word(inst, StateAtom::Reg(w.id()), 0);
                out.push(state[0].not());
            }
        }
        out
    }

    /// All standing assumptions for a `window`-transition property: range
    /// validity, firmware constraints, IP quiescing, and per-cycle input
    /// equality + victim macro — the shared ledger first, then the
    /// scenario ledger.
    ///
    /// Repeated calls (and calls for smaller windows) copy cached refs and
    /// perform no AIG construction at all; a larger window only builds the
    /// newly added cycles' blocks.
    pub fn base_assumptions(&mut self, window: usize) -> Vec<AigRef> {
        self.ensure_window(window);
        let mut out = Vec::new();
        self.for_base_blocks(window, |ledger, range| out.extend_from_slice(&ledger.refs[range]));
        out
    }

    /// Visits the standing-assumption blocks for `window` in solve order:
    /// per block boundary, the shared ledger's slice first, then the
    /// scenario ledger's. Assumptions become solver decisions in order, so
    /// the strongly pruning scenario constraints (device window, firmware,
    /// quiescing) must follow their window block immediately — deferring
    /// them to the end measurably slows satisfiable checks down.
    fn for_base_blocks(&self, window: usize, mut f: impl FnMut(&Ledger, std::ops::Range<usize>)) {
        let shared = &self.prefix.shared;
        for w in 0..=window {
            let start = if w == 0 { 0 } else { shared.offsets[w - 1] };
            f(shared, start..shared.offsets[w]);
            let start = if w == 0 { 0 } else { self.scenario.offsets[w - 1] };
            f(&self.scenario, start..self.scenario.offsets[w]);
        }
    }

    /// The guarded equality term of one atom at time `t` (see
    /// [`SessionPrefix::atom_eq_term`]).
    pub fn atom_eq_term(&mut self, atom: StateAtom, t: usize) -> AigRef {
        self.prefix.atom_eq_term(atom, t)
    }

    /// `State_Equivalence(S)` at time `t`: every atom in `S` equal between
    /// the instances; victim-allocatable memory words are exempt while they
    /// lie inside the protected range.
    pub fn state_eq(&mut self, set: &AtomSet, t: usize) -> AigRef {
        let conj: Vec<AigRef> = set.iter().map(|&atom| self.atom_eq_term(atom, t)).collect();
        let aig = self.prefix.ipc.unroller_mut().aig_mut();
        aig.and_all(conj)
    }

    /// Records a refinement step: the given diff atoms were just named by a
    /// counterexample (and removed from some tracked cycle set). Their
    /// pre-state equality assumptions are the hottest constraints of the
    /// next re-solve, so [`Session::check_window`] orders them first
    /// (most-recently-shrunk-first — see `ssc_sat::SolverStats::core_seeds`
    /// for the solver-side half of the re-solve tuning).
    pub fn note_shrunk(&mut self, diffs: &[AtomDiff]) {
        if diffs.is_empty() {
            return;
        }
        self.shrink_epoch += 1;
        for d in diffs {
            self.shrink_stamp.insert(d.atom, self.shrink_epoch);
        }
    }

    /// The incremental UPEC-SSC check: *assume the standing assumptions of
    /// `window` and `State_Equivalence(pre)` at time 0, prove
    /// `State_Equivalence(set)` at time `c` for every `(c, set)` in
    /// `goals`*.
    ///
    /// The negated goal (some tracked atom diverges at its cycle) is a
    /// disjunction of cached per-atom terms, installed as a clause guarded
    /// by a fresh activation literal and retired right after the solve —
    /// so consecutive checks with shrinking sets add only the clause and
    /// whatever cones are genuinely new, and the solver's learnt-clause
    /// database survives the whole fixpoint.
    pub fn check_window(
        &mut self,
        window: usize,
        pre: &AtomSet,
        goals: &[(usize, &AtomSet)],
    ) -> PropertyResult {
        self.ensure_window(window);

        let mut neg_goal = Vec::new();
        for &(cycle, set) in goals {
            debug_assert!(cycle <= window, "goal cycle outside the window");
            for &atom in set {
                neg_goal.push(self.prefix.atom_eq_term(atom, cycle).not());
            }
        }
        let act = self.prefix.ipc.activation_literal();
        self.prefix.ipc.add_clause_under(act, &neg_goal);

        let mut lits = std::mem::take(&mut self.lit_buf);
        lits.clear();
        self.for_base_blocks(window, |ledger, range| lits.extend_from_slice(&ledger.lits[range]));
        // `State_Equivalence(pre)` enters as one assumption literal *per
        // atom* (not one conjunction): logically identical, but on `Holds`
        // the solver's assumption core then reports which atoms' equalities
        // the proof actually rested on. Atoms named by recent refinements
        // go first (a stable sort keeps the deterministic atom order within
        // equal epochs).
        let pre_start = lits.len();
        let mut order: Vec<StateAtom> = pre.iter().copied().collect();
        order.sort_by_key(|a| {
            std::cmp::Reverse(self.shrink_stamp.get(a).copied().unwrap_or(0))
        });
        for atom in order {
            let term = self.prefix.atom_eq_term(atom, 0);
            let lit = self.prefix.ipc.lit_of(term);
            lits.push(lit);
        }
        lits.push(act);
        let result = self.prefix.ipc.check_lits(&lits);
        self.last_core_without_state_eq = match result {
            PropertyResult::Holds => {
                let core = self.prefix.ipc.assumption_core();
                Some(!lits[pre_start..lits.len() - 1].iter().any(|l| core.contains(l)))
            }
            PropertyResult::Violated | PropertyResult::Interrupted(_) => None,
        };
        self.lit_buf = lits;
        // The goal clause belongs to this check only; retiring it keeps the
        // clause database additive while the state sets shrink.
        self.prefix.ipc.retire_activation(act);
        result
    }

    /// After a `Holds` from [`Session::check_window`]: `Some(true)` iff
    /// **no** pre-state atom-equality assumption appears in the solver's
    /// assumption core — i.e. the window property held independently of
    /// `State_Equivalence(pre)`, so further refinement of the tracked sets
    /// cannot change the verdict. `None` if the last check was violated.
    pub fn last_core_without_state_eq(&self) -> Option<bool> {
        self.last_core_without_state_eq
    }

    // ------------------------------------------------------------------
    // Counterexample extraction
    // ------------------------------------------------------------------

    /// After a violated check: the atoms of `set` that genuinely diverge at
    /// time `t` under the model (range-guarded words that fall inside the
    /// protected range are not counted).
    pub fn extract_diffs(&self, set: &AtomSet, t: usize) -> Vec<AtomDiff> {
        let prot = self
            .prefix
            .ipc
            .model_word(&self.prefix.prot_word())
            .expect("prot_base encoded by range validity");
        let mut out = Vec::new();
        for &atom in set {
            let wa = self.atom_word(Instance::A, atom, t);
            let wb = self.atom_word(Instance::B, atom, t);
            let (Ok(va), Ok(vb)) =
                (self.prefix.ipc.model_word(&wa), self.prefix.ipc.model_word(&wb))
            else {
                continue;
            };
            if va == vb {
                continue;
            }
            if let StateAtom::MemWord(mem, i) = atom {
                if let Some(base) = self.an.art.device_base.get(&mem) {
                    let addr = (base + 4 * u64::from(i)) & self.an.spec.range_mask;
                    if addr == prot {
                        continue; // victim-allocated word: exempt
                    }
                }
            }
            out.push(AtomDiff {
                atom,
                name: self.an.atom_name(atom),
                value_a: va,
                value_b: vb,
                persistent: self.an.is_persistent(atom),
            });
        }
        out
    }

    /// Builds the full counterexample record after a violated check.
    pub fn capture_cex(&self, diffs: Vec<AtomDiff>, at_cycle: usize, window: usize) -> Counterexample {
        let prot = self.prefix.ipc.model_word(&self.prefix.prot_word()).unwrap_or(0);
        let p = self.an.art.port_src;
        let mut trace = Vec::new();
        for c in 0..window {
            let get = |s: &Self, inst, w| {
                s.prefix.ipc.model_word(&s.prefix.input_word(inst, w, c)).unwrap_or(0)
            };
            let act = |s: &Self, inst: Instance| -> PortActivity {
                let req = get(s, inst, p.req) == 1;
                let addr = get(s, inst, p.addr);
                let we = get(s, inst, p.we) == 1;
                let wdata = get(s, inst, p.wdata);
                PortActivity {
                    req,
                    addr,
                    we,
                    wdata,
                    protected: req && (addr & self.an.spec.range_mask) == prot,
                }
            };
            trace.push(CexCycle { cycle: c, port_a: act(self, Instance::A), port_b: act(self, Instance::B) });
        }
        // Initial state of both instances for concrete replay.
        let mut initial_state = Vec::new();
        for atom in atoms::all_atoms(self.an.src()) {
            let wa = self.atom_word(Instance::A, atom, 0);
            let wb = self.atom_word(Instance::B, atom, 0);
            if let (Ok(va), Ok(vb)) =
                (self.prefix.ipc.model_word(&wa), self.prefix.ipc.model_word(&wb))
            {
                initial_state.push((atom, self.an.atom_name(atom), va, vb));
            }
        }
        Counterexample { at_cycle, diffs, prot_base: prot, trace, initial_state }
    }
}

/// Compile-time thread-safety audit for the portfolio runner
/// (`ssc-bench::portfolio`): phase one builds one [`ProductArtifact`] and
/// one [`SessionPrefix`] per SoC size and **shares both by reference**
/// across the pool workers (the prefix is only forked, never mutated, on
/// worker threads), while phase two constructs one [`UpecAnalysis`] +
/// [`Session`] per job. If a future change introduces interior mutability
/// or thread-bound state in any of these types, this fails to compile
/// instead of racing at runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<ProductArtifact>();
    assert_send_sync::<UpecAnalysis>();
    assert_send_sync::<SessionPrefix<'static>>();
    assert_send_sync::<crate::spec::UpecSpec>();
    assert_send::<crate::report::Verdict>();
    assert_send::<Session<'static>>();
};
