//! State atoms: the unit of the UPEC-SSC state sets.
//!
//! The paper reasons about *state variables* (Sec. 3.1). In this
//! implementation a [`StateAtom`] is either a register or a single memory
//! word of the (single-instance) design under verification. The sets
//! `S_all`, `S_not_victim` and `S_pers` are sets of atoms; memory words of
//! victim-allocatable devices additionally carry a *symbolic guard* ("this
//! word is outside the protected range") constructed by the product layer.

use std::collections::BTreeSet;

use ssc_netlist::{MemId, Netlist, Node, SignalId, StateKind, StateMeta};

/// One state variable of the design under verification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum StateAtom {
    /// A register (identified by its output signal in the source netlist).
    Reg(SignalId),
    /// Word `index` of a memory.
    MemWord(MemId, u32),
}

/// A set of state atoms with set-algebra helpers.
pub type AtomSet = BTreeSet<StateAtom>;

/// Returns the hierarchical name of an atom.
pub fn atom_name(netlist: &Netlist, atom: StateAtom) -> String {
    match atom {
        StateAtom::Reg(id) => match netlist.node(id) {
            Node::Reg(info) => info.name.clone(),
            _ => format!("reg#{}", id.index()),
        },
        StateAtom::MemWord(mem, i) => format!("{}[{}]", netlist.mem(mem).name, i),
    }
}

/// Returns the metadata of an atom.
pub fn atom_meta(netlist: &Netlist, atom: StateAtom) -> StateMeta {
    match atom {
        StateAtom::Reg(id) => match netlist.node(id) {
            Node::Reg(info) => info.meta,
            _ => StateMeta::default(),
        },
        StateAtom::MemWord(mem, _) => netlist.mem(mem).meta,
    }
}

/// Enumerates `S_all`: every register and every memory word.
pub fn all_atoms(netlist: &Netlist) -> AtomSet {
    let mut set = AtomSet::new();
    for (id, node) in netlist.iter_nodes() {
        if matches!(node, Node::Reg(_)) {
            set.insert(StateAtom::Reg(id));
        }
    }
    for (mid, mem) in netlist.iter_mems() {
        for i in 0..mem.words {
            set.insert(StateAtom::MemWord(mid, i));
        }
    }
    set
}

/// Compiles `S_not_victim` (paper Def. 1): all atoms except CPU-internal
/// state. Victim *memory locations* are excluded symbolically by the
/// product layer's range guards, not by removing atoms here — the victim's
/// memory allocation is a free variable of the proof.
pub fn not_victim_atoms(netlist: &Netlist) -> AtomSet {
    all_atoms(netlist)
        .into_iter()
        .filter(|a| atom_meta(netlist, *a).kind != StateKind::CpuInternal)
        .collect()
}

/// The persistence policy deciding membership in `S_pers` (paper Def. 2):
/// attacker-accessible state that survives a context switch.
///
/// The default mirrors the paper's manual classification (Sec. 3.4):
///
/// * interconnect buffers are overwritten by every transaction — including
///   the attacker's own retrieval accesses — so they cannot carry
///   information across the context switch: **transient**;
/// * IP configuration/progress registers, peripheral registers and memory
///   words are readable by the attacker task after the switch: **persistent**
///   when flagged `attacker_accessible`.
///
/// Name-based overrides allow a verification engineer to re-classify
/// individual atoms after the "closer inspection" the paper describes.
#[derive(Clone, Debug, Default)]
pub struct PersistencePolicy {
    /// Atom names forced persistent.
    pub force_persistent: BTreeSet<String>,
    /// Atom names forced transient.
    pub force_transient: BTreeSet<String>,
}

impl PersistencePolicy {
    /// The default policy with no overrides.
    pub fn new() -> Self {
        PersistencePolicy::default()
    }

    /// Is `atom` part of `S_pers`?
    pub fn is_persistent(&self, netlist: &Netlist, atom: StateAtom) -> bool {
        let name = atom_name(netlist, atom);
        // Memory-word overrides may name the whole array.
        let array_name = match atom {
            StateAtom::MemWord(mem, _) => Some(netlist.mem(mem).name.clone()),
            _ => None,
        };
        let matches = |set: &BTreeSet<String>| {
            set.contains(&name) || array_name.as_ref().is_some_and(|n| set.contains(n))
        };
        if matches(&self.force_persistent) {
            return true;
        }
        if matches(&self.force_transient) {
            return false;
        }
        let meta = atom_meta(netlist, atom);
        match meta.kind {
            StateKind::InterconnectBuffer | StateKind::CpuInternal => false,
            StateKind::IpRegister
            | StateKind::MemoryArray
            | StateKind::PeripheralRegister => meta.attacker_accessible,
            StateKind::Other => false,
        }
    }

    /// Compiles `S_pers` over a netlist.
    pub fn pers_atoms(&self, netlist: &Netlist) -> AtomSet {
        not_victim_atoms(netlist)
            .into_iter()
            .filter(|a| self.is_persistent(netlist, *a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssc_netlist::{Bv, Netlist};

    fn design() -> Netlist {
        let mut n = Netlist::new("t");
        let zero1 = n.lit(1, 0);
        let cpu_reg = n.reg("cpu.pc", 1, Some(Bv::zero(1)), StateMeta::cpu());
        let xbuf = n.reg("xbar.rr", 1, Some(Bv::zero(1)), StateMeta::interconnect());
        let ipreg = n.reg("hwpe.progress", 1, Some(Bv::zero(1)), StateMeta::ip_register());
        for r in [cpu_reg, xbuf, ipreg] {
            n.connect_reg(r, zero1);
        }
        let mem = n.memory("ram", 4, 8, StateMeta::memory(true));
        let addr = n.lit(2, 0);
        let data = n.lit(8, 0);
        n.mem_write(mem, zero1, addr, data);
        n
    }

    #[test]
    fn all_atoms_counts_regs_and_words() {
        let n = design();
        assert_eq!(all_atoms(&n).len(), 3 + 4);
    }

    #[test]
    fn not_victim_excludes_cpu() {
        let n = design();
        let nv = not_victim_atoms(&n);
        assert_eq!(nv.len(), 2 + 4);
        let names: Vec<String> = nv.iter().map(|a| atom_name(&n, *a)).collect();
        assert!(!names.contains(&"cpu.pc".to_string()));
    }

    #[test]
    fn default_policy_classifies_by_kind() {
        let n = design();
        let p = PersistencePolicy::new();
        let pers = p.pers_atoms(&n);
        let names: Vec<String> = pers.iter().map(|a| atom_name(&n, *a)).collect();
        assert!(names.contains(&"hwpe.progress".to_string()));
        assert!(names.contains(&"ram[0]".to_string()));
        assert!(!names.contains(&"xbar.rr".to_string()));
    }

    #[test]
    fn overrides_take_precedence() {
        let n = design();
        let mut p = PersistencePolicy::new();
        p.force_transient.insert("ram".to_string()); // whole array
        p.force_persistent.insert("xbar.rr".to_string());
        let pers = p.pers_atoms(&n);
        let names: Vec<String> = pers.iter().map(|a| atom_name(&n, *a)).collect();
        assert!(names.contains(&"xbar.rr".to_string()));
        assert!(!names.iter().any(|s| s.starts_with("ram[")));
    }

    #[test]
    fn atom_names_are_stable() {
        let n = design();
        let mem = n.find_mem("ram").unwrap();
        assert_eq!(atom_name(&n, StateAtom::MemWord(mem, 2)), "ram[2]");
        let reg = n.find("hwpe.progress").unwrap();
        assert_eq!(atom_name(&n, StateAtom::Reg(reg.id())), "hwpe.progress");
    }
}
