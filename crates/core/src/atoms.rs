//! State atoms: the unit of the UPEC-SSC state sets.
//!
//! The paper reasons about *state variables* (Sec. 3.1). In this
//! implementation a [`StateAtom`] is either a register or a single memory
//! word of the (single-instance) design under verification. The sets
//! `S_all`, `S_not_victim` and `S_pers` are sets of atoms; memory words of
//! victim-allocatable devices additionally carry a *symbolic guard* ("this
//! word is outside the protected range") constructed by the product layer.

use std::collections::BTreeSet;

use ssc_netlist::analysis::StateHandle;
use ssc_netlist::influence::{InfluenceClosure, InfluenceGraph};
use ssc_netlist::{MemId, Netlist, Node, SignalId, StateKind, StateMeta};

use crate::spec::UpecSpec;

/// One state variable of the design under verification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum StateAtom {
    /// A register (identified by its output signal in the source netlist).
    Reg(SignalId),
    /// Word `index` of a memory.
    MemWord(MemId, u32),
}

/// A set of state atoms with set-algebra helpers.
pub type AtomSet = BTreeSet<StateAtom>;

/// The state element carrying an atom (memory words of one array share
/// their element — influence analysis is per-element, not per-word).
pub fn atom_handle(atom: StateAtom) -> StateHandle {
    match atom {
        StateAtom::Reg(id) => StateHandle::Reg(id),
        StateAtom::MemWord(mem, _) => StateHandle::Mem(mem),
    }
}

/// A static cleanliness certificate for goal-clause disjuncts, built once
/// per (design, spec) from the sequential influence graph.
///
/// The UPEC-SSC miter assumes all primary inputs equal except the victim
/// port, plus `State_Equivalence(pre)` at cycle 0. Under those assumptions
/// an atom whose element is farther than `c` clock steps from every
/// divergence source *provably* cannot differ at cycle `c`, so its
/// disjunct may be omitted from the window-goal clause without weakening
/// the property (the omitted disjunct is false in every model).
///
/// Divergence sources are
/// - the victim-port inputs (`req`/`addr`/`we`/`wdata`) — depth-1 sources,
/// - state elements **not** covered by the cycle-0 equality assumption:
///   elements outside the tracked universe (CPU-internal state), elements
///   of atoms missing from `pre`, and — crucially for soundness — *every
///   victim-allocatable device memory*. A device word's cycle-0 assumption
///   is the range-guarded `in_range ∨ eq` term, so the protected word may
///   legitimately differ at cycle 0; the whole array therefore counts as a
///   depth-0 source no matter what `pre` contains.
#[derive(Debug)]
pub struct StaticCertificate {
    graph: InfluenceGraph,
    /// Victim-port inputs — the only primary inputs allowed to differ.
    port_inputs: Vec<SignalId>,
    /// The atom universe the engine tracks (`S_not_victim`).
    universe: AtomSet,
    /// Depth-0 sources regardless of `pre`: out-of-universe elements plus
    /// range-guarded device memories.
    always_roots: Vec<StateHandle>,
}

impl StaticCertificate {
    /// Builds the certificate for a design/spec pair. Fails if a spec
    /// signal or device memory is missing from the netlist.
    pub fn build(netlist: &Netlist, spec: &UpecSpec) -> Result<StaticCertificate, String> {
        let graph = InfluenceGraph::build(netlist);
        let mut port_inputs = Vec::new();
        for name in [&spec.port.req, &spec.port.addr, &spec.port.we, &spec.port.wdata] {
            let w = netlist
                .find(name)
                .ok_or_else(|| format!("victim port signal `{name}` not in netlist"))?;
            port_inputs.push(w.id());
        }
        let mut guarded: BTreeSet<MemId> = BTreeSet::new();
        for dev in &spec.devices {
            let mid = netlist
                .find_mem(&dev.mem_name)
                .ok_or_else(|| format!("device memory `{}` not in netlist", dev.mem_name))?;
            guarded.insert(mid);
        }
        let universe = not_victim_atoms(netlist);
        let mut always_roots = Vec::new();
        for &h in graph.handles() {
            let root = match h {
                StateHandle::Reg(id) => !universe.contains(&StateAtom::Reg(id)),
                StateHandle::Mem(mid) => {
                    // Memory metadata is uniform per array, so word 0
                    // stands in for the whole array's universe membership.
                    guarded.contains(&mid)
                        || netlist.mem(mid).words == 0
                        || !universe.contains(&StateAtom::MemWord(mid, 0))
                }
            };
            if root {
                always_roots.push(h);
            }
        }
        Ok(StaticCertificate { graph, port_inputs, universe, always_roots })
    }

    /// The tracked atom universe (`S_not_victim`).
    pub fn universe(&self) -> &AtomSet {
        &self.universe
    }

    /// The underlying one-step influence graph.
    pub fn graph(&self) -> &InfluenceGraph {
        &self.graph
    }

    /// The divergence closure under `State_Equivalence(pre)` at cycle 0:
    /// element roots are the always-roots plus the elements of universe
    /// atoms missing from `pre`; input roots are the victim-port inputs.
    pub fn closure_for(&self, pre: &AtomSet) -> InfluenceClosure {
        let mut roots = self.always_roots.clone();
        for atom in self.universe.difference(pre) {
            roots.push(atom_handle(*atom));
        }
        self.graph.closure(self.port_inputs.iter().copied(), roots)
    }

    /// Whether `atom` is certified equal at cycle `cycle` by `closure`
    /// (which must come from [`StaticCertificate::closure_for`] with the
    /// check's pre-state set): unreachable, or reachable only strictly
    /// after `cycle`.
    pub fn certified_clean(&self, closure: &InfluenceClosure, atom: StateAtom, cycle: usize) -> bool {
        match closure.depth(atom_handle(atom)) {
            None => true,
            Some(d) => d as usize > cycle,
        }
    }

    /// The atoms certified clean at *every* cycle under the full-universe
    /// pre-state assumption — the strongest static statement: these atoms
    /// can never diverge, at any window length.
    pub fn statically_clean(&self) -> AtomSet {
        let cl = self.closure_for(&self.universe);
        self.universe
            .iter()
            .copied()
            .filter(|&a| !cl.reached(atom_handle(a)))
            .collect()
    }
}

/// Convenience entry point: the forever-clean subset of `S_not_victim`
/// for a design/spec pair (see [`StaticCertificate::statically_clean`]).
pub fn statically_clean(netlist: &Netlist, spec: &UpecSpec) -> Result<AtomSet, String> {
    Ok(StaticCertificate::build(netlist, spec)?.statically_clean())
}

/// Returns the hierarchical name of an atom.
pub fn atom_name(netlist: &Netlist, atom: StateAtom) -> String {
    match atom {
        StateAtom::Reg(id) => match netlist.node(id) {
            Node::Reg(info) => info.name.clone(),
            _ => format!("reg#{}", id.index()),
        },
        StateAtom::MemWord(mem, i) => format!("{}[{}]", netlist.mem(mem).name, i),
    }
}

/// Returns the metadata of an atom.
pub fn atom_meta(netlist: &Netlist, atom: StateAtom) -> StateMeta {
    match atom {
        StateAtom::Reg(id) => match netlist.node(id) {
            Node::Reg(info) => info.meta,
            _ => StateMeta::default(),
        },
        StateAtom::MemWord(mem, _) => netlist.mem(mem).meta,
    }
}

/// Enumerates `S_all`: every register and every memory word.
pub fn all_atoms(netlist: &Netlist) -> AtomSet {
    let mut set = AtomSet::new();
    for (id, node) in netlist.iter_nodes() {
        if matches!(node, Node::Reg(_)) {
            set.insert(StateAtom::Reg(id));
        }
    }
    for (mid, mem) in netlist.iter_mems() {
        for i in 0..mem.words {
            set.insert(StateAtom::MemWord(mid, i));
        }
    }
    set
}

/// Compiles `S_not_victim` (paper Def. 1): all atoms except CPU-internal
/// state. Victim *memory locations* are excluded symbolically by the
/// product layer's range guards, not by removing atoms here — the victim's
/// memory allocation is a free variable of the proof.
pub fn not_victim_atoms(netlist: &Netlist) -> AtomSet {
    all_atoms(netlist)
        .into_iter()
        .filter(|a| atom_meta(netlist, *a).kind != StateKind::CpuInternal)
        .collect()
}

/// The persistence policy deciding membership in `S_pers` (paper Def. 2):
/// attacker-accessible state that survives a context switch.
///
/// The default mirrors the paper's manual classification (Sec. 3.4):
///
/// * interconnect buffers are overwritten by every transaction — including
///   the attacker's own retrieval accesses — so they cannot carry
///   information across the context switch: **transient**;
/// * IP configuration/progress registers, peripheral registers and memory
///   words are readable by the attacker task after the switch: **persistent**
///   when flagged `attacker_accessible`.
///
/// Name-based overrides allow a verification engineer to re-classify
/// individual atoms after the "closer inspection" the paper describes.
#[derive(Clone, Debug, Default)]
pub struct PersistencePolicy {
    /// Atom names forced persistent.
    pub force_persistent: BTreeSet<String>,
    /// Atom names forced transient.
    pub force_transient: BTreeSet<String>,
}

impl PersistencePolicy {
    /// The default policy with no overrides.
    pub fn new() -> Self {
        PersistencePolicy::default()
    }

    /// Is `atom` part of `S_pers`?
    pub fn is_persistent(&self, netlist: &Netlist, atom: StateAtom) -> bool {
        let name = atom_name(netlist, atom);
        // Memory-word overrides may name the whole array.
        let array_name = match atom {
            StateAtom::MemWord(mem, _) => Some(netlist.mem(mem).name.clone()),
            _ => None,
        };
        let matches = |set: &BTreeSet<String>| {
            set.contains(&name) || array_name.as_ref().is_some_and(|n| set.contains(n))
        };
        if matches(&self.force_persistent) {
            return true;
        }
        if matches(&self.force_transient) {
            return false;
        }
        let meta = atom_meta(netlist, atom);
        match meta.kind {
            StateKind::InterconnectBuffer | StateKind::CpuInternal => false,
            StateKind::IpRegister
            | StateKind::MemoryArray
            | StateKind::PeripheralRegister => meta.attacker_accessible,
            StateKind::Other => false,
        }
    }

    /// Compiles `S_pers` over a netlist.
    pub fn pers_atoms(&self, netlist: &Netlist) -> AtomSet {
        not_victim_atoms(netlist)
            .into_iter()
            .filter(|a| self.is_persistent(netlist, *a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DeviceMap, VictimPort};
    use ssc_netlist::{Bv, Netlist};

    fn design() -> Netlist {
        let mut n = Netlist::new("t");
        let zero1 = n.lit(1, 0);
        let cpu_reg = n.reg("cpu.pc", 1, Some(Bv::zero(1)), StateMeta::cpu());
        let xbuf = n.reg("xbar.rr", 1, Some(Bv::zero(1)), StateMeta::interconnect());
        let ipreg = n.reg("hwpe.progress", 1, Some(Bv::zero(1)), StateMeta::ip_register());
        for r in [cpu_reg, xbuf, ipreg] {
            n.connect_reg(r, zero1);
        }
        let mem = n.memory("ram", 4, 8, StateMeta::memory(true));
        let addr = n.lit(2, 0);
        let data = n.lit(8, 0);
        n.mem_write(mem, zero1, addr, data);
        n
    }

    #[test]
    fn all_atoms_counts_regs_and_words() {
        let n = design();
        assert_eq!(all_atoms(&n).len(), 3 + 4);
    }

    #[test]
    fn not_victim_excludes_cpu() {
        let n = design();
        let nv = not_victim_atoms(&n);
        assert_eq!(nv.len(), 2 + 4);
        let names: Vec<String> = nv.iter().map(|a| atom_name(&n, *a)).collect();
        assert!(!names.contains(&"cpu.pc".to_string()));
    }

    #[test]
    fn default_policy_classifies_by_kind() {
        let n = design();
        let p = PersistencePolicy::new();
        let pers = p.pers_atoms(&n);
        let names: Vec<String> = pers.iter().map(|a| atom_name(&n, *a)).collect();
        assert!(names.contains(&"hwpe.progress".to_string()));
        assert!(names.contains(&"ram[0]".to_string()));
        assert!(!names.contains(&"xbar.rr".to_string()));
    }

    #[test]
    fn overrides_take_precedence() {
        let n = design();
        let mut p = PersistencePolicy::new();
        p.force_transient.insert("ram".to_string()); // whole array
        p.force_persistent.insert("xbar.rr".to_string());
        let pers = p.pers_atoms(&n);
        let names: Vec<String> = pers.iter().map(|a| atom_name(&n, *a)).collect();
        assert!(names.contains(&"xbar.rr".to_string()));
        assert!(!names.iter().any(|s| s.starts_with("ram[")));
    }

    #[test]
    fn atom_names_are_stable() {
        let n = design();
        let mem = n.find_mem("ram").unwrap();
        assert_eq!(atom_name(&n, StateAtom::MemWord(mem, 2)), "ram[2]");
        let reg = n.find("hwpe.progress").unwrap();
        assert_eq!(atom_name(&n, StateAtom::Reg(reg.id())), "hwpe.progress");
    }

    /// Port-fed pipeline + CPU-fed register + device memory + isolated
    /// self-loop, exercising every root class of the certificate.
    fn cert_design() -> Netlist {
        let mut n = Netlist::new("cert");
        let req = n.input("p.req", 1);
        let addr = n.input("p.addr", 8);
        let _we = n.input("p.we", 1);
        let _wdata = n.input("p.wdata", 8);
        let a = n.reg("a", 8, Some(Bv::zero(8)), StateMeta::ip_register());
        let b = n.reg("b", 8, Some(Bv::zero(8)), StateMeta::ip_register());
        n.connect_reg(a, addr);
        n.connect_reg(b, a.wire());
        let cpu = n.reg("cpu.r", 8, Some(Bv::zero(8)), StateMeta::cpu());
        n.connect_reg(cpu, cpu.wire());
        let c = n.reg("c", 8, Some(Bv::zero(8)), StateMeta::ip_register());
        n.connect_reg(c, cpu.wire());
        let iso = n.reg("iso", 8, Some(Bv::zero(8)), StateMeta::peripheral());
        n.connect_reg(iso, iso.wire());
        let dev = n.memory("dev.ram", 4, 8, StateMeta::memory(true));
        let waddr = n.lit(2, 0);
        n.mem_write(dev, req, waddr, a.wire());
        let raddr = n.lit(2, 1);
        let rd = n.mem_read(dev, raddr);
        let d = n.reg("d", 8, Some(Bv::zero(8)), StateMeta::ip_register());
        n.connect_reg(d, rd);
        n.mark_output("b", b.wire());
        n.mark_output("c", c.wire());
        n.mark_output("iso", iso.wire());
        n.mark_output("d", d.wire());
        n
    }

    fn cert_spec() -> UpecSpec {
        UpecSpec {
            port: VictimPort {
                req: "p.req".into(),
                addr: "p.addr".into(),
                we: "p.we".into(),
                wdata: "p.wdata".into(),
            },
            ip_ports: vec![],
            devices: vec![DeviceMap { mem_name: "dev.ram".into(), base: 0x1000 }],
            range_mask: !0xF,
            range_in_device: None,
            device_mask: !0xFFF,
            constraints: vec![],
            quiesced_ips: vec![],
            persistence: PersistencePolicy::new(),
            max_unroll: 4,
        }
    }

    fn reg_atom(n: &Netlist, name: &str) -> StateAtom {
        StateAtom::Reg(n.find(name).unwrap().id())
    }

    #[test]
    fn certificate_depths_bound_divergence_speed() {
        let n = cert_design();
        let cert = StaticCertificate::build(&n, &cert_spec()).unwrap();
        let cl = cert.closure_for(cert.universe());
        // `a` is one clock step from the port: clean at cycle 0 only.
        assert!(cert.certified_clean(&cl, reg_atom(&n, "a"), 0));
        assert!(!cert.certified_clean(&cl, reg_atom(&n, "a"), 1));
        // `b` is two steps away: still clean at cycle 1.
        assert!(cert.certified_clean(&cl, reg_atom(&n, "b"), 1));
        assert!(!cert.certified_clean(&cl, reg_atom(&n, "b"), 2));
        // `c` reads out-of-universe CPU state, an unconditional depth-0
        // root: dirty from cycle 1.
        assert!(!cert.certified_clean(&cl, reg_atom(&n, "c"), 1));
        // Device memory words are range-guarded, so the array is a depth-0
        // root even under the full-universe pre-state assumption.
        let dev = n.find_mem("dev.ram").unwrap();
        assert!(!cert.certified_clean(&cl, StateAtom::MemWord(dev, 0), 0));
        // ... and `d`, which reads it, is dirty from cycle 1.
        assert!(!cert.certified_clean(&cl, reg_atom(&n, "d"), 1));
        // The isolated self-loop is clean at every cycle.
        assert!(cert.certified_clean(&cl, reg_atom(&n, "iso"), 7));
    }

    #[test]
    fn atoms_outside_pre_become_depth_zero_roots() {
        let n = cert_design();
        let cert = StaticCertificate::build(&n, &cert_spec()).unwrap();
        let mut pre = cert.universe().clone();
        pre.remove(&reg_atom(&n, "b"));
        let cl = cert.closure_for(&pre);
        // `b` is no longer assumed equal at cycle 0.
        assert!(!cert.certified_clean(&cl, reg_atom(&n, "b"), 0));
    }

    #[test]
    fn statically_clean_is_the_unreachable_set() {
        let n = cert_design();
        let clean = statically_clean(&n, &cert_spec()).unwrap();
        assert_eq!(clean, [reg_atom(&n, "iso")].into_iter().collect::<AtomSet>());
    }

    #[test]
    fn certificate_build_reports_missing_signals() {
        let n = design(); // has no port inputs
        let err = StaticCertificate::build(&n, &cert_spec()).unwrap_err();
        assert!(err.contains("p.req"), "unexpected error: {err}");
    }
}
