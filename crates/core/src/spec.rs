//! The UPEC-SSC verification specification.
//!
//! A [`UpecSpec`] captures everything the method needs beyond the netlist
//! itself: where the CPU/system interface is (the victim port), how victim
//! memory ranges are modeled symbolically, which devices are
//! victim-allocatable, the persistence policy, and the *firmware
//! constraints* of a countermeasure (paper Sec. 4.2 — "a set of legal
//! configurations for the corresponding IPs").

use crate::atoms::PersistencePolicy;

/// Names of the CPU data-port signals in the verification view, where they
/// are free primary inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VictimPort {
    /// Request strobe (1 bit).
    pub req: String,
    /// Byte address (32 bits).
    pub addr: String,
    /// Write enable (1 bit).
    pub we: String,
    /// Write data (32 bits).
    pub wdata: String,
}

impl VictimPort {
    /// The port naming used by [`ssc_soc`]'s verification view.
    pub fn soc_default() -> Self {
        VictimPort {
            req: "cpu.dport_req".into(),
            addr: "cpu.dport_addr".into(),
            we: "cpu.dport_we".into(),
            wdata: "cpu.dport_wdata".into(),
        }
    }
}

/// A potentially spying IP's bus master port (signal names of its request
/// strobe and address output). The `Victim_Task_Executing` macro assumes
/// these IPs never access the protected range directly — the paper's
/// threat-model restriction that "address ranges ... allocated to the
/// victim task are not directly accessible by potentially spying IPs".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IpPort {
    /// Request strobe signal name (1 bit).
    pub req: String,
    /// Address output signal name (32 bits).
    pub addr: String,
}

/// A victim-allocatable memory device: protected address ranges may be
/// placed inside it, and its words are guarded by the symbolic range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceMap {
    /// Memory name in the netlist (e.g. `"pub_xbar.ram"`).
    pub mem_name: String,
    /// Base byte address of word 0.
    pub base: u64,
}

/// A firmware constraint assumed by a countermeasure proof.
///
/// These model the paper's "legal configurations … compiled as a set of
/// firmware constraints to be checked for compliance during firmware
/// development" (Sec. 4.2). [`crate::UpecAnalysis::prove_constraints_inductive`]
/// discharges the hardware side: legal configurations stay legal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FirmwareConstraint {
    /// The named 32-bit register never points into the device window
    /// `device` (under [`ssc_soc::addr::DEV_MASK`]-style masking):
    /// `(reg & mask) != device`.
    RegOutsideDevice {
        /// Register name in the netlist.
        reg: String,
        /// Device select mask.
        mask: u64,
        /// Forbidden device window base.
        device: u64,
    },
    /// Writes through the victim port to configuration address `cfg_addr`
    /// never carry a value pointing into the device window:
    /// `write(cfg_addr) -> (wdata & mask) != device`.
    PortWriteOutsideDevice {
        /// Peripheral configuration register address.
        cfg_addr: u64,
        /// Device select mask.
        mask: u64,
        /// Forbidden device window base.
        device: u64,
    },
}

/// The complete specification for one UPEC-SSC run.
#[derive(Clone, Debug)]
pub struct UpecSpec {
    /// The CPU/system interface.
    pub port: VictimPort,
    /// Bus master ports of potentially spying IPs (assumed to never target
    /// the protected range).
    pub ip_ports: Vec<IpPort>,
    /// Victim-allocatable devices (order irrelevant).
    pub devices: Vec<DeviceMap>,
    /// Mask defining the size/alignment of the protected range: a range is
    /// `{a | (a & range_mask) == prot_base}`. The base is symbolic; the
    /// size is a spec parameter (the paper's fully symbolic ranges are
    /// recovered by sweeping this mask).
    pub range_mask: u64,
    /// If set, the protected range must lie inside this device window base
    /// (under `device_mask`); this is the countermeasure's "map the
    /// security-critical region into the private memory" assumption.
    pub range_in_device: Option<u64>,
    /// Device-select mask used with `range_in_device` and the firmware
    /// constraints.
    pub device_mask: u64,
    /// Firmware constraints assumed to hold (countermeasure runs).
    pub constraints: Vec<FirmwareConstraint>,
    /// Busy-flag signal names of IPs assumed *quiescent* (idle) in the
    /// symbolic starting state. Quiescing all spying IPs but one isolates
    /// that IP's channel — used to exhibit the paper's HWPE+memory variant
    /// without the DMA/timer channel firing first.
    pub quiesced_ips: Vec<String>,
    /// `S_pers` classification policy.
    pub persistence: PersistencePolicy,
    /// Unroll limit for the unrolled procedure (Alg. 2).
    pub max_unroll: usize,
}

impl UpecSpec {
    /// Specification of the **vulnerable** SoC configuration: the victim's
    /// protected range lives in the *public* (shared) memory device and no
    /// firmware constraints restrict the spying IPs — the setting of the
    /// paper's Sec. 4.1 case study.
    pub fn soc_vulnerable() -> Self {
        UpecSpec {
            port: VictimPort::soc_default(),
            ip_ports: vec![
                IpPort { req: "dma.req".into(), addr: "dma.addr_out".into() },
                IpPort { req: "hwpe.busy".into(), addr: "hwpe.addr_out".into() },
            ],
            devices: vec![
                DeviceMap { mem_name: "pub_xbar.ram".into(), base: ssc_soc::addr::PUB_RAM_BASE },
                DeviceMap { mem_name: "priv_xbar.ram".into(), base: ssc_soc::addr::PRIV_RAM_BASE },
            ],
            range_mask: 0xFFFF_FFF0, // 16-byte protected range
            range_in_device: Some(ssc_soc::addr::PUB_RAM_BASE),
            device_mask: ssc_soc::addr::DEV_MASK,
            constraints: Vec::new(),
            quiesced_ips: Vec::new(),
            persistence: PersistencePolicy::new(),
            max_unroll: 12,
        }
    }

    /// The Sec. 4.1 scenario isolated: the DMA is quiescent and the HWPE's
    /// own registers are treated as transient, so the only persistent
    /// medium left is the *attacker-primed memory region* — the channel
    /// works without any timer (and without even reading HWPE registers).
    pub fn soc_vulnerable_hwpe_memory() -> Self {
        let mut spec = UpecSpec::soc_vulnerable();
        spec.quiesced_ips = vec!["dma.busy".into()];
        for r in [
            "hwpe.src", "hwpe.dst", "hwpe.len", "hwpe.busy", "hwpe.phase", "hwpe.cnt",
            "hwpe.cur_src", "hwpe.cur_dst", "hwpe.buf", "hwpe.progress",
        ] {
            spec.persistence.force_transient.insert(r.into());
        }
        // The DMA cannot act while quiescent, but exclude its state from
        // S_pers as well so the counterexample must go through memory.
        for r in [
            "dma.src", "dma.dst", "dma.len", "dma.chain", "dma.busy", "dma.phase",
            "dma.cnt", "dma.cur_src", "dma.cur_dst", "dma.buf",
        ] {
            spec.persistence.force_transient.insert(r.into());
        }
        // Deny the timer too: its state must not count as retrievable.
        for r in ["timer.enabled", "timer.locked", "timer.count"] {
            spec.persistence.force_transient.insert(r.into());
        }
        spec
    }

    /// Specification of the **fixed** SoC configuration (paper Sec. 4.2):
    /// the security-critical range is mapped into the private memory
    /// device, and firmware constraints keep the HWPE (the only non-CPU
    /// master on the private crossbar) out of that device.
    pub fn soc_fixed() -> Self {
        use ssc_soc::addr;
        let dev = addr::DEV_MASK;
        let priv_base = addr::PRIV_RAM_BASE;
        UpecSpec {
            range_in_device: Some(priv_base),
            constraints: vec![
                // Legal configurations: HWPE pointers never target the
                // private device...
                FirmwareConstraint::RegOutsideDevice {
                    reg: "hwpe.src".into(),
                    mask: dev,
                    device: priv_base,
                },
                FirmwareConstraint::RegOutsideDevice {
                    reg: "hwpe.dst".into(),
                    mask: dev,
                    device: priv_base,
                },
                FirmwareConstraint::RegOutsideDevice {
                    reg: "hwpe.cur_src".into(),
                    mask: dev,
                    device: priv_base,
                },
                FirmwareConstraint::RegOutsideDevice {
                    reg: "hwpe.cur_dst".into(),
                    mask: dev,
                    device: priv_base,
                },
                // ... and software never writes such a configuration.
                FirmwareConstraint::PortWriteOutsideDevice {
                    cfg_addr: addr::HWPE_SRC,
                    mask: dev,
                    device: priv_base,
                },
                FirmwareConstraint::PortWriteOutsideDevice {
                    cfg_addr: addr::HWPE_DST,
                    mask: dev,
                    device: priv_base,
                },
            ],
            ..UpecSpec::soc_vulnerable()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vulnerable_spec_has_no_constraints() {
        let s = UpecSpec::soc_vulnerable();
        assert!(s.constraints.is_empty());
        assert_eq!(s.range_in_device, Some(ssc_soc::addr::PUB_RAM_BASE));
    }

    #[test]
    fn fixed_spec_targets_private_memory() {
        let s = UpecSpec::soc_fixed();
        assert_eq!(s.range_in_device, Some(ssc_soc::addr::PRIV_RAM_BASE));
        assert_eq!(s.constraints.len(), 6);
    }

    #[test]
    fn range_mask_describes_aligned_range() {
        let s = UpecSpec::soc_vulnerable();
        // 16-byte range: 4 words.
        assert_eq!(!s.range_mask & 0xFFFF_FFFF, 0xF);
    }
}
