//! Counterexample replay: cross-validating formal counterexamples on the
//! concrete simulator.
//!
//! A UPEC-SSC counterexample consists of a (previously symbolic) starting
//! state for both product instances plus per-cycle victim-port inputs. This
//! module pokes that state into two [`ssc_sim::Sim`] instances of the
//! *single* design, drives the recorded port activity, steps the recorded
//! number of cycles, and confirms that the reported state divergences
//! appear concretely — closing the loop between the SAT-level model and
//! the RTL simulation semantics.
//!
//! [`replay_neighborhood`] extends the exact replay into a **sensitivity
//! analysis**: one [`ssc_sim::BatchSim`] pass replays the counterexample in
//! lane 0 and 63 deterministically perturbed variants (one write-data bit
//! flipped per lane, identically in both instances) in the other lanes, and
//! reports which perturbations still diverge — a cheap per-leak robustness
//! summary for the counterexample report.

use ssc_netlist::Bv;
use ssc_sim::{BatchSim, Sim};

use crate::atoms::StateAtom;
use crate::engine::UpecAnalysis;
use crate::report::{Counterexample, PortActivity};

/// Replays `cex` on two concrete simulations of the design under
/// verification.
///
/// Returns the names of the diff atoms that were confirmed to diverge with
/// exactly the recorded values.
///
/// # Errors
///
/// Returns a message naming the first diff whose concrete values disagree
/// with the counterexample (which would indicate an unsound encoding).
pub fn replay_on_simulator(
    an: &UpecAnalysis,
    cex: &Counterexample,
) -> Result<Vec<String>, String> {
    let src = an.src();
    let mut sim_a = Sim::new(src).map_err(|e| format!("sim A: {e}"))?;
    let mut sim_b = Sim::new(src).map_err(|e| format!("sim B: {e}"))?;

    // Install the recovered symbolic starting state.
    for (atom, _name, va, vb) in &cex.initial_state {
        match *atom {
            StateAtom::Reg(id) => {
                let w = src.wire_of(id);
                sim_a.set_reg(w, Bv::new(w.width(), *va));
                sim_b.set_reg(w, Bv::new(w.width(), *vb));
            }
            StateAtom::MemWord(mem, i) => {
                let width = src.mem(mem).width;
                sim_a.set_mem_word(mem, i, Bv::new(width, *va));
                sim_b.set_mem_word(mem, i, Bv::new(width, *vb));
            }
        }
    }

    // Drive the recorded victim-port activity cycle by cycle.
    let port = &an.spec().port;
    let drive = |sim: &mut Sim, act: &PortActivity| {
        sim.set_input(&port.req, u64::from(act.req));
        sim.set_input(&port.addr, act.addr);
        sim.set_input(&port.we, u64::from(act.we));
        sim.set_input(&port.wdata, act.wdata);
    };
    for c in &cex.trace {
        if c.cycle >= cex.at_cycle {
            break;
        }
        drive(&mut sim_a, &c.port_a);
        drive(&mut sim_b, &c.port_b);
        sim_a.step();
        sim_b.step();
    }

    // Confirm every reported divergence.
    let mut confirmed = Vec::new();
    for d in &cex.diffs {
        let (va, vb) = match d.atom {
            StateAtom::Reg(id) => {
                let w = src.wire_of(id);
                (sim_a.peek(w).val(), sim_b.peek(w).val())
            }
            StateAtom::MemWord(mem, i) => (sim_a.read_mem(mem, i).val(), sim_b.read_mem(mem, i).val()),
        };
        if va != d.value_a || vb != d.value_b {
            return Err(format!(
                "diff `{}` does not replay: simulator has {:#x}/{:#x}, counterexample says {:#x}/{:#x}",
                d.name, va, vb, d.value_a, d.value_b
            ));
        }
        confirmed.push(d.name.clone());
    }
    Ok(confirmed)
}

/// One perturbed stimulus bit of a neighbourhood lane: a single bit of
/// the victim-port drive flipped in one driven cycle, identically in both
/// product instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Perturbation {
    /// Flip bit `bit` of the write data in driven cycle `cycle`.
    Wdata {
        /// Driven cycle index (0-based, before the divergence cycle).
        cycle: usize,
        /// Flipped wdata bit.
        bit: u32,
    },
    /// Flip bit `bit` of the address in driven cycle `cycle`.
    Addr {
        /// Driven cycle index (0-based, before the divergence cycle).
        cycle: usize,
        /// Flipped address bit.
        bit: u32,
    },
}

/// The sensitivity summary of one counterexample neighbourhood (see
/// [`replay_neighborhood`]).
#[derive(Clone, Debug)]
pub struct NeighborhoodReport {
    /// Lanes driven per simulator pass (lane 0 is the exact replay;
    /// `perturbations.len() + 1` — smaller than the full 64 when the
    /// counterexample's stimulus space has fewer distinct single-bit
    /// variants).
    pub lanes: usize,
    /// Bit `l` set = lane `l` still diverges on at least one recorded diff
    /// atom. Bit 0 (the exact counterexample) is always set — an exact
    /// replay that fails is an error, not a report.
    pub diverging: u64,
    /// The perturbation applied in each lane `>= 1` (every entry is a
    /// distinct, in-range stimulus bit — no lane duplicates the exact
    /// replay).
    pub perturbations: Vec<Perturbation>,
}

impl NeighborhoodReport {
    /// How many perturbed lanes still diverge.
    pub fn surviving(&self) -> u32 {
        (self.diverging >> 1).count_ones()
    }

    /// Fraction of perturbations that *kill* the divergence — 0.0 means
    /// the leak is insensitive to the perturbed bits (robust), 1.0 means
    /// every single-bit change destroys it (fragile).
    pub fn sensitivity(&self) -> f64 {
        let n = self.perturbations.len();
        if n == 0 {
            return 0.0;
        }
        1.0 - f64::from(self.surviving()) / n as f64
    }
}

impl std::fmt::Display for NeighborhoodReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cex neighbourhood: {}/{} single-bit stimulus perturbations keep the divergence \
             (sensitivity {:.2})",
            self.surviving(),
            self.perturbations.len(),
            self.sensitivity()
        )
    }
}

/// Replays `cex` plus up to 63 perturbed stimuli in a single [`BatchSim`]
/// pass per product instance and reports which perturbations still
/// diverge.
///
/// Lane 0 drives the exact recorded counterexample (and must reproduce the
/// recorded diff values, like [`replay_on_simulator`]). Every lane
/// `l >= 1` applies one **distinct** [`Perturbation`] — a single bit of
/// the victim-port write data (first) or address (once the wdata bits are
/// exhausted) at one driven cycle, enumerated cycle-major — flipped in
/// **both** instances, so the surviving lanes measure how robust the leak
/// is against the victim driving different data/addresses. Counterexamples
/// whose stimulus space has fewer than 63 distinct single-bit variants use
/// correspondingly fewer lanes; no lane ever duplicates the exact replay,
/// so the sensitivity metric is never diluted by no-op perturbations.
///
/// # Errors
///
/// Returns a message if the design fails simulator construction, the
/// counterexample drives zero cycles, or the exact lane does not reproduce
/// the recorded divergence (which would indicate an unsound encoding).
pub fn replay_neighborhood(
    an: &UpecAnalysis,
    cex: &Counterexample,
) -> Result<NeighborhoodReport, String> {
    const LANES: usize = BatchSim::<1>::LANES;

    let src = an.src();
    let mut sim_a = BatchSim::new(src).map_err(|e| format!("sim A: {e}"))?;
    let mut sim_b = BatchSim::new(src).map_err(|e| format!("sim B: {e}"))?;

    let driven: Vec<&super::report::CexCycle> =
        cex.trace.iter().filter(|c| c.cycle < cex.at_cycle).collect();
    if driven.is_empty() {
        return Err("counterexample drives zero cycles — nothing to perturb".into());
    }

    // Identical starting state in every lane (the perturbation is in the
    // stimuli, not the state).
    for (atom, _name, va, vb) in &cex.initial_state {
        match *atom {
            StateAtom::Reg(id) => {
                let w = src.wire_of(id);
                sim_a.set_reg(w, Bv::new(w.width(), *va));
                sim_b.set_reg(w, Bv::new(w.width(), *vb));
            }
            StateAtom::MemWord(mem, i) => {
                let width = src.mem(mem).width;
                sim_a.set_mem_word(mem, i, Bv::new(width, *va));
                sim_b.set_mem_word(mem, i, Bv::new(width, *vb));
            }
        }
    }

    let port = &an.spec().port;
    let signal_width = |name: &str| {
        src.find(name)
            .map(|w| w.width())
            .ok_or_else(|| format!("port signal `{name}` not found"))
    };
    let wdata_width = signal_width(&port.wdata)?;
    let addr_width = signal_width(&port.addr)?;

    // Enumerate distinct in-range perturbations cycle-major (small
    // neighbourhoods cover every cycle first), wdata bits before addr
    // bits, capped at the available lanes.
    let space = driven.len() * (wdata_width + addr_width) as usize;
    let perturbations: Vec<Perturbation> = (0..space.min(LANES - 1))
        .map(|k| {
            let cycle = k % driven.len();
            let bit = (k / driven.len()) as u32;
            if bit < wdata_width {
                Perturbation::Wdata { cycle, bit }
            } else {
                Perturbation::Addr { cycle, bit: bit - wdata_width }
            }
        })
        .collect();
    let lanes = perturbations.len() + 1;

    for (ci, c) in driven.iter().enumerate() {
        let drive = |sim: &mut BatchSim, act: &PortActivity| {
            sim.set_input(&port.req, u64::from(act.req));
            sim.set_input(&port.we, u64::from(act.we));
            let mut wdata = [act.wdata; LANES];
            let mut addr = [act.addr; LANES];
            for (l, p) in perturbations.iter().enumerate() {
                match *p {
                    Perturbation::Wdata { cycle, bit } if cycle == ci => {
                        wdata[l + 1] ^= 1 << bit;
                    }
                    Perturbation::Addr { cycle, bit } if cycle == ci => {
                        addr[l + 1] ^= 1 << bit;
                    }
                    _ => {}
                }
            }
            sim.set_input_lanes(&port.wdata, &wdata);
            sim.set_input_lanes(&port.addr, &addr);
        };
        drive(&mut sim_a, &c.port_a);
        drive(&mut sim_b, &c.port_b);
        sim_a.step();
        sim_b.step();
    }

    // A lane diverges if any recorded diff atom differs between the
    // instances in that lane.
    let mut diverging = 0u64;
    for d in &cex.diffs {
        for lane in 0..lanes {
            let (va, vb) = match d.atom {
                StateAtom::Reg(id) => {
                    let w = src.wire_of(id);
                    (sim_a.peek_lane(w, lane).val(), sim_b.peek_lane(w, lane).val())
                }
                StateAtom::MemWord(mem, i) => (
                    sim_a.read_mem_lane(mem, i, lane).val(),
                    sim_b.read_mem_lane(mem, i, lane).val(),
                ),
            };
            if lane == 0 && (va != d.value_a || vb != d.value_b) {
                return Err(format!(
                    "diff `{}` does not replay in the exact lane: simulator has \
                     {:#x}/{:#x}, counterexample says {:#x}/{:#x}",
                    d.name, va, vb, d.value_a, d.value_b
                ));
            }
            if va != vb {
                diverging |= 1 << lane;
            }
        }
    }
    debug_assert!(diverging & 1 == 1, "exact lane reproduced its diffs above");
    Ok(NeighborhoodReport { lanes, diverging, perturbations })
}
