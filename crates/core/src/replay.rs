//! Counterexample replay: cross-validating formal counterexamples on the
//! concrete simulator.
//!
//! A UPEC-SSC counterexample consists of a (previously symbolic) starting
//! state for both product instances plus per-cycle victim-port inputs. This
//! module pokes that state into two [`ssc_sim::Sim`] instances of the
//! *single* design, drives the recorded port activity, steps the recorded
//! number of cycles, and confirms that the reported state divergences
//! appear concretely — closing the loop between the SAT-level model and
//! the RTL simulation semantics.

use ssc_netlist::Bv;
use ssc_sim::Sim;

use crate::atoms::StateAtom;
use crate::engine::UpecAnalysis;
use crate::report::{Counterexample, PortActivity};

/// Replays `cex` on two concrete simulations of the design under
/// verification.
///
/// Returns the names of the diff atoms that were confirmed to diverge with
/// exactly the recorded values.
///
/// # Errors
///
/// Returns a message naming the first diff whose concrete values disagree
/// with the counterexample (which would indicate an unsound encoding).
pub fn replay_on_simulator(
    an: &UpecAnalysis,
    cex: &Counterexample,
) -> Result<Vec<String>, String> {
    let src = an.src();
    let mut sim_a = Sim::new(src).map_err(|e| format!("sim A: {e}"))?;
    let mut sim_b = Sim::new(src).map_err(|e| format!("sim B: {e}"))?;

    // Install the recovered symbolic starting state.
    for (atom, _name, va, vb) in &cex.initial_state {
        match *atom {
            StateAtom::Reg(id) => {
                let w = src.wire_of(id);
                sim_a.set_reg(w, Bv::new(w.width(), *va));
                sim_b.set_reg(w, Bv::new(w.width(), *vb));
            }
            StateAtom::MemWord(mem, i) => {
                let width = src.mem(mem).width;
                sim_a.set_mem_word(mem, i, Bv::new(width, *va));
                sim_b.set_mem_word(mem, i, Bv::new(width, *vb));
            }
        }
    }

    // Drive the recorded victim-port activity cycle by cycle.
    let port = &an.spec().port;
    let drive = |sim: &mut Sim, act: &PortActivity| {
        sim.set_input(&port.req, u64::from(act.req));
        sim.set_input(&port.addr, act.addr);
        sim.set_input(&port.we, u64::from(act.we));
        sim.set_input(&port.wdata, act.wdata);
    };
    for c in &cex.trace {
        if c.cycle >= cex.at_cycle {
            break;
        }
        drive(&mut sim_a, &c.port_a);
        drive(&mut sim_b, &c.port_b);
        sim_a.step();
        sim_b.step();
    }

    // Confirm every reported divergence.
    let mut confirmed = Vec::new();
    for d in &cex.diffs {
        let (va, vb) = match d.atom {
            StateAtom::Reg(id) => {
                let w = src.wire_of(id);
                (sim_a.peek(w).val(), sim_b.peek(w).val())
            }
            StateAtom::MemWord(mem, i) => (sim_a.read_mem(mem, i).val(), sim_b.read_mem(mem, i).val()),
        };
        if va != d.value_a || vb != d.value_b {
            return Err(format!(
                "diff `{}` does not replay: simulator has {:#x}/{:#x}, counterexample says {:#x}/{:#x}",
                d.name, va, vb, d.value_a, d.value_b
            ));
        }
        confirmed.push(d.name.clone());
    }
    Ok(confirmed)
}
