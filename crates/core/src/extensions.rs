//! Extensions beyond the paper's core algorithms.
//!
//! * [`UpecAnalysis::enumerate_channels`] — iterates the Alg. 1 procedure,
//!   masking each discovered persistent medium, to produce the *complete
//!   inventory* of distinct leak media in a design. The paper's conclusion
//!   sketches a "UPEC-SCC driven design methodology"; knowing every channel
//!   (not just the first counterexample) is its prerequisite.
//! * [`UpecAnalysis::prove_transient_under`] — the auxiliary proof of
//!   Sec. 3.4 for the "rare counterexamples [that] may involve state
//!   variables that are neither buffers in the interconnect nor obviously
//!   persistent": a state variable may be excluded from `S_pers` if, under
//!   a given condition (e.g. *any transaction is granted*), its next value
//!   is independent of its current value — it cannot carry information
//!   past the attacker's own accesses.

use crate::atoms::StateAtom;
use crate::engine::{Instance, Session, UpecAnalysis};
use crate::report::Verdict;
use crate::spec::UpecSpec;
use ssc_aig::words;
use ssc_ipc::PropertyResult;

/// One distinct leak medium found by [`UpecAnalysis::enumerate_channels`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelFinding {
    /// The component holding the persistent divergence (hierarchical prefix,
    /// e.g. `"hwpe"` or `"pub_xbar.ram"`).
    pub medium: String,
    /// The concrete diverging atoms of this finding.
    pub atoms: Vec<String>,
    /// Procedure iterations spent to reach this finding.
    pub iterations: usize,
}

/// The component prefix of an atom name: `"hwpe.progress"` → `"hwpe"`,
/// `"pub_xbar.ram[7]"` → `"pub_xbar.ram"` (memory words group by array).
fn component_of(name: &str) -> String {
    if let Some((base, _)) = name.split_once('[') {
        return base.to_string();
    }
    match name.rsplit_once('.') {
        Some((prefix, _)) => prefix.to_string(),
        None => name.to_string(),
    }
}

impl UpecAnalysis {
    /// Enumerates every distinct persistent leak medium of the design under
    /// the given spec: runs Alg. 1, records the implicated component,
    /// reclassifies it as transient and repeats until the design verifies
    /// (complete inventory) or `max_channels` is reached.
    ///
    /// An empty result means the design is secure as-is.
    pub fn enumerate_channels(&self, max_channels: usize) -> Vec<ChannelFinding> {
        let mut findings = Vec::new();
        let mut spec: UpecSpec = self.spec().clone();
        for _ in 0..max_channels {
            let an = UpecAnalysis::new(self.src(), spec.clone())
                .expect("spec stays valid under policy changes");
            match an.alg1() {
                Verdict::Vulnerable(report) => {
                    let pers: Vec<String> = report
                        .cex
                        .persistent_diffs()
                        .map(|d| d.name.clone())
                        .collect();
                    let medium = component_of(&pers[0]);
                    // Mask every component implicated by this finding so the
                    // next round surfaces a genuinely different medium.
                    for name in &pers {
                        let comp = component_of(name);
                        mask_component(&mut spec, &an, &comp);
                    }
                    findings.push(ChannelFinding {
                        medium,
                        atoms: pers,
                        iterations: report.iterations.len(),
                    });
                }
                Verdict::Secure(_) => break,
                Verdict::Inconclusive(_) => break,
            }
        }
        findings
    }

    /// Sec. 3.4's auxiliary transience proof: under `condition` (a named
    /// 1-bit signal, e.g. a grant), the next value of register `reg` is
    /// independent of its current value. A register with this property
    /// cannot hold information across the attacker's own (condition-
    /// triggering) accesses and may be excluded from `S_pers`.
    ///
    /// The proof is 2-safety: both instances receive equal inputs and equal
    /// state except for `reg` itself; if `condition` holds, `reg` must be
    /// equal again one cycle later.
    ///
    /// # Errors
    ///
    /// Returns a message if the named signals do not exist or have wrong
    /// widths; `Ok(false)` means the proof failed (the register can retain
    /// information), `Ok(true)` means it is overwritten under `condition`.
    pub fn prove_transient_under(&self, reg: &str, condition: &str) -> Result<bool, String> {
        let src = self.src();
        let reg_w = src.find(reg).ok_or_else(|| format!("register `{reg}` not found"))?;
        if !matches!(src.node(reg_w.id()), ssc_netlist::Node::Reg(_)) {
            return Err(format!("`{reg}` is not a register"));
        }
        let cond_w = src
            .find(condition)
            .ok_or_else(|| format!("condition signal `{condition}` not found"))?;
        if cond_w.width() != 1 {
            return Err(format!("condition `{condition}` must be 1 bit"));
        }

        let mut sess = Session::new(self, 1);
        let atom = StateAtom::Reg(reg_w.id());

        // Equal inputs everywhere (including the victim port: this proof is
        // about the design's own overwrite behaviour, not about secrets).
        let mut assumptions = Vec::new();
        for ipt in input_wires(src) {
            let a = sess.signal_word(Instance::A, ipt, 0);
            let b = sess.signal_word(Instance::B, ipt, 0);
            let aig = sess.ipc_mut().unroller_mut().aig_mut();
            assumptions.push(words::eq(aig, &a, &b));
        }
        // Equal state except `reg`.
        let all = self.s_not_victim();
        for &a in all.iter().filter(|&&a| a != atom) {
            let wa = sess.atom_word(Instance::A, a, 0);
            let wb = sess.atom_word(Instance::B, a, 0);
            let aig = sess.ipc_mut().unroller_mut().aig_mut();
            assumptions.push(words::eq(aig, &wa, &wb));
        }
        // Condition holds (in instance A; states other than `reg` are equal,
        // but the condition may combinationally depend on `reg`, so require
        // it in both instances).
        for inst in [Instance::A, Instance::B] {
            let c = sess.signal_word(inst, cond_w, 0);
            assumptions.push(c[0]);
        }
        // Goal: `reg` equal at t+1.
        let na = sess.atom_word(Instance::A, atom, 1);
        let nb = sess.atom_word(Instance::B, atom, 1);
        let aig = sess.ipc_mut().unroller_mut().aig_mut();
        let goal = words::eq(aig, &na, &nb);
        Ok(sess.ipc_mut().check(&assumptions, goal) == PropertyResult::Holds)
    }
}

fn mask_component(spec: &mut UpecSpec, an: &UpecAnalysis, component: &str) {
    // Reclassify every atom of the component as transient.
    for atom in an.s_pers() {
        let name = an.atom_name(atom);
        if component_of(&name) == component {
            let base = name.split('[').next().unwrap_or(&name).to_string();
            spec.persistence.force_transient.insert(base);
            spec.persistence.force_transient.insert(name);
        }
    }
}

fn input_wires(n: &ssc_netlist::Netlist) -> Vec<ssc_netlist::Wire> {
    n.iter_nodes()
        .filter_map(|(id, node)| match node {
            ssc_netlist::Node::Input { .. } => Some(n.wire_of(id)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::component_of;

    #[test]
    fn component_extraction() {
        assert_eq!(component_of("hwpe.progress"), "hwpe");
        assert_eq!(component_of("pub_xbar.ram[7]"), "pub_xbar.ram");
        assert_eq!(component_of("pub_xbar.arb.rr"), "pub_xbar.arb");
        assert_eq!(component_of("flat"), "flat");
    }
}
