//! Graphviz DOT export for design review and counterexample debugging.

use std::fmt::Write as _;

use crate::ir::{Netlist, Node};

/// Renders the netlist as a Graphviz `digraph`.
///
/// Registers are drawn as boxes, inputs as house shapes, memories as
/// cylinders (via their read/write ports), and combinational operators as
/// ellipses labelled with their mnemonic. Intended for small designs or
/// extracted cones — a full SoC graph is readable only by machines.
pub fn to_dot(netlist: &Netlist) -> String {
    let mut s = String::new();
    writeln!(s, "digraph \"{}\" {{", netlist.name()).unwrap();
    writeln!(s, "  rankdir=LR;").unwrap();
    for (id, node) in netlist.iter_nodes() {
        let (label, shape) = match node {
            Node::Input { name, width } => (format!("{name}[{width}]"), "house"),
            Node::Const(bv) => (format!("{bv}"), "plaintext"),
            Node::Op { op, .. } => (op.mnemonic().to_string(), "ellipse"),
            Node::Reg(info) => (format!("{}[{}]", info.name, info.width), "box"),
            Node::MemRead { mem, .. } => {
                (format!("read {}", netlist.mem(*mem).name), "cylinder")
            }
        };
        writeln!(s, "  n{} [label=\"{}\" shape={}];", id.index(), escape(&label), shape).unwrap();
        for dep in node.comb_fanin() {
            writeln!(s, "  n{} -> n{};", dep.index(), id.index()).unwrap();
        }
        if let Node::Reg(info) = node {
            if let Some(next) = info.next {
                writeln!(s, "  n{} -> n{} [style=dashed label=next];", next.index(), id.index())
                    .unwrap();
            }
        }
    }
    for (mid, m) in netlist.iter_mems() {
        let mem_node = format!("mem{}", mid.index());
        writeln!(
            s,
            "  {mem_node} [label=\"{} ({}x{})\" shape=cylinder];",
            escape(&m.name),
            m.words,
            m.width
        )
        .unwrap();
        for wp in &m.write_ports {
            for (sig, label) in [(wp.en, "en"), (wp.addr, "addr"), (wp.data, "data")] {
                writeln!(s, "  n{} -> {mem_node} [label={label}];", sig.index()).unwrap();
            }
        }
    }
    for (name, id) in netlist.iter_outputs() {
        let port = format!("out_{}", sanitize(name));
        writeln!(s, "  {port} [label=\"{}\" shape=doubleoctagon];", escape(name)).unwrap();
        writeln!(s, "  n{} -> {port};", id.index()).unwrap();
    }
    writeln!(s, "}}").unwrap();
    s
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_alphanumeric() { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::StateMeta;
    use crate::Bv;

    #[test]
    fn dot_contains_all_node_kinds() {
        let mut n = Netlist::new("dot_test");
        let a = n.input("a", 4);
        let r = n.reg("state", 4, Some(Bv::zero(4)), StateMeta::default());
        let sum = n.add(a, r.wire());
        n.connect_reg(r, sum);
        let mem = n.memory("ram", 4, 4, StateMeta::memory(false));
        let one = n.lit(1, 1);
        let addr = n.slice(a, 1, 0);
        n.mem_write(mem, one, addr, sum);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);
        let dot = to_dot(&n);
        assert!(dot.starts_with("digraph"));
        for needle in ["house", "box", "cylinder", "doubleoctagon", "add", "next"] {
            assert!(dot.contains(needle), "missing {needle} in:\n{dot}");
        }
    }

    #[test]
    fn dot_escapes_quotes() {
        let n = Netlist::new("has\"quote");
        let dot = to_dot(&n);
        assert!(dot.contains("digraph \"has\"quote\"") || dot.contains("has"));
    }
}
