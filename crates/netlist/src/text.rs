//! A line-oriented textual netlist format with a full parser.
//!
//! The format is a small RTL interchange dialect (in the spirit of BTOR2 /
//! RTLIL): one definition per line, ids are `%N`, memories are `@N`.
//!
//! ```text
//! netlist counter
//! %0 input en 1
//! %1 reg count 8 init=0 kind=ipreg acc=1
//! %2 const 8'd1
//! %3 op add 8 %1 %2
//! %4 op mux 8 %0 %3 %1
//! next %1 %4
//! @0 mem ram 16 32 kind=mem acc=1
//! %5 memread @0 %3 32
//! write @0 en=%0 addr=%3 data=%5
//! output count %1
//! name inc %3
//! end
//! ```
//!
//! [`emit`] and [`parse`] round-trip every construct of the IR (except
//! memory initial contents, which are emitted as `meminit` lines).

use std::fmt::Write as _;

use crate::bv::Bv;
use crate::ir::{Memory, Netlist, Node, Op, RegHandle, StateKind, StateMeta, Wire};

/// Serializes a netlist to the textual format.
pub fn emit(netlist: &Netlist) -> String {
    let mut s = String::new();
    writeln!(s, "netlist {}", netlist.name()).unwrap();
    for (mid, m) in netlist.iter_mems() {
        writeln!(
            s,
            "@{} mem {} {} {} kind={} acc={}",
            mid.index(),
            m.name,
            m.words,
            m.width,
            m.meta.kind,
            u8::from(m.meta.attacker_accessible)
        )
        .unwrap();
        if let Some(init) = &m.init {
            write!(s, "meminit @{}", mid.index()).unwrap();
            for bv in init {
                write!(s, " {}", bv.val()).unwrap();
            }
            writeln!(s).unwrap();
        }
    }
    for (id, node) in netlist.iter_nodes() {
        match node {
            Node::Input { name, width } => {
                writeln!(s, "%{} input {} {}", id.0, name, width).unwrap();
            }
            Node::Const(bv) => {
                writeln!(s, "%{} const {}'d{}", id.0, bv.width(), bv.val()).unwrap();
            }
            Node::Op { op, args, width } => {
                write!(s, "%{} op {} {}", id.0, op_text(op), width).unwrap();
                for a in args {
                    write!(s, " %{}", a.0).unwrap();
                }
                writeln!(s).unwrap();
            }
            Node::Reg(info) => {
                write!(s, "%{} reg {} {}", id.0, info.name, info.width).unwrap();
                if let Some(init) = info.init {
                    write!(s, " init={}", init.val()).unwrap();
                }
                writeln!(s, " kind={} acc={}", info.meta.kind, u8::from(info.meta.attacker_accessible))
                    .unwrap();
            }
            Node::MemRead { mem, addr, width } => {
                writeln!(s, "%{} memread @{} %{} {}", id.0, mem.index(), addr.0, width).unwrap();
            }
        }
    }
    for (id, node) in netlist.iter_nodes() {
        if let Node::Reg(info) = node {
            if let Some(next) = info.next {
                writeln!(s, "next %{} %{}", id.0, next.0).unwrap();
            }
        }
    }
    for (mid, m) in netlist.iter_mems() {
        for wp in &m.write_ports {
            writeln!(
                s,
                "write @{} en=%{} addr=%{} data=%{}",
                mid.index(),
                wp.en.0,
                wp.addr.0,
                wp.data.0
            )
            .unwrap();
        }
    }
    for (name, id) in netlist.iter_outputs() {
        writeln!(s, "output {} %{}", name, id.0).unwrap();
    }
    // Extra names: every binding that is not a node's canonical name
    // (inputs/registers carry their canonical name inline; aliases and
    // named wires need explicit `name` lines).
    for (name, id) in netlist.iter_names() {
        let canonical = match netlist.node(id) {
            Node::Input { name: n, .. } => Some(n.as_str()),
            Node::Reg(info) => Some(info.name.as_str()),
            _ => None,
        };
        if canonical != Some(name) {
            writeln!(s, "name {} %{}", name, id.0).unwrap();
        }
    }
    writeln!(s, "end").unwrap();
    s
}

fn op_text(op: &Op) -> String {
    match op {
        Op::ShlC(a) => format!("shlc:{a}"),
        Op::ShrC(a) => format!("shrc:{a}"),
        Op::SarC(a) => format!("sarc:{a}"),
        Op::Slice { hi, lo } => format!("slice:{hi}:{lo}"),
        other => other.mnemonic().to_string(),
    }
}

/// Parse error with a line number and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    line_no: usize,
    netlist: Netlist,
    /// old textual id -> created wire
    sigs: Vec<Option<Wire>>,
    pending_next: Vec<(usize, u32, u32)>, // (line, reg, next)
    src: &'a str,
}

/// Parses the textual format produced by [`emit`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input.
pub fn parse(src: &str) -> Result<Netlist, ParseError> {
    let mut p = Parser {
        line_no: 0,
        netlist: Netlist::new("anonymous"),
        sigs: Vec::new(),
        pending_next: Vec::new(),
        src,
    };
    p.run()?;
    Ok(p.netlist)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { line: self.line_no, msg: msg.into() }
    }

    fn run(&mut self) -> Result<(), ParseError> {
        let lines: Vec<&str> = self.src.lines().collect();
        for (i, raw) in lines.iter().enumerate() {
            self.line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut toks = line.split_whitespace();
            let head = toks.next().expect("nonempty line");
            let rest: Vec<&str> = toks.collect();
            match head {
                "netlist" => {
                    let name = rest.first().ok_or_else(|| self.err("missing design name"))?;
                    self.netlist = Netlist::new(*name);
                }
                "end" => break,
                "next" => self.parse_next(&rest)?,
                "write" => self.parse_write(&rest)?,
                "meminit" => self.parse_meminit(&rest)?,
                "output" => {
                    let (name, id) = self.name_and_sig(&rest)?;
                    self.netlist.mark_output(&name, id);
                }
                "name" => {
                    let (name, id) = self.name_and_sig(&rest)?;
                    if self.netlist.find(&name).is_none() {
                        self.netlist.set_name(id, &name);
                    }
                }
                t if t.starts_with('%') => self.parse_signal(t, &rest)?,
                t if t.starts_with('@') => self.parse_mem(t, &rest)?,
                other => return Err(self.err(format!("unknown directive `{other}`"))),
            }
        }
        // Resolve forward next-state references.
        let pend = std::mem::take(&mut self.pending_next);
        for (line, reg, next) in pend {
            self.line_no = line;
            let reg_w = self.sig(reg)?;
            let next_w = self.sig(next)?;
            let handle = RegHandle { id: reg_w.id(), width: reg_w.width() };
            self.netlist.connect_reg(handle, next_w);
        }
        Ok(())
    }

    fn name_and_sig(&self, rest: &[&str]) -> Result<(String, Wire), ParseError> {
        if rest.len() != 2 {
            return Err(self.err("expected `<name> %id`"));
        }
        let id = self.parse_ref(rest[1])?;
        Ok((rest[0].to_string(), self.sig(id)?))
    }

    fn parse_ref(&self, tok: &str) -> Result<u32, ParseError> {
        tok.strip_prefix('%')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err(format!("expected signal ref, got `{tok}`")))
    }

    fn parse_memref(&self, tok: &str) -> Result<u32, ParseError> {
        tok.strip_prefix('@')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err(format!("expected memory ref, got `{tok}`")))
    }

    fn sig(&self, id: u32) -> Result<Wire, ParseError> {
        self.sigs
            .get(id as usize)
            .copied()
            .flatten()
            .ok_or_else(|| self.err(format!("undefined signal %{id}")))
    }

    fn record(&mut self, id: u32, wire: Wire) -> Result<(), ParseError> {
        let idx = id as usize;
        if self.sigs.len() <= idx {
            self.sigs.resize(idx + 1, None);
        }
        if self.sigs[idx].is_some() {
            return Err(self.err(format!("redefinition of %{id}")));
        }
        self.sigs[idx] = Some(wire);
        Ok(())
    }

    fn parse_signal(&mut self, head: &str, rest: &[&str]) -> Result<(), ParseError> {
        let id = self.parse_ref(head)?;
        let kind = *rest.first().ok_or_else(|| self.err("missing node kind"))?;
        let wire = match kind {
            "input" => {
                if rest.len() != 3 {
                    return Err(self.err("input: expected `input <name> <width>`"));
                }
                let width: u32 = rest[2].parse().map_err(|_| self.err("bad width"))?;
                self.netlist.input(rest[1], width)
            }
            "const" => {
                let bv = self.parse_bv(rest.get(1).copied().ok_or_else(|| self.err("missing const"))?)?;
                self.netlist.constant(bv)
            }
            "reg" => self.parse_reg(rest)?,
            "op" => self.parse_op(rest)?,
            "memread" => {
                if rest.len() != 4 {
                    return Err(self.err("memread: expected `memread @m %addr <width>`"));
                }
                let mem_idx = self.parse_memref(rest[1])?;
                let addr = self.sig(self.parse_ref(rest[2])?)?;
                let mem = self
                    .netlist
                    .iter_mems()
                    .nth(mem_idx as usize)
                    .map(|(m, _)| m)
                    .ok_or_else(|| self.err(format!("undefined memory @{mem_idx}")))?;
                self.netlist.mem_read(mem, addr)
            }
            other => return Err(self.err(format!("unknown node kind `{other}`"))),
        };
        self.record(id, wire)
    }

    fn parse_bv(&self, tok: &str) -> Result<Bv, ParseError> {
        let (w, v) = tok
            .split_once("'d")
            .ok_or_else(|| self.err(format!("bad constant `{tok}`")))?;
        let width: u32 = w.parse().map_err(|_| self.err("bad const width"))?;
        let val: u64 = v.parse().map_err(|_| self.err("bad const value"))?;
        Ok(Bv::new(width, val))
    }

    fn parse_reg(&mut self, rest: &[&str]) -> Result<Wire, ParseError> {
        if rest.len() < 3 {
            return Err(self.err("reg: expected `reg <name> <width> [init=..] kind=.. acc=..`"));
        }
        let name = rest[1];
        let width: u32 = rest[2].parse().map_err(|_| self.err("bad width"))?;
        let mut init = None;
        let mut meta = StateMeta::default();
        for kv in &rest[3..] {
            let (k, v) = kv.split_once('=').ok_or_else(|| self.err(format!("bad attr `{kv}`")))?;
            match k {
                "init" => {
                    let raw: u64 = v.parse().map_err(|_| self.err("bad init"))?;
                    init = Some(Bv::new(width, raw));
                }
                "kind" => {
                    meta.kind = StateKind::parse_tag(v)
                        .ok_or_else(|| self.err(format!("bad kind `{v}`")))?;
                }
                "acc" => meta.attacker_accessible = v == "1",
                other => return Err(self.err(format!("unknown reg attr `{other}`"))),
            }
        }
        let handle = self.netlist.reg(name, width, init, meta);
        Ok(handle.wire())
    }

    fn parse_op(&mut self, rest: &[&str]) -> Result<Wire, ParseError> {
        if rest.len() < 3 {
            return Err(self.err("op: expected `op <mnemonic> <width> %args..`"));
        }
        let op = self.parse_opcode(rest[1])?;
        let width: u32 = rest[2].parse().map_err(|_| self.err("bad width"))?;
        let mut args = Vec::new();
        for tok in &rest[3..] {
            let w = self.sig(self.parse_ref(tok)?)?;
            args.push(w.id());
        }
        Ok(self.netlist.op_node(op, args, width))
    }

    fn parse_opcode(&self, tok: &str) -> Result<Op, ParseError> {
        let op = match tok {
            "not" => Op::Not,
            "and" => Op::And,
            "or" => Op::Or,
            "xor" => Op::Xor,
            "add" => Op::Add,
            "sub" => Op::Sub,
            "mul" => Op::Mul,
            "eq" => Op::Eq,
            "ult" => Op::Ult,
            "slt" => Op::Slt,
            "shl" => Op::Shl,
            "shr" => Op::Shr,
            "sar" => Op::Sar,
            "concat" => Op::Concat,
            "zext" => Op::Zext,
            "sext" => Op::Sext,
            "mux" => Op::Mux,
            "ror" => Op::ReduceOr,
            "rand" => Op::ReduceAnd,
            "rxor" => Op::ReduceXor,
            other => {
                if let Some(a) = other.strip_prefix("shlc:") {
                    Op::ShlC(a.parse().map_err(|_| self.err("bad shift amount"))?)
                } else if let Some(a) = other.strip_prefix("shrc:") {
                    Op::ShrC(a.parse().map_err(|_| self.err("bad shift amount"))?)
                } else if let Some(a) = other.strip_prefix("sarc:") {
                    Op::SarC(a.parse().map_err(|_| self.err("bad shift amount"))?)
                } else if let Some(s) = other.strip_prefix("slice:") {
                    let (hi, lo) = s
                        .split_once(':')
                        .ok_or_else(|| self.err("bad slice bounds"))?;
                    Op::Slice {
                        hi: hi.parse().map_err(|_| self.err("bad slice hi"))?,
                        lo: lo.parse().map_err(|_| self.err("bad slice lo"))?,
                    }
                } else {
                    return Err(self.err(format!("unknown opcode `{other}`")));
                }
            }
        };
        Ok(op)
    }

    fn parse_next(&mut self, rest: &[&str]) -> Result<(), ParseError> {
        if rest.len() != 2 {
            return Err(self.err("next: expected `next %reg %sig`"));
        }
        let reg = self.parse_ref(rest[0])?;
        let next = self.parse_ref(rest[1])?;
        self.pending_next.push((self.line_no, reg, next));
        Ok(())
    }

    fn parse_mem(&mut self, head: &str, rest: &[&str]) -> Result<(), ParseError> {
        let idx = self.parse_memref(head)?;
        if rest.first() != Some(&"mem") || rest.len() < 4 {
            return Err(self.err("mem: expected `@N mem <name> <words> <width> kind=.. acc=..`"));
        }
        if idx as usize != self.netlist.num_mems() {
            return Err(self.err("memories must be declared in order"));
        }
        let name = rest[1];
        let words: u32 = rest[2].parse().map_err(|_| self.err("bad words"))?;
        let width: u32 = rest[3].parse().map_err(|_| self.err("bad width"))?;
        let mut meta = StateMeta::memory(false);
        for kv in &rest[4..] {
            let (k, v) = kv.split_once('=').ok_or_else(|| self.err(format!("bad attr `{kv}`")))?;
            match k {
                "kind" => {
                    meta.kind = StateKind::parse_tag(v)
                        .ok_or_else(|| self.err(format!("bad kind `{v}`")))?;
                }
                "acc" => meta.attacker_accessible = v == "1",
                other => return Err(self.err(format!("unknown mem attr `{other}`"))),
            }
        }
        self.netlist.memory(name, words, width, meta);
        Ok(())
    }

    fn parse_meminit(&mut self, rest: &[&str]) -> Result<(), ParseError> {
        let idx = self.parse_memref(rest.first().ok_or_else(|| self.err("missing mem ref"))?)?;
        let (mid, m) = self
            .netlist
            .iter_mems()
            .nth(idx as usize)
            .ok_or_else(|| self.err(format!("undefined memory @{idx}")))?;
        let width = m.width;
        let words = m.words;
        let vals: Result<Vec<Bv>, ParseError> = rest[1..]
            .iter()
            .map(|t| {
                t.parse::<u64>()
                    .map(|v| Bv::new(width, v))
                    .map_err(|_| self.err("bad meminit value"))
            })
            .collect();
        let vals = vals?;
        if vals.len() as u32 != words {
            return Err(self.err("meminit length mismatch"));
        }
        self.netlist.set_mem_init(mid, vals);
        Ok(())
    }

    fn parse_write(&mut self, rest: &[&str]) -> Result<(), ParseError> {
        if rest.len() != 4 {
            return Err(self.err("write: expected `write @m en=%e addr=%a data=%d`"));
        }
        let idx = self.parse_memref(rest[0])?;
        let mut en = None;
        let mut addr = None;
        let mut data = None;
        for kv in &rest[1..] {
            let (k, v) = kv.split_once('=').ok_or_else(|| self.err(format!("bad attr `{kv}`")))?;
            let w = self.sig(self.parse_ref(v)?)?;
            match k {
                "en" => en = Some(w),
                "addr" => addr = Some(w),
                "data" => data = Some(w),
                other => return Err(self.err(format!("unknown write attr `{other}`"))),
            }
        }
        let (mid, _) = self
            .netlist
            .iter_mems()
            .nth(idx as usize)
            .ok_or_else(|| self.err(format!("undefined memory @{idx}")))?;
        let (en, addr, data) = match (en, addr, data) {
            (Some(e), Some(a), Some(d)) => (e, a, d),
            _ => return Err(self.err("write needs en, addr and data")),
        };
        self.netlist.mem_write(mid, en, addr, data);
        Ok(())
    }
}

/// Emits a memory's metadata line for documentation purposes.
pub fn describe_memory(m: &Memory) -> String {
    format!(
        "{}: {} x {} bits ({} write ports, kind={})",
        m.name,
        m.words,
        m.width,
        m.write_ports.len(),
        m.meta.kind
    )
}

/// Round-trips a netlist through the textual format. Intended for tests:
/// emits, reparses and re-emits, asserting the two emissions are identical.
///
/// # Panics
///
/// Panics if the round-trip output differs or the re-parse fails.
pub fn assert_roundtrip(netlist: &Netlist) {
    let text1 = emit(netlist);
    let parsed = parse(&text1).expect("reparse of emitted netlist");
    let text2 = emit(&parsed);
    assert_eq!(text1, text2, "textual round-trip mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::StateMeta;

    fn example() -> Netlist {
        let mut n = Netlist::new("ex");
        let en = n.input("en", 1);
        let r = n.reg("count", 8, Some(Bv::new(8, 3)), StateMeta::ip_register());
        let one = n.lit(8, 1);
        let inc = n.add(r.wire(), one);
        let nxt = n.mux(en, inc, r.wire());
        n.connect_reg(r, nxt);
        let mem = n.memory("ram", 4, 8, StateMeta::memory(true));
        n.set_mem_init(mem, vec![Bv::new(8, 9); 4]);
        let addr = n.slice(r.wire(), 1, 0);
        let rd = n.mem_read(mem, addr);
        n.mem_write(mem, en, addr, rd);
        n.mark_output("count", r.wire());
        n.set_name(inc, "inc");
        n
    }

    #[test]
    fn roundtrip_counter_with_memory() {
        assert_roundtrip(&example());
    }

    #[test]
    fn parse_rejects_undefined_signal() {
        let e = parse("netlist t\n%0 op add 8 %5 %5\nend").unwrap_err();
        assert!(e.msg.contains("undefined signal"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn parse_rejects_redefinition() {
        let e = parse("netlist t\n%0 input a 1\n%0 input b 1\nend").unwrap_err();
        assert!(e.msg.contains("redefinition"), "{e}");
    }

    #[test]
    fn parse_preserves_metadata() {
        let text = emit(&example());
        let parsed = parse(&text).unwrap();
        let r = parsed.find("count").unwrap();
        match parsed.node(r.id()) {
            Node::Reg(info) => {
                assert_eq!(info.meta.kind, StateKind::IpRegister);
                assert!(info.meta.attacker_accessible);
                assert_eq!(info.init, Some(Bv::new(8, 3)));
            }
            _ => panic!("expected reg"),
        }
        let (_, mem) = parsed.iter_mems().next().unwrap();
        assert_eq!(mem.init.as_ref().unwrap()[0], Bv::new(8, 9));
    }

    #[test]
    fn parsed_netlist_passes_check() {
        let parsed = parse(&emit(&example())).unwrap();
        parsed.check().unwrap();
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let n = parse("# header\n\nnetlist t\n%0 input a 4\noutput a %0\nend\n").unwrap();
        assert!(n.find("a").is_some());
    }
}
