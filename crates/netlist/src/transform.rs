//! Netlist-to-netlist transforms: instance import (the basis of the UPEC
//! 2-safety product), cutpoint insertion and dead-code elimination.

use std::collections::{HashMap, HashSet};

use crate::analysis::cone_of_influence;
use crate::ir::{MemId, Netlist, Node, RegInfo, SignalId, Wire};

/// Mapping from ids of an imported netlist to ids in the destination.
#[derive(Clone, Debug)]
pub struct ImportMap {
    signals: Vec<SignalId>,
    mems: Vec<MemId>,
}

impl ImportMap {
    /// Maps a signal id of the source netlist to the destination netlist.
    pub fn signal(&self, old: SignalId) -> SignalId {
        self.signals[old.index()]
    }

    /// Maps a wire of the source netlist to the destination netlist.
    pub fn wire(&self, dst: &Netlist, old: Wire) -> Wire {
        dst.wire_of(self.signal(old.id()))
    }

    /// Maps a memory id of the source netlist to the destination netlist.
    pub fn mem(&self, old: MemId) -> MemId {
        self.mems[old.index()]
    }
}

impl Netlist {
    /// Imports a full copy of `other` into `self`, prefixing every name with
    /// `prefix.`. Inputs of `other` become fresh inputs of `self`; outputs
    /// become outputs named `prefix.<name>`.
    ///
    /// This is the primitive underlying the UPEC 2-safety product: importing
    /// the same design twice (with different prefixes) yields two independent
    /// instances in one netlist, which the property layer then relates with
    /// equality assumptions.
    ///
    /// # Panics
    ///
    /// Panics if `other` fails its own structural invariants (e.g.,
    /// unconnected registers).
    pub fn import(&mut self, other: &Netlist, prefix: &str) -> ImportMap {
        let pfx = |name: &str| format!("{prefix}.{name}");
        let mut signals = Vec::with_capacity(other.num_nodes());
        let mut mems = Vec::with_capacity(other.num_mems());

        // Pass 1a: create memories (without ports).
        for (_, m) in other.iter_mems() {
            let new_id = self.memory(&pfx(&m.name), m.words, m.width, m.meta);
            if let Some(init) = &m.init {
                self.set_mem_init(new_id, init.clone());
            }
            mems.push(new_id);
        }

        // Pass 1b: create nodes. Combinational args always refer to earlier
        // nodes, so they can be remapped on the fly; register next-state may
        // be a forward reference and is fixed up in pass 2.
        for (_, node) in other.iter_nodes() {
            let new_id = match node {
                Node::Input { name, width } => self.input(&pfx(name), *width).id(),
                Node::Const(bv) => self.constant(*bv).id(),
                Node::Op { op, args, width } => {
                    let new_args = args.iter().map(|a| signals[a.index()]).collect();
                    self.op_node(*op, new_args, *width).id()
                }
                Node::Reg(info) => self
                    .reg(&pfx(&info.name), info.width, info.init, info.meta)
                    .id(),
                Node::MemRead { mem, addr, width: _ } => {
                    let addr_w = self.wire_of(signals[addr.index()]);
                    self.mem_read(mems[mem.index()], addr_w).id()
                }
            };
            signals.push(new_id);
        }

        // Pass 2: register next-state connections and memory write ports.
        for (old_id, node) in other.iter_nodes() {
            if let Node::Reg(info) = node {
                let next = info
                    .next
                    .unwrap_or_else(|| panic!("import of unconnected reg `{}`", info.name));
                let handle = crate::ir::RegHandle {
                    id: signals[old_id.index()],
                    width: info.width,
                };
                let next_w = self.wire_of(signals[next.index()]);
                self.connect_reg(handle, next_w);
            }
        }
        for (old_mid, m) in other.iter_mems() {
            for wp in &m.write_ports {
                let en = self.wire_of(signals[wp.en.index()]);
                let addr = self.wire_of(signals[wp.addr.index()]);
                let data = self.wire_of(signals[wp.data.index()]);
                self.mem_write(mems[old_mid.index()], en, addr, data);
            }
        }

        // Outputs and extra names.
        let outs: Vec<(String, SignalId)> = other
            .iter_outputs()
            .map(|(n, id)| (n.to_string(), id))
            .collect();
        for (name, id) in outs {
            self.mark_output(&pfx(&name), self.wire_of(signals[id.index()]));
        }
        let extra_names: Vec<(String, SignalId)> = other
            .iter_names()
            .filter(|(name, id)| {
                // Inputs and regs were already bound during creation.
                !matches!(other.node(*id), Node::Input { .. } | Node::Reg(_))
                    || other.find(name).map(|w| w.id()) != Some(*id)
            })
            .map(|(n, id)| (n.to_string(), id))
            .collect();
        for (name, id) in extra_names {
            let mapped = signals[id.index()];
            let full = pfx(&name);
            if self.find(&full).is_none() {
                self.set_name(self.wire_of(mapped), &full);
            }
        }

        ImportMap { signals, mems }
    }

    /// Replaces each given signal with a fresh primary input of the same
    /// width (a *cutpoint*). The replaced node keeps its name if it had one;
    /// otherwise it is named `cut$<id>`.
    ///
    /// Cutting a register output removes that register from the state space,
    /// which is how a verification view frees an entire subtree (run
    /// [`Netlist::prune`] afterwards to drop the dangling logic).
    ///
    /// # Panics
    ///
    /// Panics when asked to cut a constant node.
    pub fn cut_signals(&mut self, cuts: &[SignalId]) -> Vec<(SignalId, String)> {
        // Collect existing names (reverse map) once.
        let mut rev: HashMap<SignalId, String> = HashMap::new();
        for (name, id) in self.iter_names() {
            rev.entry(id).or_insert_with(|| name.to_string());
        }
        let mut created = Vec::new();
        for &id in cuts {
            let width = self.width_of(id);
            let name = rev.get(&id).cloned().unwrap_or_else(|| format!("cut${}", id.0));
            if matches!(self.node(id), Node::Const(_)) {
                panic!("cannot cut constant node {}", id.0);
            }
            self.replace_with_input(id, name.clone(), width);
            created.push((id, name));
        }
        created
    }

    fn replace_with_input(&mut self, id: SignalId, name: String, width: u32) {
        let had_name = self.find(&name).map(|w| w.id()) == Some(id);
        let node = Node::Input { name: name.clone(), width };
        self.overwrite_node(id, node);
        if !had_name {
            self.set_name(self.wire_of(id), &name);
        }
    }

    pub(crate) fn overwrite_node(&mut self, id: SignalId, node: Node) {
        let slot = self.node_mut(id);
        *slot = node;
    }

    /// Removes every node that is not in the sequential cone of influence of
    /// the declared outputs (plus `extra_roots`). Registers and memories
    /// survive only if they are observable from the roots; this mirrors the
    /// attacker's view — unobservable state cannot be retrieved.
    ///
    /// Returns the pruned netlist and the id remapping (old id → new id) for
    /// surviving signals.
    pub fn prune(&self, extra_roots: impl IntoIterator<Item = SignalId>) -> (Netlist, HashMap<SignalId, SignalId>) {
        let mut roots: Vec<SignalId> = self.iter_outputs().map(|(_, id)| id).collect();
        roots.extend(extra_roots);
        let (keep, keep_mems) = cone_of_influence(self, roots);
        self.rebuild(&keep, &keep_mems)
    }

    fn rebuild(
        &self,
        keep: &HashSet<SignalId>,
        keep_mems: &HashSet<MemId>,
    ) -> (Netlist, HashMap<SignalId, SignalId>) {
        let mut out = Netlist::new(self.name());
        let mut smap: HashMap<SignalId, SignalId> = HashMap::new();
        let mut mmap: HashMap<MemId, MemId> = HashMap::new();

        for (mid, m) in self.iter_mems() {
            if !keep_mems.contains(&mid) {
                continue;
            }
            let new_id = out.memory(&m.name, m.words, m.width, m.meta);
            if let Some(init) = &m.init {
                out.set_mem_init(new_id, init.clone());
            }
            mmap.insert(mid, new_id);
        }

        // Nodes in id order; comb args refer to earlier ids so they are
        // already mapped. Register nexts are fixed afterwards.
        for (id, node) in self.iter_nodes() {
            if !keep.contains(&id) {
                continue;
            }
            let new_id = match node {
                Node::Input { name, width } => out.input(name, *width).id(),
                Node::Const(bv) => out.constant(*bv).id(),
                Node::Op { op, args, width } => {
                    let new_args = args.iter().map(|a| smap[a]).collect();
                    out.op_node(*op, new_args, *width).id()
                }
                Node::Reg(RegInfo { name, width, init, meta, .. }) => {
                    out.reg(name, *width, *init, *meta).id()
                }
                Node::MemRead { mem, addr, .. } => {
                    let addr_w = out.wire_of(smap[addr]);
                    out.mem_read(mmap[mem], addr_w).id()
                }
            };
            smap.insert(id, new_id);
        }

        for (id, node) in self.iter_nodes() {
            if !keep.contains(&id) {
                continue;
            }
            if let Node::Reg(info) = node {
                let next = info.next.expect("checked reg");
                let handle = crate::ir::RegHandle { id: smap[&id], width: info.width };
                let next_w = out.wire_of(smap[&next]);
                out.connect_reg(handle, next_w);
            }
        }
        for (mid, m) in self.iter_mems() {
            if !keep_mems.contains(&mid) {
                continue;
            }
            for wp in &m.write_ports {
                let en = out.wire_of(smap[&wp.en]);
                let addr = out.wire_of(smap[&wp.addr]);
                let data = out.wire_of(smap[&wp.data]);
                out.mem_write(mmap[&mid], en, addr, data);
            }
        }

        for (name, id) in self.iter_outputs() {
            if let Some(&new) = smap.get(&id) {
                out.mark_output(name, out.wire_of(new));
            }
        }
        for (name, id) in self.iter_names() {
            if let Some(&new) = smap.get(&id) {
                if out.find(name).is_none() {
                    out.set_name(out.wire_of(new), name);
                }
            }
        }
        (out, smap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::Bv;
    use crate::ir::StateMeta;

    fn counter() -> Netlist {
        let mut n = Netlist::new("counter");
        let en = n.input("en", 1);
        let count = n.reg("count", 8, Some(Bv::zero(8)), StateMeta::ip_register());
        let one = n.lit(8, 1);
        let inc = n.add(count.wire(), one);
        let next = n.mux(en, inc, count.wire());
        n.connect_reg(count, next);
        n.mark_output("count", count.wire());
        n
    }

    #[test]
    fn import_two_instances() {
        let src = counter();
        let mut prod = Netlist::new("product");
        let a = prod.import(&src, "a");
        let b = prod.import(&src, "b");
        prod.check().unwrap();
        assert!(prod.find("a.count").is_some());
        assert!(prod.find("b.count").is_some());
        assert!(prod.find("a.en").is_some());
        assert_ne!(
            a.signal(src.find("count").unwrap().id()),
            b.signal(src.find("count").unwrap().id())
        );
        assert_eq!(prod.iter_outputs().count(), 2);
        // State doubled.
        assert_eq!(crate::analysis::state_bit_count(&prod), 16);
    }

    #[test]
    fn import_preserves_memories() {
        let mut src = Netlist::new("m");
        let addr = src.input("addr", 4);
        let data = src.input("data", 32);
        let en = src.input("en", 1);
        let mem = src.memory("ram", 16, 32, StateMeta::memory(true));
        src.mem_write(mem, en, addr, data);
        let rd = src.mem_read(mem, addr);
        src.mark_output("rd", rd);
        src.set_mem_init(mem, vec![Bv::new(32, 7); 16]);

        let mut prod = Netlist::new("p");
        let map = prod.import(&src, "i0");
        prod.check().unwrap();
        let new_mem = map.mem(mem);
        assert_eq!(prod.mem(new_mem).name, "i0.ram");
        assert_eq!(prod.mem(new_mem).write_ports.len(), 1);
        assert_eq!(prod.mem(new_mem).init.as_ref().unwrap()[3], Bv::new(32, 7));
    }

    #[test]
    fn cut_register_removes_state_after_prune() {
        let mut n = counter();
        let count = n.find("count").unwrap();
        // Keep an observation of the cut wire so pruning retains it as input.
        n.cut_signals(&[count.id()]);
        let (pruned, _) = n.prune([]);
        pruned.check().unwrap();
        // The register is gone; `count` is now an input.
        assert_eq!(crate::analysis::state_bit_count(&pruned), 0);
        assert!(matches!(
            pruned.node(pruned.find("count").unwrap().id()),
            Node::Input { .. }
        ));
    }

    #[test]
    fn prune_drops_dangling_logic() {
        let mut n = counter();
        // Dangling adder chain not connected to any output.
        let x = n.input("x", 8);
        let y = n.add(x, x);
        let _z = n.add(y, y);
        let before = n.num_nodes();
        let (pruned, _) = n.prune([]);
        assert!(pruned.num_nodes() < before);
        assert!(pruned.find("count").is_some());
        pruned.check().unwrap();
    }

    #[test]
    fn prune_keeps_extra_roots() {
        let mut n = counter();
        let x = n.input("x", 8);
        let y = n.add(x, x);
        n.set_name(y, "y");
        let (pruned, _) = n.prune([y.id()]);
        assert!(pruned.find("y").is_some());
    }

    #[test]
    #[should_panic(expected = "cannot cut constant")]
    fn cutting_constant_panics() {
        let mut n = counter();
        let c = n.lit(8, 5);
        n.cut_signals(&[c.id()]);
    }
}
