//! # ssc-netlist — word-level RTL netlist IR
//!
//! The foundation of the `mcu-ssc` stack: a flat, word-level register
//! transfer netlist with
//!
//! - fixed-width bit-vector values ([`Bv`], widths 1..=64),
//! - combinational operators with width checking and light folding,
//! - clocked registers and memories carrying [`StateMeta`] classification
//!   used by the UPEC-SSC security analysis,
//! - hierarchical naming via a scope stack (the netlist itself stays flat),
//! - structural analysis ([`analysis`]): evaluation order, state
//!   enumeration, cones of influence,
//! - transforms ([`Netlist::import`], [`Netlist::cut_signals`],
//!   [`Netlist::prune`]) that underpin the 2-safety product construction,
//! - a textual interchange format with a parser ([`text`]).
//!
//! # Example
//!
//! ```
//! use ssc_netlist::{Netlist, Bv, StateMeta, analysis};
//!
//! let mut n = Netlist::new("blinky");
//! let en = n.input("en", 1);
//! let led = n.reg("led", 1, Some(Bv::zero(1)), StateMeta::peripheral());
//! let toggled = n.not(led.wire());
//! let next = n.mux(en, toggled, led.wire());
//! n.connect_reg(led, next);
//! n.mark_output("led", led.wire());
//! n.check().unwrap();
//! assert_eq!(analysis::state_bit_count(&n), 1);
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod bv;
pub mod dot;
mod ir;
pub mod lanes;
mod ops;
pub mod text;
mod transform;

pub use bv::{Bv, MAX_WIDTH};
pub use ir::{
    MemId, Memory, Netlist, NetlistError, Node, Op, RegHandle, RegInfo, SignalId, StateKind,
    StateMeta, Wire, WritePort,
};
pub use transform::ImportMap;
