//! # ssc-netlist — word-level RTL netlist IR
//!
//! The foundation of the `mcu-ssc` stack: a flat, word-level register
//! transfer netlist with
//!
//! - fixed-width bit-vector values ([`Bv`], widths 1..=64),
//! - combinational operators with width checking and light folding,
//! - clocked registers and memories carrying [`StateMeta`] classification
//!   used by the UPEC-SSC security analysis,
//! - hierarchical naming via a scope stack (the netlist itself stays flat),
//! - structural analysis ([`analysis`]): evaluation order, state
//!   enumeration, cones of influence, and the bundled pass pipeline
//!   ([`analysis::pass_pipeline`]),
//! - sequential influence analysis ([`influence`]) and a security linter
//!   ([`lint`]) — see *Static influence analysis & linting* below,
//! - transforms ([`Netlist::import`], [`Netlist::cut_signals`],
//!   [`Netlist::prune`]) that underpin the 2-safety product construction,
//! - a textual interchange format with a parser ([`text`]).
//!
//! # Static influence analysis & linting
//!
//! [`influence`] lifts the structural passes to *sequential* reasoning:
//! [`influence::InfluenceGraph`] captures, per state element, the primary
//! inputs and state elements its next-state logic reads in one clock
//! cycle; [`influence::InfluenceGraph::closure`] runs a multi-source BFS
//! over that graph yielding the minimal clock distance of every element
//! from a set of divergence sources. Distance is a *sound upper bound on
//! divergence speed*: an element at depth `d` cannot differ between two
//! runs before cycle `d`, and an unreachable element can never differ.
//! The UPEC-SSC proof engine uses exactly this to certify goal-clause
//! disjuncts clean without touching the SAT solver, and
//! [`influence::InfluenceClosure::frontier`] exposes the per-window cone
//! diff (which atoms a longer window newly has to track).
//! [`influence::InfluenceLattice`] crosses victim- and attacker-rooted
//! closures into the `Clean / VictimOnly / AttackerOnly / Both` lattice.
//!
//! [`lint`] builds the security linter on the same passes: structural
//! diagnostics with stable `SSC-L00x` codes for timing-channel-prone
//! shapes (dual-master shared resources, attacker-driven arbitration,
//! dead state, width anomalies). See the [`lint`] module docs for the
//! code table.
//!
//! # Example
//!
//! ```
//! use ssc_netlist::{Netlist, Bv, StateMeta, analysis};
//!
//! let mut n = Netlist::new("blinky");
//! let en = n.input("en", 1);
//! let led = n.reg("led", 1, Some(Bv::zero(1)), StateMeta::peripheral());
//! let toggled = n.not(led.wire());
//! let next = n.mux(en, toggled, led.wire());
//! n.connect_reg(led, next);
//! n.mark_output("led", led.wire());
//! n.check().unwrap();
//! assert_eq!(analysis::state_bit_count(&n), 1);
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod bv;
pub mod dot;
pub mod influence;
mod ir;
pub mod lanes;
pub mod lint;
mod ops;
pub mod text;
mod transform;

pub use bv::{Bv, MAX_WIDTH};
pub use ir::{
    MemId, Memory, Netlist, NetlistError, Node, Op, RegHandle, RegInfo, SignalId, StateKind,
    StateMeta, Wire, WritePort,
};
pub use transform::ImportMap;
