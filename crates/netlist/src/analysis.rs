//! Structural analysis: evaluation ordering, state enumeration, cones of
//! influence and design statistics.
//!
//! The UPEC-SSC method (paper Sec. 3.4) starts from a *structural* view of
//! the design: the set of all state variables `S_all`, per-element
//! classification metadata, and fan-in reasoning. This module provides those
//! primitives for the flat IR.

use std::collections::HashSet;

use crate::ir::{MemId, Netlist, Node, SignalId, StateKind, StateMeta};

/// Computes a topological evaluation order of the combinational graph.
///
/// Inputs, constants and register outputs are sources; `Op` nodes depend on
/// their arguments and `MemRead` nodes on their address. The returned order
/// contains *all* nodes (sources included).
///
/// # Errors
///
/// Returns the name (or node index) of a signal on a combinational cycle.
pub fn comb_topo_order(netlist: &Netlist) -> Result<Vec<SignalId>, String> {
    let n = netlist.num_nodes();
    // Flat CSR adjacency, built once up front. A node can sit on the DFS
    // stack through many re-examinations (once per child); collecting its
    // fan-in into a fresh Vec on each examination made the walk allocate
    // O(E) vectors instead of two.
    let mut offsets: Vec<usize> = Vec::with_capacity(n + 1);
    let mut edges: Vec<SignalId> = Vec::new();
    offsets.push(0);
    for (_, node) in netlist.iter_nodes() {
        edges.extend(node.comb_fanin());
        offsets.push(edges.len());
    }
    // 0 = unvisited, 1 = on stack, 2 = done
    let mut mark = vec![0u8; n];
    let mut order = Vec::with_capacity(n);
    // Iterative DFS with explicit stack of (node, next-child-index).
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if mark[start as usize] != 0 {
            continue;
        }
        stack.push((start, 0));
        mark[start as usize] = 1;
        while let Some(&mut (id, ref mut child)) = stack.last_mut() {
            let deps = &edges[offsets[id as usize]..offsets[id as usize + 1]];
            if *child < deps.len() {
                let dep = deps[*child];
                *child += 1;
                match mark[dep.index()] {
                    0 => {
                        mark[dep.index()] = 1;
                        stack.push((dep.0, 0));
                    }
                    1 => {
                        let name = describe(netlist, dep);
                        return Err(name);
                    }
                    _ => {}
                }
            } else {
                mark[id as usize] = 2;
                order.push(SignalId(id));
                stack.pop();
            }
        }
    }
    Ok(order)
}

fn describe(netlist: &Netlist, id: SignalId) -> String {
    match netlist.node(id) {
        Node::Input { name, .. } => name.clone(),
        Node::Reg(info) => info.name.clone(),
        _ => format!("node#{}", id.0),
    }
}

/// A state-holding element of the design: a register or one whole memory.
///
/// Memory *words* are expanded by higher layers (UPEC state atoms); at the
/// structural level a memory is a single element with `words * width` bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateElement {
    /// Hierarchical name.
    pub name: String,
    /// Element handle.
    pub handle: StateHandle,
    /// Total number of state bits.
    pub bits: u64,
    /// Classification metadata.
    pub meta: StateMeta,
}

/// Handle discriminating registers from memories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StateHandle {
    /// A register node.
    Reg(SignalId),
    /// A memory array.
    Mem(MemId),
}

/// Enumerates all state elements (`S_all` at the structural level).
pub fn state_elements(netlist: &Netlist) -> Vec<StateElement> {
    let mut out = Vec::new();
    for (id, node) in netlist.iter_nodes() {
        if let Node::Reg(info) = node {
            out.push(StateElement {
                name: info.name.clone(),
                handle: StateHandle::Reg(id),
                bits: u64::from(info.width),
                meta: info.meta,
            });
        }
    }
    for (id, mem) in netlist.iter_mems() {
        out.push(StateElement {
            name: mem.name.clone(),
            handle: StateHandle::Mem(id),
            bits: u64::from(mem.words) * u64::from(mem.width),
            meta: mem.meta,
        });
    }
    out
}

/// Total number of state bits in the design (registers + memory words).
pub fn state_bit_count(netlist: &Netlist) -> u64 {
    state_elements(netlist).iter().map(|e| e.bits).sum()
}

/// Summary statistics of a netlist.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of constant nodes.
    pub consts: usize,
    /// Number of combinational operator nodes.
    pub ops: usize,
    /// Number of registers.
    pub regs: usize,
    /// Number of memory read ports.
    pub mem_reads: usize,
    /// Number of memories.
    pub mems: usize,
    /// Number of memory write ports.
    pub mem_writes: usize,
    /// Total state bits (register bits + memory bits).
    pub state_bits: u64,
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} inputs, {} ops, {} regs, {} mems ({} rd / {} wr ports), {} state bits",
            self.inputs, self.ops, self.regs, self.mems, self.mem_reads, self.mem_writes,
            self.state_bits
        )
    }
}

/// Computes summary statistics for a netlist.
pub fn stats(netlist: &Netlist) -> NetlistStats {
    let mut s = NetlistStats::default();
    for (_, node) in netlist.iter_nodes() {
        match node {
            Node::Input { .. } => s.inputs += 1,
            Node::Const(_) => s.consts += 1,
            Node::Op { .. } => s.ops += 1,
            Node::Reg(_) => s.regs += 1,
            Node::MemRead { .. } => s.mem_reads += 1,
        }
    }
    s.mems = netlist.num_mems();
    s.mem_writes = netlist.iter_mems().map(|(_, m)| m.write_ports.len()).sum();
    s.state_bits = state_bit_count(netlist);
    s
}

/// Computes the *sequential* cone of influence of a set of root signals:
/// every node reachable backwards through combinational fan-in, register
/// next-state functions and memory write ports.
///
/// Returns the set of reachable signals and the set of reachable memories.
pub fn cone_of_influence(
    netlist: &Netlist,
    roots: impl IntoIterator<Item = SignalId>,
) -> (HashSet<SignalId>, HashSet<MemId>) {
    let mut seen: HashSet<SignalId> = HashSet::new();
    let mut mems: HashSet<MemId> = HashSet::new();
    let mut work: Vec<SignalId> = roots.into_iter().collect();
    while let Some(id) = work.pop() {
        if !seen.insert(id) {
            continue;
        }
        match netlist.node(id) {
            Node::Op { args, .. } => work.extend(args.iter().copied()),
            Node::Reg(info) => {
                if let Some(next) = info.next {
                    work.push(next);
                }
            }
            Node::MemRead { mem, addr, .. } => {
                work.push(*addr);
                if mems.insert(*mem) {
                    for wp in &netlist.mem(*mem).write_ports {
                        work.push(wp.en);
                        work.push(wp.addr);
                        work.push(wp.data);
                    }
                }
            }
            _ => {}
        }
    }
    (seen, mems)
}

/// The bundled result of the structural pass pipeline: everything the
/// downstream consumers (proof engine, security linter, reports) need from
/// one walk of the design.
#[derive(Clone, Debug)]
pub struct Passes {
    /// Topological evaluation order of the combinational graph.
    pub topo: Vec<SignalId>,
    /// Summary statistics.
    pub stats: NetlistStats,
    /// All state elements (`S_all` at the structural level).
    pub elements: Vec<StateElement>,
    /// The one-step sequential influence graph over the state elements.
    pub influence: crate::influence::InfluenceGraph,
}

/// Runs the structural pass pipeline: evaluation ordering (doubling as the
/// combinational-loop check), statistics, state enumeration and the
/// sequential influence graph.
///
/// # Errors
///
/// Returns the name of a signal on a combinational cycle.
pub fn pass_pipeline(netlist: &Netlist) -> Result<Passes, String> {
    let topo = comb_topo_order(netlist)?;
    Ok(Passes {
        topo,
        stats: stats(netlist),
        elements: state_elements(netlist),
        influence: crate::influence::InfluenceGraph::build(netlist),
    })
}

/// Counts state elements per [`StateKind`]; useful for design review and the
/// `S_not_victim` compilation report.
pub fn kind_histogram(netlist: &Netlist) -> Vec<(StateKind, usize, u64)> {
    let mut hist: std::collections::BTreeMap<StateKind, (usize, u64)> = Default::default();
    for e in state_elements(netlist) {
        let entry = hist.entry(e.meta.kind).or_default();
        entry.0 += 1;
        entry.1 += e.bits;
    }
    hist.into_iter().map(|(k, (n, b))| (k, n, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::Bv;
    use crate::ir::StateMeta;

    fn counter() -> Netlist {
        let mut n = Netlist::new("counter");
        let en = n.input("en", 1);
        let count = n.reg("count", 8, Some(Bv::zero(8)), StateMeta::ip_register());
        let one = n.lit(8, 1);
        let inc = n.add(count.wire(), one);
        let next = n.mux(en, inc, count.wire());
        n.connect_reg(count, next);
        n.mark_output("count", count.wire());
        n
    }

    #[test]
    fn topo_order_contains_all_nodes() {
        let n = counter();
        let order = comb_topo_order(&n).unwrap();
        assert_eq!(order.len(), n.num_nodes());
        // Every node appears after its comb fan-in.
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for (id, node) in n.iter_nodes() {
            for dep in node.comb_fanin() {
                assert!(pos[&dep] < pos[&id], "dep order violated");
            }
        }
    }

    #[test]
    fn state_enumeration() {
        let mut n = counter();
        let addr = n.input("addr", 4);
        let data = n.input("data", 32);
        let en = n.find("en").unwrap();
        let mem = n.memory("ram", 16, 32, StateMeta::memory(true));
        n.mem_write(mem, en, addr, data);
        let elems = state_elements(&n);
        assert_eq!(elems.len(), 2);
        assert_eq!(state_bit_count(&n), 8 + 16 * 32);
        let s = stats(&n);
        assert_eq!(s.regs, 1);
        assert_eq!(s.mems, 1);
        assert_eq!(s.state_bits, 8 + 512);
    }

    #[test]
    fn coi_reaches_through_registers() {
        let n = counter();
        let count = n.find("count").unwrap();
        let (cone, _) = cone_of_influence(&n, [count.id()]);
        let en = n.find("en").unwrap();
        assert!(cone.contains(&en.id()), "input feeding next-state must be in cone");
    }

    #[test]
    fn coi_reaches_memory_write_ports() {
        let mut n = Netlist::new("t");
        let addr = n.input("addr", 4);
        let data = n.input("data", 32);
        let en = n.input("en", 1);
        let mem = n.memory("ram", 16, 32, StateMeta::memory(false));
        n.mem_write(mem, en, addr, data);
        let raddr = n.input("raddr", 4);
        let rd = n.mem_read(mem, raddr);
        let (cone, mems) = cone_of_influence(&n, [rd.id()]);
        assert!(mems.contains(&mem));
        for w in [addr, data, en, raddr] {
            assert!(cone.contains(&w.id()));
        }
    }

    #[test]
    fn pass_pipeline_bundles_all_passes() {
        let n = counter();
        let p = pass_pipeline(&n).unwrap();
        assert_eq!(p.topo.len(), n.num_nodes());
        assert_eq!(p.stats.regs, 1);
        assert_eq!(p.elements.len(), 1);
        assert_eq!(p.influence.len(), 1);
        let en = n.find("en").unwrap().id();
        let cl = p.influence.closure([en], []);
        assert_eq!(cl.depth(StateHandle::Reg(n.find("count").unwrap().id())), Some(1));
    }

    #[test]
    fn histogram_by_kind() {
        let n = counter();
        let hist = kind_histogram(&n);
        assert_eq!(hist, vec![(crate::ir::StateKind::IpRegister, 1, 8)]);
    }
}
