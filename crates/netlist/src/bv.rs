//! Fixed-width bit-vector values.
//!
//! [`Bv`] is the value domain of the netlist IR: a two's-complement
//! bit-vector of width 1..=64 stored in a `u64`. All operations mask their
//! result to the declared width, so the invariant `val & !mask == 0` always
//! holds.
//!
//! # Examples
//!
//! ```
//! use ssc_netlist::Bv;
//!
//! let a = Bv::new(8, 0xF0);
//! let b = Bv::new(8, 0x0F);
//! assert_eq!(a.or(b), Bv::new(8, 0xFF));
//! assert_eq!(a.add(b), Bv::new(8, 0xFF));
//! assert_eq!(Bv::new(8, 0xFF).add(Bv::new(8, 1)), Bv::new(8, 0));
//! ```

use std::fmt;

/// Maximum supported bit-vector width.
pub const MAX_WIDTH: u32 = 64;

/// A fixed-width bit-vector value (width 1..=64).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bv {
    width: u32,
    val: u64,
}

// The arithmetic methods intentionally mirror operator names but carry
// width-checking semantics; they are not operator-trait implementations.
#[allow(clippy::should_implement_trait)]
impl Bv {
    /// Creates a bit-vector of `width` bits holding `val` truncated to the width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than [`MAX_WIDTH`].
    #[inline]
    pub fn new(width: u32, val: u64) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "bit-vector width must be in 1..=64, got {width}"
        );
        Bv {
            width,
            val: val & Self::mask_for(width),
        }
    }

    /// The all-zeros vector of the given width.
    #[inline]
    pub fn zero(width: u32) -> Self {
        Bv::new(width, 0)
    }

    /// The all-ones vector of the given width.
    #[inline]
    pub fn ones(width: u32) -> Self {
        Bv::new(width, u64::MAX)
    }

    /// A single-bit vector: `1` if `b`, else `0`.
    #[inline]
    pub fn bit(b: bool) -> Self {
        Bv::new(1, b as u64)
    }

    /// The width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The raw value (always `< 2^width`).
    #[inline]
    pub fn val(&self) -> u64 {
        self.val
    }

    /// `true` if every bit is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.val == 0
    }

    /// `true` if this is the 1-bit value `1`.
    #[inline]
    pub fn is_true(&self) -> bool {
        self.width == 1 && self.val == 1
    }

    /// The value interpreted as a signed integer (two's complement).
    #[inline]
    pub fn as_signed(&self) -> i64 {
        let shift = 64 - self.width;
        ((self.val << shift) as i64) >> shift
    }

    /// The mask with the low `width` bits set.
    #[inline]
    pub fn mask_for(width: u32) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// The mask for this vector's width.
    #[inline]
    pub fn mask(&self) -> u64 {
        Self::mask_for(self.width)
    }

    /// Extracts bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[inline]
    pub fn get_bit(&self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        (self.val >> i) & 1 == 1
    }

    /// Returns a copy with bit `i` set to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[inline]
    pub fn with_bit(&self, i: u32, b: bool) -> Self {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        let cleared = self.val & !(1u64 << i);
        Bv {
            width: self.width,
            val: cleared | ((b as u64) << i),
        }
    }

    fn same_width(&self, other: Bv, op: &str) -> u32 {
        assert!(
            self.width == other.width,
            "width mismatch in {op}: {} vs {}",
            self.width,
            other.width
        );
        self.width
    }

    /// Bitwise NOT.
    #[inline]
    pub fn not(self) -> Self {
        Bv::new(self.width, !self.val)
    }

    /// Bitwise AND. Panics on width mismatch.
    #[inline]
    pub fn and(self, rhs: Bv) -> Self {
        let w = self.same_width(rhs, "and");
        Bv::new(w, self.val & rhs.val)
    }

    /// Bitwise OR. Panics on width mismatch.
    #[inline]
    pub fn or(self, rhs: Bv) -> Self {
        let w = self.same_width(rhs, "or");
        Bv::new(w, self.val | rhs.val)
    }

    /// Bitwise XOR. Panics on width mismatch.
    #[inline]
    pub fn xor(self, rhs: Bv) -> Self {
        let w = self.same_width(rhs, "xor");
        Bv::new(w, self.val ^ rhs.val)
    }

    /// Wrapping addition. Panics on width mismatch.
    #[inline]
    pub fn add(self, rhs: Bv) -> Self {
        let w = self.same_width(rhs, "add");
        Bv::new(w, self.val.wrapping_add(rhs.val))
    }

    /// Wrapping subtraction. Panics on width mismatch.
    #[inline]
    pub fn sub(self, rhs: Bv) -> Self {
        let w = self.same_width(rhs, "sub");
        Bv::new(w, self.val.wrapping_sub(rhs.val))
    }

    /// Wrapping multiplication. Panics on width mismatch.
    #[inline]
    pub fn mul(self, rhs: Bv) -> Self {
        let w = self.same_width(rhs, "mul");
        Bv::new(w, self.val.wrapping_mul(rhs.val))
    }

    /// Equality as a 1-bit vector. Panics on width mismatch.
    #[inline]
    pub fn eq_bit(self, rhs: Bv) -> Self {
        self.same_width(rhs, "eq");
        Bv::bit(self.val == rhs.val)
    }

    /// Unsigned less-than as a 1-bit vector. Panics on width mismatch.
    #[inline]
    pub fn ult(self, rhs: Bv) -> Self {
        self.same_width(rhs, "ult");
        Bv::bit(self.val < rhs.val)
    }

    /// Signed less-than as a 1-bit vector. Panics on width mismatch.
    #[inline]
    pub fn slt(self, rhs: Bv) -> Self {
        self.same_width(rhs, "slt");
        Bv::bit(self.as_signed() < rhs.as_signed())
    }

    /// Logical shift left by a constant amount (zeros shifted in).
    #[inline]
    pub fn shl(self, amount: u32) -> Self {
        if amount >= self.width {
            Bv::zero(self.width)
        } else {
            Bv::new(self.width, self.val << amount)
        }
    }

    /// Logical shift right by a constant amount (zeros shifted in).
    #[inline]
    pub fn shr(self, amount: u32) -> Self {
        if amount >= self.width {
            Bv::zero(self.width)
        } else {
            Bv::new(self.width, self.val >> amount)
        }
    }

    /// Arithmetic shift right by a constant amount (sign bit shifted in).
    #[inline]
    pub fn sar(self, amount: u32) -> Self {
        let amount = amount.min(self.width - 1);
        Bv::new(self.width, (self.as_signed() >> amount) as u64)
    }

    /// Variable logical shift left: shift amount taken from `rhs.val()`.
    #[inline]
    pub fn shl_dyn(self, rhs: Bv) -> Self {
        self.shl(rhs.val.min(u64::from(MAX_WIDTH)) as u32)
    }

    /// Variable logical shift right: shift amount taken from `rhs.val()`.
    #[inline]
    pub fn shr_dyn(self, rhs: Bv) -> Self {
        self.shr(rhs.val.min(u64::from(MAX_WIDTH)) as u32)
    }

    /// Variable arithmetic shift right: shift amount taken from `rhs.val()`.
    #[inline]
    pub fn sar_dyn(self, rhs: Bv) -> Self {
        self.sar(rhs.val.min(u64::from(MAX_WIDTH)) as u32)
    }

    /// Extracts bits `hi..=lo` as a new vector of width `hi - lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    #[inline]
    pub fn slice(self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "slice hi {hi} < lo {lo}");
        assert!(hi < self.width, "slice hi {hi} out of range for width {}", self.width);
        Bv::new(hi - lo + 1, self.val >> lo)
    }

    /// Concatenation: `self` becomes the high bits, `lo` the low bits.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    #[inline]
    pub fn concat(self, lo: Bv) -> Self {
        let w = self.width + lo.width;
        assert!(w <= MAX_WIDTH, "concat width {w} exceeds {MAX_WIDTH}");
        Bv::new(w, (self.val << lo.width) | lo.val)
    }

    /// Zero-extends (or keeps) the vector to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the current width.
    #[inline]
    pub fn zext(self, width: u32) -> Self {
        assert!(width >= self.width, "zext target {width} below width {}", self.width);
        Bv::new(width, self.val)
    }

    /// Sign-extends (or keeps) the vector to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the current width.
    #[inline]
    pub fn sext(self, width: u32) -> Self {
        assert!(width >= self.width, "sext target {width} below width {}", self.width);
        Bv::new(width, self.as_signed() as u64)
    }

    /// OR-reduction: 1-bit `1` iff any bit is set.
    #[inline]
    pub fn reduce_or(self) -> Self {
        Bv::bit(self.val != 0)
    }

    /// AND-reduction: 1-bit `1` iff all bits are set.
    #[inline]
    pub fn reduce_and(self) -> Self {
        Bv::bit(self.val == self.mask())
    }

    /// XOR-reduction: 1-bit parity of the vector.
    #[inline]
    pub fn reduce_xor(self) -> Self {
        Bv::bit(self.val.count_ones() % 2 == 1)
    }

    /// Number of set bits.
    #[inline]
    pub fn popcount(self) -> u32 {
        self.val.count_ones()
    }
}

impl fmt::Debug for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.val)
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.val)
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.val)
    }
}

impl fmt::Binary for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b{:b}", self.width, self.val)
    }
}

impl From<bool> for Bv {
    fn from(b: bool) -> Self {
        Bv::bit(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_masks_value() {
        assert_eq!(Bv::new(4, 0xFF).val(), 0xF);
        assert_eq!(Bv::new(64, u64::MAX).val(), u64::MAX);
        assert_eq!(Bv::new(1, 2).val(), 0);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_panics() {
        let _ = Bv::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn oversized_width_panics() {
        let _ = Bv::new(65, 0);
    }

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(Bv::new(8, 200).add(Bv::new(8, 100)), Bv::new(8, 44));
        assert_eq!(Bv::new(8, 1).sub(Bv::new(8, 2)), Bv::new(8, 255));
        assert_eq!(Bv::new(4, 5).mul(Bv::new(4, 5)), Bv::new(4, 9));
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(Bv::new(4, 0b1000).as_signed(), -8);
        assert_eq!(Bv::new(4, 0b0111).as_signed(), 7);
        assert_eq!(Bv::new(64, u64::MAX).as_signed(), -1);
    }

    #[test]
    fn comparisons() {
        assert!(Bv::new(8, 3).ult(Bv::new(8, 5)).is_true());
        assert!(!Bv::new(8, 5).ult(Bv::new(8, 5)).is_true());
        assert!(Bv::new(8, 0xFF).slt(Bv::new(8, 0)).is_true()); // -1 < 0
        assert!(Bv::new(8, 7).eq_bit(Bv::new(8, 7)).is_true());
    }

    #[test]
    fn shifts() {
        assert_eq!(Bv::new(8, 0b1).shl(3), Bv::new(8, 0b1000));
        assert_eq!(Bv::new(8, 0b1000).shr(3), Bv::new(8, 0b1));
        assert_eq!(Bv::new(8, 0x80).sar(4), Bv::new(8, 0xF8));
        assert_eq!(Bv::new(8, 0x80).shl(8), Bv::zero(8));
        assert_eq!(Bv::new(8, 0x80).shr(100), Bv::zero(8));
        assert_eq!(Bv::new(8, 0x80).sar(100), Bv::new(8, 0xFF));
    }

    #[test]
    fn dynamic_shifts() {
        assert_eq!(Bv::new(8, 1).shl_dyn(Bv::new(3, 7)), Bv::new(8, 0x80));
        assert_eq!(Bv::new(8, 0x80).shr_dyn(Bv::new(3, 7)), Bv::new(8, 1));
        assert_eq!(Bv::new(8, 0x80).sar_dyn(Bv::new(8, 200)), Bv::new(8, 0xFF));
    }

    #[test]
    fn slice_and_concat() {
        let v = Bv::new(16, 0xABCD);
        assert_eq!(v.slice(15, 8), Bv::new(8, 0xAB));
        assert_eq!(v.slice(7, 0), Bv::new(8, 0xCD));
        assert_eq!(v.slice(3, 3).width(), 1);
        assert_eq!(Bv::new(8, 0xAB).concat(Bv::new(8, 0xCD)), Bv::new(16, 0xABCD));
    }

    #[test]
    fn extension() {
        assert_eq!(Bv::new(4, 0b1010).zext(8), Bv::new(8, 0b1010));
        assert_eq!(Bv::new(4, 0b1010).sext(8), Bv::new(8, 0xFA));
        assert_eq!(Bv::new(4, 0b0101).sext(8), Bv::new(8, 0b0101));
    }

    #[test]
    fn reductions() {
        assert!(Bv::new(8, 1).reduce_or().is_true());
        assert!(!Bv::zero(8).reduce_or().is_true());
        assert!(Bv::ones(8).reduce_and().is_true());
        assert!(!Bv::new(8, 0xFE).reduce_and().is_true());
        assert!(Bv::new(8, 0b0111).reduce_xor().is_true());
        assert!(!Bv::new(8, 0b0011).reduce_xor().is_true());
    }

    #[test]
    fn bit_access() {
        let v = Bv::new(8, 0b1010_0001);
        assert!(v.get_bit(0));
        assert!(!v.get_bit(1));
        assert!(v.get_bit(7));
        assert_eq!(v.with_bit(1, true), Bv::new(8, 0b1010_0011));
        assert_eq!(v.with_bit(0, false), Bv::new(8, 0b1010_0000));
    }

    #[test]
    fn formatting() {
        let v = Bv::new(8, 0xAB);
        assert_eq!(format!("{v}"), "8'd171");
        assert_eq!(format!("{v:x}"), "8'hab");
        assert_eq!(format!("{v:b}"), "8'b10101011");
    }
}
