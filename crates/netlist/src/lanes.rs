//! Lane-packed (bit-sliced) value transposition, width-generic over the
//! SIMD block size.
//!
//! The bit-parallel simulation backend (`ssc-sim`'s `BatchSim`) evaluates
//! many independent stimuli per netlist walk by storing one *bit position*
//! of all lanes per machine word. The word is a [`Block<W>`] of `W` `u64`s
//! (64·W lanes): a `w`-bit signal becomes `w` blocks, and block `i` holds
//! bit `i` of every lane. `W = 1` is the classic 64-lane `u64` layout;
//! `W = 4` is a 256-lane block whose bitwise kernels autovectorize to
//! AVX2/SVE registers.
//!
//! Converting between the bit-sliced layout and per-lane scalars is a
//! bit-matrix transpose. Because lane scalars are at most 64 bits wide,
//! the `W`-wide transpose decomposes into `W` independent 64×64 transposes
//! ([`transpose64`], the recursive block-swap algorithm — 6·64 word
//! operations instead of the naive 64·64 single-bit moves): lane group `k`
//! (lanes `64k..64k+64`) transposes on its own and lands in word `k` of
//! every block.
//!
//! # Layout
//!
//! ```text
//! per-lane:    vals[k][l]               = value of lane 64k + l   (l < 64)
//! bit-sliced:  bits[i].word(k) >> l & 1 = bit i of lane 64k + l   (i < w)
//! ```
//!
//! # Example
//!
//! ```
//! use ssc_netlist::lanes;
//!
//! let mut vals = [0u64; lanes::LANES];
//! vals[3] = 0b101;
//! let bits = lanes::pack(&vals);
//! assert_eq!(bits[0] >> 3 & 1, 1); // bit 0 of lane 3
//! assert_eq!(bits[1] >> 3 & 1, 0);
//! assert_eq!(bits[2] >> 3 & 1, 1);
//! assert_eq!(lanes::unpack(&bits[..3]), vals);
//! ```
//!
//! The width-generic entry points ([`pack_block`], [`unpack_block`],
//! [`lane_of`], [`set_lane_of`], [`broadcast_block`]) are the same
//! operations over `[Block<W>]`; the `u64` functions above are the
//! `W = 1` special case kept for the 64-lane call sites.

use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// Number of simulation lanes packed per `u64` word.
pub const LANES: usize = 64;

/// Number of lanes carried by a `W`-word block.
#[must_use]
pub const fn block_lanes<const W: usize>() -> usize {
    LANES * W
}

/// A `W`-word SIMD lane block: one bit position of `64·W` lanes.
///
/// Lane `l` lives in word `l / 64`, bit `l % 64`, so `Block<1>` is
/// layout-identical to the plain `u64` word of the 64-lane layout. All
/// bitwise operators act word-wise; with `W = 4` the compiler vectorizes
/// them to 256-bit registers on AVX2-class targets.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct Block<const W: usize>(pub [u64; W]);

impl<const W: usize> Block<W> {
    /// All lanes clear.
    pub const ZERO: Self = Block([0; W]);
    /// All lanes set.
    pub const ONES: Self = Block([u64::MAX; W]);
    /// Number of lanes in this block width.
    pub const LANES: usize = LANES * W;

    /// All lanes set to `bit`.
    #[inline]
    #[must_use]
    pub fn splat(bit: bool) -> Self {
        if bit {
            Self::ONES
        } else {
            Self::ZERO
        }
    }

    /// `true` if no lane is set.
    #[inline]
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// The `k`-th `u64` word (lanes `64k..64k+64`).
    #[inline]
    #[must_use]
    pub fn word(&self, k: usize) -> u64 {
        self.0[k]
    }

    /// The lane-`l` bit.
    ///
    /// # Panics
    ///
    /// Panics if `l >= Self::LANES`.
    #[inline]
    #[must_use]
    pub fn bit(&self, l: usize) -> bool {
        assert!(l < Self::LANES, "lane {l} out of range");
        self.0[l / LANES] >> (l % LANES) & 1 == 1
    }

    /// Sets or clears the lane-`l` bit.
    ///
    /// # Panics
    ///
    /// Panics if `l >= Self::LANES`.
    #[inline]
    pub fn set_bit(&mut self, l: usize, v: bool) {
        assert!(l < Self::LANES, "lane {l} out of range");
        let sel = 1u64 << (l % LANES);
        let w = &mut self.0[l / LANES];
        *w = (*w & !sel) | if v { sel } else { 0 };
    }

    /// Number of set lanes.
    #[inline]
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// The mask with the first `n` lanes set.
    ///
    /// # Panics
    ///
    /// Panics if `n > Self::LANES`.
    #[must_use]
    pub fn low_mask(n: usize) -> Self {
        assert!(n <= Self::LANES, "{n} lanes out of range");
        let mut out = Self::ZERO;
        for (k, w) in out.0.iter_mut().enumerate() {
            let lo = k * LANES;
            *w = match n.saturating_sub(lo) {
                0 => 0,
                m if m >= LANES => u64::MAX,
                m => (1u64 << m) - 1,
            };
        }
        out
    }
}

impl From<u64> for Block<1> {
    fn from(w: u64) -> Self {
        Block([w])
    }
}

impl Block<1> {
    /// The single word of a 64-lane block (the classic `u64` lane mask).
    #[inline]
    #[must_use]
    pub fn to_u64(self) -> u64 {
        self.0[0]
    }
}

impl<const W: usize> std::fmt::Debug for Block<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Block[")?;
        for (k, w) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w:#018x}")?;
        }
        write!(f, "]")
    }
}

impl<const W: usize> Default for Block<W> {
    fn default() -> Self {
        Self::ZERO
    }
}

macro_rules! block_binop {
    ($trait:ident, $fn:ident, $assign_trait:ident, $assign_fn:ident, $assign_op:tt) => {
        impl<const W: usize> $trait for Block<W> {
            type Output = Block<W>;
            #[inline]
            fn $fn(mut self, rhs: Block<W>) -> Block<W> {
                for k in 0..W {
                    self.0[k] $assign_op rhs.0[k];
                }
                self
            }
        }
        impl<const W: usize> $assign_trait for Block<W> {
            #[inline]
            fn $assign_fn(&mut self, rhs: Block<W>) {
                for k in 0..W {
                    self.0[k] $assign_op rhs.0[k];
                }
            }
        }
    };
}

block_binop!(BitAnd, bitand, BitAndAssign, bitand_assign, &=);
block_binop!(BitOr, bitor, BitOrAssign, bitor_assign, |=);
block_binop!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^=);

impl<const W: usize> Not for Block<W> {
    type Output = Block<W>;
    #[inline]
    fn not(mut self) -> Block<W> {
        for k in 0..W {
            self.0[k] = !self.0[k];
        }
        self
    }
}

/// Packs per-lane scalars (grouped 64 lanes per row) into the bit-sliced
/// block layout: `W` independent 64×64 transposes, row `k` landing in word
/// `k` of every output block.
///
/// The result is always [`LANES`] blocks; a consumer of a `w`-bit signal
/// uses the first `w`.
#[must_use]
pub fn pack_block<const W: usize>(vals: &[[u64; LANES]; W]) -> [Block<W>; LANES] {
    let mut out = [Block::ZERO; LANES];
    for (k, row) in vals.iter().enumerate() {
        let mut t = *row;
        transpose64(&mut t);
        for (o, &w) in out.iter_mut().zip(t.iter()) {
            o.0[k] = w;
        }
    }
    out
}

/// Unpacks bit-sliced blocks back into per-lane scalars (grouped 64 lanes
/// per row). `bits.len()` is the signal width, at most [`LANES`]; missing
/// high bits read as zero.
///
/// # Panics
///
/// Panics if `bits.len()` exceeds [`LANES`].
#[must_use]
pub fn unpack_block<const W: usize>(bits: &[Block<W>]) -> [[u64; LANES]; W] {
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    let mut out = [[0u64; LANES]; W];
    for (k, row) in out.iter_mut().enumerate() {
        for (i, b) in bits.iter().enumerate() {
            row[i] = b.0[k];
        }
        transpose64(row);
    }
    out
}

/// Extracts lane `l` of a bit-sliced block value without a full transpose.
///
/// # Panics
///
/// Panics if `l >= 64·W` or `bits.len() > LANES`.
#[must_use]
pub fn lane_of<const W: usize>(bits: &[Block<W>], l: usize) -> u64 {
    assert!(l < block_lanes::<W>(), "lane {l} out of range");
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    let (k, sh) = (l / LANES, l % LANES);
    let mut v = 0u64;
    for (i, b) in bits.iter().enumerate() {
        v |= ((b.0[k] >> sh) & 1) << i;
    }
    v
}

/// Overwrites lane `l` of a bit-sliced block value with the scalar `value`
/// (truncated to `bits.len()` bits).
///
/// # Panics
///
/// Panics if `l >= 64·W` or `bits.len() > LANES`.
pub fn set_lane_of<const W: usize>(bits: &mut [Block<W>], l: usize, value: u64) {
    assert!(l < block_lanes::<W>(), "lane {l} out of range");
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    let (k, sh) = (l / LANES, l % LANES);
    let sel = 1u64 << sh;
    for (i, b) in bits.iter_mut().enumerate() {
        b.0[k] = (b.0[k] & !sel) | (((value >> i) & 1) << sh);
    }
}

/// Broadcasts one scalar into every lane of a bit-sliced block value
/// (truncated to `bits.len()` bits).
///
/// # Panics
///
/// Panics if `bits.len() > LANES`.
pub fn broadcast_block<const W: usize>(bits: &mut [Block<W>], value: u64) {
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    for (i, b) in bits.iter_mut().enumerate() {
        *b = Block::splat((value >> i) & 1 == 1);
    }
}

/// In-place 64×64 bit-matrix transpose.
///
/// Interpreting `a` as the matrix `M[r][c] = (a[r] >> c) & 1`, the call
/// replaces it with its transpose: afterwards `(a[r] >> c) & 1` is the old
/// `(a[c] >> r) & 1`. The transpose is an involution — applying it twice
/// restores the input.
pub fn transpose64(a: &mut [u64; LANES]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < LANES {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Packs per-lane scalar values into the bit-sliced layout.
///
/// The result is always [`LANES`] words; a consumer of a `w`-bit signal
/// uses the first `w` words (the rest describe bits the lanes do not have —
/// they are meaningful only if the scalars genuinely carry them).
pub fn pack(vals: &[u64; LANES]) -> [u64; LANES] {
    let mut out = *vals;
    transpose64(&mut out);
    out
}

/// Unpacks bit-sliced words back into per-lane scalars.
///
/// `bits` holds one word per bit position (`bits.len()` = the signal
/// width, at most [`LANES`]); missing high bits read as zero.
///
/// # Panics
///
/// Panics if `bits.len()` exceeds [`LANES`].
pub fn unpack(bits: &[u64]) -> [u64; LANES] {
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    let mut out = [0u64; LANES];
    out[..bits.len()].copy_from_slice(bits);
    transpose64(&mut out);
    out
}

/// Extracts lane `l` of a bit-sliced value without a full transpose.
///
/// # Panics
///
/// Panics if `l >= LANES` or `bits.len() > LANES`.
pub fn lane(bits: &[u64], l: usize) -> u64 {
    assert!(l < LANES, "lane {l} out of range");
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    let mut v = 0u64;
    for (i, &word) in bits.iter().enumerate() {
        v |= ((word >> l) & 1) << i;
    }
    v
}

/// Overwrites lane `l` of a bit-sliced value with the scalar `value`
/// (truncated to `bits.len()` bits).
///
/// # Panics
///
/// Panics if `l >= LANES` or `bits.len() > LANES`.
pub fn set_lane(bits: &mut [u64], l: usize, value: u64) {
    assert!(l < LANES, "lane {l} out of range");
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    let sel = 1u64 << l;
    for (i, word) in bits.iter_mut().enumerate() {
        *word = (*word & !sel) | (((value >> i) & 1) << l);
    }
}

/// Broadcasts one scalar into every lane of a bit-sliced value
/// (truncated to `bits.len()` bits).
///
/// # Panics
///
/// Panics if `bits.len() > LANES`.
pub fn broadcast(bits: &mut [u64], value: u64) {
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    for (i, word) in bits.iter_mut().enumerate() {
        *word = if (value >> i) & 1 == 1 { u64::MAX } else { 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The specification transpose: one bit at a time.
    fn transpose_naive(a: &[u64; LANES]) -> [u64; LANES] {
        let mut out = [0u64; LANES];
        for (r, row) in a.iter().enumerate() {
            for (c, slot) in out.iter_mut().enumerate() {
                *slot |= ((row >> c) & 1) << r;
            }
        }
        out
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn fast_transpose_matches_naive() {
        let mut state = 0xDEAD_BEEFu64;
        for _ in 0..32 {
            let mut a = [0u64; LANES];
            for w in &mut a {
                *w = splitmix(&mut state);
            }
            let mut fast = a;
            transpose64(&mut fast);
            assert_eq!(fast, transpose_naive(&a));
        }
    }

    #[test]
    fn transpose_is_involution() {
        let mut state = 7u64;
        let mut a = [0u64; LANES];
        for w in &mut a {
            *w = splitmix(&mut state);
        }
        let orig = a;
        transpose64(&mut a);
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn pack_unpack_roundtrip_narrow() {
        let mut state = 42u64;
        let width = 13usize;
        let mask = (1u64 << width) - 1;
        let mut vals = [0u64; LANES];
        for v in &mut vals {
            *v = splitmix(&mut state) & mask;
        }
        let bits = pack(&vals);
        assert_eq!(unpack(&bits[..width]), vals);
        for (l, &v) in vals.iter().enumerate() {
            assert_eq!(lane(&bits[..width], l), v, "lane {l}");
        }
    }

    #[test]
    fn set_lane_touches_only_its_lane() {
        let mut vals = [0u64; LANES];
        for (l, v) in vals.iter_mut().enumerate() {
            *v = l as u64;
        }
        let mut bits = pack(&vals);
        set_lane(&mut bits[..6], 5, 0b10_1010);
        let back = unpack(&bits[..6]);
        assert_eq!(back[5], 0b10_1010);
        for (l, &v) in back.iter().enumerate().filter(|&(l, _)| l != 5) {
            assert_eq!(v, (l as u64) & 0x3F, "lane {l} must be untouched");
        }
    }

    #[test]
    fn broadcast_fills_all_lanes() {
        let mut bits = [0u64; 8];
        broadcast(&mut bits, 0xA5);
        let back = unpack(&bits);
        assert!(back.iter().all(|&v| v == 0xA5));
    }

    #[test]
    fn block1_layout_matches_the_u64_layout() {
        let mut state = 0xFACEu64;
        let width = 11usize;
        let mask = (1u64 << width) - 1;
        let mut vals = [0u64; LANES];
        for v in &mut vals {
            *v = splitmix(&mut state) & mask;
        }
        let flat = pack(&vals);
        let blocks = pack_block::<1>(&[vals]);
        for (i, &word) in flat.iter().enumerate() {
            assert_eq!(blocks[i].word(0), word, "bit {i}");
        }
        assert_eq!(unpack_block(&blocks[..width]), [vals]);
        for (l, &v) in vals.iter().enumerate() {
            assert_eq!(lane_of(&blocks[..width], l), v, "lane {l}");
        }
    }

    #[test]
    fn wide_block_roundtrip_and_lane_access() {
        const W: usize = 4;
        let mut state = 99u64;
        let width = 23usize;
        let mask = (1u64 << width) - 1;
        let mut vals = [[0u64; LANES]; W];
        for row in &mut vals {
            for v in row.iter_mut() {
                *v = splitmix(&mut state) & mask;
            }
        }
        let blocks = pack_block(&vals);
        assert_eq!(unpack_block(&blocks[..width]), vals);
        for l in 0..block_lanes::<W>() {
            assert_eq!(lane_of(&blocks[..width], l), vals[l / LANES][l % LANES], "lane {l}");
        }
        // set_lane_of touches exactly one lane.
        let mut edited = blocks;
        set_lane_of(&mut edited[..width], 131, 0x5_A5A5);
        let back = unpack_block(&edited[..width]);
        for l in 0..block_lanes::<W>() {
            let expect = if l == 131 { 0x5_A5A5 & mask } else { vals[l / LANES][l % LANES] };
            assert_eq!(back[l / LANES][l % LANES], expect, "lane {l}");
        }
    }

    #[test]
    fn wide_broadcast_and_masks() {
        const W: usize = 4;
        let mut bits = [Block::<W>::ZERO; 9];
        broadcast_block(&mut bits, 0x1A5);
        for l in [0usize, 63, 64, 200, 255] {
            assert_eq!(lane_of(&bits, l), 0x1A5, "lane {l}");
        }
        assert_eq!(Block::<W>::low_mask(0), Block::ZERO);
        assert_eq!(Block::<W>::low_mask(256), Block::ONES);
        let m = Block::<W>::low_mask(130);
        assert_eq!(m.count_ones(), 130);
        assert!(m.bit(129) && !m.bit(130));
        // Bit ops behave lane-wise.
        let mut x = Block::<W>::low_mask(100);
        x |= Block::low_mask(130);
        assert_eq!(x, Block::low_mask(130));
        assert_eq!(x & !Block::<W>::low_mask(100), {
            let mut hi = Block::low_mask(130);
            for l in 0..100 {
                hi.set_bit(l, false);
            }
            hi
        });
        assert_eq!((x ^ x).count_ones(), 0);
    }
}
