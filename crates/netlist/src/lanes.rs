//! Lane-packed (bit-sliced) value transposition.
//!
//! The bit-parallel simulation backend (`ssc-sim`'s `BatchSim`) evaluates
//! [`LANES`] independent stimuli per netlist walk by storing one *bit
//! position* of all lanes per `u64` word: a `w`-bit signal becomes `w`
//! words, and word `i` holds bit `i` of every lane (`bit l` of word `i` is
//! bit `i` of lane `l`'s value).
//!
//! Converting between that bit-sliced layout and per-lane scalars is a
//! 64×64 bit-matrix transpose. This module provides the transpose (the
//! recursive block-swap algorithm, 6·64 word operations instead of the
//! naive 64·64 single-bit moves) plus the pack/unpack entry points the
//! simulator's memory gather/scatter paths are built on.
//!
//! # Layout
//!
//! ```text
//! per-lane:    vals[l]            = the w-bit value of lane l (l < 64)
//! bit-sliced:  bits[i] >> l & 1   = bit i of lane l            (i < w)
//! ```
//!
//! # Example
//!
//! ```
//! use ssc_netlist::lanes;
//!
//! let mut vals = [0u64; lanes::LANES];
//! vals[3] = 0b101;
//! let bits = lanes::pack(&vals);
//! assert_eq!(bits[0] >> 3 & 1, 1); // bit 0 of lane 3
//! assert_eq!(bits[1] >> 3 & 1, 0);
//! assert_eq!(bits[2] >> 3 & 1, 1);
//! assert_eq!(lanes::unpack(&bits[..3]), vals);
//! ```

/// Number of simulation lanes packed per word (the width of `u64`).
pub const LANES: usize = 64;

/// In-place 64×64 bit-matrix transpose.
///
/// Interpreting `a` as the matrix `M[r][c] = (a[r] >> c) & 1`, the call
/// replaces it with its transpose: afterwards `(a[r] >> c) & 1` is the old
/// `(a[c] >> r) & 1`. The transpose is an involution — applying it twice
/// restores the input.
pub fn transpose64(a: &mut [u64; LANES]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < LANES {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Packs per-lane scalar values into the bit-sliced layout.
///
/// The result is always [`LANES`] words; a consumer of a `w`-bit signal
/// uses the first `w` words (the rest describe bits the lanes do not have —
/// they are meaningful only if the scalars genuinely carry them).
pub fn pack(vals: &[u64; LANES]) -> [u64; LANES] {
    let mut out = *vals;
    transpose64(&mut out);
    out
}

/// Unpacks bit-sliced words back into per-lane scalars.
///
/// `bits` holds one word per bit position (`bits.len()` = the signal
/// width, at most [`LANES`]); missing high bits read as zero.
///
/// # Panics
///
/// Panics if `bits.len()` exceeds [`LANES`].
pub fn unpack(bits: &[u64]) -> [u64; LANES] {
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    let mut out = [0u64; LANES];
    out[..bits.len()].copy_from_slice(bits);
    transpose64(&mut out);
    out
}

/// Extracts lane `l` of a bit-sliced value without a full transpose.
///
/// # Panics
///
/// Panics if `l >= LANES` or `bits.len() > LANES`.
pub fn lane(bits: &[u64], l: usize) -> u64 {
    assert!(l < LANES, "lane {l} out of range");
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    let mut v = 0u64;
    for (i, &word) in bits.iter().enumerate() {
        v |= ((word >> l) & 1) << i;
    }
    v
}

/// Overwrites lane `l` of a bit-sliced value with the scalar `value`
/// (truncated to `bits.len()` bits).
///
/// # Panics
///
/// Panics if `l >= LANES` or `bits.len() > LANES`.
pub fn set_lane(bits: &mut [u64], l: usize, value: u64) {
    assert!(l < LANES, "lane {l} out of range");
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    let sel = 1u64 << l;
    for (i, word) in bits.iter_mut().enumerate() {
        *word = (*word & !sel) | (((value >> i) & 1) << l);
    }
}

/// Broadcasts one scalar into every lane of a bit-sliced value
/// (truncated to `bits.len()` bits).
///
/// # Panics
///
/// Panics if `bits.len() > LANES`.
pub fn broadcast(bits: &mut [u64], value: u64) {
    assert!(bits.len() <= LANES, "bit-sliced value wider than {LANES}");
    for (i, word) in bits.iter_mut().enumerate() {
        *word = if (value >> i) & 1 == 1 { u64::MAX } else { 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The specification transpose: one bit at a time.
    fn transpose_naive(a: &[u64; LANES]) -> [u64; LANES] {
        let mut out = [0u64; LANES];
        for (r, row) in a.iter().enumerate() {
            for (c, slot) in out.iter_mut().enumerate() {
                *slot |= ((row >> c) & 1) << r;
            }
        }
        out
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn fast_transpose_matches_naive() {
        let mut state = 0xDEAD_BEEFu64;
        for _ in 0..32 {
            let mut a = [0u64; LANES];
            for w in &mut a {
                *w = splitmix(&mut state);
            }
            let mut fast = a;
            transpose64(&mut fast);
            assert_eq!(fast, transpose_naive(&a));
        }
    }

    #[test]
    fn transpose_is_involution() {
        let mut state = 7u64;
        let mut a = [0u64; LANES];
        for w in &mut a {
            *w = splitmix(&mut state);
        }
        let orig = a;
        transpose64(&mut a);
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn pack_unpack_roundtrip_narrow() {
        let mut state = 42u64;
        let width = 13usize;
        let mask = (1u64 << width) - 1;
        let mut vals = [0u64; LANES];
        for v in &mut vals {
            *v = splitmix(&mut state) & mask;
        }
        let bits = pack(&vals);
        assert_eq!(unpack(&bits[..width]), vals);
        for (l, &v) in vals.iter().enumerate() {
            assert_eq!(lane(&bits[..width], l), v, "lane {l}");
        }
    }

    #[test]
    fn set_lane_touches_only_its_lane() {
        let mut vals = [0u64; LANES];
        for (l, v) in vals.iter_mut().enumerate() {
            *v = l as u64;
        }
        let mut bits = pack(&vals);
        set_lane(&mut bits[..6], 5, 0b10_1010);
        let back = unpack(&bits[..6]);
        assert_eq!(back[5], 0b10_1010);
        for (l, &v) in back.iter().enumerate().filter(|&(l, _)| l != 5) {
            assert_eq!(v, (l as u64) & 0x3F, "lane {l} must be untouched");
        }
    }

    #[test]
    fn broadcast_fills_all_lanes() {
        let mut bits = [0u64; 8];
        broadcast(&mut bits, 0xA5);
        let back = unpack(&bits);
        assert!(back.iter().all(|&v| v == 0xA5));
    }
}
