//! Convenience operator constructors on [`Netlist`].
//!
//! These methods perform width checking and light peephole constant folding
//! (constant operands are evaluated eagerly, identities like `x & 1...1 = x`
//! are simplified) so that generated designs stay small without a separate
//! optimization pass.

use crate::bv::Bv;
use crate::ir::{Netlist, Node, Op, SignalId, Wire};

impl Netlist {
    fn const_of(&self, id: SignalId) -> Option<Bv> {
        match self.node(id) {
            Node::Const(bv) => Some(*bv),
            _ => None,
        }
    }

    fn fold2(&self, a: Wire, b: Wire) -> Option<(Bv, Bv)> {
        Some((self.const_of(a.id)?, self.const_of(b.id)?))
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: Wire) -> Wire {
        if let Some(v) = self.const_of(a.id) {
            return self.constant(v.not());
        }
        self.op_node(Op::Not, vec![a.id()], a.width())
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(&mut self, a: Wire, b: Wire) -> Wire {
        assert_eq!(a.width(), b.width(), "and width mismatch");
        if let Some((x, y)) = self.fold2(a, b) {
            return self.constant(x.and(y));
        }
        for (c, other) in [(a, b), (b, a)] {
            if let Some(v) = self.const_of(c.id) {
                if v.is_zero() {
                    return self.constant(Bv::zero(a.width()));
                }
                if v == Bv::ones(a.width()) {
                    return other;
                }
            }
        }
        if a.id() == b.id() {
            return a;
        }
        self.op_node(Op::And, vec![a.id(), b.id()], a.width())
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(&mut self, a: Wire, b: Wire) -> Wire {
        assert_eq!(a.width(), b.width(), "or width mismatch");
        if let Some((x, y)) = self.fold2(a, b) {
            return self.constant(x.or(y));
        }
        for (c, other) in [(a, b), (b, a)] {
            if let Some(v) = self.const_of(c.id) {
                if v.is_zero() {
                    return other;
                }
                if v == Bv::ones(a.width()) {
                    return self.constant(Bv::ones(a.width()));
                }
            }
        }
        if a.id() == b.id() {
            return a;
        }
        self.op_node(Op::Or, vec![a.id(), b.id()], a.width())
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(&mut self, a: Wire, b: Wire) -> Wire {
        assert_eq!(a.width(), b.width(), "xor width mismatch");
        if let Some((x, y)) = self.fold2(a, b) {
            return self.constant(x.xor(y));
        }
        if a.id() == b.id() {
            return self.constant(Bv::zero(a.width()));
        }
        self.op_node(Op::Xor, vec![a.id(), b.id()], a.width())
    }

    /// Wrapping addition. Panics on width mismatch.
    pub fn add(&mut self, a: Wire, b: Wire) -> Wire {
        assert_eq!(a.width(), b.width(), "add width mismatch");
        if let Some((x, y)) = self.fold2(a, b) {
            return self.constant(x.add(y));
        }
        for (c, other) in [(a, b), (b, a)] {
            if self.const_of(c.id).is_some_and(|v| v.is_zero()) {
                return other;
            }
        }
        self.op_node(Op::Add, vec![a.id(), b.id()], a.width())
    }

    /// Wrapping subtraction. Panics on width mismatch.
    pub fn sub(&mut self, a: Wire, b: Wire) -> Wire {
        assert_eq!(a.width(), b.width(), "sub width mismatch");
        if let Some((x, y)) = self.fold2(a, b) {
            return self.constant(x.sub(y));
        }
        if self.const_of(b.id).is_some_and(|v| v.is_zero()) {
            return a;
        }
        self.op_node(Op::Sub, vec![a.id(), b.id()], a.width())
    }

    /// Wrapping multiplication. Panics on width mismatch.
    pub fn mul(&mut self, a: Wire, b: Wire) -> Wire {
        assert_eq!(a.width(), b.width(), "mul width mismatch");
        if let Some((x, y)) = self.fold2(a, b) {
            return self.constant(x.mul(y));
        }
        self.op_node(Op::Mul, vec![a.id(), b.id()], a.width())
    }

    /// Equality (1-bit result). Panics on width mismatch.
    pub fn eq(&mut self, a: Wire, b: Wire) -> Wire {
        assert_eq!(a.width(), b.width(), "eq width mismatch");
        if let Some((x, y)) = self.fold2(a, b) {
            return self.constant(x.eq_bit(y));
        }
        if a.id() == b.id() {
            return self.constant(Bv::bit(true));
        }
        self.op_node(Op::Eq, vec![a.id(), b.id()], 1)
    }

    /// Inequality (1-bit result). Panics on width mismatch.
    pub fn ne(&mut self, a: Wire, b: Wire) -> Wire {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Equality against a constant.
    pub fn eq_const(&mut self, a: Wire, value: u64) -> Wire {
        let c = self.lit(a.width(), value);
        self.eq(a, c)
    }

    /// Unsigned less-than (1-bit result). Panics on width mismatch.
    pub fn ult(&mut self, a: Wire, b: Wire) -> Wire {
        assert_eq!(a.width(), b.width(), "ult width mismatch");
        if let Some((x, y)) = self.fold2(a, b) {
            return self.constant(x.ult(y));
        }
        self.op_node(Op::Ult, vec![a.id(), b.id()], 1)
    }

    /// Unsigned less-or-equal (1-bit result).
    pub fn ule(&mut self, a: Wire, b: Wire) -> Wire {
        let gt = self.ult(b, a);
        self.not(gt)
    }

    /// Signed less-than (1-bit result). Panics on width mismatch.
    pub fn slt(&mut self, a: Wire, b: Wire) -> Wire {
        assert_eq!(a.width(), b.width(), "slt width mismatch");
        if let Some((x, y)) = self.fold2(a, b) {
            return self.constant(x.slt(y));
        }
        self.op_node(Op::Slt, vec![a.id(), b.id()], 1)
    }

    /// Logical shift left by a constant amount.
    pub fn shl_c(&mut self, a: Wire, amount: u32) -> Wire {
        if amount == 0 {
            return a;
        }
        if let Some(v) = self.const_of(a.id) {
            return self.constant(v.shl(amount));
        }
        self.op_node(Op::ShlC(amount), vec![a.id()], a.width())
    }

    /// Logical shift right by a constant amount.
    pub fn shr_c(&mut self, a: Wire, amount: u32) -> Wire {
        if amount == 0 {
            return a;
        }
        if let Some(v) = self.const_of(a.id) {
            return self.constant(v.shr(amount));
        }
        self.op_node(Op::ShrC(amount), vec![a.id()], a.width())
    }

    /// Arithmetic shift right by a constant amount.
    pub fn sar_c(&mut self, a: Wire, amount: u32) -> Wire {
        if amount == 0 {
            return a;
        }
        if let Some(v) = self.const_of(a.id) {
            return self.constant(v.sar(amount));
        }
        self.op_node(Op::SarC(amount), vec![a.id()], a.width())
    }

    /// Logical shift left by a dynamic amount.
    pub fn shl(&mut self, a: Wire, amount: Wire) -> Wire {
        if let Some((x, y)) = self.fold2(a, amount) {
            return self.constant(x.shl_dyn(y));
        }
        self.op_node(Op::Shl, vec![a.id(), amount.id()], a.width())
    }

    /// Logical shift right by a dynamic amount.
    pub fn shr(&mut self, a: Wire, amount: Wire) -> Wire {
        if let Some((x, y)) = self.fold2(a, amount) {
            return self.constant(x.shr_dyn(y));
        }
        self.op_node(Op::Shr, vec![a.id(), amount.id()], a.width())
    }

    /// Arithmetic shift right by a dynamic amount.
    pub fn sar(&mut self, a: Wire, amount: Wire) -> Wire {
        if let Some((x, y)) = self.fold2(a, amount) {
            return self.constant(x.sar_dyn(y));
        }
        self.op_node(Op::Sar, vec![a.id(), amount.id()], a.width())
    }

    /// Bit slice `hi..=lo`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= a.width()`.
    pub fn slice(&mut self, a: Wire, hi: u32, lo: u32) -> Wire {
        assert!(hi >= lo && hi < a.width(), "invalid slice [{hi}:{lo}] of width {}", a.width());
        if hi == a.width() - 1 && lo == 0 {
            return a;
        }
        if let Some(v) = self.const_of(a.id) {
            return self.constant(v.slice(hi, lo));
        }
        self.op_node(Op::Slice { hi, lo }, vec![a.id()], hi - lo + 1)
    }

    /// Extracts a single bit as a 1-bit wire.
    pub fn bit(&mut self, a: Wire, i: u32) -> Wire {
        self.slice(a, i, i)
    }

    /// Concatenation; `hi` becomes the high bits.
    pub fn concat(&mut self, hi: Wire, lo: Wire) -> Wire {
        if let Some((x, y)) = self.fold2(hi, lo) {
            return self.constant(x.concat(y));
        }
        self.op_node(Op::Concat, vec![hi.id(), lo.id()], hi.width() + lo.width())
    }

    /// Zero-extends `a` to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width < a.width()`.
    pub fn zext(&mut self, a: Wire, width: u32) -> Wire {
        assert!(width >= a.width(), "zext narrows");
        if width == a.width() {
            return a;
        }
        if let Some(v) = self.const_of(a.id) {
            return self.constant(v.zext(width));
        }
        self.op_node(Op::Zext, vec![a.id()], width)
    }

    /// Sign-extends `a` to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width < a.width()`.
    pub fn sext(&mut self, a: Wire, width: u32) -> Wire {
        assert!(width >= a.width(), "sext narrows");
        if width == a.width() {
            return a;
        }
        if let Some(v) = self.const_of(a.id) {
            return self.constant(v.sext(width));
        }
        self.op_node(Op::Sext, vec![a.id()], width)
    }

    /// 2:1 multiplexer `sel ? then_w : else_w`.
    ///
    /// # Panics
    ///
    /// Panics if `sel` is not 1 bit or branch widths differ.
    pub fn mux(&mut self, sel: Wire, then_w: Wire, else_w: Wire) -> Wire {
        assert_eq!(sel.width(), 1, "mux select must be 1 bit");
        assert_eq!(then_w.width(), else_w.width(), "mux branch width mismatch");
        if let Some(v) = self.const_of(sel.id) {
            return if v.is_true() { then_w } else { else_w };
        }
        if then_w.id() == else_w.id() {
            return then_w;
        }
        self.op_node(Op::Mux, vec![sel.id(), then_w.id(), else_w.id()], then_w.width())
    }

    /// OR-reduction (1-bit: any bit set).
    pub fn reduce_or(&mut self, a: Wire) -> Wire {
        if a.width() == 1 {
            return a;
        }
        if let Some(v) = self.const_of(a.id) {
            return self.constant(v.reduce_or());
        }
        self.op_node(Op::ReduceOr, vec![a.id()], 1)
    }

    /// AND-reduction (1-bit: all bits set).
    pub fn reduce_and(&mut self, a: Wire) -> Wire {
        if a.width() == 1 {
            return a;
        }
        if let Some(v) = self.const_of(a.id) {
            return self.constant(v.reduce_and());
        }
        self.op_node(Op::ReduceAnd, vec![a.id()], 1)
    }

    /// XOR-reduction (1-bit parity).
    pub fn reduce_xor(&mut self, a: Wire) -> Wire {
        if a.width() == 1 {
            return a;
        }
        if let Some(v) = self.const_of(a.id) {
            return self.constant(v.reduce_xor());
        }
        self.op_node(Op::ReduceXor, vec![a.id()], 1)
    }

    /// AND of an iterator of 1-bit wires; `1` for an empty iterator.
    pub fn and_all(&mut self, wires: impl IntoIterator<Item = Wire>) -> Wire {
        let mut acc: Option<Wire> = None;
        for w in wires {
            assert_eq!(w.width(), 1, "and_all expects 1-bit wires");
            acc = Some(match acc {
                None => w,
                Some(a) => self.and(a, w),
            });
        }
        acc.unwrap_or_else(|| self.lit(1, 1))
    }

    /// OR of an iterator of 1-bit wires; `0` for an empty iterator.
    pub fn or_all(&mut self, wires: impl IntoIterator<Item = Wire>) -> Wire {
        let mut acc: Option<Wire> = None;
        for w in wires {
            assert_eq!(w.width(), 1, "or_all expects 1-bit wires");
            acc = Some(match acc {
                None => w,
                Some(a) => self.or(a, w),
            });
        }
        acc.unwrap_or_else(|| self.lit(1, 0))
    }

    /// Boolean implication `a -> b` for 1-bit wires.
    pub fn implies(&mut self, a: Wire, b: Wire) -> Wire {
        assert_eq!(a.width(), 1, "implies expects 1-bit wires");
        assert_eq!(b.width(), 1, "implies expects 1-bit wires");
        let na = self.not(a);
        self.or(na, b)
    }

    /// `(a & mask) == tag` — the address-decode idiom.
    pub fn masked_eq(&mut self, a: Wire, mask: u64, tag: u64) -> Wire {
        let m = self.lit(a.width(), mask);
        let masked = self.and(a, m);
        self.eq_const(masked, tag)
    }

    /// Increments `a` by a constant.
    pub fn add_const(&mut self, a: Wire, value: u64) -> Wire {
        let c = self.lit(a.width(), value);
        self.add(a, c)
    }

    /// Selects `options[idx]` with a mux tree; out-of-range indices select
    /// the last option.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or widths differ.
    pub fn select(&mut self, idx: Wire, options: &[Wire]) -> Wire {
        assert!(!options.is_empty(), "select needs at least one option");
        let w = options[0].width();
        assert!(options.iter().all(|o| o.width() == w), "select option width mismatch");
        let mut acc = *options.last().expect("nonempty");
        for (i, &opt) in options.iter().enumerate().rev().skip(1) {
            let hit = self.eq_const(idx, i as u64);
            acc = self.mux(hit, opt, acc);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::StateMeta;

    fn nl() -> Netlist {
        Netlist::new("t")
    }

    #[test]
    fn constant_folding() {
        let mut n = nl();
        let a = n.lit(8, 0xF0);
        let b = n.lit(8, 0x0F);
        let c = n.or(a, b);
        assert_eq!(n.const_of(c.id()), Some(Bv::new(8, 0xFF)));
        let d = n.add(a, b);
        assert_eq!(n.const_of(d.id()), Some(Bv::new(8, 0xFF)));
    }

    #[test]
    fn identity_simplification() {
        let mut n = nl();
        let x = n.input("x", 8);
        let zero = n.lit(8, 0);
        let ones = n.lit(8, 0xFF);
        assert_eq!(n.and(x, ones).id(), x.id());
        assert_eq!(n.or(x, zero).id(), x.id());
        assert_eq!(n.add(x, zero).id(), x.id());
        assert_eq!(n.sub(x, zero).id(), x.id());
        let and0 = n.and(x, zero);
        assert_eq!(n.const_of(and0.id()), Some(Bv::zero(8)));
        let xx = n.xor(x, x);
        assert_eq!(n.const_of(xx.id()), Some(Bv::zero(8)));
    }

    #[test]
    fn mux_folds_constant_select() {
        let mut n = nl();
        let a = n.input("a", 4);
        let b = n.input("b", 4);
        let t = n.lit(1, 1);
        let f = n.lit(1, 0);
        assert_eq!(n.mux(t, a, b).id(), a.id());
        assert_eq!(n.mux(f, a, b).id(), b.id());
        let sel = n.input("sel", 1);
        assert_eq!(n.mux(sel, a, a).id(), a.id());
    }

    #[test]
    fn select_builds_priority_tree() {
        let mut n = nl();
        let idx = n.input("idx", 2);
        let opts: Vec<_> = (0..3).map(|i| n.lit(8, i * 10)).collect();
        let sel = n.select(idx, &opts);
        n.mark_output("sel", sel);
        n.check().unwrap();
    }

    #[test]
    fn and_all_or_all_empty() {
        let mut n = nl();
        let t = n.and_all(std::iter::empty());
        let f = n.or_all(std::iter::empty());
        assert_eq!(n.const_of(t.id()), Some(Bv::bit(true)));
        assert_eq!(n.const_of(f.id()), Some(Bv::bit(false)));
    }

    #[test]
    fn slice_full_width_is_identity() {
        let mut n = nl();
        let x = n.input("x", 8);
        assert_eq!(n.slice(x, 7, 0).id(), x.id());
        assert_eq!(n.slice(x, 3, 0).width(), 4);
    }

    #[test]
    fn masked_eq_decodes() {
        let mut n = nl();
        let addr = n.input("addr", 32);
        let hit = n.masked_eq(addr, 0xFFFF_0000, 0x1C00_0000);
        assert_eq!(hit.width(), 1);
        n.mark_output("hit", hit);
        n.check().unwrap();
    }

    #[test]
    fn reductions_on_single_bit_are_identity() {
        let mut n = nl();
        let x = n.input("x", 1);
        assert_eq!(n.reduce_or(x).id(), x.id());
        assert_eq!(n.reduce_and(x).id(), x.id());
    }

    #[test]
    fn reg_meta_preserved() {
        let mut n = nl();
        let r = n.reg("r", 4, None, StateMeta::ip_register());
        let z = n.lit(4, 0);
        n.connect_reg(r, z);
        match n.node(r.id()) {
            crate::ir::Node::Reg(info) => {
                assert_eq!(info.meta.kind, crate::ir::StateKind::IpRegister);
                assert!(info.meta.attacker_accessible);
            }
            _ => unreachable!(),
        }
    }
}
