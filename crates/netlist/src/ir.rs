//! The word-level netlist intermediate representation.
//!
//! A [`Netlist`] is a flat graph of [`Node`]s (inputs, constants, word-level
//! operators, register outputs and memory read ports) plus a table of
//! [`Memory`] arrays with synchronous write ports. There is a single implicit
//! clock domain: on every clock edge each register latches its `next` signal
//! and each memory applies its write ports in declaration order.
//!
//! Hierarchy is represented by hierarchical names (`"soc.xbar.arb.grant"`)
//! produced by the builder's scope stack — the netlist itself is always flat,
//! which keeps simulation, bit-blasting and state enumeration simple.
//!
//! # Examples
//!
//! ```
//! use ssc_netlist::{Netlist, Bv, StateMeta};
//!
//! let mut n = Netlist::new("counter");
//! let en = n.input("en", 1);
//! let count = n.reg("count", 8, Some(Bv::zero(8)), StateMeta::default());
//! let one = n.lit(8, 1);
//! let inc = n.add(count.wire(), one);
//! let next = n.mux(en, inc, count.wire());
//! n.connect_reg(count, next);
//! n.mark_output("count", count.wire());
//! n.check().unwrap();
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::bv::Bv;

/// Index of a signal node in a [`Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a signal id from a raw index obtained via
    /// [`SignalId::index`]. Node ids are dense and 0-based.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        SignalId(i as u32)
    }
}

/// Index of a memory array in a [`Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MemId(pub(crate) u32);

impl MemId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A typed handle to a signal: its id plus its width.
///
/// `Wire` is a cheap copyable value used by all builder methods so that
/// width errors are caught at construction time rather than at elaboration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Wire {
    pub(crate) id: SignalId,
    pub(crate) width: u32,
}

impl Wire {
    /// The signal id.
    #[inline]
    pub fn id(self) -> SignalId {
        self.id
    }

    /// The signal width in bits.
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }
}

/// A handle to a register created by [`Netlist::reg`].
///
/// The register's `next` input must be connected exactly once via
/// [`Netlist::connect_reg`] before the netlist passes [`Netlist::check`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RegHandle {
    pub(crate) id: SignalId,
    pub(crate) width: u32,
}

impl RegHandle {
    /// The register's output wire.
    #[inline]
    pub fn wire(self) -> Wire {
        Wire { id: self.id, width: self.width }
    }

    /// The signal id of the register output.
    #[inline]
    pub fn id(self) -> SignalId {
        self.id
    }

    /// The register width in bits.
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }
}

/// Classification of a state-holding element, used by the UPEC-SSC state-set
/// machinery to compile `S_not_victim` and the persistence policy `S_pers`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub enum StateKind {
    /// State inside the processor core (excluded from `S_not_victim`).
    CpuInternal,
    /// Interconnect buffers that are overwritten by every transaction
    /// (transient: not part of `S_pers`).
    InterconnectBuffer,
    /// Architectural registers of a peripheral IP (DMA, HWPE, ...): persist
    /// across context switches.
    IpRegister,
    /// A word of a memory array: persists across context switches.
    MemoryArray,
    /// Memory-mapped peripheral register (timer counter, UART, ...).
    PeripheralRegister,
    /// Unclassified state.
    #[default]
    Other,
}



impl fmt::Display for StateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StateKind::CpuInternal => "cpu",
            StateKind::InterconnectBuffer => "xbuf",
            StateKind::IpRegister => "ipreg",
            StateKind::MemoryArray => "mem",
            StateKind::PeripheralRegister => "preg",
            StateKind::Other => "other",
        };
        f.write_str(s)
    }
}

impl StateKind {
    /// Parses the short tag produced by [`Display`](fmt::Display).
    pub fn parse_tag(s: &str) -> Option<StateKind> {
        Some(match s {
            "cpu" => StateKind::CpuInternal,
            "xbuf" => StateKind::InterconnectBuffer,
            "ipreg" => StateKind::IpRegister,
            "mem" => StateKind::MemoryArray,
            "preg" => StateKind::PeripheralRegister,
            "other" => StateKind::Other,
            _ => return None,
        })
    }
}

/// Metadata attached to every state-holding element.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct StateMeta {
    /// Structural classification of the element.
    pub kind: StateKind,
    /// Whether the attacker task can read this element after a context
    /// switch (directly via load, or via a memory-mapped register).
    pub attacker_accessible: bool,
}

impl StateMeta {
    /// Metadata for CPU-internal state.
    pub fn cpu() -> Self {
        StateMeta { kind: StateKind::CpuInternal, attacker_accessible: false }
    }

    /// Metadata for transient interconnect buffers.
    pub fn interconnect() -> Self {
        StateMeta { kind: StateKind::InterconnectBuffer, attacker_accessible: false }
    }

    /// Metadata for attacker-readable IP registers.
    pub fn ip_register() -> Self {
        StateMeta { kind: StateKind::IpRegister, attacker_accessible: true }
    }

    /// Metadata for attacker-readable peripheral registers.
    pub fn peripheral() -> Self {
        StateMeta { kind: StateKind::PeripheralRegister, attacker_accessible: true }
    }

    /// Metadata for memory arrays.
    pub fn memory(attacker_accessible: bool) -> Self {
        StateMeta { kind: StateKind::MemoryArray, attacker_accessible }
    }
}

/// Word-level operators.
///
/// Operand count and width rules are documented per variant; they are
/// enforced by the builder methods on [`Netlist`] and re-checked by
/// [`Netlist::check`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Bitwise NOT (1 operand, same width).
    Not,
    /// Bitwise AND (2 operands, equal widths).
    And,
    /// Bitwise OR (2 operands, equal widths).
    Or,
    /// Bitwise XOR (2 operands, equal widths).
    Xor,
    /// Wrapping addition (2 operands, equal widths).
    Add,
    /// Wrapping subtraction (2 operands, equal widths).
    Sub,
    /// Wrapping multiplication (2 operands, equal widths).
    Mul,
    /// Equality, 1-bit result (2 operands, equal widths).
    Eq,
    /// Unsigned less-than, 1-bit result (2 operands, equal widths).
    Ult,
    /// Signed less-than, 1-bit result (2 operands, equal widths).
    Slt,
    /// Logical shift left by a constant (1 operand).
    ShlC(u32),
    /// Logical shift right by a constant (1 operand).
    ShrC(u32),
    /// Arithmetic shift right by a constant (1 operand).
    SarC(u32),
    /// Logical shift left by a dynamic amount (2 operands; amount width free).
    Shl,
    /// Logical shift right by a dynamic amount (2 operands; amount width free).
    Shr,
    /// Arithmetic shift right by a dynamic amount (2 operands).
    Sar,
    /// Bit slice `hi..=lo` (1 operand); result width `hi-lo+1`.
    #[allow(missing_docs)]
    Slice { hi: u32, lo: u32 },
    /// Concatenation; operand 0 is the high part (2 operands).
    Concat,
    /// Zero extension to the node width (1 operand).
    Zext,
    /// Sign extension to the node width (1 operand).
    Sext,
    /// 2:1 multiplexer: operands `(sel, then, else)`; `sel` is 1 bit wide.
    Mux,
    /// OR-reduction, 1-bit result (1 operand).
    ReduceOr,
    /// AND-reduction, 1-bit result (1 operand).
    ReduceAnd,
    /// XOR-reduction (parity), 1-bit result (1 operand).
    ReduceXor,
}

impl Op {
    /// Short mnemonic used by the textual netlist format.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Not => "not",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Eq => "eq",
            Op::Ult => "ult",
            Op::Slt => "slt",
            Op::ShlC(_) => "shlc",
            Op::ShrC(_) => "shrc",
            Op::SarC(_) => "sarc",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::Sar => "sar",
            Op::Slice { .. } => "slice",
            Op::Concat => "concat",
            Op::Zext => "zext",
            Op::Sext => "sext",
            Op::Mux => "mux",
            Op::ReduceOr => "ror",
            Op::ReduceAnd => "rand",
            Op::ReduceXor => "rxor",
        }
    }
}

/// A node of the netlist graph.
#[derive(Clone, Debug)]
pub enum Node {
    /// A free primary input.
    #[allow(missing_docs)]
    Input { name: String, width: u32 },
    /// A constant value.
    Const(Bv),
    /// A combinational word-level operation.
    #[allow(missing_docs)]
    Op { op: Op, args: Vec<SignalId>, width: u32 },
    /// The output of a clocked register.
    Reg(RegInfo),
    /// A combinational (asynchronous) read port of a memory. Reads of
    /// out-of-range addresses yield zero.
    #[allow(missing_docs)]
    MemRead { mem: MemId, addr: SignalId, width: u32 },
}

impl Node {
    /// The width of the node's value in bits.
    pub fn width(&self) -> u32 {
        match self {
            Node::Input { width, .. } => *width,
            Node::Const(bv) => bv.width(),
            Node::Op { width, .. } => *width,
            Node::Reg(info) => info.width,
            Node::MemRead { width, .. } => *width,
        }
    }

    /// Iterates over the combinational fan-in signals of this node.
    ///
    /// Register nodes have no combinational fan-in (their `next` is a
    /// sequential dependency); memory reads depend on their address.
    pub fn comb_fanin(&self) -> impl Iterator<Item = SignalId> + '_ {
        let slice: &[SignalId] = match self {
            Node::Op { args, .. } => args,
            Node::MemRead { addr, .. } => std::slice::from_ref(addr),
            _ => &[],
        };
        slice.iter().copied()
    }
}

/// Declaration data of a register.
#[derive(Clone, Debug)]
pub struct RegInfo {
    /// Hierarchical name (unique within the netlist).
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Next-state signal; `None` until connected.
    pub next: Option<SignalId>,
    /// Reset/initial value applied by the simulator's `reset()`. Formal
    /// analyses start from a fully symbolic state and ignore this unless an
    /// analysis opts in.
    pub init: Option<Bv>,
    /// State classification metadata.
    pub meta: StateMeta,
}

/// A synchronous write port of a memory.
#[derive(Clone, Copy, Debug)]
pub struct WritePort {
    /// Write enable (1 bit).
    pub en: SignalId,
    /// Word address.
    pub addr: SignalId,
    /// Write data (memory word width).
    pub data: SignalId,
}

/// A memory array with synchronous write ports and asynchronous read ports.
///
/// Write ports are applied in declaration order on every clock edge; a later
/// port overrides an earlier one writing the same word in the same cycle.
#[derive(Clone, Debug)]
pub struct Memory {
    /// Hierarchical name (unique within the netlist).
    pub name: String,
    /// Number of words.
    pub words: u32,
    /// Word width in bits.
    pub width: u32,
    /// Initial contents applied on simulator reset (`None` = all zeros).
    pub init: Option<Vec<Bv>>,
    /// Synchronous write ports in priority order (later wins).
    pub write_ports: Vec<WritePort>,
    /// State classification metadata (applies to every word).
    pub meta: StateMeta,
}

/// Errors produced by [`Netlist::check`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum NetlistError {
    /// A register's `next` input was never connected.
    UnconnectedReg { name: String },
    /// Two named elements share a name.
    DuplicateName { name: String },
    /// The combinational logic contains a cycle through the given signal.
    CombLoop { through: String },
    /// A width constraint is violated.
    WidthMismatch { detail: String },
    /// A signal id refers outside the node table.
    DanglingSignal { detail: String },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnconnectedReg { name } => {
                write!(f, "register `{name}` has no next-state connection")
            }
            NetlistError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            NetlistError::CombLoop { through } => {
                write!(f, "combinational loop through `{through}`")
            }
            NetlistError::WidthMismatch { detail } => write!(f, "width mismatch: {detail}"),
            NetlistError::DanglingSignal { detail } => write!(f, "dangling signal: {detail}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat word-level netlist.
///
/// See the [module documentation](self) for an overview and an example.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    mems: Vec<Memory>,
    /// Named signals: inputs and registers are registered automatically;
    /// arbitrary wires can be named via [`Netlist::set_name`].
    names: BTreeMap<String, SignalId>,
    /// Output markers: roots kept alive by dead-code elimination and exposed
    /// by simulators / formal engines.
    outputs: BTreeMap<String, SignalId>,
    /// Constant dedup table.
    const_cache: std::collections::HashMap<Bv, SignalId>,
    /// Scope stack for hierarchical naming.
    scopes: Vec<String>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist { name: name.into(), ..Default::default() }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of signal nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of memories.
    pub fn num_mems(&self) -> usize {
        self.mems.len()
    }

    /// Access a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: SignalId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Access a memory by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn mem(&self, id: MemId) -> &Memory {
        &self.mems[id.index()]
    }

    pub(crate) fn node_mut(&mut self, id: SignalId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs in creation order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (SignalId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (SignalId(i as u32), n))
    }

    /// Iterates over `(id, memory)` pairs in creation order.
    pub fn iter_mems(&self) -> impl Iterator<Item = (MemId, &Memory)> {
        self.mems.iter().enumerate().map(|(i, m)| (MemId(i as u32), m))
    }

    /// The width of a signal.
    pub fn width_of(&self, id: SignalId) -> u32 {
        self.node(id).width()
    }

    /// Returns the wire handle for an existing signal id.
    pub fn wire_of(&self, id: SignalId) -> Wire {
        Wire { id, width: self.width_of(id) }
    }

    /// Looks up a named signal (input, register, or named wire).
    pub fn find(&self, name: &str) -> Option<Wire> {
        self.names.get(name).map(|&id| self.wire_of(id))
    }

    /// Looks up a named memory.
    pub fn find_mem(&self, name: &str) -> Option<MemId> {
        self.mems
            .iter()
            .position(|m| m.name == name)
            .map(|i| MemId(i as u32))
    }

    /// Iterates over all `(name, id)` bindings.
    pub fn iter_names(&self) -> impl Iterator<Item = (&str, SignalId)> {
        self.names.iter().map(|(n, &id)| (n.as_str(), id))
    }

    /// Iterates over declared outputs.
    pub fn iter_outputs(&self) -> impl Iterator<Item = (&str, SignalId)> {
        self.outputs.iter().map(|(n, &id)| (n.as_str(), id))
    }

    /// Looks up an output by name.
    pub fn output(&self, name: &str) -> Option<Wire> {
        self.outputs.get(name).map(|&id| self.wire_of(id))
    }

    // ------------------------------------------------------------------
    // Scoping
    // ------------------------------------------------------------------

    /// Pushes a hierarchy scope; subsequent names are prefixed `scope.`.
    pub fn push_scope(&mut self, scope: impl Into<String>) {
        self.scopes.push(scope.into());
    }

    /// Pops the innermost hierarchy scope.
    ///
    /// # Panics
    ///
    /// Panics if the scope stack is empty.
    pub fn pop_scope(&mut self) {
        self.scopes.pop().expect("pop_scope on empty scope stack");
    }

    /// Runs `f` inside the scope `name`, restoring the stack afterwards.
    pub fn scoped<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_scope(name);
        let r = f(self);
        self.pop_scope();
        r
    }

    /// The fully qualified name for `name` under the current scope stack.
    pub fn qualify(&self, name: &str) -> String {
        if self.scopes.is_empty() {
            name.to_string()
        } else {
            let mut s = self.scopes.join(".");
            s.push('.');
            s.push_str(name);
            s
        }
    }

    fn bind_name(&mut self, full: String, id: SignalId) {
        let prev = self.names.insert(full.clone(), id);
        assert!(prev.is_none(), "duplicate signal name `{full}`");
    }

    fn push_node(&mut self, node: Node) -> SignalId {
        let id = SignalId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    // ------------------------------------------------------------------
    // Node creation
    // ------------------------------------------------------------------

    /// Creates a primary input. The name is qualified by the current scope.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or invalid width.
    pub fn input(&mut self, name: &str, width: u32) -> Wire {
        assert!((1..=crate::bv::MAX_WIDTH).contains(&width), "invalid input width {width}");
        let full = self.qualify(name);
        let id = self.push_node(Node::Input { name: full.clone(), width });
        self.bind_name(full, id);
        Wire { id, width }
    }

    /// Creates (or reuses) a constant node.
    pub fn constant(&mut self, value: Bv) -> Wire {
        if let Some(&id) = self.const_cache.get(&value) {
            return Wire { id, width: value.width() };
        }
        let id = self.push_node(Node::Const(value));
        self.const_cache.insert(value, id);
        Wire { id, width: value.width() }
    }

    /// Shorthand for a constant of the given width and value.
    pub fn lit(&mut self, width: u32, value: u64) -> Wire {
        self.constant(Bv::new(width, value))
    }

    /// Creates a register with the given qualified name, width, simulator
    /// reset value and metadata. Connect its next-state via
    /// [`Netlist::connect_reg`].
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or invalid width.
    pub fn reg(&mut self, name: &str, width: u32, init: Option<Bv>, meta: StateMeta) -> RegHandle {
        assert!((1..=crate::bv::MAX_WIDTH).contains(&width), "invalid register width {width}");
        if let Some(bv) = init {
            assert_eq!(bv.width(), width, "register `{name}` init width mismatch");
        }
        let full = self.qualify(name);
        let id = self.push_node(Node::Reg(RegInfo {
            name: full.clone(),
            width,
            next: None,
            init,
            meta,
        }));
        self.bind_name(full, id);
        RegHandle { id, width }
    }

    /// Connects a register's next-state input.
    ///
    /// # Panics
    ///
    /// Panics if the register is already connected or widths differ.
    pub fn connect_reg(&mut self, reg: RegHandle, next: Wire) {
        assert_eq!(reg.width, next.width, "register next-state width mismatch");
        match &mut self.nodes[reg.id.index()] {
            Node::Reg(info) => {
                assert!(info.next.is_none(), "register `{}` connected twice", info.name);
                info.next = Some(next.id);
            }
            _ => panic!("connect_reg on a non-register node"),
        }
    }

    /// Convenience: register whose next-state is `mux(en, data, self)`.
    pub fn reg_en(
        &mut self,
        name: &str,
        en: Wire,
        data: Wire,
        init: Option<Bv>,
        meta: StateMeta,
    ) -> Wire {
        let r = self.reg(name, data.width, init, meta);
        let next = self.mux(en, data, r.wire());
        self.connect_reg(r, next);
        r.wire()
    }

    /// Creates a memory array. Write ports are added via [`Netlist::mem_write`].
    ///
    /// # Panics
    ///
    /// Panics on duplicate names, zero words, or invalid width.
    pub fn memory(&mut self, name: &str, words: u32, width: u32, meta: StateMeta) -> MemId {
        assert!(words >= 1, "memory `{name}` must have at least one word");
        assert!((1..=crate::bv::MAX_WIDTH).contains(&width), "invalid memory width {width}");
        let full = self.qualify(name);
        assert!(
            self.mems.iter().all(|m| m.name != full),
            "duplicate memory name `{full}`"
        );
        let id = MemId(self.mems.len() as u32);
        self.mems.push(Memory {
            name: full,
            words,
            width,
            init: None,
            write_ports: Vec::new(),
            meta,
        });
        id
    }

    /// Sets the initial contents of a memory (simulator reset state).
    ///
    /// # Panics
    ///
    /// Panics if the vector length or word widths do not match.
    pub fn set_mem_init(&mut self, mem: MemId, init: Vec<Bv>) {
        let m = &mut self.mems[mem.index()];
        assert_eq!(init.len() as u32, m.words, "memory `{}` init length mismatch", m.name);
        assert!(
            init.iter().all(|bv| bv.width() == m.width),
            "memory `{}` init width mismatch",
            m.name
        );
        m.init = Some(init);
    }

    /// Creates an asynchronous read port. Out-of-range reads return zero.
    pub fn mem_read(&mut self, mem: MemId, addr: Wire) -> Wire {
        let width = self.mems[mem.index()].width;
        let id = self.push_node(Node::MemRead { mem, addr: addr.id, width });
        Wire { id, width }
    }

    /// Adds a synchronous write port: when `en` is 1 at a clock edge, word
    /// `addr` is updated with `data`. Out-of-range writes are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `en` is not 1 bit wide or `data` width differs from the word width.
    pub fn mem_write(&mut self, mem: MemId, en: Wire, addr: Wire, data: Wire) {
        assert_eq!(en.width, 1, "write enable must be 1 bit");
        let m = &self.mems[mem.index()];
        assert_eq!(data.width, m.width, "write data width mismatch for `{}`", m.name);
        self.mems[mem.index()].write_ports.push(WritePort {
            en: en.id,
            addr: addr.id,
            data: data.id,
        });
    }

    /// Creates a raw operator node. Prefer the typed convenience methods
    /// (`and`, `add`, `mux`, ...) — this low-level entry point exists for
    /// netlist-to-netlist transforms that replay existing nodes. Width
    /// rules are checked by [`Netlist::check`].
    pub fn op_node(&mut self, op: Op, args: Vec<SignalId>, width: u32) -> Wire {
        let id = self.push_node(Node::Op { op, args, width });
        Wire { id, width }
    }

    /// Gives `wire` a (qualified) name for later lookup and nicer traces.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn set_name(&mut self, wire: Wire, name: &str) {
        let full = self.qualify(name);
        self.bind_name(full, wire.id);
    }

    /// Declares `wire` as a design output named `name` (qualified by scope).
    /// The name is also registered for [`Netlist::find`] lookup if free.
    ///
    /// # Panics
    ///
    /// Panics on duplicate output names.
    pub fn mark_output(&mut self, name: &str, wire: Wire) {
        let full = self.qualify(name);
        let prev = self.outputs.insert(full.clone(), wire.id);
        assert!(prev.is_none(), "duplicate output `{full}`");
        self.names.entry(full).or_insert(wire.id);
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Validates the netlist: all registers connected, widths consistent,
    /// no combinational loops, no dangling signal references.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`NetlistError`].
    pub fn check(&self) -> Result<(), NetlistError> {
        let n = self.nodes.len() as u32;
        let check_id = |id: SignalId, what: &str| -> Result<(), NetlistError> {
            if id.0 >= n {
                Err(NetlistError::DanglingSignal { detail: what.to_string() })
            } else {
                Ok(())
            }
        };

        for (id, node) in self.iter_nodes() {
            match node {
                Node::Reg(info) => {
                    let next = info.next.ok_or_else(|| NetlistError::UnconnectedReg {
                        name: info.name.clone(),
                    })?;
                    check_id(next, &format!("next of reg `{}`", info.name))?;
                    if self.width_of(next) != info.width {
                        return Err(NetlistError::WidthMismatch {
                            detail: format!("reg `{}` next width", info.name),
                        });
                    }
                }
                Node::Op { op, args, width } => {
                    for &a in args {
                        check_id(a, &format!("arg of op node {}", id.0))?;
                    }
                    self.check_op(*op, args, *width)?;
                }
                Node::MemRead { mem, addr, .. } => {
                    check_id(*addr, "memread addr")?;
                    if mem.index() >= self.mems.len() {
                        return Err(NetlistError::DanglingSignal {
                            detail: format!("memread references missing memory {}", mem.0),
                        });
                    }
                }
                _ => {}
            }
        }
        for m in &self.mems {
            for wp in &m.write_ports {
                check_id(wp.en, &format!("write en of `{}`", m.name))?;
                check_id(wp.addr, &format!("write addr of `{}`", m.name))?;
                check_id(wp.data, &format!("write data of `{}`", m.name))?;
                if self.width_of(wp.en) != 1 {
                    return Err(NetlistError::WidthMismatch {
                        detail: format!("write enable of `{}` must be 1 bit", m.name),
                    });
                }
                if self.width_of(wp.data) != m.width {
                    return Err(NetlistError::WidthMismatch {
                        detail: format!("write data of `{}`", m.name),
                    });
                }
            }
        }
        // Combinational loop check: DFS over comb fan-in.
        crate::analysis::comb_topo_order(self)
            .map_err(|name| NetlistError::CombLoop { through: name })?;
        Ok(())
    }

    fn check_op(&self, op: Op, args: &[SignalId], width: u32) -> Result<(), NetlistError> {
        let w = |i: usize| self.width_of(args[i]);
        let fail = |detail: String| Err(NetlistError::WidthMismatch { detail });
        let expect_args = |n: usize| -> Result<(), NetlistError> {
            if args.len() != n {
                Err(NetlistError::WidthMismatch {
                    detail: format!("{} expects {} args, got {}", op.mnemonic(), n, args.len()),
                })
            } else {
                Ok(())
            }
        };
        match op {
            Op::Not => {
                expect_args(1)?;
                if w(0) != width {
                    return fail("not width".into());
                }
            }
            Op::And | Op::Or | Op::Xor | Op::Add | Op::Sub | Op::Mul => {
                expect_args(2)?;
                if w(0) != width || w(1) != width {
                    return fail(format!("{} operand widths", op.mnemonic()));
                }
            }
            Op::Eq | Op::Ult | Op::Slt => {
                expect_args(2)?;
                if w(0) != w(1) || width != 1 {
                    return fail(format!("{} widths", op.mnemonic()));
                }
            }
            Op::ShlC(_) | Op::ShrC(_) | Op::SarC(_) => {
                expect_args(1)?;
                if w(0) != width {
                    return fail("const shift width".into());
                }
            }
            Op::Shl | Op::Shr | Op::Sar => {
                expect_args(2)?;
                if w(0) != width {
                    return fail("dyn shift width".into());
                }
            }
            Op::Slice { hi, lo } => {
                expect_args(1)?;
                if hi < lo || hi >= w(0) || width != hi - lo + 1 {
                    return fail(format!("slice [{hi}:{lo}] of width {}", w(0)));
                }
            }
            Op::Concat => {
                expect_args(2)?;
                if w(0) + w(1) != width {
                    return fail("concat width".into());
                }
            }
            Op::Zext | Op::Sext => {
                expect_args(1)?;
                if w(0) > width {
                    return fail("extension narrows".into());
                }
            }
            Op::Mux => {
                expect_args(3)?;
                if w(0) != 1 || w(1) != width || w(2) != width {
                    return fail("mux widths".into());
                }
            }
            Op::ReduceOr | Op::ReduceAnd | Op::ReduceXor => {
                expect_args(1)?;
                if width != 1 {
                    return fail("reduction result width".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_check_counter() {
        let mut n = Netlist::new("counter");
        let en = n.input("en", 1);
        let count = n.reg("count", 8, Some(Bv::zero(8)), StateMeta::default());
        let one = n.lit(8, 1);
        let inc = n.add(count.wire(), one);
        let next = n.mux(en, inc, count.wire());
        n.connect_reg(count, next);
        n.mark_output("count", count.wire());
        n.check().unwrap();
        assert_eq!(n.find("count").unwrap().width(), 8);
        assert_eq!(n.output("count").unwrap().id(), count.id());
    }

    #[test]
    fn unconnected_register_fails_check() {
        let mut n = Netlist::new("t");
        let _ = n.reg("r", 4, None, StateMeta::default());
        match n.check() {
            Err(NetlistError::UnconnectedReg { name }) => assert_eq!(name, "r"),
            other => panic!("expected UnconnectedReg, got {other:?}"),
        }
    }

    #[test]
    fn scoped_names() {
        let mut n = Netlist::new("t");
        n.push_scope("soc");
        n.push_scope("xbar");
        let w = n.input("req", 1);
        n.pop_scope();
        n.pop_scope();
        assert_eq!(n.find("soc.xbar.req").unwrap().id(), w.id());
        assert!(n.find("req").is_none());
    }

    #[test]
    fn scoped_closure_restores_stack() {
        let mut n = Netlist::new("t");
        n.scoped("a", |n| {
            n.input("x", 1);
        });
        let y = n.input("y", 1);
        assert_eq!(n.find("y").unwrap().id(), y.id());
        assert!(n.find("a.x").is_some());
    }

    #[test]
    #[should_panic(expected = "duplicate signal name")]
    fn duplicate_names_panic() {
        let mut n = Netlist::new("t");
        n.input("x", 1);
        n.input("x", 2);
    }

    #[test]
    fn constants_are_deduplicated() {
        let mut n = Netlist::new("t");
        let a = n.lit(8, 42);
        let b = n.lit(8, 42);
        let c = n.lit(8, 43);
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn memory_ports() {
        let mut n = Netlist::new("t");
        let mem = n.memory("ram", 16, 32, StateMeta::memory(true));
        let addr = n.input("addr", 4);
        let data = n.input("data", 32);
        let en = n.input("en", 1);
        let rd = n.mem_read(mem, addr);
        n.mem_write(mem, en, addr, data);
        n.mark_output("rd", rd);
        n.check().unwrap();
        assert_eq!(n.mem(mem).write_ports.len(), 1);
        assert_eq!(rd.width(), 32);
    }

    #[test]
    fn comb_loop_detected() {
        let mut n = Netlist::new("t");
        let a = n.input("a", 1);
        // Build x = a AND x manually by forging the arg list.
        let x = n.op_node(Op::And, vec![a.id(), SignalId(1)], 1);
        assert_eq!(x.id(), SignalId(1));
        match n.check() {
            Err(NetlistError::CombLoop { .. }) => {}
            other => panic!("expected CombLoop, got {other:?}"),
        }
    }

    #[test]
    fn reg_en_holds_without_enable() {
        let mut n = Netlist::new("t");
        let en = n.input("en", 1);
        let d = n.input("d", 8);
        let q = n.reg_en("q", en, d, Some(Bv::zero(8)), StateMeta::default());
        n.mark_output("q", q);
        n.check().unwrap();
    }
}
