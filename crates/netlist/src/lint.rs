//! Netlist security linter: structural diagnostics for timing-channel-prone
//! shapes.
//!
//! The linter runs on the flat IR plus a [`LintSpec`] describing the threat
//! model (victim port, attacker masters with their firmware status, the
//! protected memory device). It reports [`Diagnostic`]s with stable
//! machine-readable codes:
//!
//! | code       | rule | shape |
//! |------------|------|-------|
//! | `SSC-L001` | [`LintCode::SharedResource`] | the protected memory's write port has combinational fan-in from both the victim port and an active (non-quiesced, non-constrained) attacker master — the dual-master shared-resource shape every contention channel needs |
//! | `SSC-L002` | [`LintCode::UntrustedArbitration`] | arbitration state guarding the protected memory (an interconnect-kind register in its write-port cone) is driven by an active attacker master — the attacker modulates who wins the resource |
//! | `SSC-L003` | [`LintCode::DeadState`] | a state element that influences no design output — unreachable/dead state that silently widens `S_all` |
//! | `SSC-L004` | [`LintCode::WidthAnomaly`] | a constant shift by ≥ the operand width, or an equality between a zero-extended narrow signal and a constant too large to ever match — statically degenerate logic |
//!
//! `SSC-L001`/`SSC-L002` deliberately look at the *one-step* (single clock
//! cycle) combinational cone of the protected memory: transitive sequential
//! reach saturates on any connected SoC (everything eventually influences
//! everything), but only a master that is muxed into the device's port
//! within the access cycle actually *masters* the shared resource.
//!
//! Quiesced masters (firmware holds them idle during the victim phase) and
//! constrained masters (firmware provably keeps their address pointers off
//! the protected device) are not *active* attackers; the spec derivation
//! marks them and the rules skip them. That is exactly the knob that
//! separates the paper's vulnerable configurations from the patched ones on
//! the *same* netlist.

use std::collections::HashSet;

use crate::analysis::{self, StateHandle};
use crate::influence::InfluenceGraph;
use crate::ir::{Netlist, Node, Op, SignalId, StateKind};

/// Stable diagnostic codes. The numeric part never changes meaning; new
/// rules get new numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `SSC-L001`: shared resource with dual-master fan-in.
    SharedResource,
    /// `SSC-L002`: arbitration state influenced by an untrusted master.
    UntrustedArbitration,
    /// `SSC-L003`: dead/unreachable state element.
    DeadState,
    /// `SSC-L004`: width anomaly (degenerate shift or compare).
    WidthAnomaly,
}

impl LintCode {
    /// The stable machine-readable code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::SharedResource => "SSC-L001",
            LintCode::UntrustedArbitration => "SSC-L002",
            LintCode::DeadState => "SSC-L003",
            LintCode::WidthAnomaly => "SSC-L004",
        }
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One linter finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: LintCode,
    /// The design object the finding is anchored to (memory, register or
    /// node name).
    pub subject: String,
    /// Human-readable explanation with the structural witness.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.code, self.subject, self.message)
    }
}

/// An attacker-side bus master as the threat model sees it.
#[derive(Clone, Debug)]
pub struct LintMaster {
    /// Short master name used in messages (e.g. `dma`).
    pub name: String,
    /// Named signals of the master's bus port (request, address, ...).
    pub signals: Vec<String>,
    /// Firmware holds the master idle during the victim phase.
    pub quiesced: bool,
    /// Firmware provably keeps the master's pointers off the protected
    /// device (per-register outside-device constraints).
    pub constrained: bool,
}

impl LintMaster {
    /// Whether the master is an *active* attacker the structural rules must
    /// assume can contend for the protected resource.
    pub fn active(&self) -> bool {
        !self.quiesced && !self.constrained
    }
}

/// The threat-model input of the linter.
#[derive(Clone, Debug, Default)]
pub struct LintSpec {
    /// Named victim port signals (free inputs in the verification view).
    pub victim_inputs: Vec<String>,
    /// Attacker-side masters with their firmware status.
    pub masters: Vec<LintMaster>,
    /// Name of the memory device holding the victim's protected data.
    pub protected_mem: Option<String>,
}

/// Runs all lint rules over the netlist.
///
/// Diagnostics are returned in deterministic order (rule, then spec/design
/// declaration order).
///
/// # Errors
///
/// Returns a message if the spec names signals, masters or memories the
/// netlist does not contain.
pub fn lint(netlist: &Netlist, spec: &LintSpec) -> Result<Vec<Diagnostic>, String> {
    let graph = InfluenceGraph::build(netlist);
    let mut out = Vec::new();

    // Resolve the victim port to its combinational sources (free inputs in
    // the verification view; pipeline registers in the simulation view).
    let victim_roots = resolve_signals(netlist, &spec.victim_inputs)?;
    let (victim_inputs, victim_elems) = graph.sources_of(netlist, &victim_roots);
    let victim_inputs: HashSet<SignalId> = victim_inputs.into_iter().collect();
    let victim_elems: HashSet<StateHandle> = victim_elems.into_iter().collect();

    struct ResolvedMaster<'a> {
        spec: &'a LintMaster,
        elems: HashSet<StateHandle>,
        inputs: HashSet<SignalId>,
    }
    let mut masters = Vec::new();
    for m in &spec.masters {
        let roots = resolve_signals(netlist, &m.signals)
            .map_err(|e| format!("master `{}`: {e}", m.name))?;
        let (inputs, elems) = graph.sources_of(netlist, &roots);
        masters.push(ResolvedMaster {
            spec: m,
            elems: elems.into_iter().collect(),
            inputs: inputs.into_iter().collect(),
        });
    }

    if let Some(mem_name) = &spec.protected_mem {
        let mem = netlist
            .find_mem(mem_name)
            .ok_or_else(|| format!("protected memory `{mem_name}` not found"))?;
        let handle = StateHandle::Mem(mem);
        let (port_inputs, port_elems) = graph.one_step_sources(handle);
        let port_inputs: HashSet<SignalId> = port_inputs.iter().copied().collect();
        let port_elems: HashSet<StateHandle> = port_elems.into_iter().collect();

        let victim_present = victim_inputs.iter().any(|i| port_inputs.contains(i))
            || victim_elems.iter().any(|e| port_elems.contains(e));

        // SSC-L001: victim and an active attacker master both muxed into
        // the protected memory's write port within the access cycle.
        for m in &masters {
            if !m.spec.active() || !victim_present {
                continue;
            }
            let witness = witness_elem(&graph, &m.elems, &port_elems)
                .or_else(|| witness_input(netlist, &m.inputs, &port_inputs));
            if let Some(w) = witness {
                out.push(Diagnostic {
                    code: LintCode::SharedResource,
                    subject: mem_name.clone(),
                    message: format!(
                        "shared resource: victim port and active master `{}` (via `{w}`) \
                         both drive the write port of `{mem_name}` in the same cycle",
                        m.spec.name
                    ),
                });
            }
        }

        // SSC-L002: arbitration state guarding the protected memory driven
        // by an active attacker master.
        let mut arb: Vec<StateHandle> = port_elems
            .iter()
            .copied()
            .filter(|&e| elem_kind(netlist, e) == Some(StateKind::InterconnectBuffer))
            .collect();
        arb.sort();
        for a in arb {
            let (_, a_elems) = graph.one_step_sources(a);
            let a_elems: HashSet<StateHandle> = a_elems.into_iter().collect();
            let a_name = graph.name_of(a).unwrap_or("?").to_string();
            for m in &masters {
                if !m.spec.active() {
                    continue;
                }
                if let Some(w) = witness_elem(&graph, &m.elems, &a_elems) {
                    out.push(Diagnostic {
                        code: LintCode::UntrustedArbitration,
                        subject: a_name.clone(),
                        message: format!(
                            "arbitration state `{a_name}` guarding `{mem_name}` is driven \
                             by active master `{}` (via `{w}`)",
                            m.spec.name
                        ),
                    });
                }
            }
        }
    }

    // SSC-L003: state elements influencing no design output.
    let outputs: Vec<SignalId> = netlist.iter_outputs().map(|(_, id)| id).collect();
    let (live_sigs, live_mems) = analysis::cone_of_influence(netlist, outputs);
    for e in analysis::state_elements(netlist) {
        let live = match e.handle {
            StateHandle::Reg(id) => live_sigs.contains(&id),
            StateHandle::Mem(mid) => live_mems.contains(&mid),
        };
        if !live {
            out.push(Diagnostic {
                code: LintCode::DeadState,
                subject: e.name.clone(),
                message: format!(
                    "state element `{}` ({} bits) influences no design output",
                    e.name, e.bits
                ),
            });
        }
    }

    // SSC-L004: statically degenerate shifts and compares.
    for (id, node) in netlist.iter_nodes() {
        let Node::Op { op, args, width } = node else { continue };
        match *op {
            Op::ShlC(s) | Op::ShrC(s) | Op::SarC(s) if s >= *width => {
                out.push(Diagnostic {
                    code: LintCode::WidthAnomaly,
                    subject: format!("node#{}", id.index()),
                    message: format!(
                        "constant {} by {s} on a {width}-bit operand always yields a \
                         constant",
                        op.mnemonic()
                    ),
                });
            }
            Op::Eq => {
                let degenerate = |a: SignalId, b: SignalId| -> Option<String> {
                    let Node::Const(c) = netlist.node(b) else { return None };
                    let Node::Op { op: Op::Zext, args, .. } = netlist.node(a) else {
                        return None;
                    };
                    let narrow = netlist.width_of(args[0]);
                    if narrow >= 64 || c.val() < (1u64 << narrow) {
                        return None;
                    }
                    Some(format!(
                        "comparing a zero-extended {narrow}-bit signal against constant \
                         {:#x} can never be true",
                        c.val()
                    ))
                };
                if let Some(msg) =
                    degenerate(args[0], args[1]).or_else(|| degenerate(args[1], args[0]))
                {
                    out.push(Diagnostic {
                        code: LintCode::WidthAnomaly,
                        subject: format!("node#{}", id.index()),
                        message: msg,
                    });
                }
            }
            _ => {}
        }
    }

    out.sort_by(|a, b| (a.code, &a.subject, &a.message).cmp(&(b.code, &b.subject, &b.message)));
    Ok(out)
}

fn resolve_signals(netlist: &Netlist, names: &[String]) -> Result<Vec<SignalId>, String> {
    names
        .iter()
        .map(|n| {
            netlist
                .find(n)
                .map(|w| w.id())
                .ok_or_else(|| format!("signal `{n}` not found"))
        })
        .collect()
}

fn elem_kind(netlist: &Netlist, handle: StateHandle) -> Option<StateKind> {
    match handle {
        StateHandle::Reg(id) => match netlist.node(id) {
            Node::Reg(info) => Some(info.meta.kind),
            _ => None,
        },
        StateHandle::Mem(mid) => Some(netlist.mem(mid).meta.kind),
    }
}

/// The alphabetically first element in the intersection, by name — a
/// deterministic witness for the diagnostic message.
fn witness_elem(
    graph: &InfluenceGraph,
    a: &HashSet<StateHandle>,
    b: &HashSet<StateHandle>,
) -> Option<String> {
    a.intersection(b)
        .filter_map(|&h| graph.name_of(h))
        .min()
        .map(str::to_string)
}

fn witness_input(
    netlist: &Netlist,
    a: &HashSet<SignalId>,
    b: &HashSet<SignalId>,
) -> Option<String> {
    a.intersection(b)
        .map(|&id| match netlist.node(id) {
            Node::Input { name, .. } => name.clone(),
            _ => format!("node#{}", id.index()),
        })
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::Bv;
    use crate::ir::StateMeta;

    /// Two masters (victim input port + attacker register port) muxed onto
    /// one memory behind a toy grant register.
    fn shared_mem() -> Netlist {
        let mut n = Netlist::new("shared");
        let v_req = n.input("victim.req", 1);
        let v_addr = n.input("victim.addr", 4);
        let v_data = n.input("victim.data", 8);
        let a_req = n.reg("atk.req", 1, Some(Bv::zero(1)), StateMeta::ip_register());
        let a_addr = n.reg("atk.addr", 4, Some(Bv::zero(4)), StateMeta::ip_register());
        let a_data = n.reg("atk.data", 8, Some(Bv::zero(8)), StateMeta::ip_register());
        n.connect_reg(a_req, v_req); // arbitrary feedback, keeps check() happy
        n.connect_reg(a_addr, a_addr.wire());
        n.connect_reg(a_data, a_data.wire());

        // grant: victim wins when requesting, else attacker.
        let grant = n.reg("arb.grant", 1, Some(Bv::zero(1)), StateMeta::interconnect());
        let gnext = n.mux(v_req, v_req, a_req.wire());
        n.connect_reg(grant, gnext);

        let mem = n.memory("ram", 16, 8, StateMeta::memory(true));
        let addr = n.mux(grant.wire(), v_addr, a_addr.wire());
        let data = n.mux(grant.wire(), v_data, a_data.wire());
        let en = n.or(v_req, a_req.wire());
        n.mem_write(mem, en, addr, data);
        let zero4 = n.lit(4, 0);
        let rd = n.mem_read(mem, zero4);
        n.mark_output("rd", rd);
        n.mark_output("grant", grant.wire());
        for (nm, w) in [("areq", a_req.wire()), ("aaddr", a_addr.wire()), ("adata", a_data.wire())]
        {
            n.mark_output(nm, w);
        }
        n
    }

    fn spec(quiesced: bool, constrained: bool) -> LintSpec {
        LintSpec {
            victim_inputs: vec!["victim.req".into(), "victim.addr".into(), "victim.data".into()],
            masters: vec![LintMaster {
                name: "atk".into(),
                signals: vec!["atk.req".into(), "atk.addr".into()],
                quiesced,
                constrained,
            }],
            protected_mem: Some("ram".into()),
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<LintCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn shared_resource_and_arbitration_flag_on_active_master() {
        let n = shared_mem();
        let diags = lint(&n, &spec(false, false)).unwrap();
        let codes = codes(&diags);
        assert!(codes.contains(&LintCode::SharedResource), "{diags:?}");
        assert!(codes.contains(&LintCode::UntrustedArbitration), "{diags:?}");
    }

    #[test]
    fn quiesced_or_constrained_master_is_clean() {
        let n = shared_mem();
        for s in [spec(true, false), spec(false, true)] {
            let diags = lint(&n, &s).unwrap();
            assert!(diags.is_empty(), "{diags:?}");
        }
    }

    #[test]
    fn dead_state_flags_unobservable_register() {
        let mut n = Netlist::new("dead");
        let i = n.input("i", 1);
        let live = n.reg("live", 1, Some(Bv::zero(1)), StateMeta::ip_register());
        n.connect_reg(live, i);
        let dead = n.reg("dead", 1, Some(Bv::zero(1)), StateMeta::ip_register());
        n.connect_reg(dead, i);
        n.mark_output("o", live.wire());
        let diags = lint(&n, &LintSpec::default()).unwrap();
        assert_eq!(codes(&diags), vec![LintCode::DeadState]);
        assert_eq!(diags[0].subject, "dead");
    }

    #[test]
    fn width_anomalies_flag_degenerate_shift_and_compare() {
        let mut n = Netlist::new("w");
        let a = n.input("a", 4);
        let shifted = n.shr_c(a, 4); // shift-out: always zero
        let wide = n.zext(a, 8);
        let big = n.lit(8, 0x40); // 4-bit zext can never reach 0x40
        let cmp = n.eq(wide, big);
        n.mark_output("s", shifted);
        n.mark_output("c", cmp);
        let diags = lint(&n, &LintSpec::default()).unwrap();
        assert_eq!(
            codes(&diags),
            vec![LintCode::WidthAnomaly, LintCode::WidthAnomaly],
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_names_error() {
        let n = shared_mem();
        let mut s = spec(false, false);
        s.victim_inputs.push("nope".into());
        assert!(lint(&n, &s).is_err());
    }
}
