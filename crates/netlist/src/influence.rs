//! Sequential influence analysis: who can make which state diverge, and
//! how many clock cycles that takes.
//!
//! The UPEC-SSC goal clauses ask "can any tracked atom diverge at cycle
//! `c`?" — a question with a cheap structural upper bound: a state element
//! can only diverge at cycle `c` if a *divergence source* (a differing
//! primary input, or a state element already unequal at cycle 0) reaches
//! it through at most `c` clock boundaries. This module computes that
//! bound as a fixpoint over the register/memory graph:
//!
//! - [`InfluenceGraph::build`] extracts the **one-step dependency graph**:
//!   for every state element (register or memory), the primary inputs and
//!   state elements its next-state function (register `next`, memory write
//!   ports) reads combinationally. Memory reads inside a cone contribute
//!   the memory as an element dependency (its *content* flows) plus the
//!   combinational cone of the read address.
//! - [`InfluenceGraph::closure`] runs a multi-source BFS from a set of
//!   root inputs and root elements, yielding an [`InfluenceClosure`]: the
//!   minimal number of clock steps each element is from any source.
//!   `depth(e) = None` means *never reachable* — the element is
//!   structurally certified to stay equal forever; `depth(e) = Some(d)`
//!   means it cannot diverge before cycle `d`.
//! - [`InfluenceClosure::frontier`] is the **per-window cone diff**: the
//!   elements first reachable at exactly depth `d`, i.e. the only atoms a
//!   window-`d` goal clause newly has to track beyond the window-`d-1`
//!   clause.
//! - [`InfluenceLattice`] crosses two closures (victim-controllable
//!   sources vs. attacker-controllable sources, classified from the
//!   existing [`StateMeta`]/port metadata) into the four-point influence
//!   lattice `Clean < {VictimOnly, AttackerOnly} < Both` that the security
//!   linter ([`crate::lint`]) and the proof engine's static certification
//!   consume.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::analysis::StateHandle;
use crate::ir::{Netlist, Node, SignalId};

/// The one-step state dependency graph of a netlist: per state element,
/// which primary inputs and which other state elements its next-state
/// logic reads within one clock cycle.
#[derive(Clone, Debug)]
pub struct InfluenceGraph {
    /// Element handles in deterministic order (registers by signal id,
    /// then memories by memory id) — the index space of the graph.
    handles: Vec<StateHandle>,
    /// Hierarchical element names, parallel to `handles`.
    names: Vec<String>,
    index: HashMap<StateHandle, usize>,
    /// Per element: the primary inputs in its one-step fan-in.
    dep_inputs: Vec<Vec<SignalId>>,
    /// Per element: the state elements in its one-step fan-in.
    dep_elems: Vec<Vec<usize>>,
    /// Inverted: input signal → elements whose next-state it feeds.
    input_feeds: HashMap<SignalId, Vec<usize>>,
    /// Inverted: element → elements it feeds in one clock step.
    elem_feeds: Vec<Vec<usize>>,
}

impl InfluenceGraph {
    /// Builds the one-step dependency graph.
    pub fn build(netlist: &Netlist) -> InfluenceGraph {
        let mut handles = Vec::new();
        let mut names = Vec::new();
        let mut roots: Vec<Vec<SignalId>> = Vec::new();
        for (id, node) in netlist.iter_nodes() {
            if let Node::Reg(info) = node {
                handles.push(StateHandle::Reg(id));
                names.push(info.name.clone());
                roots.push(info.next.into_iter().collect());
            }
        }
        for (mid, mem) in netlist.iter_mems() {
            handles.push(StateHandle::Mem(mid));
            names.push(mem.name.clone());
            roots.push(
                mem.write_ports.iter().flat_map(|wp| [wp.en, wp.addr, wp.data]).collect(),
            );
        }
        let index: HashMap<StateHandle, usize> =
            handles.iter().enumerate().map(|(i, &h)| (h, i)).collect();

        let mut dep_inputs = Vec::with_capacity(handles.len());
        let mut dep_elems = Vec::with_capacity(handles.len());
        for root in &roots {
            let (inputs, elems) = comb_sources(netlist, root, &index);
            dep_inputs.push(inputs);
            dep_elems.push(elems);
        }

        let mut input_feeds: HashMap<SignalId, Vec<usize>> = HashMap::new();
        let mut elem_feeds: Vec<Vec<usize>> = vec![Vec::new(); handles.len()];
        for (e, inputs) in dep_inputs.iter().enumerate() {
            for &i in inputs {
                input_feeds.entry(i).or_default().push(e);
            }
        }
        for (e, deps) in dep_elems.iter().enumerate() {
            for &d in deps {
                elem_feeds[d].push(e);
            }
        }
        InfluenceGraph { handles, names, index, dep_inputs, dep_elems, input_feeds, elem_feeds }
    }

    /// The number of state elements in the graph.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the design has no state elements at all.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// All element handles, in deterministic index order.
    pub fn handles(&self) -> &[StateHandle] {
        &self.handles
    }

    /// The hierarchical name of an element, if it is in the graph.
    pub fn name_of(&self, handle: StateHandle) -> Option<&str> {
        self.index.get(&handle).map(|&i| self.names[i].as_str())
    }

    /// The one-step combinational sources of an element's next-state logic:
    /// `(primary inputs, state elements)`. Empty for unknown handles.
    pub fn one_step_sources(&self, handle: StateHandle) -> (&[SignalId], Vec<StateHandle>) {
        match self.index.get(&handle) {
            Some(&i) => (
                &self.dep_inputs[i],
                self.dep_elems[i].iter().map(|&d| self.handles[d]).collect(),
            ),
            None => (&[], Vec::new()),
        }
    }

    /// Classifies the combinational sources of arbitrary signals: the
    /// primary inputs and state elements reached by walking `roots`'
    /// combinational fan-in (stopping at registers, memory contents and
    /// inputs). Used by the linter to resolve named master/victim signals
    /// — which are often combinational muxes — to their feeding state.
    pub fn sources_of(
        &self,
        netlist: &Netlist,
        roots: &[SignalId],
    ) -> (Vec<SignalId>, Vec<StateHandle>) {
        let (inputs, elems) = comb_sources(netlist, roots, &self.index);
        (inputs, elems.into_iter().map(|i| self.handles[i]).collect())
    }

    /// Multi-source sequential influence closure (BFS over clock steps).
    ///
    /// `input_roots` are primary inputs that may *differ* (depth-1 sources:
    /// a differing input first flips an element after one clock edge);
    /// `element_roots` are state elements already unequal at cycle 0
    /// (depth-0 sources). The closure assigns each reachable element the
    /// minimal number of clock steps from any source.
    pub fn closure(
        &self,
        input_roots: impl IntoIterator<Item = SignalId>,
        element_roots: impl IntoIterator<Item = StateHandle>,
    ) -> InfluenceClosure {
        let mut depth: Vec<Option<u32>> = vec![None; self.handles.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for h in element_roots {
            if let Some(&i) = self.index.get(&h) {
                if depth[i].is_none() {
                    depth[i] = Some(0);
                    queue.push_back(i);
                }
            }
        }
        for sig in input_roots {
            for &e in self.input_feeds.get(&sig).map_or(&[][..], |v| v.as_slice()) {
                if depth[e].is_none() {
                    depth[e] = Some(1);
                    queue.push_back(e);
                }
            }
        }
        // The queue is depth-sorted: roots (0) were enqueued before the
        // input-fed seeds (1), and BFS preserves monotonicity from there.
        while let Some(e) = queue.pop_front() {
            let d = depth[e].expect("queued elements have a depth");
            for &succ in &self.elem_feeds[e] {
                if depth[succ].is_none() {
                    depth[succ] = Some(d + 1);
                    queue.push_back(succ);
                }
            }
        }
        let map = self
            .handles
            .iter()
            .zip(&depth)
            .filter_map(|(&h, d)| d.map(|d| (h, d)))
            .collect();
        InfluenceClosure { depth: map }
    }
}

/// The result of a sequential influence closure: per reachable state
/// element, the minimal number of clock steps from any divergence source.
#[derive(Clone, Debug, Default)]
pub struct InfluenceClosure {
    depth: std::collections::BTreeMap<StateHandle, u32>,
}

impl InfluenceClosure {
    /// Whether the element is reachable from any source at all.
    pub fn reached(&self, handle: StateHandle) -> bool {
        self.depth.contains_key(&handle)
    }

    /// Minimal clock distance from a source; `None` = never reachable, so
    /// the element is structurally certified to stay equal at every cycle.
    pub fn depth(&self, handle: StateHandle) -> Option<u32> {
        self.depth.get(&handle).copied()
    }

    /// The cone diff between window `d-1` and window `d`: the elements
    /// first reachable at exactly `d` clock steps, in deterministic
    /// (handle) order. A window-`d` goal clause only gains these atoms
    /// over the window-`d-1` clause.
    pub fn frontier(&self, d: u32) -> Vec<StateHandle> {
        self.depth.iter().filter(|&(_, &x)| x == d).map(|(&h, _)| h).collect()
    }

    /// Number of reachable elements.
    pub fn len(&self) -> usize {
        self.depth.len()
    }

    /// Whether no element is reachable.
    pub fn is_empty(&self) -> bool {
        self.depth.is_empty()
    }

    /// Iterates `(element, depth)` in deterministic (handle) order.
    pub fn iter(&self) -> impl Iterator<Item = (StateHandle, u32)> + '_ {
        self.depth.iter().map(|(&h, &d)| (h, d))
    }
}

/// A point of the attacker-influence lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Influence {
    /// Reachable from neither victim nor attacker sources.
    Clean,
    /// Reachable from victim-controllable sources only.
    VictimOnly,
    /// Reachable from attacker-controllable sources only.
    AttackerOnly,
    /// Reachable from both — the shared-resource shape every timing
    /// side channel needs.
    Both,
}

/// Two influence closures crossed into the four-point lattice: which state
/// is reachable from victim-controllable sources, from
/// attacker-controllable sources, from both, or from neither.
#[derive(Clone, Debug)]
pub struct InfluenceLattice {
    victim: InfluenceClosure,
    attacker: InfluenceClosure,
}

impl InfluenceLattice {
    /// Builds the lattice from explicit victim/attacker source sets.
    ///
    /// Victim sources are typically the CPU/system port inputs; attacker
    /// sources the spying masters' request/address cones plus every
    /// element whose [`crate::StateMeta`] marks it `attacker_accessible`
    /// (see [`attacker_accessible_elements`]).
    pub fn build(
        graph: &InfluenceGraph,
        victim_inputs: impl IntoIterator<Item = SignalId>,
        victim_elements: impl IntoIterator<Item = StateHandle>,
        attacker_inputs: impl IntoIterator<Item = SignalId>,
        attacker_elements: impl IntoIterator<Item = StateHandle>,
    ) -> InfluenceLattice {
        InfluenceLattice {
            victim: graph.closure(victim_inputs, victim_elements),
            attacker: graph.closure(attacker_inputs, attacker_elements),
        }
    }

    /// The lattice point of one element.
    pub fn of(&self, handle: StateHandle) -> Influence {
        match (self.victim.reached(handle), self.attacker.reached(handle)) {
            (false, false) => Influence::Clean,
            (true, false) => Influence::VictimOnly,
            (false, true) => Influence::AttackerOnly,
            (true, true) => Influence::Both,
        }
    }

    /// The victim-side closure.
    pub fn victim(&self) -> &InfluenceClosure {
        &self.victim
    }

    /// The attacker-side closure.
    pub fn attacker(&self) -> &InfluenceClosure {
        &self.attacker
    }
}

/// The state elements whose metadata marks them attacker-accessible — the
/// default attacker-side element roots of an [`InfluenceLattice`].
pub fn attacker_accessible_elements(netlist: &Netlist) -> Vec<StateHandle> {
    crate::analysis::state_elements(netlist)
        .into_iter()
        .filter(|e| e.meta.attacker_accessible)
        .map(|e| e.handle)
        .collect()
}

/// Walks the combinational cone of `roots` (stopping at registers, inputs
/// and constants) and classifies the sources: primary inputs, and state
/// elements (register outputs crossed, memory contents read).
fn comb_sources(
    netlist: &Netlist,
    roots: &[SignalId],
    index: &HashMap<StateHandle, usize>,
) -> (Vec<SignalId>, Vec<usize>) {
    let mut inputs = Vec::new();
    let mut elems = Vec::new();
    let mut seen: HashSet<SignalId> = HashSet::new();
    let mut work: Vec<SignalId> = roots.to_vec();
    while let Some(id) = work.pop() {
        if !seen.insert(id) {
            continue;
        }
        match netlist.node(id) {
            Node::Input { .. } => inputs.push(id),
            Node::Reg(_) => elems.push(index[&StateHandle::Reg(id)]),
            Node::MemRead { mem, addr, .. } => {
                elems.push(index[&StateHandle::Mem(*mem)]);
                work.push(*addr);
            }
            Node::Op { args, .. } => work.extend(args.iter().copied()),
            Node::Const(_) => {}
        }
    }
    inputs.sort_unstable();
    inputs.dedup();
    elems.sort_unstable();
    elems.dedup();
    (inputs, elems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::Bv;
    use crate::ir::StateMeta;

    /// port → a → b → c pipeline plus an isolated free-running counter:
    /// depths from the port must be 1, 2, 3 and the counter unreachable.
    fn pipeline() -> Netlist {
        let mut n = Netlist::new("pipe");
        let port = n.input("port", 8);
        let a = n.reg("a", 8, Some(Bv::zero(8)), StateMeta::ip_register());
        let b = n.reg("b", 8, Some(Bv::zero(8)), StateMeta::ip_register());
        let c = n.reg("c", 8, Some(Bv::zero(8)), StateMeta::ip_register());
        n.connect_reg(a, port);
        n.connect_reg(b, a.wire());
        n.connect_reg(c, b.wire());
        let free = n.reg("free", 8, Some(Bv::zero(8)), StateMeta::peripheral());
        let one = n.lit(8, 1);
        let inc = n.add(free.wire(), one);
        n.connect_reg(free, inc);
        n.mark_output("c", c.wire());
        n.mark_output("free", free.wire());
        n
    }

    fn handle(n: &Netlist, name: &str) -> StateHandle {
        StateHandle::Reg(n.find(name).unwrap().id())
    }

    #[test]
    fn closure_depths_count_clock_steps() {
        let n = pipeline();
        let g = InfluenceGraph::build(&n);
        let port = n.find("port").unwrap().id();
        let cl = g.closure([port], []);
        assert_eq!(cl.depth(handle(&n, "a")), Some(1));
        assert_eq!(cl.depth(handle(&n, "b")), Some(2));
        assert_eq!(cl.depth(handle(&n, "c")), Some(3));
        assert_eq!(cl.depth(handle(&n, "free")), None, "isolated counter is clean");
        assert_eq!(cl.len(), 3);
    }

    #[test]
    fn frontier_is_the_per_window_cone_diff() {
        let n = pipeline();
        let g = InfluenceGraph::build(&n);
        let port = n.find("port").unwrap().id();
        let cl = g.closure([port], []);
        assert_eq!(cl.frontier(1), vec![handle(&n, "a")]);
        assert_eq!(cl.frontier(2), vec![handle(&n, "b")]);
        assert_eq!(cl.frontier(3), vec![handle(&n, "c")]);
        assert!(cl.frontier(4).is_empty());
    }

    #[test]
    fn element_roots_start_at_depth_zero() {
        let n = pipeline();
        let g = InfluenceGraph::build(&n);
        let cl = g.closure([], [handle(&n, "b")]);
        assert_eq!(cl.depth(handle(&n, "b")), Some(0));
        assert_eq!(cl.depth(handle(&n, "c")), Some(1));
        assert_eq!(cl.depth(handle(&n, "a")), None, "influence flows forward only");
    }

    #[test]
    fn memory_reads_propagate_content_influence() {
        let mut n = Netlist::new("m");
        let tainted = n.input("tainted", 8);
        let en = n.input("en", 1);
        let waddr = n.lit(2, 0);
        let mem = n.memory("ram", 4, 8, StateMeta::memory(true));
        n.mem_write(mem, en, waddr, tainted);
        let raddr = n.lit(2, 1);
        let rd = n.mem_read(mem, raddr);
        let sink = n.reg("sink", 8, Some(Bv::zero(8)), StateMeta::ip_register());
        n.connect_reg(sink, rd);
        n.mark_output("sink", sink.wire());

        let g = InfluenceGraph::build(&n);
        let cl = g.closure([n.find("tainted").unwrap().id()], []);
        assert_eq!(cl.depth(StateHandle::Mem(n.find_mem("ram").unwrap())), Some(1));
        // The sink reads the memory *content*, one clock step behind it.
        assert_eq!(cl.depth(handle(&n, "sink")), Some(2));
    }

    #[test]
    fn lattice_classifies_all_four_points() {
        let mut n = Netlist::new("l");
        let v = n.input("victim_in", 1);
        let a = n.input("attacker_in", 1);
        let both = n.or(v, a);
        let rv = n.reg("only_v", 1, Some(Bv::zero(1)), StateMeta::ip_register());
        let ra = n.reg("only_a", 1, Some(Bv::zero(1)), StateMeta::ip_register());
        let rb = n.reg("shared", 1, Some(Bv::zero(1)), StateMeta::interconnect());
        let rc = n.reg("idle", 1, Some(Bv::zero(1)), StateMeta::peripheral());
        n.connect_reg(rv, v);
        n.connect_reg(ra, a);
        n.connect_reg(rb, both);
        n.connect_reg(rc, rc.wire());
        for (nm, r) in [("only_v", rv), ("only_a", ra), ("shared", rb), ("idle", rc)] {
            n.mark_output(nm, r.wire());
        }

        let g = InfluenceGraph::build(&n);
        let lat = InfluenceLattice::build(
            &g,
            [n.find("victim_in").unwrap().id()],
            [],
            [n.find("attacker_in").unwrap().id()],
            [],
        );
        assert_eq!(lat.of(handle(&n, "only_v")), Influence::VictimOnly);
        assert_eq!(lat.of(handle(&n, "only_a")), Influence::AttackerOnly);
        assert_eq!(lat.of(handle(&n, "shared")), Influence::Both);
        assert_eq!(lat.of(handle(&n, "idle")), Influence::Clean);
    }

    #[test]
    fn one_step_sources_classify_inputs_and_elements() {
        let n = pipeline();
        let g = InfluenceGraph::build(&n);
        let (inputs, elems) = g.one_step_sources(handle(&n, "a"));
        assert_eq!(inputs, &[n.find("port").unwrap().id()]);
        assert!(elems.is_empty());
        let (inputs, elems) = g.one_step_sources(handle(&n, "b"));
        assert!(inputs.is_empty());
        assert_eq!(elems, vec![handle(&n, "a")]);
    }
}
