//! Property-based tests: `Bv` semantics against a `u64` reference model.

use proptest::prelude::*;
use ssc_netlist::Bv;

fn masked(width: u32, v: u64) -> u64 {
    v & Bv::mask_for(width)
}

proptest! {
    #[test]
    fn construction_masks(width in 1u32..=64, v: u64) {
        let bv = Bv::new(width, v);
        prop_assert_eq!(bv.val(), masked(width, v));
        prop_assert_eq!(bv.width(), width);
    }

    #[test]
    fn add_matches_wrapping(width in 1u32..=64, a: u64, b: u64) {
        let x = Bv::new(width, a);
        let y = Bv::new(width, b);
        prop_assert_eq!(x.add(y).val(), masked(width, x.val().wrapping_add(y.val())));
    }

    #[test]
    fn sub_is_add_of_negation(width in 1u32..=64, a: u64, b: u64) {
        let x = Bv::new(width, a);
        let y = Bv::new(width, b);
        let neg_y = y.not().add(Bv::new(width, 1));
        prop_assert_eq!(x.sub(y), x.add(neg_y));
    }

    #[test]
    fn mul_matches_wrapping(width in 1u32..=64, a: u64, b: u64) {
        let x = Bv::new(width, a);
        let y = Bv::new(width, b);
        prop_assert_eq!(x.mul(y).val(), masked(width, x.val().wrapping_mul(y.val())));
    }

    #[test]
    fn bitwise_ops_match(width in 1u32..=64, a: u64, b: u64) {
        let x = Bv::new(width, a);
        let y = Bv::new(width, b);
        prop_assert_eq!(x.and(y).val(), x.val() & y.val());
        prop_assert_eq!(x.or(y).val(), x.val() | y.val());
        prop_assert_eq!(x.xor(y).val(), x.val() ^ y.val());
        prop_assert_eq!(x.not().val(), masked(width, !x.val()));
    }

    #[test]
    fn comparisons_match(width in 1u32..=64, a: u64, b: u64) {
        let x = Bv::new(width, a);
        let y = Bv::new(width, b);
        prop_assert_eq!(x.ult(y).is_true(), x.val() < y.val());
        prop_assert_eq!(x.eq_bit(y).is_true(), x.val() == y.val());
        prop_assert_eq!(x.slt(y).is_true(), x.as_signed() < y.as_signed());
    }

    #[test]
    fn shifts_match(width in 1u32..=64, a: u64, amount in 0u32..80) {
        let x = Bv::new(width, a);
        let expected_shl = if amount >= width { 0 } else { masked(width, x.val() << amount) };
        let expected_shr = if amount >= width { 0 } else { x.val() >> amount };
        prop_assert_eq!(x.shl(amount).val(), expected_shl);
        prop_assert_eq!(x.shr(amount).val(), expected_shr);
        let sar_amount = amount.min(width - 1);
        prop_assert_eq!(x.sar(amount).val(), masked(width, (x.as_signed() >> sar_amount) as u64));
    }

    #[test]
    fn slice_concat_roundtrip(width in 2u32..=64, a: u64, cut in 1u32..64) {
        prop_assume!(cut < width);
        let x = Bv::new(width, a);
        let hi = x.slice(width - 1, cut);
        let lo = x.slice(cut - 1, 0);
        prop_assert_eq!(hi.concat(lo), x);
    }

    #[test]
    fn extensions_preserve_value(width in 1u32..=32, a: u64, extra in 0u32..=32) {
        let x = Bv::new(width, a);
        prop_assert_eq!(x.zext(width + extra).val(), x.val());
        prop_assert_eq!(x.sext(width + extra).as_signed(), x.as_signed());
    }

    #[test]
    fn reductions_match(width in 1u32..=64, a: u64) {
        let x = Bv::new(width, a);
        prop_assert_eq!(x.reduce_or().is_true(), x.val() != 0);
        prop_assert_eq!(x.reduce_and().is_true(), x.val() == Bv::mask_for(width));
        prop_assert_eq!(x.reduce_xor().is_true(), x.val().count_ones() % 2 == 1);
    }

    #[test]
    fn signed_roundtrip(width in 1u32..=64, a: u64) {
        let x = Bv::new(width, a);
        let s = x.as_signed();
        prop_assert_eq!(Bv::new(width, s as u64), x);
    }
}
