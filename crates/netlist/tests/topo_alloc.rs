//! `comb_topo_order` allocates O(1) vectors, not O(E): the DFS used to
//! re-collect a node's combinational fan-in into a fresh `Vec` on *every*
//! stack examination (once per child plus once to pop), so a deep operator
//! chain paid thousands of heap allocations per walk. The adjacency is now
//! built once as a flat CSR table.
//!
//! Asserted with a counting global allocator; this file deliberately holds
//! a single `#[test]` so no sibling test thread can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ssc_netlist::{analysis, Netlist};

/// Counts every allocation path (alloc, alloc_zeroed, realloc — a growing
/// `Vec` reallocates rather than allocating fresh).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A deep two-operand chain: every node is examined three times by the DFS
/// (child 0, child 1, pop), which is exactly the re-collection pattern the
/// old implementation paid a fresh `Vec` for.
fn deep_chain(depth: usize) -> Netlist {
    let mut n = Netlist::new("chain");
    let mut prev = n.input("x", 32);
    let one = n.lit(32, 1);
    for _ in 0..depth {
        prev = n.add(prev, one);
    }
    n.mark_output("y", prev);
    n
}

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn topo_order_allocation_is_independent_of_edge_count() {
    const DEPTH: usize = 2000;
    let n = deep_chain(DEPTH);

    // Warm-up outside the measurement window (nothing is cached, but this
    // keeps the pattern honest if memoisation is ever added).
    let order = analysis::comb_topo_order(&n).unwrap();
    assert_eq!(order.len(), n.num_nodes());

    let before = allocations();
    let order = analysis::comb_topo_order(&n).unwrap();
    let walk_allocs = allocations() - before;
    assert_eq!(order.len(), n.num_nodes());

    // CSR table + marks + order + stack, each with amortised growth: a few
    // dozen allocations. The old per-examination collect paid one `Vec`
    // per (node, child) step — over 3x `DEPTH` here.
    assert!(
        walk_allocs < 200,
        "comb_topo_order allocated {walk_allocs} times on a {DEPTH}-deep chain; \
         adjacency must be collected once, not per stack examination"
    );
}
