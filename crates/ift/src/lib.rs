//! # ssc-ift — information flow tracking baseline
//!
//! The comparison point of the paper's Sec. 5: hardware information flow
//! tracking in the spirit of CellIFT, implemented as a netlist-to-netlist
//! transform over the `ssc-netlist` IR:
//!
//! - [`instrument`]: every signal gains a shadow taint word with precise
//!   cell rules for bitwise logic and muxes (arithmetic saturates — see the
//!   module docs for the soundness discussion),
//! - [`dynamic::TaintSim`]: dynamic IFT — concrete simulation with taint
//!   tracking, the classic *testing* flavour of IFT that only covers the
//!   stimuli you run ([`dynamic::BatchTaintSim`] runs 64 seeded trials per
//!   netlist pass on the bit-sliced batch engine),
//! - [`bmc::taint_bmc`]: IFT as bounded model checking — exhaustive up to a
//!   depth `k`, but blind to value conditions (firmware constraints) and
//!   forced to grow its window until a flow completes, in contrast to
//!   UPEC-SSC's fixed 2-cycle property.
//!
//! # Example
//!
//! ```
//! use ssc_netlist::{Netlist, Bv, StateMeta};
//! use ssc_ift::{instrument, bmc::{taint_bmc, Sink}};
//!
//! let mut n = Netlist::new("pipe");
//! let a = n.input("a", 4);
//! let r = n.reg("r", 4, Some(Bv::zero(4)), StateMeta::default());
//! n.connect_reg(r, a);
//! n.mark_output("q", r.wire());
//!
//! let inst = instrument(&n, &["a"]);
//! let res = taint_bmc(&inst, &[Sink::Reg("r".into())], 4);
//! assert_eq!(res.flow_at, Some(1));
//! ```

#![warn(missing_docs)]

pub mod bmc;
pub mod dynamic;
mod instrument;

pub use instrument::{instrument, Instrumented};
