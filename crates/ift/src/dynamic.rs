//! Dynamic taint simulation over an instrumented netlist.
//!
//! Two front-ends share the instrumented design: [`TaintSim`] runs one
//! seeded trial per netlist walk, [`BatchTaintSim<W>`](BatchTaintSim) runs
//! `64·W` — one trial per bit-sliced simulation lane (64 at the default
//! `W = 1`, 256 at `W = 4`) — which is what makes the dynamic-IFT
//! Monte-Carlo baseline (experiment E8) comparable in throughput to the
//! formal procedure it is benchmarked against.

use ssc_netlist::lanes::Block;
use ssc_netlist::{Bv, MemId, Netlist};
use ssc_sim::{BatchSim, Sim};

use crate::instrument::Instrumented;

/// A simulator wrapper with taint-aware helpers.
///
/// The instrumented netlist preserves all original names, so ordinary
/// stimulus code keeps working; taint is driven via the `t$<input>` inputs
/// and read back via `t$`-prefixed signals or the shadow memories.
pub struct TaintSim<'n> {
    sim: Sim<'n>,
    netlist: &'n Netlist,
}

impl<'n> TaintSim<'n> {
    /// Creates a simulation of the instrumented design.
    ///
    /// # Panics
    ///
    /// Panics if the instrumented netlist fails validation (it cannot, by
    /// construction).
    pub fn new(inst: &'n Instrumented) -> Self {
        let sim = Sim::new(&inst.netlist).expect("instrumented netlist is checked");
        TaintSim { sim, netlist: &inst.netlist }
    }

    /// Access the underlying simulator.
    pub fn sim(&mut self) -> &mut Sim<'n> {
        &mut self.sim
    }

    /// Drives an original input by name.
    pub fn set_input(&mut self, name: &str, value: u64) {
        self.sim.set_input(name, value);
    }

    /// Drives the taint of a source input. Mask bits beyond the port width
    /// are ignored, so `u64::MAX` means "every bit tainted" for any port.
    ///
    /// # Panics
    ///
    /// Panics if `name` was not declared a taint source.
    pub fn set_taint(&mut self, source: &str, mask: u64) {
        let port = format!("t${source}");
        let w = self
            .netlist
            .find(&port)
            .unwrap_or_else(|| panic!("`{source}` is not a taint source"));
        self.sim.set_input(&port, mask & Bv::mask_for(w.width()));
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.sim.step();
    }

    /// Advances `n` cycles.
    pub fn step_n(&mut self, n: u64) {
        self.sim.step_n(n);
    }

    /// The taint word of a named signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal has no taint companion (only named signals of
    /// the original design do).
    pub fn taint_of(&mut self, name: &str) -> Bv {
        self.sim.peek_name(&format!("t${name}"))
    }

    /// The value of a named signal.
    pub fn value_of(&mut self, name: &str) -> Bv {
        self.sim.peek_name(name)
    }

    /// `true` if any word of the shadow memory for `mem_name` is tainted.
    ///
    /// # Panics
    ///
    /// Panics if the memory does not exist.
    pub fn mem_tainted(&mut self, mem_name: &str) -> bool {
        let mid: MemId = self
            .netlist
            .find_mem(&format!("t${mem_name}"))
            .unwrap_or_else(|| panic!("no shadow memory for `{mem_name}`"));
        let words = self.netlist.mem(mid).words;
        (0..words).any(|i| !self.sim.read_mem(mid, i).is_zero())
    }

    /// Count of tainted words in the shadow memory for `mem_name`.
    pub fn tainted_words(&mut self, mem_name: &str) -> u32 {
        let mid: MemId = self
            .netlist
            .find_mem(&format!("t${mem_name}"))
            .unwrap_or_else(|| panic!("no shadow memory for `{mem_name}`"));
        let words = self.netlist.mem(mid).words;
        (0..words).filter(|&i| !self.sim.read_mem(mid, i).is_zero()).count() as u32
    }

    /// `true` if the named register's taint companion is non-zero.
    pub fn reg_tainted(&mut self, reg_name: &str) -> bool {
        !self.taint_of(reg_name).is_zero()
    }
}

/// A `64·W`-lane taint simulator: one independent seeded taint trial per
/// bit-sliced lane.
///
/// The API mirrors [`TaintSim`] with per-lane variants; taint sinks are
/// read back as *lane masks* ([`Block<W>`] — lane `l` set = the flow was
/// observed in trial `l`), so one netlist pass answers `64·W` Monte-Carlo
/// trials of the dynamic IFT baseline.
pub struct BatchTaintSim<'n, const W: usize = 1> {
    sim: BatchSim<'n, W>,
    netlist: &'n Netlist,
}

impl<'n, const W: usize> BatchTaintSim<'n, W> {
    /// Number of independent taint trials (simulation lanes) per walk.
    pub const LANES: usize = BatchSim::<'n, W>::LANES;

    /// Creates a `64·W`-lane simulation of the instrumented design.
    ///
    /// # Panics
    ///
    /// Panics if the instrumented netlist fails validation (it cannot, by
    /// construction).
    pub fn new(inst: &'n Instrumented) -> Self {
        let sim = BatchSim::new(&inst.netlist).expect("instrumented netlist is checked");
        BatchTaintSim { sim, netlist: &inst.netlist }
    }

    /// Access the underlying batch simulator.
    pub fn sim(&mut self) -> &mut BatchSim<'n, W> {
        &mut self.sim
    }

    /// Drives an original input by name, broadcast to all lanes.
    pub fn set_input(&mut self, name: &str, value: u64) {
        self.sim.set_input(name, value);
    }

    /// Drives an original input with one value per lane
    /// (`values.len()` must be [`Self::LANES`]).
    pub fn set_input_lanes(&mut self, name: &str, values: &[u64]) {
        self.sim.set_input_lanes(name, values);
    }

    /// Drives the taint of a source input in all lanes. Mask bits beyond
    /// the port width are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `name` was not declared a taint source.
    pub fn set_taint(&mut self, source: &str, mask: u64) {
        let (port, w) = self.taint_port(source);
        // Broadcast fast-path: one splat per bit position, no per-lane
        // packing (mirrors `BatchSim::set_input`).
        self.sim.set_input(&port, mask & Bv::mask_for(w.width()));
    }

    /// Resolves the shadow input port of a taint source.
    fn taint_port(&self, source: &str) -> (String, ssc_netlist::Wire) {
        let port = format!("t${source}");
        let w = self
            .netlist
            .find(&port)
            .unwrap_or_else(|| panic!("`{source}` is not a taint source"));
        (port, w)
    }

    /// Drives the taint of a source input with one mask per lane. Mask
    /// bits beyond the port width are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `name` was not declared a taint source.
    pub fn set_taint_lanes(&mut self, source: &str, masks: &[u64]) {
        let (port, w) = self.taint_port(source);
        let mut vals = masks.to_vec();
        for v in &mut vals {
            *v &= Bv::mask_for(w.width());
        }
        self.sim.set_input_lanes(&port, &vals);
    }

    /// Advances one cycle in every lane.
    pub fn step(&mut self) {
        self.sim.step();
    }

    /// Advances `n` cycles.
    pub fn step_n(&mut self, n: u64) {
        self.sim.step_n(n);
    }

    /// The taint word of a named signal in one lane.
    ///
    /// # Panics
    ///
    /// Panics if the signal has no taint companion.
    pub fn taint_of_lane(&mut self, name: &str, lane: usize) -> Bv {
        let w = self
            .netlist
            .find(&format!("t${name}"))
            .unwrap_or_else(|| panic!("no taint companion for `{name}`"));
        self.sim.peek_lane(w, lane)
    }

    /// The lane mask of trials in which **any** word of the shadow memory
    /// for `mem_name` is tainted.
    ///
    /// # Panics
    ///
    /// Panics if the memory does not exist.
    pub fn mem_tainted_lanes(&mut self, mem_name: &str) -> Block<W> {
        let mid: MemId = self
            .netlist
            .find_mem(&format!("t${mem_name}"))
            .unwrap_or_else(|| panic!("no shadow memory for `{mem_name}`"));
        let words = self.netlist.mem(mid).words;
        let mut mask = Block::ZERO;
        for i in 0..words {
            for l in 0..Self::LANES {
                if !mask.bit(l) && !self.sim.read_mem_lane(mid, i, l).is_zero() {
                    mask.set_bit(l, true);
                }
            }
            if mask == Block::ONES {
                break;
            }
        }
        mask
    }

    /// The lane mask of trials in which the named register's taint
    /// companion is non-zero.
    ///
    /// # Panics
    ///
    /// Panics if the register has no taint companion.
    pub fn reg_tainted_lanes(&mut self, reg_name: &str) -> Block<W> {
        let w = self
            .netlist
            .find(&format!("t${reg_name}"))
            .unwrap_or_else(|| panic!("no taint companion for `{reg_name}`"));
        let mut mask = Block::ZERO;
        for (l, &v) in self.sim.peek_lanes(w).iter().enumerate() {
            if v != 0 {
                mask.set_bit(l, true);
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::instrument;
    use ssc_netlist::StateMeta;

    #[test]
    fn taint_sim_tracks_memory_pollution() {
        let mut n = Netlist::new("t");
        let we = n.input("we", 1);
        let addr = n.input("addr", 2);
        let data = n.input("data", 8);
        let mem = n.memory("ram", 4, 8, StateMeta::memory(true));
        n.mem_write(mem, we, addr, data);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);
        let inst = instrument(&n, &["data"]);

        let mut ts = TaintSim::new(&inst);
        assert!(!ts.mem_tainted("ram"));
        ts.set_input("we", 1);
        ts.set_input("addr", 3);
        ts.set_input("data", 9);
        ts.set_taint("data", 0xFF);
        ts.step();
        assert!(ts.mem_tainted("ram"));
        assert_eq!(ts.tainted_words("ram"), 1);
        // Overwrite with clean data clears the taint.
        ts.set_taint("data", 0);
        ts.step();
        assert_eq!(ts.tainted_words("ram"), 0);
    }

    #[test]
    fn batch_taint_sim_isolates_lanes() {
        let mut n = Netlist::new("t");
        let we = n.input("we", 1);
        let addr = n.input("addr", 2);
        let data = n.input("data", 8);
        let mem = n.memory("ram", 4, 8, StateMeta::memory(true));
        n.mem_write(mem, we, addr, data);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);
        let inst = instrument(&n, &["data"]);

        let mut ts = BatchTaintSim::<1>::new(&inst);
        ts.set_input("we", 1);
        ts.set_input("addr", 3);
        ts.set_input("data", 9);
        // Taint the data source in odd lanes only.
        let mut masks = [0u64; 64];
        for (l, m) in masks.iter_mut().enumerate() {
            *m = if l % 2 == 1 { u64::MAX } else { 0 };
        }
        ts.set_taint_lanes("data", &masks);
        ts.step();
        let tainted = ts.mem_tainted_lanes("ram");
        assert_eq!(
            tainted,
            Block::from(0xAAAA_AAAA_AAAA_AAAA),
            "odd lanes only: {tainted:?}"
        );
        // Scalar cross-check on two representative lanes.
        let mut scalar = TaintSim::new(&inst);
        scalar.set_input("we", 1);
        scalar.set_input("addr", 3);
        scalar.set_input("data", 9);
        scalar.set_taint("data", u64::MAX);
        scalar.step();
        assert!(scalar.mem_tainted("ram"));
    }

    #[test]
    fn wide_batch_taint_sim_isolates_256_lanes() {
        const LANES: usize = BatchTaintSim::<4>::LANES;
        let mut n = Netlist::new("t");
        let we = n.input("we", 1);
        let addr = n.input("addr", 2);
        let data = n.input("data", 8);
        let mem = n.memory("ram", 4, 8, StateMeta::memory(true));
        n.mem_write(mem, we, addr, data);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);
        let inst = instrument(&n, &["data"]);

        let mut ts = BatchTaintSim::<4>::new(&inst);
        ts.set_input("we", 1);
        ts.set_input("addr", 3);
        ts.set_input("data", 9);
        // Taint every third lane — the pattern straddles all block words.
        let masks: Vec<u64> =
            (0..LANES).map(|l| if l % 3 == 0 { u64::MAX } else { 0 }).collect();
        ts.set_taint_lanes("data", &masks);
        ts.step();
        let tainted = ts.mem_tainted_lanes("ram");
        let reg_clean = ts.reg_tainted_lanes("rd");
        for l in 0..LANES {
            assert_eq!(tainted.bit(l), l % 3 == 0, "lane {l}");
        }
        // rd reads the tainted word combinationally in the same lanes.
        for l in 0..LANES {
            assert_eq!(reg_clean.bit(l), l % 3 == 0, "rd taint lane {l}");
        }
    }
}
