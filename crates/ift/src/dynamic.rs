//! Dynamic taint simulation over an instrumented netlist.

use ssc_netlist::{Bv, MemId, Netlist};
use ssc_sim::Sim;

use crate::instrument::Instrumented;

/// A simulator wrapper with taint-aware helpers.
///
/// The instrumented netlist preserves all original names, so ordinary
/// stimulus code keeps working; taint is driven via the `t$<input>` inputs
/// and read back via `t$`-prefixed signals or the shadow memories.
pub struct TaintSim<'n> {
    sim: Sim<'n>,
    netlist: &'n Netlist,
}

impl<'n> TaintSim<'n> {
    /// Creates a simulation of the instrumented design.
    ///
    /// # Panics
    ///
    /// Panics if the instrumented netlist fails validation (it cannot, by
    /// construction).
    pub fn new(inst: &'n Instrumented) -> Self {
        let sim = Sim::new(&inst.netlist).expect("instrumented netlist is checked");
        TaintSim { sim, netlist: &inst.netlist }
    }

    /// Access the underlying simulator.
    pub fn sim(&mut self) -> &mut Sim<'n> {
        &mut self.sim
    }

    /// Drives an original input by name.
    pub fn set_input(&mut self, name: &str, value: u64) {
        self.sim.set_input(name, value);
    }

    /// Drives the taint of a source input (all bits = `mask`).
    ///
    /// # Panics
    ///
    /// Panics if `name` was not declared a taint source.
    pub fn set_taint(&mut self, source: &str, mask: u64) {
        self.sim.set_input(&format!("t${source}"), mask);
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.sim.step();
    }

    /// Advances `n` cycles.
    pub fn step_n(&mut self, n: u64) {
        self.sim.step_n(n);
    }

    /// The taint word of a named signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal has no taint companion (only named signals of
    /// the original design do).
    pub fn taint_of(&mut self, name: &str) -> Bv {
        self.sim.peek_name(&format!("t${name}"))
    }

    /// The value of a named signal.
    pub fn value_of(&mut self, name: &str) -> Bv {
        self.sim.peek_name(name)
    }

    /// `true` if any word of the shadow memory for `mem_name` is tainted.
    ///
    /// # Panics
    ///
    /// Panics if the memory does not exist.
    pub fn mem_tainted(&mut self, mem_name: &str) -> bool {
        let mid: MemId = self
            .netlist
            .find_mem(&format!("t${mem_name}"))
            .unwrap_or_else(|| panic!("no shadow memory for `{mem_name}`"));
        let words = self.netlist.mem(mid).words;
        (0..words).any(|i| !self.sim.read_mem(mid, i).is_zero())
    }

    /// Count of tainted words in the shadow memory for `mem_name`.
    pub fn tainted_words(&mut self, mem_name: &str) -> u32 {
        let mid: MemId = self
            .netlist
            .find_mem(&format!("t${mem_name}"))
            .unwrap_or_else(|| panic!("no shadow memory for `{mem_name}`"));
        let words = self.netlist.mem(mid).words;
        (0..words).filter(|&i| !self.sim.read_mem(mid, i).is_zero()).count() as u32
    }

    /// `true` if the named register's taint companion is non-zero.
    pub fn reg_tainted(&mut self, reg_name: &str) -> bool {
        !self.taint_of(reg_name).is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::instrument;
    use ssc_netlist::StateMeta;

    #[test]
    fn taint_sim_tracks_memory_pollution() {
        let mut n = Netlist::new("t");
        let we = n.input("we", 1);
        let addr = n.input("addr", 2);
        let data = n.input("data", 8);
        let mem = n.memory("ram", 4, 8, StateMeta::memory(true));
        n.mem_write(mem, we, addr, data);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);
        let inst = instrument(&n, &["data"]);

        let mut ts = TaintSim::new(&inst);
        assert!(!ts.mem_tainted("ram"));
        ts.set_input("we", 1);
        ts.set_input("addr", 3);
        ts.set_input("data", 9);
        ts.set_taint("data", 0xFF);
        ts.step();
        assert!(ts.mem_tainted("ram"));
        assert_eq!(ts.tainted_words("ram"), 1);
        // Overwrite with clean data clears the taint.
        ts.set_taint("data", 0);
        ts.step();
        assert_eq!(ts.tainted_words("ram"), 0);
    }
}
