//! Taint-reachability bounded model checking.
//!
//! The "IFT as formal verification" baseline the paper discusses in Sec. 5:
//! unroll the taint-instrumented design from a clean (taint-free) state
//! with the sources tainted, and ask the SAT solver whether taint can reach
//! a sink within `k` cycles. Contrast with UPEC-SSC: the taint abstraction
//! cannot see the *conditions* under which a flow is benign (e.g. firmware
//! constraints), and its window must grow until the flow completes, whereas
//! UPEC-SSC decides with a 2-cycle property.

use ssc_aig::words;
use ssc_ipc::{Ipc, PropertyResult};
use ssc_netlist::Node;

use crate::instrument::Instrumented;

/// A taint sink to monitor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Sink {
    /// A register of the *original* design, by name.
    Reg(String),
    /// A whole memory of the original design, by name.
    Mem(String),
}

/// Result of a taint-BMC run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaintBmcResult {
    /// The smallest cycle count at which taint can reach a sink, if any
    /// within the bound.
    pub flow_at: Option<usize>,
    /// Number of solver checks performed.
    pub checks: usize,
}

/// Checks whether taint can flow from the instrumented sources to any of
/// `sinks` within `max_k` cycles.
///
/// Sources are fully tainted on every cycle; all shadow state starts clean;
/// everything else (values, initial state) is symbolic — so a reported flow
/// is a *may*-flow over all behaviours, and the absence of a flow within
/// `k` is exhaustive up to `k`.
///
/// # Panics
///
/// Panics if a sink name does not exist in the original design.
pub fn taint_bmc(inst: &Instrumented, sinks: &[Sink], max_k: usize) -> TaintBmcResult {
    let n = &inst.netlist;
    let mut ipc = Ipc::new(n);
    let mut checks = 0;

    // Collect shadow-state elements (taint registers and memories).
    let taint_regs: Vec<ssc_netlist::Wire> = n
        .iter_nodes()
        .filter_map(|(id, node)| match node {
            Node::Reg(info) if info.name.starts_with("t$") => Some(n.wire_of(id)),
            _ => None,
        })
        .collect();
    let taint_mems: Vec<ssc_netlist::MemId> = n
        .iter_mems()
        .filter(|(_, m)| m.name.starts_with("t$"))
        .map(|(mid, _)| mid)
        .collect();

    // Resolve sinks to shadow elements.
    enum SinkRef {
        Reg(ssc_netlist::Wire),
        Mem(ssc_netlist::MemId, u32),
    }
    let sink_refs: Vec<SinkRef> = sinks
        .iter()
        .map(|s| match s {
            Sink::Reg(name) => {
                let w = n
                    .find(&format!("t${name}"))
                    .unwrap_or_else(|| panic!("sink register `{name}` not found"));
                SinkRef::Reg(w)
            }
            Sink::Mem(name) => {
                let mid = n
                    .find_mem(&format!("t${name}"))
                    .unwrap_or_else(|| panic!("sink memory `{name}` not found"));
                let words = n.mem(mid).words;
                SinkRef::Mem(mid, words)
            }
        })
        .collect();

    for k in 1..=max_k {
        ipc.unroller_mut().ensure_cycle(k - 1);
        let mut assumptions = Vec::new();

        // Clean shadow state at cycle 0.
        for w in &taint_regs {
            let word = ipc.unroller().reg_state(w.id(), 0).clone();
            let aig = ipc.unroller_mut().aig_mut();
            assumptions.push(words::eq_const(aig, &word, 0));
        }
        for &mid in &taint_mems {
            let words_n = n.mem(mid).words;
            for i in 0..words_n {
                let word = ipc.unroller().mem_word_state(mid, i, 0).clone();
                let aig = ipc.unroller_mut().aig_mut();
                assumptions.push(words::eq_const(aig, &word, 0));
            }
        }

        // Sources fully tainted on every cycle.
        for (_, tw) in &inst.taint_inputs {
            for c in 0..k {
                let word = ipc.unroller().input(*tw, c).clone();
                let aig = ipc.unroller_mut().aig_mut();
                let ones = ssc_netlist::Bv::ones(word.len() as u32);
                let cst = words::constant(aig, ones);
                assumptions.push(words::eq(aig, &word, &cst));
            }
        }

        // Goal: all sinks clean at cycle k (violated = flow found).
        let mut clean_terms = Vec::new();
        for s in &sink_refs {
            match s {
                SinkRef::Reg(w) => {
                    let word = ipc.unroller().reg_state(w.id(), k).clone();
                    let aig = ipc.unroller_mut().aig_mut();
                    clean_terms.push(words::eq_const(aig, &word, 0));
                }
                SinkRef::Mem(mid, words_n) => {
                    for i in 0..*words_n {
                        let word = ipc.unroller().mem_word_state(*mid, i, k).clone();
                        let aig = ipc.unroller_mut().aig_mut();
                        clean_terms.push(words::eq_const(aig, &word, 0));
                    }
                }
            }
        }
        let goal = {
            let aig = ipc.unroller_mut().aig_mut();
            aig.and_all(clean_terms)
        };

        checks += 1;
        if ipc.check(&assumptions, goal) == PropertyResult::Violated {
            return TaintBmcResult { flow_at: Some(k), checks };
        }
    }
    TaintBmcResult { flow_at: None, checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::instrument;
    use ssc_netlist::{Bv, Netlist, StateMeta};

    /// in -> r1 -> r2 pipeline: taint needs exactly 2 cycles to reach r2.
    #[test]
    fn flow_depth_is_detected_exactly() {
        let mut n = Netlist::new("pipe");
        let a = n.input("a", 4);
        let r1 = n.reg("r1", 4, Some(Bv::zero(4)), StateMeta::default());
        let r2 = n.reg("r2", 4, Some(Bv::zero(4)), StateMeta::default());
        n.connect_reg(r1, a);
        n.connect_reg(r2, r1.wire());
        n.mark_output("q", r2.wire());
        let inst = instrument(&n, &["a"]);
        let res = taint_bmc(&inst, &[Sink::Reg("r2".into())], 4);
        assert_eq!(res.flow_at, Some(2));
        let res1 = taint_bmc(&inst, &[Sink::Reg("r1".into())], 4);
        assert_eq!(res1.flow_at, Some(1));
    }

    /// A sink fed only by constants can never be tainted.
    #[test]
    fn isolated_sink_never_flows() {
        let mut n = Netlist::new("iso");
        let a = n.input("a", 4);
        let r = n.reg("r", 4, Some(Bv::zero(4)), StateMeta::default());
        let one = n.lit(4, 1);
        let next = n.add(r.wire(), one);
        n.connect_reg(r, next);
        let unused = n.not(a);
        n.set_name(unused, "unused");
        n.mark_output("q", r.wire());
        let inst = instrument(&n, &["a"]);
        let res = taint_bmc(&inst, &[Sink::Reg("r".into())], 5);
        assert_eq!(res.flow_at, None);
        assert_eq!(res.checks, 5);
    }

    /// Flows gated by a value condition are still *may*-flows for IFT —
    /// the abstraction cannot use value constraints the way UPEC-SSC does.
    #[test]
    fn gated_flow_is_reported_as_may_flow() {
        let mut n = Netlist::new("gated");
        let secret = n.input("secret", 4);
        let gate = n.input("gate", 1);
        let r = n.reg("r", 4, Some(Bv::zero(4)), StateMeta::default());
        let gated = n.mux(gate, secret, r.wire());
        n.connect_reg(r, gated);
        n.mark_output("q", r.wire());
        let inst = instrument(&n, &["secret"]);
        let res = taint_bmc(&inst, &[Sink::Reg("r".into())], 3);
        assert_eq!(res.flow_at, Some(1), "may-flow through the open gate");
    }

    /// Memory sinks: a tainted store is found at depth 1.
    #[test]
    fn memory_sink_flow() {
        let mut n = Netlist::new("memflow");
        let we = n.input("we", 1);
        let addr = n.input("addr", 2);
        let data = n.input("data", 8);
        let mem = n.memory("ram", 4, 8, StateMeta::memory(true));
        n.mem_write(mem, we, addr, data);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);
        let inst = instrument(&n, &["data"]);
        let res = taint_bmc(&inst, &[Sink::Mem("ram".into())], 3);
        assert_eq!(res.flow_at, Some(1));
    }
}
