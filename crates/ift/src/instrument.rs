//! Taint instrumentation: rewriting a netlist so every signal carries a
//! shadow *taint* word (one taint bit per payload bit), in the style of
//! CellIFT's cell-level information flow tracking.
//!
//! Precision notes (documented deviations are all *sound*, i.e. they may
//! over-taint but never under-taint data flows; address-taint on memory
//! writes is handled by tainting the addressed word and saturating on
//! tainted enables):
//!
//! * bitwise gates and muxes use precise cell rules,
//! * arithmetic saturates: any tainted operand bit taints the whole result,
//! * dynamic shifts with tainted amounts saturate,
//! * memory reads with tainted addresses saturate.

use std::collections::HashMap;

use ssc_netlist::{Bv, MemId, Netlist, Node, Op, SignalId, StateMeta, Wire};

/// A taint-instrumented design.
pub struct Instrumented {
    /// The combined netlist: original logic plus shadow taint logic. All
    /// original signal/memory names are preserved; shadow elements are
    /// named `t$<original>`.
    pub netlist: Netlist,
    value_map: HashMap<SignalId, Wire>,
    taint_map: HashMap<SignalId, Wire>,
    mem_map: HashMap<MemId, MemId>,
    mem_taint: HashMap<MemId, MemId>,
    /// Taint-source inputs: `(original input name, taint input wire)`.
    pub taint_inputs: Vec<(String, Wire)>,
}

impl Instrumented {
    /// The rebuilt (value) wire for an original signal.
    pub fn value_of(&self, orig: SignalId) -> Wire {
        self.value_map[&orig]
    }

    /// The taint wire for an original signal.
    pub fn taint_of(&self, orig: SignalId) -> Wire {
        self.taint_map[&orig]
    }

    /// The rebuilt memory for an original memory.
    pub fn mem_of(&self, orig: MemId) -> MemId {
        self.mem_map[&orig]
    }

    /// The shadow taint memory for an original memory.
    pub fn mem_taint_of(&self, orig: MemId) -> MemId {
        self.mem_taint[&orig]
    }
}

fn fill(n: &mut Netlist, bit: Wire, width: u32) -> Wire {
    assert_eq!(bit.width(), 1);
    if width == 1 {
        return bit;
    }
    let ones = n.lit(width, u64::MAX);
    let zero = n.lit(width, 0);
    n.mux(bit, ones, zero)
}

fn any(n: &mut Netlist, w: Wire) -> Wire {
    n.reduce_or(w)
}

/// Instruments `src`, making the inputs named in `sources` taint sources:
/// each gets a fresh taint input `t$<name>` the testbench can drive.
///
/// # Panics
///
/// Panics if a source name does not exist or is not an input, or if the
/// source netlist fails validation.
pub fn instrument(src: &Netlist, sources: &[&str]) -> Instrumented {
    src.check().expect("instrument requires a checked netlist");
    for s in sources {
        let w = src.find(s).unwrap_or_else(|| panic!("taint source `{s}` not found"));
        assert!(
            matches!(src.node(w.id()), Node::Input { .. }),
            "taint source `{s}` must be a primary input"
        );
    }

    let mut out = Netlist::new(format!("{}_ift", src.name()));
    let mut value_map: HashMap<SignalId, Wire> = HashMap::new();
    let mut taint_map: HashMap<SignalId, Wire> = HashMap::new();
    let mut mem_map: HashMap<MemId, MemId> = HashMap::new();
    let mut mem_taint: HashMap<MemId, MemId> = HashMap::new();
    let mut taint_inputs = Vec::new();

    // Memories (value + shadow).
    for (mid, m) in src.iter_mems() {
        let v = out.memory(&m.name, m.words, m.width, m.meta);
        if let Some(init) = &m.init {
            out.set_mem_init(v, init.clone());
        }
        let t = out.memory(&format!("t${}", m.name), m.words, m.width, StateMeta::default());
        mem_map.insert(mid, v);
        mem_taint.insert(mid, t);
    }

    // Nodes in topological order (ids are creation-ordered; comb args refer
    // backwards, register nexts are fixed later).
    let mut reg_fixups: Vec<(SignalId, ssc_netlist::RegHandle, ssc_netlist::RegHandle)> =
        Vec::new();
    for (id, node) in src.iter_nodes() {
        let (value, taint) = match node {
            Node::Input { name, width } => {
                let v = out.input(name, *width);
                let t = if sources.contains(&name.as_str()) {
                    let tw = out.input(&format!("t${name}"), *width);
                    taint_inputs.push((name.clone(), tw));
                    tw
                } else {
                    out.lit(*width, 0)
                };
                (v, t)
            }
            Node::Const(bv) => (out.constant(*bv), out.lit(bv.width(), 0)),
            Node::Reg(info) => {
                let v = out.reg(&info.name, info.width, info.init, info.meta);
                let t = out.reg(
                    &format!("t${}", info.name),
                    info.width,
                    Some(Bv::zero(info.width)),
                    StateMeta::default(),
                );
                reg_fixups.push((id, v, t));
                (v.wire(), t.wire())
            }
            Node::Op { op, args, width } => {
                let vals: Vec<Wire> = args.iter().map(|a| value_map[a]).collect();
                let taints: Vec<Wire> = args.iter().map(|a| taint_map[a]).collect();
                let v = out.op_node(*op, vals.iter().map(|w| w.id()).collect(), *width);
                let t = taint_rule(&mut out, *op, &vals, &taints, *width, v);
                (v, t)
            }
            Node::MemRead { mem, addr, width } => {
                let addr_v = value_map[addr];
                let addr_t = taint_map[addr];
                let v = out.mem_read(mem_map[mem], addr_v);
                let t_word = out.mem_read(mem_taint[mem], addr_v);
                // Tainted address: cannot tell which word was read.
                let addr_any = any(&mut out, addr_t);
                let sat = fill(&mut out, addr_any, *width);
                let t = out.or(t_word, sat);
                (v, t)
            }
        };
        value_map.insert(id, value);
        taint_map.insert(id, taint);
    }

    // Register next-state connections.
    for (orig, v, t) in reg_fixups {
        let next = match src.node(orig) {
            Node::Reg(info) => info.next.expect("checked netlist"),
            _ => unreachable!(),
        };
        out.connect_reg(v, value_map[&next]);
        out.connect_reg(t, taint_map[&next]);
    }

    // Memory write ports (value + shadow).
    for (mid, m) in src.iter_mems() {
        for wp in &m.write_ports {
            let en_v = value_map[&wp.en];
            let en_t = taint_map[&wp.en];
            let addr_v = value_map[&wp.addr];
            let addr_t = taint_map[&wp.addr];
            let data_v = value_map[&wp.data];
            let data_t = taint_map[&wp.data];
            out.mem_write(mem_map[&mid], en_v, addr_v, data_v);
            // Shadow: write taint whenever the word *may* be written
            // (enable true or enable tainted); saturate the written taint
            // on tainted enable or tainted address.
            let en_any = any(&mut out, en_t);
            let addr_any = any(&mut out, addr_t);
            let en_port = out.or(en_v, en_any);
            let unsure = out.or(en_any, addr_any);
            let sat = fill(&mut out, unsure, m.width);
            let t_data = out.or(data_t, sat);
            out.mem_write(mem_taint[&mid], en_port, addr_v, t_data);
        }
    }

    // Outputs: original plus taint observation points.
    for (name, id) in src.iter_outputs() {
        out.mark_output(name, value_map[&id]);
        out.mark_output(&format!("t${name}"), taint_map[&id]);
    }

    out.check().expect("instrumented netlist must be valid");
    Instrumented { netlist: out, value_map, taint_map, mem_map, mem_taint, taint_inputs }
}

fn taint_rule(
    n: &mut Netlist,
    op: Op,
    vals: &[Wire],
    taints: &[Wire],
    width: u32,
    _value: Wire,
) -> Wire {
    let saturate_any = |n: &mut Netlist, taints: &[Wire]| -> Wire {
        let anys: Vec<Wire> = taints.iter().map(|t| n.reduce_or(*t)).collect();
        let any_t = n.or_all(anys);
        fill(n, any_t, width)
    };
    match op {
        Op::Not => taints[0],
        Op::And => {
            // t = (ta & tb) | (ta & b) | (tb & a)
            let tt = n.and(taints[0], taints[1]);
            let tb = n.and(taints[0], vals[1]);
            let ta = n.and(taints[1], vals[0]);
            let x = n.or(tt, tb);
            n.or(x, ta)
        }
        Op::Or => {
            // t = (ta & tb) | (ta & ~b) | (tb & ~a)
            let nb = n.not(vals[1]);
            let na = n.not(vals[0]);
            let tt = n.and(taints[0], taints[1]);
            let tb = n.and(taints[0], nb);
            let ta = n.and(taints[1], na);
            let x = n.or(tt, tb);
            n.or(x, ta)
        }
        Op::Xor => n.or(taints[0], taints[1]),
        Op::Add | Op::Sub | Op::Mul => saturate_any(n, taints),
        Op::Eq | Op::Ult | Op::Slt => {
            let anys: Vec<Wire> = taints.iter().map(|t| n.reduce_or(*t)).collect();
            n.or_all(anys)
        }
        Op::ShlC(a) => n.shl_c(taints[0], a),
        Op::ShrC(a) => n.shr_c(taints[0], a),
        Op::SarC(a) => n.sar_c(taints[0], a),
        Op::Shl | Op::Shr | Op::Sar => {
            // Shift the taint by the (untainted) amount; saturate when the
            // amount itself is tainted.
            let shifted = match op {
                Op::Shl => n.shl(taints[0], vals[1]),
                Op::Shr => n.shr(taints[0], vals[1]),
                _ => n.sar(taints[0], vals[1]),
            };
            let amt_any = n.reduce_or(taints[1]);
            let sat = fill(n, amt_any, width);
            n.or(shifted, sat)
        }
        Op::Slice { hi, lo } => n.slice(taints[0], hi, lo),
        Op::Concat => n.concat(taints[0], taints[1]),
        Op::Zext => n.zext(taints[0], width),
        Op::Sext => n.sext(taints[0], width),
        Op::Mux => {
            // Select untainted: taint of the chosen branch. Select tainted:
            // branch taints plus every bit where the branches differ.
            let chosen = n.mux(vals[0], taints[1], taints[2]);
            let both = n.or(taints[1], taints[2]);
            let differ = n.xor(vals[1], vals[2]);
            let worst0 = n.or(both, differ);
            let ts = n.reduce_or(taints[0]);
            n.mux(ts, worst0, chosen)
        }
        Op::ReduceOr | Op::ReduceAnd | Op::ReduceXor => n.reduce_or(taints[0]),
    }
}

/// Compile-time thread-safety audit: sharded dynamic-IFT Monte-Carlo
/// passes (`ssc-bench`'s batched trial loop over an `ssc_pool::Pool`)
/// share one [`Instrumented`] design by reference while every worker
/// builds its own `BatchTaintSim` — sound only while `Instrumented`
/// carries no interior mutability.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Instrumented>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use ssc_sim::Sim;

    /// d = (a & b) ^ c with a as taint source.
    fn gate_fixture() -> (Netlist, Instrumented) {
        let mut n = Netlist::new("gates");
        let a = n.input("a", 4);
        let b = n.input("b", 4);
        let c = n.input("c", 4);
        let ab = n.and(a, b);
        let d = n.xor(ab, c);
        n.mark_output("d", d);
        let inst = instrument(&n, &["a"]);
        (n, inst)
    }

    #[test]
    fn and_gate_blocks_taint_on_zero_operand() {
        let (_, inst) = gate_fixture();
        let mut sim = Sim::new(&inst.netlist).unwrap();
        sim.set_input("a", 0b1111);
        sim.set_input("b", 0b0000); // b=0 kills the AND output
        sim.set_input("t$a", 0b1111);
        assert_eq!(sim.peek_name("t$d").val(), 0, "a&0 leaks nothing");
        sim.set_input("b", 0b0110);
        assert_eq!(sim.peek_name("t$d").val(), 0b0110, "taint passes where b=1");
    }

    #[test]
    fn xor_propagates_taint_bitwise() {
        let (_, inst) = gate_fixture();
        let mut sim = Sim::new(&inst.netlist).unwrap();
        sim.set_input("a", 0);
        sim.set_input("b", 0b1111);
        sim.set_input("t$a", 0b1010);
        assert_eq!(sim.peek_name("t$d").val(), 0b1010);
    }

    #[test]
    fn untainted_inputs_produce_untainted_outputs() {
        let (_, inst) = gate_fixture();
        let mut sim = Sim::new(&inst.netlist).unwrap();
        sim.set_input("a", 7);
        sim.set_input("b", 5);
        sim.set_input("c", 1);
        sim.set_input("t$a", 0);
        assert_eq!(sim.peek_name("t$d").val(), 0);
    }

    #[test]
    fn arithmetic_saturates() {
        let mut n = Netlist::new("arith");
        let a = n.input("a", 8);
        let b = n.input("b", 8);
        let s = n.add(a, b);
        n.mark_output("s", s);
        let inst = instrument(&n, &["a"]);
        let mut sim = Sim::new(&inst.netlist).unwrap();
        sim.set_input("t$a", 1); // a single tainted bit
        assert_eq!(sim.peek_name("t$s").val(), 0xFF, "adders saturate");
        sim.set_input("t$a", 0);
        assert_eq!(sim.peek_name("t$s").val(), 0);
    }

    #[test]
    fn registers_delay_taint_by_one_cycle() {
        let mut n = Netlist::new("reg");
        let a = n.input("a", 4);
        let r = n.reg("r", 4, Some(Bv::zero(4)), StateMeta::default());
        n.connect_reg(r, a);
        n.mark_output("q", r.wire());
        let inst = instrument(&n, &["a"]);
        let mut sim = Sim::new(&inst.netlist).unwrap();
        sim.set_input("t$a", 0b1111);
        assert_eq!(sim.peek_name("t$q").val(), 0, "taint not yet latched");
        sim.step();
        assert_eq!(sim.peek_name("t$q").val(), 0b1111);
        sim.set_input("t$a", 0);
        sim.step();
        assert_eq!(sim.peek_name("t$q").val(), 0, "taint clears with clean data");
    }

    #[test]
    fn memory_carries_taint_per_word() {
        let mut n = Netlist::new("mem");
        let we = n.input("we", 1);
        let addr = n.input("addr", 2);
        let data = n.input("data", 8);
        let raddr = n.input("raddr", 2);
        let mem = n.memory("ram", 4, 8, StateMeta::memory(true));
        n.mem_write(mem, we, addr, data);
        let rd = n.mem_read(mem, raddr);
        n.mark_output("rd", rd);
        let inst = instrument(&n, &["data"]);
        let mut sim = Sim::new(&inst.netlist).unwrap();
        // Write tainted data to word 2.
        sim.set_input("we", 1);
        sim.set_input("addr", 2);
        sim.set_input("data", 0xAB);
        sim.set_input("t$data", 0xFF);
        sim.step();
        sim.set_input("we", 0);
        sim.set_input("t$data", 0);
        sim.set_input("raddr", 2);
        assert_eq!(sim.peek_name("t$rd").val(), 0xFF, "word 2 is tainted");
        sim.set_input("raddr", 1);
        assert_eq!(sim.peek_name("t$rd").val(), 0, "word 1 is clean");
    }

    #[test]
    fn mux_with_tainted_select_taints_differing_bits() {
        let mut n = Netlist::new("mux");
        let s = n.input("s", 1);
        let a = n.input("a", 4);
        let b = n.input("b", 4);
        let m = n.mux(s, a, b);
        n.mark_output("m", m);
        let inst = instrument(&n, &["s"]);
        let mut sim = Sim::new(&inst.netlist).unwrap();
        sim.set_input("a", 0b1100);
        sim.set_input("b", 0b1010);
        sim.set_input("t$s", 1);
        assert_eq!(
            sim.peek_name("t$m").val(),
            0b0110,
            "only bits where branches differ depend on the secret select"
        );
        sim.set_input("t$s", 0);
        assert_eq!(sim.peek_name("t$m").val(), 0);
    }

    #[test]
    fn instrumented_values_match_original() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (orig, inst) = gate_fixture();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let (av, bv, cv) = (
                rng.random_range(0..16u64),
                rng.random_range(0..16u64),
                rng.random_range(0..16u64),
            );
            let mut s0 = Sim::new(&orig).unwrap();
            let mut s1 = Sim::new(&inst.netlist).unwrap();
            for (name, v) in [("a", av), ("b", bv), ("c", cv)] {
                s0.set_input(name, v);
                s1.set_input(name, v);
            }
            assert_eq!(s0.peek_name("d"), s1.peek_name("d"), "functional equivalence");
        }
    }
}
