//! Property-based soundness of the taint instrumentation:
//!
//! 1. **Functional transparency** — the instrumented design computes the
//!    same values as the original for any stimulus.
//! 2. **Non-interference of clean runs** — with zero source taint, no taint
//!    ever appears anywhere.
//! 3. **Taint soundness** — if flipping secret inputs changes an output,
//!    the taint bit of that output must be set (no under-tainting).

use proptest::prelude::*;
use ssc_ift::instrument;
use ssc_netlist::{Netlist, Wire};
use ssc_sim::Sim;

/// A small fixed-but-rich design: two secrets, two public inputs, mixed
/// logic and arithmetic.
fn design() -> (Netlist, Wire, Wire) {
    let mut n = Netlist::new("mix");
    let s0 = n.input("s0", 8);
    let s1 = n.input("s1", 8);
    let p0 = n.input("p0", 8);
    let p1 = n.input("p1", 8);
    let a = n.add(s0, p0);
    let b = n.and(s1, p1);
    let sel = n.ult(p0, p1);
    let m = n.mux(sel, a, b);
    let r = n.xor(m, p1);
    let q = n.or(a, b);
    n.mark_output("r", r);
    n.mark_output("q", q);
    (n, r, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn functional_transparency(s0 in 0u64..256, s1 in 0u64..256, p0 in 0u64..256, p1 in 0u64..256) {
        let (orig, r, q) = design();
        let inst = instrument(&orig, &["s0", "s1"]);
        let mut a = Sim::new(&orig).unwrap();
        let mut b = Sim::new(&inst.netlist).unwrap();
        for (name, v) in [("s0", s0), ("s1", s1), ("p0", p0), ("p1", p1)] {
            a.set_input(name, v);
            b.set_input(name, v);
        }
        prop_assert_eq!(a.peek(r), b.peek_name("r"));
        prop_assert_eq!(a.peek(q), b.peek_name("q"));
    }

    #[test]
    fn clean_runs_stay_clean(s0 in 0u64..256, s1 in 0u64..256, p0 in 0u64..256, p1 in 0u64..256) {
        let (orig, _, _) = design();
        let inst = instrument(&orig, &["s0", "s1"]);
        let mut sim = Sim::new(&inst.netlist).unwrap();
        for (name, v) in [("s0", s0), ("s1", s1), ("p0", p0), ("p1", p1)] {
            sim.set_input(name, v);
        }
        sim.set_input("t$s0", 0);
        sim.set_input("t$s1", 0);
        prop_assert_eq!(sim.peek_name("t$r").val(), 0);
        prop_assert_eq!(sim.peek_name("t$q").val(), 0);
    }

    /// No under-tainting: any output bit that *actually depends* on the
    /// secrets (witnessed by a concrete secret flip changing it) must be
    /// tainted when the secrets are fully tainted.
    #[test]
    fn observable_dependence_implies_taint(
        s0 in 0u64..256, s1 in 0u64..256, s0b in 0u64..256, s1b in 0u64..256,
        p0 in 0u64..256, p1 in 0u64..256,
    ) {
        let (orig, r, q) = design();
        let inst = instrument(&orig, &["s0", "s1"]);

        // Two original runs differing only in the secrets.
        let run = |x0: u64, x1: u64| {
            let mut sim = Sim::new(&orig).unwrap();
            for (name, v) in [("s0", x0), ("s1", x1), ("p0", p0), ("p1", p1)] {
                sim.set_input(name, v);
            }
            (sim.peek(r).val(), sim.peek(q).val())
        };
        let (r1, q1) = run(s0, s1);
        let (r2, q2) = run(s0b, s1b);

        // Instrumented run with fully tainted secrets.
        let mut ts = Sim::new(&inst.netlist).unwrap();
        for (name, v) in [("s0", s0), ("s1", s1), ("p0", p0), ("p1", p1)] {
            ts.set_input(name, v);
        }
        ts.set_input("t$s0", 0xFF);
        ts.set_input("t$s1", 0xFF);
        let tr = ts.peek_name("t$r").val();
        let tq = ts.peek_name("t$q").val();

        prop_assert_eq!(tr & (r1 ^ r2), r1 ^ r2, "bits flipped by secrets must be tainted in r");
        prop_assert_eq!(tq & (q1 ^ q2), q1 ^ q2, "bits flipped by secrets must be tainted in q");
    }
}
