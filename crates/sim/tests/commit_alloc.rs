//! Steady-state stepping is allocation-free in **both** evaluation
//! domains: `Engine::commit` latches registers through the persistent
//! double-buffered scratch table and the eval loop reuses every value
//! slot's buffer, so once the first cycle has seated all widths, a step
//! must never touch the heap.
//!
//! Asserted with a counting global allocator; this file deliberately holds
//! a single `#[test]` so no sibling test thread can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ssc_netlist::{Bv, Netlist, StateMeta};
use ssc_sim::{BatchSim, Sim};

/// Counts every allocation path (alloc, alloc_zeroed, realloc — a growing
/// `Vec` reallocates rather than allocating fresh).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A design exercising every commit-relevant structure: registers of
/// several widths (including a wide multiplier path), a mux, dynamic
/// shifts, and a memory with an address-dependent write port.
fn design() -> Netlist {
    let mut n = Netlist::new("alloc_probe");
    let en = n.input("en", 1);
    let sel = n.input("sel", 1);

    let count = n.reg("count", 8, Some(Bv::zero(8)), StateMeta::default());
    let one = n.lit(8, 1);
    let inc = n.add(count.wire(), one);
    let held = n.mux(en, inc, count.wire());
    n.connect_reg(count, held);

    let acc = n.reg("acc", 32, Some(Bv::zero(32)), StateMeta::default());
    let cw = n.zext(count.wire(), 32);
    let prod = n.mul(acc.wire(), cw);
    let sum = n.add(acc.wire(), cw);
    let nxt = n.mux(sel, prod, sum);
    n.connect_reg(acc, nxt);

    let sh = n.reg("sh", 32, Some(Bv::new(32, 0xA5)), StateMeta::default());
    let amt = n.slice(count.wire(), 2, 0);
    let amt32 = n.zext(amt, 32);
    let shifted = n.shl(sh.wire(), amt32);
    n.connect_reg(sh, shifted);

    let mem = n.memory("ram", 16, 32, StateMeta::memory(true));
    let waddr = n.slice(count.wire(), 3, 0);
    n.mem_write(mem, en, waddr, acc.wire());
    let rd = n.mem_read(mem, waddr);
    let obs = n.xor(rd, acc.wire());
    n.mark_output("obs", obs);
    n
}

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_steps_do_not_allocate_in_either_domain() {
    let n = design();

    // --- bit-sliced domain (the acceptance criterion) ---
    let mut batch = BatchSim::<1>::new(&n).unwrap();
    let mut lanes = [0u64; BatchSim::<1>::LANES];
    for (l, v) in lanes.iter_mut().enumerate() {
        *v = (l % 2) as u64;
    }
    batch.set_input_lanes("en", &lanes);
    // `sel = 0` takes the accumulate path (`acc + count`), which actually
    // moves; the multiplier path is still evaluated combinationally.
    batch.set_input("sel", 0);
    // Warm-up: the first cycles seat every slot's width/capacity.
    batch.step_n(4);
    let before = allocations();
    batch.step_n(100);
    let batch_allocs = allocations() - before;
    assert_eq!(
        batch_allocs, 0,
        "bit-sliced steady-state stepping must be allocation-free, saw {batch_allocs} \
         allocations over 100 cycles"
    );

    // --- wide bit-sliced domain (256 lanes, u64x4 blocks) ---
    let mut wide = ssc_sim::WideBatchSim::new(&n).unwrap();
    let wide_lanes: Vec<u64> =
        (0..ssc_sim::WideBatchSim::LANES).map(|l| (l % 2) as u64).collect();
    wide.set_input_lanes("en", &wide_lanes);
    wide.set_input("sel", 0);
    wide.step_n(4);
    let before = allocations();
    wide.step_n(100);
    let wide_allocs = allocations() - before;
    assert_eq!(
        wide_allocs, 0,
        "wide bit-sliced steady-state stepping must be allocation-free, saw {wide_allocs} \
         allocations over 100 cycles"
    );

    // --- scalar domain (rides on the same commit path) ---
    let mut scalar = Sim::new(&n).unwrap();
    scalar.set_input("en", 1);
    scalar.set_input("sel", 0);
    scalar.step_n(4);
    let before = allocations();
    scalar.step_n(100);
    let scalar_allocs = allocations() - before;
    assert_eq!(
        scalar_allocs, 0,
        "scalar steady-state stepping must be allocation-free, saw {scalar_allocs} \
         allocations over 100 cycles"
    );

    // The probe still computes something real: lanes diverge by stimulus.
    let obs = n.find("obs").unwrap();
    let vals = batch.peek_lanes(obs);
    assert_ne!(vals[0], vals[1], "enabled and disabled lanes must diverge");
    assert_eq!(scalar.peek(obs).val(), vals[1], "scalar run must match the enabled lane");
}
