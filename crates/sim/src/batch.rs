//! The width-generic bit-sliced evaluation domain and its simulator
//! front-end.
//!
//! [`BatchSim<W>`] evaluates `64·W` independent stimuli per netlist walk. A
//! `w`-bit signal is stored as `w` [`Block<W>`]s where block `i` holds bit
//! `i` of every lane (the layout of [`ssc_netlist::lanes`]); bitwise
//! operators then act on all lanes at once, arithmetic ripples carries
//! across the `w` blocks, and per-lane control flow (muxes, dynamic shifts,
//! memory addressing) is resolved with lane masks instead of branches. The
//! kernels are written word-wise over `[u64; W]`, so `W = 1` is the classic
//! 64-lane `u64` engine and `W = 4` a 256-lane engine whose inner loops
//! autovectorize to AVX2/SVE registers.
//!
//! Memories are the one exception to the bit-sliced layout: they keep
//! *per-lane scalar* words (`data[word * lanes + lane]`), because memory
//! reads and writes are address-dependent gathers/scatters — the
//! packed↔scalar transposition happens at the memory boundary and nowhere
//! else.
//!
//! Every lane is bit-identical to a scalar [`crate::Sim`] run fed the same
//! stimulus — for every `W`: the lanes share no state and the domain is
//! cross-checked against the scalar semantics property-by-property (and
//! `W = 4` against `W = 1`).

use ssc_netlist::lanes::{self, Block};
use ssc_netlist::{Bv, MemId, Netlist, NetlistError, Node, Op, SignalId, Wire};

use crate::domain::EvalDomain;
use crate::engine::Engine;
use crate::trace::BatchTrace;

/// Block width (in `u64` words) of the wide 256-lane instantiation.
pub const WIDE_WORDS: usize = 4;

/// A bit-sliced value: `bits[i]` holds bit `i` of all `64·W` lanes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneValue<const W: usize = 1> {
    width: u32,
    bits: Vec<Block<W>>,
}

impl<const W: usize> LaneValue<W> {
    /// The signal width in bits (`bits().len()`).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The bit-position blocks (see [`ssc_netlist::lanes`] for the layout).
    pub fn bits(&self) -> &[Block<W>] {
        &self.bits
    }

    /// Extracts one lane as a [`Bv`].
    pub fn lane(&self, l: usize) -> Bv {
        Bv::new(self.width, lanes::lane_of(&self.bits, l))
    }

    /// All `64·W` lanes as scalars, lane-indexed.
    pub fn unpack(&self) -> Vec<u64> {
        let rows = lanes::unpack_block(&self.bits);
        let mut out = Vec::with_capacity(lanes::block_lanes::<W>());
        for row in &rows {
            out.extend_from_slice(row);
        }
        out
    }

    fn resize(&mut self, width: u32) {
        self.width = width;
        self.bits.resize(width as usize, Block::ZERO);
    }
}

/// A bit-sliced memory: per-lane scalar words, `data[word * lanes + lane]`.
#[derive(Clone, Debug)]
pub struct LaneMem<const W: usize = 1> {
    width: u32,
    words: u32,
    data: Vec<u64>,
}

impl<const W: usize> LaneMem<W> {
    const LANES: usize = lanes::block_lanes::<W>();

    /// Reads the word at `index` in `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range (an unchecked lane would silently
    /// alias a neighbouring word's data in the flat layout).
    pub fn word(&self, index: u32, lane: usize) -> Bv {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        Bv::new(self.width, self.data[index as usize * Self::LANES + lane])
    }

    /// Overwrites the word at `index` in `lane` (masked to the word width).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn set_word(&mut self, index: u32, lane: usize, value: Bv) {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        self.data[index as usize * Self::LANES + lane] = value.val();
    }
}

/// The width-generic bit-sliced evaluation domain: `W` `u64` words per
/// block, `64·W` lanes per walk.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitSliceDomain<const W: usize = 1>;

impl<const W: usize> EvalDomain for BitSliceDomain<W> {
    type Value = LaneValue<W>;
    type Mem = LaneMem<W>;

    fn value_zero(width: u32) -> LaneValue<W> {
        LaneValue { width, bits: vec![Block::ZERO; width as usize] }
    }

    fn value_const(bv: Bv) -> LaneValue<W> {
        let mut v = Self::value_zero(bv.width());
        lanes::broadcast_block(&mut v.bits, bv.val());
        v
    }

    fn value_dummy() -> LaneValue<W> {
        LaneValue { width: 0, bits: Vec::new() }
    }

    fn value_assign(dst: &mut LaneValue<W>, src: &LaneValue<W>) {
        dst.width = src.width;
        dst.bits.clear();
        dst.bits.extend_from_slice(&src.bits);
    }

    fn eval_op(
        op: Op,
        width: u32,
        values: &[LaneValue<W>],
        args: &[SignalId],
        out: &mut LaneValue<W>,
    ) {
        let v = |i: usize| &values[args[i].index()];
        out.resize(width);
        let w = width as usize;
        match op {
            Op::Not => {
                let a = v(0);
                for i in 0..w {
                    out.bits[i] = !a.bits[i];
                }
            }
            Op::And | Op::Or | Op::Xor => {
                let (a, b) = (v(0), v(1));
                for i in 0..w {
                    out.bits[i] = match op {
                        Op::And => a.bits[i] & b.bits[i],
                        Op::Or => a.bits[i] | b.bits[i],
                        _ => a.bits[i] ^ b.bits[i],
                    };
                }
            }
            Op::Add => {
                let (a, b) = (v(0), v(1));
                let mut carry = Block::ZERO;
                for i in 0..w {
                    let (x, y) = (a.bits[i], b.bits[i]);
                    let xy = x ^ y;
                    out.bits[i] = xy ^ carry;
                    carry = (x & y) | (carry & xy);
                }
            }
            Op::Sub => {
                let (a, b) = (v(0), v(1));
                let mut borrow = Block::ZERO;
                for i in 0..w {
                    let (x, y) = (a.bits[i], b.bits[i]);
                    out.bits[i] = x ^ y ^ borrow;
                    borrow = (!x & y) | ((!x | y) & borrow);
                }
            }
            Op::Mul => {
                let (a, b) = (v(0), v(1));
                out.bits[..w].fill(Block::ZERO);
                for j in 0..w {
                    let sel = b.bits[j];
                    if sel.is_zero() {
                        continue;
                    }
                    let mut carry = Block::ZERO;
                    for i in j..w {
                        let p = a.bits[i - j] & sel;
                        let o = out.bits[i];
                        let s = o ^ p;
                        out.bits[i] = s ^ carry;
                        carry = (o & p) | (carry & s);
                    }
                }
            }
            Op::Eq => {
                let (a, b) = (v(0), v(1));
                let mut acc = Block::ONES;
                for i in 0..a.bits.len() {
                    acc &= !(a.bits[i] ^ b.bits[i]);
                }
                out.bits[0] = acc;
            }
            Op::Ult | Op::Slt => {
                let (a, b) = (v(0), v(1));
                let top = a.bits.len() - 1;
                let mut borrow = Block::ZERO;
                for i in 0..a.bits.len() {
                    // Signed comparison = unsigned with both sign bits
                    // flipped.
                    let flip = Block::splat(op == Op::Slt && i == top);
                    let (x, y) = (a.bits[i] ^ flip, b.bits[i] ^ flip);
                    borrow = (!x & y) | ((!x | y) & borrow);
                }
                out.bits[0] = borrow;
            }
            Op::ShlC(s) => {
                let a = v(0);
                let s = s as usize;
                for i in (0..w).rev() {
                    out.bits[i] = if i >= s { a.bits[i - s] } else { Block::ZERO };
                }
            }
            Op::ShrC(s) => {
                let a = v(0);
                let s = s as usize;
                for i in 0..w {
                    out.bits[i] = if i + s < w { a.bits[i + s] } else { Block::ZERO };
                }
            }
            Op::SarC(s) => {
                let a = v(0);
                let s = (s as usize).min(w - 1);
                for i in 0..w {
                    out.bits[i] = a.bits[(i + s).min(w - 1)];
                }
            }
            Op::Shl | Op::Shr | Op::Sar => {
                let (a, amt) = (v(0), v(1));
                out.bits[..w].copy_from_slice(&a.bits);
                let sign = a.bits[w - 1];
                // Lanes whose amount reaches the width shift everything out.
                let mut big = Block::ZERO;
                for (k, &sel) in amt.bits.iter().enumerate() {
                    if sel.is_zero() {
                        continue;
                    }
                    let sh = 1usize << k.min(63);
                    if sh >= w {
                        big |= sel;
                        continue;
                    }
                    match op {
                        Op::Shl => {
                            for i in (sh..w).rev() {
                                out.bits[i] = (sel & out.bits[i - sh]) | (!sel & out.bits[i]);
                            }
                            for i in 0..sh {
                                out.bits[i] &= !sel;
                            }
                        }
                        Op::Shr | Op::Sar => {
                            let fill = if op == Op::Sar { sign } else { Block::ZERO };
                            for i in 0..w - sh {
                                out.bits[i] = (sel & out.bits[i + sh]) | (!sel & out.bits[i]);
                            }
                            for i in w - sh..w {
                                out.bits[i] = (sel & fill) | (!sel & out.bits[i]);
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                if !big.is_zero() {
                    let fill = if op == Op::Sar { sign } else { Block::ZERO };
                    for i in 0..w {
                        out.bits[i] = (big & fill) | (!big & out.bits[i]);
                    }
                }
            }
            Op::Slice { hi: _, lo } => {
                let a = v(0);
                let lo = lo as usize;
                for i in 0..w {
                    out.bits[i] = a.bits[lo + i];
                }
            }
            Op::Concat => {
                let (hi, lo) = (v(0), v(1));
                let lw = lo.bits.len();
                out.bits[..lw].copy_from_slice(&lo.bits);
                out.bits[lw..w].copy_from_slice(&hi.bits);
            }
            Op::Zext => {
                let a = v(0);
                let aw = a.bits.len();
                out.bits[..aw].copy_from_slice(&a.bits);
                out.bits[aw..w].fill(Block::ZERO);
            }
            Op::Sext => {
                let a = v(0);
                let aw = a.bits.len();
                out.bits[..aw].copy_from_slice(&a.bits);
                out.bits[aw..w].fill(a.bits[aw - 1]);
            }
            Op::Mux => {
                let sel = v(0).bits[0];
                let (t, e) = (v(1), v(2));
                for i in 0..w {
                    out.bits[i] = (sel & t.bits[i]) | (!sel & e.bits[i]);
                }
            }
            Op::ReduceOr => {
                out.bits[0] = v(0).bits.iter().fold(Block::ZERO, |acc, &b| acc | b);
            }
            Op::ReduceAnd => {
                out.bits[0] = v(0).bits.iter().fold(Block::ONES, |acc, &b| acc & b);
            }
            Op::ReduceXor => {
                out.bits[0] = v(0).bits.iter().fold(Block::ZERO, |acc, &b| acc ^ b);
            }
        }
    }

    fn mem_new(words: u32, width: u32) -> LaneMem<W> {
        LaneMem { width, words, data: vec![0; words as usize * LaneMem::<W>::LANES] }
    }

    fn mem_reset(mem: &mut LaneMem<W>, init: Option<&[Bv]>) {
        let lanes = LaneMem::<W>::LANES;
        match init {
            Some(init) => {
                for (w, bv) in init.iter().enumerate() {
                    mem.data[w * lanes..(w + 1) * lanes].fill(bv.val());
                }
            }
            None => mem.data.fill(0),
        }
    }

    fn mem_read(mem: &LaneMem<W>, addr: &LaneValue<W>, width: u32, out: &mut LaneValue<W>) {
        out.resize(width);
        let addrs = lanes::unpack_block(&addr.bits);
        let mut vals = [[0u64; lanes::LANES]; W];
        for k in 0..W {
            for (l, &a) in addrs[k].iter().enumerate() {
                if a < u64::from(mem.words) {
                    vals[k][l] = mem.data[a as usize * Self::Mem::LANES + k * lanes::LANES + l];
                }
            }
        }
        let packed = lanes::pack_block(&vals);
        out.bits.copy_from_slice(&packed[..width as usize]);
    }

    fn mem_write(mem: &mut LaneMem<W>, en: &LaneValue<W>, addr: &LaneValue<W>, data: &LaneValue<W>) {
        let sel = en.bits[0];
        if sel.is_zero() {
            return;
        }
        let addrs = lanes::unpack_block(&addr.bits);
        let vals = lanes::unpack_block(&data.bits);
        for k in 0..W {
            let word = sel.word(k);
            if word == 0 {
                continue;
            }
            for l in 0..lanes::LANES {
                if (word >> l) & 1 == 1 {
                    let a = addrs[k][l];
                    if a < u64::from(mem.words) {
                        mem.data[a as usize * Self::Mem::LANES + k * lanes::LANES + l] =
                            vals[k][l];
                    }
                }
            }
        }
    }
}

/// A cycle-accurate simulator evaluating `64·W` independent stimuli per
/// pass (`W = 1`, the default, is the 64-lane engine; `W = 4` the 256-lane
/// wide engine — see [`WIDE_WORDS`]).
///
/// `BatchSim` mirrors [`crate::Sim`]'s API with per-lane variants: inputs,
/// registers and memory words can be driven per lane
/// ([`BatchSim::set_input_lanes`], [`BatchSim::set_mem_word_lane`], …) or
/// broadcast to all lanes at once ([`BatchSim::set_input`], …), and signals
/// are observed per lane ([`BatchSim::peek_lanes`]). Every lane is
/// bit-identical to a scalar `Sim` run fed the same stimulus, for every
/// block width.
///
/// Use `BatchSim` when many *independent* trials of the same design are
/// needed (channel sweeps, Monte-Carlo taint trials); use `Sim` for single
/// runs and interactive debugging — a batch walk costs a few times a scalar
/// walk, so it only pays off when several lanes carry distinct stimuli.
#[derive(Clone, Debug)]
pub struct BatchSim<'n, const W: usize = 1> {
    engine: Engine<'n, BitSliceDomain<W>>,
    trace: BatchTrace<W>,
}

impl<'n, const W: usize> BatchSim<'n, W> {
    /// Number of lanes evaluated per pass.
    pub const LANES: usize = lanes::block_lanes::<W>();

    /// Creates a batch simulator for `netlist` and resets it.
    ///
    /// # Errors
    ///
    /// Returns the netlist's structural error if it fails [`Netlist::check`].
    pub fn new(netlist: &'n Netlist) -> Result<Self, NetlistError> {
        Ok(BatchSim { engine: Engine::new(netlist)?, trace: BatchTrace::new() })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.engine.netlist()
    }

    /// The current cycle count.
    pub fn cycle(&self) -> u64 {
        self.engine.cycle()
    }

    /// Resets all lanes to the declared initial state (see
    /// [`crate::Sim::reset`]). Trace contents are cleared, probes stay.
    pub fn reset(&mut self) {
        self.engine.reset();
        self.trace.clear();
    }

    fn find(&self, name: &str) -> Wire {
        self.engine
            .netlist()
            .find(name)
            .unwrap_or_else(|| panic!("no signal named `{name}`"))
    }

    fn assert_fits(wire: Wire, value: u64, what: &str, name: &str) {
        assert!(
            value & !Bv::mask_for(wire.width()) == 0,
            "value {value:#x} does not fit the {}-bit width of {what} `{name}`",
            wire.width()
        );
    }

    /// Drives a primary input by name, broadcasting `value` to all lanes.
    ///
    /// # Panics
    ///
    /// Panics if no input with that name exists or `value` does not fit the
    /// port width.
    pub fn set_input(&mut self, name: &str, value: u64) {
        let w = self.find(name);
        Self::assert_fits(w, value, "input", name);
        let mut v = BitSliceDomain::<W>::value_zero(w.width());
        lanes::broadcast_block(&mut v.bits, value);
        self.set_input_wire_value(w, v);
    }

    /// Drives a primary input by name with one value per lane
    /// (`values.len()` must be [`BatchSim::LANES`]).
    ///
    /// # Panics
    ///
    /// Panics if no input with that name exists, the slice is not exactly
    /// one value per lane, or any lane's value does not fit the port width.
    pub fn set_input_lanes(&mut self, name: &str, values: &[u64]) {
        let w = self.find(name);
        for &v in values {
            Self::assert_fits(w, v, "input", name);
        }
        self.set_input_wire_lanes(w, values);
    }

    /// Drives a primary input by wire handle with one value per lane.
    ///
    /// # Panics
    ///
    /// Panics if the wire is not an input, the slice is not exactly one
    /// value per lane, or any lane's value does not fit its width.
    pub fn set_input_wire_lanes(&mut self, wire: Wire, values: &[u64]) {
        self.set_input_wire_value(wire, pack_value(wire.width(), values));
    }

    fn set_input_wire_value(&mut self, wire: Wire, v: LaneValue<W>) {
        assert!(
            matches!(self.engine.netlist().node(wire.id()), Node::Input { .. }),
            "set_input on non-input signal"
        );
        self.engine.set_value(wire.id(), v);
    }

    /// Overwrites a register's current state in every lane.
    ///
    /// # Panics
    ///
    /// Panics if the wire is not a register output or widths mismatch.
    pub fn set_reg(&mut self, wire: Wire, value: Bv) {
        assert_eq!(wire.width(), value.width(), "register width mismatch");
        let mut v = BitSliceDomain::<W>::value_zero(wire.width());
        lanes::broadcast_block(&mut v.bits, value.val());
        self.set_reg_value(wire, v);
    }

    /// Overwrites a register's current state with one value per lane.
    ///
    /// # Panics
    ///
    /// Panics if the wire is not a register output, the slice is not
    /// exactly one value per lane, or any lane's value does not fit the
    /// register width.
    pub fn set_reg_lanes(&mut self, wire: Wire, values: &[u64]) {
        self.set_reg_value(wire, pack_value(wire.width(), values));
    }

    fn set_reg_value(&mut self, wire: Wire, v: LaneValue<W>) {
        assert!(
            matches!(self.engine.netlist().node(wire.id()), Node::Reg(_)),
            "set_reg on non-register signal"
        );
        self.engine.set_value(wire.id(), v);
    }

    /// Overwrites one memory word in every lane.
    ///
    /// # Panics
    ///
    /// Panics if the word index is out of range or widths mismatch.
    pub fn set_mem_word(&mut self, mem: MemId, index: u32, value: Bv) {
        let m = self.engine.netlist().mem(mem);
        assert!(index < m.words, "word index {index} out of range for `{}`", m.name);
        assert_eq!(value.width(), m.width, "memory word width mismatch");
        let st = self.engine.mem_mut(mem);
        for l in 0..Self::LANES {
            st.set_word(index, l, value);
        }
    }

    /// Overwrites one memory word with one value per lane.
    ///
    /// # Panics
    ///
    /// Panics if the word index is out of range, the slice is not exactly
    /// one value per lane, or any lane's value does not fit the word width.
    pub fn set_mem_word_lanes(&mut self, mem: MemId, index: u32, values: &[u64]) {
        assert_eq!(values.len(), Self::LANES, "one value per lane required");
        let m = self.engine.netlist().mem(mem);
        assert!(index < m.words, "word index {index} out of range for `{}`", m.name);
        let (name, width) = (m.name.clone(), m.width);
        let mask = Bv::mask_for(width);
        let st = self.engine.mem_mut(mem);
        for (l, &v) in values.iter().enumerate() {
            assert!(
                v & !mask == 0,
                "lane {l} value {v:#x} does not fit the {width}-bit words of `{name}`"
            );
            st.set_word(index, l, Bv::new(width, v));
        }
    }

    /// Overwrites one memory word in a single lane, leaving other lanes
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if the word index or lane is out of range or widths mismatch.
    pub fn set_mem_word_lane(&mut self, mem: MemId, index: u32, lane: usize, value: Bv) {
        let m = self.engine.netlist().mem(mem);
        assert!(index < m.words, "word index {index} out of range for `{}`", m.name);
        assert!(lane < Self::LANES, "lane {lane} out of range");
        assert_eq!(value.width(), m.width, "memory word width mismatch");
        self.engine.mem_mut(mem).set_word(index, lane, value);
    }

    /// Reads one memory word from one lane.
    ///
    /// # Panics
    ///
    /// Panics if the word index or lane is out of range.
    pub fn read_mem_lane(&self, mem: MemId, index: u32, lane: usize) -> Bv {
        let m = self.engine.netlist().mem(mem);
        assert!(index < m.words, "word index {index} out of range for `{}`", m.name);
        assert!(lane < Self::LANES, "lane {lane} out of range");
        self.engine.mem(mem).word(index, lane)
    }

    /// The current value of a signal in one lane (evaluating first if
    /// needed).
    pub fn peek_lane(&mut self, wire: Wire, lane: usize) -> Bv {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        self.engine.eval();
        self.engine.value(wire.id()).lane(lane)
    }

    /// The current value of a signal in all lanes (lane-indexed).
    pub fn peek_lanes(&mut self, wire: Wire) -> Vec<u64> {
        self.engine.eval();
        self.engine.value(wire.id()).unpack()
    }

    /// [`BatchSim::peek_lanes`] by hierarchical name.
    ///
    /// # Panics
    ///
    /// Panics if no signal with that name exists.
    pub fn peek_name_lanes(&mut self, name: &str) -> Vec<u64> {
        let w = self.find(name);
        self.peek_lanes(w)
    }

    /// For a 1-bit signal: the mask of lanes in which it is currently 1.
    ///
    /// # Panics
    ///
    /// Panics if the signal is wider than one bit.
    pub fn lanes_high(&mut self, wire: Wire) -> Block<W> {
        assert_eq!(wire.width(), 1, "lanes_high expects a 1-bit signal");
        self.engine.eval();
        self.engine.value(wire.id()).bits()[0]
    }

    /// Advances all lanes by one clock edge.
    pub fn step(&mut self) {
        self.engine.eval();
        self.record_probes();
        self.engine.commit();
    }

    /// Runs `n` clock cycles.
    pub fn step_n(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Steps until `signal` is 1 in **every** lane, up to `max_cycles`
    /// steps. Returns the number of steps taken before all lanes were
    /// observed high, or `None` if some lane never rose within the bound.
    pub fn step_until_all_high(&mut self, signal: Wire, max_cycles: u64) -> Option<u64> {
        for i in 0..=max_cycles {
            if self.lanes_high(signal) == Block::ONES {
                return Some(i);
            }
            if i < max_cycles {
                self.step();
            }
        }
        None
    }

    /// Registers a named signal to be recorded (per lane) on every
    /// subsequent step.
    ///
    /// # Panics
    ///
    /// Panics if no signal with that name exists.
    pub fn watch(&mut self, name: &str) {
        let w = self.find(name);
        self.trace.add_probe(name, w);
    }

    fn record_probes(&mut self) {
        if self.trace.is_empty() {
            return;
        }
        let cycle = self.engine.cycle();
        let probes: Vec<Wire> = self.trace.probe_wires().collect();
        let vals: Vec<Vec<Block<W>>> =
            probes.iter().map(|w| self.engine.value(w.id()).bits().to_vec()).collect();
        self.trace.record(cycle, vals);
    }

    /// The recorded per-lane trace of watched signals.
    pub fn trace(&self) -> &BatchTrace<W> {
        &self.trace
    }
}

/// Packs per-lane scalars into a [`LaneValue`], refusing over-wide values
/// (the wire-level backstop of the named `set_input` assertions — a wider
/// scalar is a stimulus bug, not something to truncate silently) and
/// wrong-size slices (one value per lane, exactly).
fn pack_value<const W: usize>(width: u32, values: &[u64]) -> LaneValue<W> {
    assert_eq!(values.len(), lanes::block_lanes::<W>(), "one value per lane required");
    let mask = Bv::mask_for(width);
    let mut rows = [[0u64; lanes::LANES]; W];
    for (l, &v) in values.iter().enumerate() {
        assert!(v & !mask == 0, "lane {l} value {v:#x} does not fit {width} bits");
        rows[l / lanes::LANES][l % lanes::LANES] = v;
    }
    let packed = lanes::pack_block(&rows);
    LaneValue { width, bits: packed[..width as usize].to_vec() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssc_netlist::lanes::LANES;
    use ssc_netlist::StateMeta;

    fn counter() -> Netlist {
        let mut n = Netlist::new("counter");
        let en = n.input("en", 1);
        let count = n.reg("count", 8, Some(Bv::zero(8)), StateMeta::default());
        let one = n.lit(8, 1);
        let inc = n.add(count.wire(), one);
        let next = n.mux(en, inc, count.wire());
        n.connect_reg(count, next);
        n.mark_output("count", count.wire());
        n
    }

    #[test]
    fn lanes_count_independently() {
        let n = counter();
        let mut sim = BatchSim::<1>::new(&n).unwrap();
        // Enable only even lanes.
        let mut en = [0u64; LANES];
        for (l, e) in en.iter_mut().enumerate() {
            *e = (l % 2 == 0) as u64;
        }
        sim.set_input_lanes("en", &en);
        sim.step_n(5);
        let counts = sim.peek_name_lanes("count");
        for (l, &c) in counts.iter().enumerate() {
            assert_eq!(c, if l % 2 == 0 { 5 } else { 0 }, "lane {l}");
        }
    }

    #[test]
    fn wide_lanes_count_independently() {
        const L: usize = BatchSim::<4>::LANES;
        let n = counter();
        let mut sim = BatchSim::<4>::new(&n).unwrap();
        // Lane l counts iff l % 3 == 0 — exercises all four block words.
        let en: Vec<u64> = (0..L).map(|l| (l % 3 == 0) as u64).collect();
        sim.set_input_lanes("en", &en);
        sim.step_n(7);
        let counts = sim.peek_name_lanes("count");
        assert_eq!(counts.len(), 256);
        for (l, &c) in counts.iter().enumerate() {
            assert_eq!(c, if l % 3 == 0 { 7 } else { 0 }, "lane {l}");
        }
    }

    #[test]
    fn per_lane_memory_states() {
        let mut n = Netlist::new("mem");
        let we = n.input("we", 1);
        let addr = n.input("addr", 4);
        let data = n.input("data", 32);
        let mem = n.memory("ram", 16, 32, StateMeta::memory(true));
        n.mem_write(mem, we, addr, data);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);

        let mut sim = BatchSim::<1>::new(&n).unwrap();
        // Each lane writes its own value to its own address.
        let mut addrs = [0u64; LANES];
        let mut datas = [0u64; LANES];
        for l in 0..LANES {
            addrs[l] = (l % 16) as u64;
            datas[l] = 0x100 + l as u64;
        }
        sim.set_input("we", 1);
        sim.set_input_lanes("addr", &addrs);
        sim.set_input_lanes("data", &datas);
        sim.step();
        sim.set_input("we", 0);
        let rds = sim.peek_lanes(rd);
        for (l, &v) in rds.iter().enumerate() {
            assert_eq!(v, 0x100 + l as u64, "lane {l}");
        }
        assert_eq!(sim.read_mem_lane(mem, 3, 3).val(), 0x103);
        assert_eq!(sim.read_mem_lane(mem, 3, 19).val(), 0x113);
    }

    #[test]
    fn wide_per_lane_memory_states() {
        const L: usize = BatchSim::<4>::LANES;
        let mut n = Netlist::new("mem");
        let we = n.input("we", 1);
        let addr = n.input("addr", 4);
        let data = n.input("data", 32);
        let mem = n.memory("ram", 16, 32, StateMeta::memory(true));
        n.mem_write(mem, we, addr, data);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);

        let mut sim = BatchSim::<4>::new(&n).unwrap();
        let addrs: Vec<u64> = (0..L).map(|l| (l % 16) as u64).collect();
        let datas: Vec<u64> = (0..L).map(|l| 0x1000 + l as u64).collect();
        // Only lanes above 64 write — the write-enable mask must respect
        // block-word boundaries.
        let wes: Vec<u64> = (0..L).map(|l| (l >= 64) as u64).collect();
        sim.set_input_lanes("we", &wes);
        sim.set_input_lanes("addr", &addrs);
        sim.set_input_lanes("data", &datas);
        sim.step();
        sim.set_input("we", 0);
        let rds = sim.peek_lanes(rd);
        for (l, &v) in rds.iter().enumerate() {
            let expect = if l >= 64 { 0x1000 + l as u64 } else { 0 };
            assert_eq!(v, expect, "lane {l}");
        }
        assert_eq!(sim.read_mem_lane(mem, 3, 3 + 128).val(), 0x1000 + 131);
    }

    #[test]
    fn broadcast_set_input_asserts_width() {
        let n = counter();
        let mut sim = BatchSim::<1>::new(&n).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.set_input("en", 2);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("`en`"), "panic must name the signal: {msg}");
    }

    #[test]
    fn lane_count_mismatch_is_rejected() {
        let n = counter();
        let mut sim = BatchSim::<4>::new(&n).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.set_input_lanes("en", &[0u64; 64]); // 64 values, 256 lanes
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic message");
        assert!(msg.contains("one value per lane"), "{msg}");
    }

    #[test]
    fn step_until_all_high_waits_for_slowest_lane() {
        let mut n = counter();
        let count = n.find("count").unwrap();
        let four = n.lit(8, 4);
        let lt = n.ult(count, four);
        let done = n.not(lt);
        n.set_name(done, "done");
        let mut sim = BatchSim::<1>::new(&n).unwrap();
        sim.set_input("en", 1);
        // Lane l starts at count = l (lanes 0..=4 need 4-l more steps).
        let mut starts = [10u64; LANES];
        for (l, s) in starts.iter_mut().enumerate().take(5) {
            *s = l as u64;
        }
        sim.set_reg_lanes(count, &starts);
        assert_eq!(sim.step_until_all_high(done, 100), Some(4));
    }

    #[test]
    fn wide_step_until_all_high_waits_for_the_highest_lane() {
        const L: usize = BatchSim::<4>::LANES;
        let mut n = counter();
        let count = n.find("count").unwrap();
        let four = n.lit(8, 4);
        let lt = n.ult(count, four);
        let done = n.not(lt);
        n.set_name(done, "done");
        let mut sim = BatchSim::<4>::new(&n).unwrap();
        sim.set_input("en", 1);
        // Only lane 200 is behind.
        let mut starts = vec![10u64; L];
        starts[200] = 1;
        sim.set_reg_lanes(count, &starts);
        assert_eq!(sim.step_until_all_high(done, 100), Some(3));
    }

    #[test]
    fn batch_trace_records_per_lane_series() {
        let n = counter();
        let mut sim = BatchSim::<1>::new(&n).unwrap();
        sim.watch("count");
        let mut en = [0u64; LANES];
        en[7] = 1;
        sim.set_input_lanes("en", &en);
        sim.step_n(3);
        let lane7 = sim.trace().lane_view(7);
        assert_eq!(
            lane7.series("count").unwrap().iter().map(|(_, v)| v.val()).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let lane0 = sim.trace().lane_view(0);
        assert_eq!(
            lane0.series("count").unwrap().iter().map(|(_, v)| v.val()).collect::<Vec<_>>(),
            vec![0, 0, 0]
        );
    }

    #[test]
    fn wide_trace_views_high_lanes() {
        const L: usize = BatchSim::<4>::LANES;
        let n = counter();
        let mut sim = BatchSim::<4>::new(&n).unwrap();
        sim.watch("count");
        let mut en = vec![0u64; L];
        en[199] = 1;
        sim.set_input_lanes("en", &en);
        sim.step_n(3);
        let lane = sim.trace().lane_view(199);
        assert_eq!(
            lane.series("count").unwrap().iter().map(|(_, v)| v.val()).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let idle = sim.trace().lane_view(198);
        assert_eq!(
            idle.series("count").unwrap().iter().map(|(_, v)| v.val()).collect::<Vec<_>>(),
            vec![0, 0, 0]
        );
    }

    /// The wide engine is bit-identical to the 64-lane engine on matching
    /// stimuli — the direct W=4 vs W=1 cross-check at the `BatchSim` level.
    #[test]
    fn wide_engine_matches_narrow_engine_lane_for_lane() {
        const L: usize = BatchSim::<4>::LANES;
        let n = counter();
        let mut narrow = BatchSim::<1>::new(&n).unwrap();
        let mut wide = BatchSim::<4>::new(&n).unwrap();
        let en_wide: Vec<u64> = (0..L).map(|l| (l % 5 < 2) as u64).collect();
        narrow.set_input_lanes("en", &en_wide[..64]);
        wide.set_input_lanes("en", &en_wide);
        narrow.step_n(9);
        wide.step_n(9);
        let c_narrow = narrow.peek_name_lanes("count");
        let c_wide = wide.peek_name_lanes("count");
        assert_eq!(c_narrow[..], c_wide[..64], "first block diverges");
    }
}
