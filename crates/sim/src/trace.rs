//! Signal trace recording and VCD export.

use std::collections::BTreeMap;
use std::io::{self, Write};

use ssc_netlist::{Bv, Wire};

/// A recording of watched signals over simulated cycles.
///
/// Probes are registered with [`Trace::add_probe`] (usually via
/// `Sim::watch`); every simulator step then appends one sample per probe.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    probes: Vec<(String, Wire)>,
    /// samples[i] = (cycle, values aligned with `probes`)
    samples: Vec<(u64, Vec<Bv>)>,
}

impl Trace {
    /// Creates an empty trace with no probes.
    pub fn new() -> Self {
        Trace::default()
    }

    /// `true` if no probes are registered.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Number of recorded samples (cycles).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Registers a probe. Duplicate names are ignored.
    pub fn add_probe(&mut self, name: &str, wire: Wire) {
        if self.probes.iter().any(|(n, _)| n == name) {
            return;
        }
        self.probes.push((name.to_string(), wire));
    }

    /// Iterates over the registered probe wires in registration order.
    pub fn probe_wires(&self) -> impl Iterator<Item = Wire> + '_ {
        self.probes.iter().map(|(_, w)| *w)
    }

    /// Appends one sample; `values` must align with the probe order.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of probes.
    pub fn record(&mut self, cycle: u64, values: &[Bv]) {
        assert_eq!(values.len(), self.probes.len(), "trace sample arity mismatch");
        self.samples.push((cycle, values.to_vec()));
    }

    /// Clears recorded samples (probes stay registered).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// The `(cycle, value)` series recorded for probe `name`, if present.
    pub fn series(&self, name: &str) -> Option<Vec<(u64, Bv)>> {
        let idx = self.probes.iter().position(|(n, _)| n == name)?;
        Some(self.samples.iter().map(|(c, vals)| (*c, vals[idx])).collect())
    }

    /// Writes the trace as a minimal VCD (Value Change Dump) document.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_vcd<W: Write>(&self, mut w: W, design: &str) -> io::Result<()> {
        writeln!(w, "$date today $end")?;
        writeln!(w, "$version mcu-ssc trace $end")?;
        writeln!(w, "$timescale 1ns $end")?;
        writeln!(w, "$scope module {design} $end")?;
        let idents: Vec<String> = (0..self.probes.len()).map(vcd_ident).collect();
        for ((name, wire), ident) in self.probes.iter().zip(&idents) {
            let clean = name.replace('.', "_");
            writeln!(w, "$var wire {} {} {} $end", wire.width(), ident, clean)?;
        }
        writeln!(w, "$upscope $end")?;
        writeln!(w, "$enddefinitions $end")?;

        let mut last: BTreeMap<usize, Bv> = BTreeMap::new();
        for (cycle, vals) in &self.samples {
            writeln!(w, "#{cycle}")?;
            for (i, v) in vals.iter().enumerate() {
                if last.get(&i) == Some(v) {
                    continue;
                }
                last.insert(i, *v);
                if v.width() == 1 {
                    writeln!(w, "{}{}", v.val(), idents[i])?;
                } else {
                    writeln!(w, "b{:b} {}", v.val(), idents[i])?;
                }
            }
        }
        Ok(())
    }
}

/// A lane-aware recording of watched signals over simulated cycles.
///
/// The `64·W`-lane counterpart of [`Trace`], filled by `BatchSim::watch`:
/// every sample stores each probe's *bit-sliced* blocks (see
/// [`ssc_netlist::lanes`]), so recording costs no per-lane transposition.
/// Per-lane inspection — including VCD export — goes through
/// [`BatchTrace::lane_view`], which materializes an ordinary [`Trace`] for
/// one lane.
#[derive(Clone, Debug)]
pub struct BatchTrace<const W: usize = 1> {
    probes: Vec<(String, Wire)>,
    /// samples[i] = (cycle, bit-sliced blocks per probe, aligned with `probes`)
    samples: Vec<(u64, Vec<Vec<ssc_netlist::lanes::Block<W>>>)>,
}

impl<const W: usize> Default for BatchTrace<W> {
    fn default() -> Self {
        BatchTrace { probes: Vec::new(), samples: Vec::new() }
    }
}

impl<const W: usize> BatchTrace<W> {
    /// Number of lanes per sample.
    pub const LANES: usize = ssc_netlist::lanes::block_lanes::<W>();

    /// Creates an empty trace with no probes.
    pub fn new() -> Self {
        BatchTrace::default()
    }

    /// `true` if no probes are registered.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Number of recorded samples (cycles).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Registers a probe. Duplicate names are ignored.
    pub fn add_probe(&mut self, name: &str, wire: Wire) {
        if self.probes.iter().any(|(n, _)| n == name) {
            return;
        }
        self.probes.push((name.to_string(), wire));
    }

    /// Iterates over the registered probe wires in registration order.
    pub fn probe_wires(&self) -> impl Iterator<Item = Wire> + '_ {
        self.probes.iter().map(|(_, w)| *w)
    }

    /// Appends one sample of bit-sliced probe values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of probes.
    pub fn record(&mut self, cycle: u64, values: Vec<Vec<ssc_netlist::lanes::Block<W>>>) {
        assert_eq!(values.len(), self.probes.len(), "trace sample arity mismatch");
        self.samples.push((cycle, values));
    }

    /// Clears recorded samples (probes stay registered).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Materializes the scalar [`Trace`] of one lane — same probes, the
    /// lane's values — for series inspection and VCD export.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= Self::LANES`.
    pub fn lane_view(&self, lane: usize) -> Trace {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        let mut t = Trace::new();
        for (name, wire) in &self.probes {
            t.add_probe(name, *wire);
        }
        for (cycle, vals) in &self.samples {
            let scalars: Vec<Bv> = self
                .probes
                .iter()
                .zip(vals)
                .map(|((_, w), bits)| {
                    Bv::new(w.width(), ssc_netlist::lanes::lane_of(bits, lane))
                })
                .collect();
            t.record(*cycle, &scalars);
        }
        t
    }

    /// The `(cycle, value)` series recorded for probe `name` in `lane`.
    pub fn series_lane(&self, name: &str, lane: usize) -> Option<Vec<(u64, Bv)>> {
        let idx = self.probes.iter().position(|(n, _)| n == name)?;
        let wire = self.probes[idx].1;
        Some(
            self.samples
                .iter()
                .map(|(c, vals)| {
                    (*c, Bv::new(wire.width(), ssc_netlist::lanes::lane_of(&vals[idx], lane)))
                })
                .collect(),
        )
    }
}

/// Generates a short printable VCD identifier for probe index `i`.
fn vcd_ident(mut i: usize) -> String {
    // Identifiers use the printable ASCII range '!'..='~'.
    let mut s = String::new();
    loop {
        s.push(((i % 94) as u8 + b'!') as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_generation_unique() {
        let ids: Vec<String> = (0..200).map(vcd_ident).collect();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn series_returns_recorded_values() {
        let mut t = Trace::new();
        // A fake wire cannot be constructed outside ssc-netlist; build one
        // through a tiny netlist.
        let mut n = ssc_netlist::Netlist::new("t");
        let w = n.input("x", 4);
        t.add_probe("x", w);
        t.record(0, &[Bv::new(4, 1)]);
        t.record(1, &[Bv::new(4, 2)]);
        assert_eq!(
            t.series("x").unwrap(),
            vec![(0, Bv::new(4, 1)), (1, Bv::new(4, 2))]
        );
        assert!(t.series("y").is_none());
    }

    #[test]
    fn duplicate_probe_ignored() {
        let mut t = Trace::new();
        let mut n = ssc_netlist::Netlist::new("t");
        let w = n.input("x", 4);
        t.add_probe("x", w);
        t.add_probe("x", w);
        assert_eq!(t.probe_wires().count(), 1);
    }

    #[test]
    fn vcd_skips_unchanged_values() {
        let mut t = Trace::new();
        let mut n = ssc_netlist::Netlist::new("t");
        let w = n.input("x", 1);
        t.add_probe("x", w);
        t.record(0, &[Bv::bit(true)]);
        t.record(1, &[Bv::bit(true)]);
        t.record(2, &[Bv::bit(false)]);
        let mut out = Vec::new();
        t.write_vcd(&mut out, "t").unwrap();
        let s = String::from_utf8(out).unwrap();
        let changes = s.matches("1!").count() + s.matches("0!").count();
        assert_eq!(changes, 2, "only two value changes expected:\n{s}");
    }
}
