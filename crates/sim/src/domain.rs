//! Pluggable evaluation domains for the generic simulation engine.
//!
//! The engine ([`crate::engine::Engine`]) walks the netlist in topological
//! order and latches state on clock edges; *what a value is* — a single
//! [`Bv`], or one bit-position of `64·W` packed stimuli — is decided by
//! the [`EvalDomain`] implementation it is instantiated with:
//!
//! - [`ScalarDomain`] evaluates one stimulus at a time and backs the
//!   classic [`crate::Sim`],
//! - [`crate::batch::BitSliceDomain<W>`](crate::batch::BitSliceDomain)
//!   evaluates `64·W` independent stimuli per walk (64 at the default
//!   `W = 1`, 256 at `W = 4`) and backs
//!   [`crate::BatchSim<W>`](crate::BatchSim).
//!
//! A domain supplies constants, the combinational operator semantics and
//! the memory representation (scalar memories are plain `Bv` arrays; the
//! bit-sliced domain keeps per-lane scalar words so address-dependent
//! gathers stay cheap).

use ssc_netlist::{Bv, Op, SignalId};

/// A value domain the generic engine can evaluate a netlist over.
///
/// Implementations define the value representation, the semantics of every
/// [`Op`], and how memories are stored and accessed. All operations are
/// *width-directed*: the engine passes the declared result width and the
/// argument signal ids into the shared `values` table (arguments never
/// alias `out` — combinational nodes cannot read their own output).
pub trait EvalDomain {
    /// A signal's value.
    type Value: Clone + std::fmt::Debug;
    /// One memory's backing store.
    type Mem: Clone + std::fmt::Debug;

    /// The all-zeros value of `width` bits.
    fn value_zero(width: u32) -> Self::Value;

    /// The value of a constant (broadcast to all stimuli in wide domains).
    fn value_const(bv: Bv) -> Self::Value;

    /// A placeholder value temporarily swapped into a slot while that slot
    /// is evaluated in place. Never read.
    fn value_dummy() -> Self::Value;

    /// Overwrites `dst` with a copy of `src`, reusing `dst`'s allocation.
    ///
    /// This is the register-latch path of the engine's double-buffered
    /// commit: once `dst` has ever held a value of `src`'s width, the
    /// assignment must not touch the heap (widths are fixed per signal, so
    /// the scratch buffers reach steady state after the first commit).
    fn value_assign(dst: &mut Self::Value, src: &Self::Value);

    /// Evaluates `op` over `args` (indices into `values`) into `out`.
    ///
    /// `out` holds the slot's previous value; implementations overwrite it
    /// completely (wide domains reuse its allocation).
    fn eval_op(op: Op, width: u32, values: &[Self::Value], args: &[SignalId], out: &mut Self::Value);

    /// Allocates a memory of `words` entries of `width` bits, zeroed.
    fn mem_new(words: u32, width: u32) -> Self::Mem;

    /// Restores a memory to its declared initial contents (zero when
    /// `init` is `None`).
    fn mem_reset(mem: &mut Self::Mem, init: Option<&[Bv]>);

    /// A combinational memory read: `out` receives the word addressed by
    /// `addr` (out-of-range reads produce zero).
    fn mem_read(mem: &Self::Mem, addr: &Self::Value, width: u32, out: &mut Self::Value);

    /// Applies one write port on a clock edge: where `en` holds, the word
    /// addressed by `addr` is replaced by `data` (out-of-range writes are
    /// dropped).
    fn mem_write(mem: &mut Self::Mem, en: &Self::Value, addr: &Self::Value, data: &Self::Value);
}

/// The reference domain: one [`Bv`] stimulus, the semantics every other
/// domain is cross-checked against.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarDomain;

/// A scalar memory: one [`Bv`] per word.
#[derive(Clone, Debug)]
pub struct ScalarMem {
    /// Word width in bits.
    pub width: u32,
    /// The stored words (`data.len()` = declared word count).
    pub data: Vec<Bv>,
}

impl EvalDomain for ScalarDomain {
    type Value = Bv;
    type Mem = ScalarMem;

    #[inline]
    fn value_zero(width: u32) -> Bv {
        Bv::zero(width)
    }

    #[inline]
    fn value_const(bv: Bv) -> Bv {
        bv
    }

    #[inline]
    fn value_dummy() -> Bv {
        Bv::zero(1)
    }

    #[inline]
    fn value_assign(dst: &mut Bv, src: &Bv) {
        *dst = *src;
    }

    fn eval_op(op: Op, width: u32, values: &[Bv], args: &[SignalId], out: &mut Bv) {
        let v = |i: usize| values[args[i].index()];
        *out = match op {
            Op::Not => v(0).not(),
            Op::And => v(0).and(v(1)),
            Op::Or => v(0).or(v(1)),
            Op::Xor => v(0).xor(v(1)),
            Op::Add => v(0).add(v(1)),
            Op::Sub => v(0).sub(v(1)),
            Op::Mul => v(0).mul(v(1)),
            Op::Eq => v(0).eq_bit(v(1)),
            Op::Ult => v(0).ult(v(1)),
            Op::Slt => v(0).slt(v(1)),
            Op::ShlC(a) => v(0).shl(a),
            Op::ShrC(a) => v(0).shr(a),
            Op::SarC(a) => v(0).sar(a),
            Op::Shl => v(0).shl_dyn(v(1)),
            Op::Shr => v(0).shr_dyn(v(1)),
            Op::Sar => v(0).sar_dyn(v(1)),
            Op::Slice { hi, lo } => v(0).slice(hi, lo),
            Op::Concat => v(0).concat(v(1)),
            Op::Zext => v(0).zext(width),
            Op::Sext => v(0).sext(width),
            Op::Mux => {
                if v(0).is_true() {
                    v(1)
                } else {
                    v(2)
                }
            }
            Op::ReduceOr => v(0).reduce_or(),
            Op::ReduceAnd => v(0).reduce_and(),
            Op::ReduceXor => v(0).reduce_xor(),
        };
    }

    fn mem_new(words: u32, width: u32) -> ScalarMem {
        ScalarMem { width, data: vec![Bv::zero(width); words as usize] }
    }

    fn mem_reset(mem: &mut ScalarMem, init: Option<&[Bv]>) {
        match init {
            Some(init) => mem.data.copy_from_slice(init),
            None => mem.data.fill(Bv::zero(mem.width)),
        }
    }

    #[inline]
    fn mem_read(mem: &ScalarMem, addr: &Bv, width: u32, out: &mut Bv) {
        let a = addr.val() as usize;
        *out = if a < mem.data.len() { mem.data[a] } else { Bv::zero(width) };
    }

    #[inline]
    fn mem_write(mem: &mut ScalarMem, en: &Bv, addr: &Bv, data: &Bv) {
        if en.is_true() {
            let a = addr.val() as usize;
            if a < mem.data.len() {
                mem.data[a] = *data;
            }
        }
    }
}
