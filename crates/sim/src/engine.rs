//! The generic evaluate/commit simulation core.
//!
//! [`Engine`] owns the two-phase interpreter loop that both simulator
//! front-ends share:
//!
//! 1. **Evaluate** ([`Engine::eval`]): combinational nodes are computed in
//!    topological order from the current register/memory/input state,
//! 2. **Commit** ([`Engine::commit`]): registers latch their next-state
//!    values and memory write ports apply in declaration order (later
//!    ports override earlier ones within a cycle).
//!
//! What a *value* is — and therefore how many stimuli one walk evaluates —
//! is delegated to the [`EvalDomain`] parameter; see
//! [`crate::domain`] for the scalar reference domain and
//! [`crate::batch`] for the 64-lane bit-sliced domain.

use ssc_netlist::{analysis, MemId, Netlist, NetlistError, Node, SignalId};

use crate::domain::EvalDomain;

/// The domain-generic evaluate/commit core shared by [`crate::Sim`] and
/// [`crate::BatchSim`].
#[derive(Clone)]
pub struct Engine<'n, D: EvalDomain> {
    netlist: &'n Netlist,
    order: Vec<SignalId>,
    values: Vec<D::Value>,
    mems: Vec<D::Mem>,
    cycle: u64,
    dirty: bool,
}

impl<'n, D: EvalDomain> std::fmt::Debug for Engine<'n, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("design", &self.netlist.name())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl<'n, D: EvalDomain> Engine<'n, D> {
    /// Creates an engine for `netlist` with all state at its reset values.
    ///
    /// # Errors
    ///
    /// Returns the netlist's structural error if it fails [`Netlist::check`].
    pub fn new(netlist: &'n Netlist) -> Result<Self, NetlistError> {
        netlist.check()?;
        let order = analysis::comb_topo_order(netlist).expect("checked netlist has no comb loops");
        let values = (0..netlist.num_nodes())
            .map(|i| D::value_zero(netlist.width_of(SignalId::from_index(i))))
            .collect();
        let mems = netlist.iter_mems().map(|(_, m)| D::mem_new(m.words, m.width)).collect();
        let mut eng = Engine { netlist, order, values, mems, cycle: 0, dirty: true };
        eng.reset();
        Ok(eng)
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// The current cycle count (number of commits since reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resets registers and memories to their declared initial values (zero
    /// when unspecified), clears inputs to zero and restarts the cycle
    /// counter.
    pub fn reset(&mut self) {
        for (id, node) in self.netlist.iter_nodes() {
            match node {
                Node::Reg(info) => {
                    self.values[id.index()] = match info.init {
                        Some(bv) => D::value_const(bv),
                        None => D::value_zero(info.width),
                    };
                }
                Node::Input { width, .. } => {
                    self.values[id.index()] = D::value_zero(*width);
                }
                _ => {}
            }
        }
        for (mid, m) in self.netlist.iter_mems() {
            D::mem_reset(&mut self.mems[mid.index()], m.init.as_deref());
        }
        self.cycle = 0;
        self.dirty = true;
    }

    /// The current value of a signal. The caller is responsible for
    /// evaluating first ([`Engine::eval`]) if inputs or state changed.
    pub fn value(&self, id: SignalId) -> &D::Value {
        &self.values[id.index()]
    }

    /// Overwrites a signal's value slot (input driving / state poking) and
    /// marks the combinational values stale.
    pub fn set_value(&mut self, id: SignalId, v: D::Value) {
        self.values[id.index()] = v;
        self.dirty = true;
    }

    /// Read access to a memory's backing store.
    pub fn mem(&self, mem: MemId) -> &D::Mem {
        &self.mems[mem.index()]
    }

    /// Mutable access to a memory's backing store (state poking); marks the
    /// combinational values stale.
    pub fn mem_mut(&mut self, mem: MemId) -> &mut D::Mem {
        self.dirty = true;
        &mut self.mems[mem.index()]
    }

    /// Recomputes combinational values if inputs or state changed.
    pub fn eval(&mut self) {
        if !self.dirty {
            return;
        }
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            match self.netlist.node(id) {
                Node::Input { .. } | Node::Reg(_) => continue, // state held in `values`
                Node::Const(bv) => {
                    self.values[id.index()] = D::value_const(*bv);
                }
                Node::Op { op, args, width } => {
                    // Take the slot out so the argument slots can be read
                    // while it is written (a node never reads its own
                    // output — the order is topological).
                    let mut out = std::mem::replace(&mut self.values[id.index()], D::value_dummy());
                    D::eval_op(*op, *width, &self.values, args, &mut out);
                    self.values[id.index()] = out;
                }
                Node::MemRead { mem, addr, width } => {
                    let mut out = std::mem::replace(&mut self.values[id.index()], D::value_dummy());
                    D::mem_read(
                        &self.mems[mem.index()],
                        &self.values[addr.index()],
                        *width,
                        &mut out,
                    );
                    self.values[id.index()] = out;
                }
            }
        }
        self.dirty = false;
    }

    /// Latches registers and applies memory write ports (evaluating first
    /// if necessary), then advances the cycle counter.
    pub fn commit(&mut self) {
        self.eval();
        // Collect register next-values before overwriting any of them.
        let mut reg_updates: Vec<(SignalId, D::Value)> = Vec::new();
        for (id, node) in self.netlist.iter_nodes() {
            if let Node::Reg(info) = node {
                let next = info.next.expect("checked netlist");
                reg_updates.push((id, self.values[next.index()].clone()));
            }
        }
        // Write ports read combinational values only, so they can apply
        // directly; declaration order realizes later-port-wins.
        for (mid, m) in self.netlist.iter_mems() {
            for wp in &m.write_ports {
                D::mem_write(
                    &mut self.mems[mid.index()],
                    &self.values[wp.en.index()],
                    &self.values[wp.addr.index()],
                    &self.values[wp.data.index()],
                );
            }
        }
        for (id, v) in reg_updates {
            self.values[id.index()] = v;
        }
        self.cycle += 1;
        self.dirty = true;
    }
}
