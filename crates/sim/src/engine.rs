//! The generic evaluate/commit simulation core.
//!
//! [`Engine`] owns the two-phase interpreter loop that both simulator
//! front-ends share:
//!
//! 1. **Evaluate** ([`Engine::eval`]): combinational nodes are computed in
//!    topological order from the current register/memory/input state,
//! 2. **Commit** ([`Engine::commit`]): registers latch their next-state
//!    values and memory write ports apply in declaration order (later
//!    ports override earlier ones within a cycle).
//!
//! What a *value* is — and therefore how many stimuli one walk evaluates —
//! is delegated to the [`EvalDomain`] parameter; see
//! [`crate::domain`] for the scalar reference domain and
//! [`crate::batch`] for the 64-lane bit-sliced domain.

use ssc_netlist::{analysis, MemId, Netlist, NetlistError, Node, SignalId};

use crate::domain::EvalDomain;

/// The domain-generic evaluate/commit core shared by [`crate::Sim`] and
/// [`crate::BatchSim`].
#[derive(Clone)]
pub struct Engine<'n, D: EvalDomain> {
    netlist: &'n Netlist,
    order: Vec<SignalId>,
    values: Vec<D::Value>,
    mems: Vec<D::Mem>,
    /// `(register, next-state signal)` pairs in declaration order.
    regs: Vec<(SignalId, SignalId)>,
    /// Double-buffered register scratch table: `reg_next[i]` latches the
    /// next value of `regs[i]` during [`Engine::commit`] and is swapped
    /// into the value table, so the displaced old value becomes the next
    /// cycle's scratch buffer — no per-cycle allocation in either domain.
    reg_next: Vec<D::Value>,
    cycle: u64,
    dirty: bool,
}

impl<'n, D: EvalDomain> std::fmt::Debug for Engine<'n, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("design", &self.netlist.name())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl<'n, D: EvalDomain> Engine<'n, D> {
    /// Creates an engine for `netlist` with all state at its reset values.
    ///
    /// # Errors
    ///
    /// Returns the netlist's structural error if it fails [`Netlist::check`].
    pub fn new(netlist: &'n Netlist) -> Result<Self, NetlistError> {
        netlist.check()?;
        let order = analysis::comb_topo_order(netlist).expect("checked netlist has no comb loops");
        let values = (0..netlist.num_nodes())
            .map(|i| D::value_zero(netlist.width_of(SignalId::from_index(i))))
            .collect();
        let mems = netlist.iter_mems().map(|(_, m)| D::mem_new(m.words, m.width)).collect();
        let regs: Vec<(SignalId, SignalId)> = netlist
            .iter_nodes()
            .filter_map(|(id, node)| match node {
                Node::Reg(info) => Some((id, info.next.expect("checked netlist"))),
                _ => None,
            })
            .collect();
        let reg_next =
            regs.iter().map(|&(id, _)| D::value_zero(netlist.width_of(id))).collect();
        let mut eng =
            Engine { netlist, order, values, mems, regs, reg_next, cycle: 0, dirty: true };
        eng.reset();
        Ok(eng)
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// The current cycle count (number of commits since reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resets registers and memories to their declared initial values (zero
    /// when unspecified), clears inputs to zero and restarts the cycle
    /// counter.
    pub fn reset(&mut self) {
        for (id, node) in self.netlist.iter_nodes() {
            match node {
                Node::Reg(info) => {
                    self.values[id.index()] = match info.init {
                        Some(bv) => D::value_const(bv),
                        None => D::value_zero(info.width),
                    };
                }
                Node::Input { width, .. } => {
                    self.values[id.index()] = D::value_zero(*width);
                }
                // Constants are fixed for the engine's lifetime; seating
                // them here keeps the per-cycle eval loop from rebuilding
                // (and, in wide domains, reallocating) them every walk.
                Node::Const(bv) => {
                    self.values[id.index()] = D::value_const(*bv);
                }
                _ => {}
            }
        }
        for (mid, m) in self.netlist.iter_mems() {
            D::mem_reset(&mut self.mems[mid.index()], m.init.as_deref());
        }
        self.cycle = 0;
        self.dirty = true;
    }

    /// The current value of a signal. The caller is responsible for
    /// evaluating first ([`Engine::eval`]) if inputs or state changed.
    pub fn value(&self, id: SignalId) -> &D::Value {
        &self.values[id.index()]
    }

    /// Overwrites a signal's value slot (input driving / state poking) and
    /// marks the combinational values stale.
    pub fn set_value(&mut self, id: SignalId, v: D::Value) {
        self.values[id.index()] = v;
        self.dirty = true;
    }

    /// Read access to a memory's backing store.
    pub fn mem(&self, mem: MemId) -> &D::Mem {
        &self.mems[mem.index()]
    }

    /// Mutable access to a memory's backing store (state poking); marks the
    /// combinational values stale.
    pub fn mem_mut(&mut self, mem: MemId) -> &mut D::Mem {
        self.dirty = true;
        &mut self.mems[mem.index()]
    }

    /// Recomputes combinational values if inputs or state changed.
    pub fn eval(&mut self) {
        if !self.dirty {
            return;
        }
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            match self.netlist.node(id) {
                // Inputs/registers hold state in `values`; constants were
                // seated by `reset` and never change.
                Node::Input { .. } | Node::Reg(_) | Node::Const(_) => continue,
                Node::Op { op, args, width } => {
                    // Take the slot out so the argument slots can be read
                    // while it is written (a node never reads its own
                    // output — the order is topological).
                    let mut out = std::mem::replace(&mut self.values[id.index()], D::value_dummy());
                    D::eval_op(*op, *width, &self.values, args, &mut out);
                    self.values[id.index()] = out;
                }
                Node::MemRead { mem, addr, width } => {
                    let mut out = std::mem::replace(&mut self.values[id.index()], D::value_dummy());
                    D::mem_read(
                        &self.mems[mem.index()],
                        &self.values[addr.index()],
                        *width,
                        &mut out,
                    );
                    self.values[id.index()] = out;
                }
            }
        }
        self.dirty = false;
    }

    /// Latches registers and applies memory write ports (evaluating first
    /// if necessary), then advances the cycle counter.
    pub fn commit(&mut self) {
        self.eval();
        // Latch every register's next value into the persistent scratch
        // table before overwriting any register (a next-state cone may read
        // other registers). `value_assign` reuses the scratch buffers, so
        // this is allocation-free once the buffers reached their widths.
        for (i, &(_, next)) in self.regs.iter().enumerate() {
            D::value_assign(&mut self.reg_next[i], &self.values[next.index()]);
        }
        // Write ports read combinational values only, so they can apply
        // directly; declaration order realizes later-port-wins.
        for (mid, m) in self.netlist.iter_mems() {
            for wp in &m.write_ports {
                D::mem_write(
                    &mut self.mems[mid.index()],
                    &self.values[wp.en.index()],
                    &self.values[wp.addr.index()],
                    &self.values[wp.data.index()],
                );
            }
        }
        // Swap the latched values in; the displaced old register values
        // become the next cycle's scratch buffers (double buffering).
        for (i, &(id, _)) in self.regs.iter().enumerate() {
            std::mem::swap(&mut self.values[id.index()], &mut self.reg_next[i]);
        }
        self.cycle += 1;
        self.dirty = true;
    }
}
