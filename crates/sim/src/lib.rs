//! # ssc-sim — cycle-accurate netlist simulator
//!
//! A two-phase (evaluate/commit) interpreter for [`ssc_netlist::Netlist`]
//! designs:
//!
//! 1. **Evaluate**: combinational nodes are computed in topological order
//!    from the current register/memory/input state.
//! 2. **Commit** (on [`Sim::step`]): every register latches its next-state
//!    value and every memory applies its write ports in declaration order.
//!
//! The simulator supports state *poking* ([`Sim::set_reg`],
//! [`Sim::set_mem_word`]) so that formal counterexamples — which start from
//! a symbolic state — can be replayed concretely, and signal *probing* with
//! a trace recorder and VCD export.
//!
//! # Architecture: one engine, pluggable value domains
//!
//! The interpreter loop lives in the domain-generic [`Engine`]; *what a
//! value is* is decided by the [`domain::EvalDomain`] it is instantiated
//! with. Two domain families ship with the crate:
//!
//! - the **scalar** domain ([`domain::ScalarDomain`], value = [`Bv`]) backs
//!   [`Sim`] — one stimulus per walk, the reference semantics;
//! - the **width-generic bit-sliced** domain
//!   ([`batch::BitSliceDomain<W>`](batch::BitSliceDomain)) backs
//!   [`BatchSim<W>`](BatchSim) — a `w`-bit signal becomes `w`
//!   [`ssc_netlist::lanes::Block<W>`](ssc_netlist::lanes::Block)s (each
//!   `W` `u64` words) where block `i` carries bit `i` of `64·W`
//!   *independent* stimuli (the [`ssc_netlist::lanes`] layout), so one
//!   netlist walk advances `64·W` trials. `W = 1` (the default) is the
//!   classic 64-lane engine; `W = 4` ([`batch::WIDE_WORDS`]) is the
//!   256-lane wide engine whose word-wise kernels autovectorize to
//!   AVX2/SVE registers. Memories stay per-lane scalar
//!   (`data[word * 64·W + lane]`) because reads/writes are
//!   address-dependent gathers; packing is transposed at the memory
//!   boundary only.
//!
//! ## The width-generic block design
//!
//! Three layers make a lane width:
//!
//! 1. **Block layout** (`ssc_netlist::lanes`): a
//!    [`Block<W>`](ssc_netlist::lanes::Block) is `[u64; W]` — lane `l`
//!    lives in word `l / 64`, bit `l % 64`, so `Block<1>` is
//!    layout-identical to the historical `u64` word and `W = 1` results
//!    are bit-identical to the pre-width-generic engine by construction.
//!    All kernels (ripple-carry add/sub/mul, borrow-chain compares,
//!    mask-blend mux, per-lane dynamic shifts) are written against the
//!    block's word-wise bit operators, never against `u64` directly.
//! 2. **Transpose boundary** (`pack_block`/`unpack_block`): converting
//!    per-lane scalars to the bit-sliced layout decomposes into `W`
//!    independent 64×64 transposes (lane group `k` lands in word `k` of
//!    every block). Only stimulus injection, observation, and the memory
//!    gather/scatter path cross this boundary; the evaluation loop never
//!    does.
//! 3. **Width-parameterized front-ends**: `BatchSim<W>`, `BatchTrace<W>`,
//!    and (downstream) `BatchSocSim<W>`/`BatchTaintSim<W>` and the batch
//!    attack/IFT entry points are `const W: usize` generic with `W = 1`
//!    defaults; lane-block sharding and the runtime width default live in
//!    `ssc_pool` (`LaneWidth`), which is the single place the width is
//!    selected and partitioned.
//!
//! **Adding a width** (say AVX-512's `W = 8`): no kernel changes — add the
//! new `W` arm to `ssc_pool::LaneWidth` (words/lanes/env parsing) and the
//! monomorphization `match`es that dispatch on it (`ssc-attacks::leak`,
//! `ssc-bench::count_batch_hits`), and extend the equivalence suites'
//! width lists. Everything else is already generic.
//!
//! **When to use which:** `Sim` for single runs, counterexample replay and
//! interactive debugging; `BatchSim` whenever ≥ a handful of *independent*
//! trials of the same design are needed (channel sweeps, Monte-Carlo taint
//! trials) — a batch walk costs a few scalar walks but carries `64·W`
//! lanes, an order-of-magnitude throughput win. Every lane is
//! bit-identical to a scalar run fed the same stimulus, at every width;
//! the property tests in `ssc-aig/tests/proptest_equivalence.rs` and the
//! attack-scenario cross-checks in `ssc-attacks` enforce this for both
//! `W = 1` and `W = 4`.
//!
//! # Example
//!
//! ```
//! use ssc_netlist::{Netlist, Bv, StateMeta};
//! use ssc_sim::Sim;
//!
//! let mut n = Netlist::new("counter");
//! let en = n.input("en", 1);
//! let count = n.reg("count", 8, Some(Bv::zero(8)), StateMeta::default());
//! let one = n.lit(8, 1);
//! let inc = n.add(count.wire(), one);
//! let next = n.mux(en, inc, count.wire());
//! n.connect_reg(count, next);
//! n.mark_output("count", count.wire());
//!
//! let mut sim = Sim::new(&n).unwrap();
//! sim.set_input("en", 1);
//! sim.step_n(5);
//! assert_eq!(sim.peek_name("count").val(), 5);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod domain;
mod engine;
mod trace;

pub use batch::{BatchSim, WIDE_WORDS};
pub use engine::Engine;
pub use trace::{BatchTrace, Trace};

/// The 256-lane wide batch simulator (`u64x4` blocks — autovectorizes to
/// AVX2/SVE on capable targets).
pub type WideBatchSim<'n> = BatchSim<'n, WIDE_WORDS>;

use ssc_netlist::{Bv, MemId, Netlist, NetlistError, Node, Wire};

use domain::ScalarDomain;

/// A cycle-accurate simulator bound to a netlist.
///
/// See the [crate documentation](self) for an example.
#[derive(Clone)]
pub struct Sim<'n> {
    engine: Engine<'n, ScalarDomain>,
    trace: Trace,
}

impl<'n> std::fmt::Debug for Sim<'n> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("design", &self.engine.netlist().name())
            .field("cycle", &self.engine.cycle())
            .finish()
    }
}

impl<'n> Sim<'n> {
    /// Creates a simulator for `netlist` and applies [`Sim::reset`].
    ///
    /// # Errors
    ///
    /// Returns the netlist's structural error if it fails [`Netlist::check`].
    pub fn new(netlist: &'n Netlist) -> Result<Self, NetlistError> {
        Ok(Sim { engine: Engine::new(netlist)?, trace: Trace::new() })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.engine.netlist()
    }

    /// The current cycle count (number of [`Sim::step`]s since reset).
    pub fn cycle(&self) -> u64 {
        self.engine.cycle()
    }

    /// Resets all registers and memories to their declared initial values
    /// (zero when unspecified), clears inputs to zero and restarts the cycle
    /// counter. The trace contents are cleared (probes stay registered).
    pub fn reset(&mut self) {
        self.engine.reset();
        self.trace.clear();
    }

    /// Drives a primary input by name.
    ///
    /// # Panics
    ///
    /// Panics if no input with that name exists, or if `value` does not fit
    /// the port width (the panic message names the signal — a wider value
    /// is a stimulus bug, not something to truncate silently).
    pub fn set_input(&mut self, name: &str, value: u64) {
        let w = self
            .engine
            .netlist()
            .find(name)
            .unwrap_or_else(|| panic!("no signal named `{name}`"));
        assert!(
            value & !Bv::mask_for(w.width()) == 0,
            "value {value:#x} does not fit the {}-bit width of input `{name}`",
            w.width()
        );
        self.set_input_wire(w, Bv::new(w.width(), value));
    }

    /// Drives a primary input by wire handle.
    ///
    /// # Panics
    ///
    /// Panics if the wire is not an input or widths mismatch.
    pub fn set_input_wire(&mut self, wire: Wire, value: Bv) {
        assert!(
            matches!(self.engine.netlist().node(wire.id()), Node::Input { .. }),
            "set_input on non-input signal"
        );
        assert_eq!(wire.width(), value.width(), "input width mismatch");
        self.engine.set_value(wire.id(), value);
    }

    /// Overwrites a register's current state (state poking for
    /// counterexample replay).
    ///
    /// # Panics
    ///
    /// Panics if the wire is not a register output.
    pub fn set_reg(&mut self, wire: Wire, value: Bv) {
        assert!(
            matches!(self.engine.netlist().node(wire.id()), Node::Reg(_)),
            "set_reg on non-register signal"
        );
        assert_eq!(wire.width(), value.width(), "register width mismatch");
        self.engine.set_value(wire.id(), value);
    }

    /// Overwrites one memory word.
    ///
    /// # Panics
    ///
    /// Panics if the word index is out of range or widths mismatch.
    pub fn set_mem_word(&mut self, mem: MemId, index: u32, value: Bv) {
        let m = self.engine.netlist().mem(mem);
        assert!(index < m.words, "word index {index} out of range for `{}`", m.name);
        assert_eq!(value.width(), m.width, "memory word width mismatch");
        self.engine.mem_mut(mem).data[index as usize] = value;
    }

    /// Reads one memory word.
    ///
    /// # Panics
    ///
    /// Panics if the word index is out of range.
    pub fn read_mem(&self, mem: MemId, index: u32) -> Bv {
        let m = self.engine.netlist().mem(mem);
        assert!(index < m.words, "word index {index} out of range for `{}`", m.name);
        self.engine.mem(mem).data[index as usize]
    }

    /// The current value of a signal (evaluating combinational logic first
    /// if inputs changed since the last evaluation).
    pub fn peek(&mut self, wire: Wire) -> Bv {
        self.engine.eval();
        *self.engine.value(wire.id())
    }

    /// [`Sim::peek`] by hierarchical name.
    ///
    /// # Panics
    ///
    /// Panics if no signal with that name exists.
    pub fn peek_name(&mut self, name: &str) -> Bv {
        let w = self
            .engine
            .netlist()
            .find(name)
            .unwrap_or_else(|| panic!("no signal named `{name}`"));
        self.peek(w)
    }

    /// Recomputes combinational values if inputs or state changed.
    pub fn eval(&mut self) {
        self.engine.eval();
    }

    /// Advances the design by one clock edge: evaluates, records probes,
    /// latches registers and applies memory write ports (in declaration
    /// order — later ports override earlier ones within a cycle).
    pub fn step(&mut self) {
        self.engine.eval();
        self.record_probes();
        self.engine.commit();
    }

    /// Runs `n` clock cycles.
    pub fn step_n(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Steps until `signal` becomes 1, up to `max_cycles` steps. Returns the
    /// number of steps taken before the signal was observed high, or `None`
    /// if the signal never rose within the bound.
    pub fn step_until(&mut self, signal: Wire, max_cycles: u64) -> Option<u64> {
        for i in 0..=max_cycles {
            if self.peek(signal).is_true() {
                return Some(i);
            }
            if i < max_cycles {
                self.step();
            }
        }
        None
    }

    /// Registers a named signal to be recorded on every subsequent step.
    ///
    /// # Panics
    ///
    /// Panics if no signal with that name exists.
    pub fn watch(&mut self, name: &str) {
        let w = self
            .engine
            .netlist()
            .find(name)
            .unwrap_or_else(|| panic!("no signal named `{name}`"));
        self.trace.add_probe(name, w);
    }

    fn record_probes(&mut self) {
        if self.trace.is_empty() {
            return;
        }
        let cycle = self.engine.cycle();
        let probes: Vec<Wire> = self.trace.probe_wires().collect();
        let vals: Vec<Bv> = probes.iter().map(|w| *self.engine.value(w.id())).collect();
        self.trace.record(cycle, &vals);
    }

    /// The recorded trace of watched signals.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssc_netlist::StateMeta;

    fn counter() -> Netlist {
        let mut n = Netlist::new("counter");
        let en = n.input("en", 1);
        let count = n.reg("count", 8, Some(Bv::zero(8)), StateMeta::default());
        let one = n.lit(8, 1);
        let inc = n.add(count.wire(), one);
        let next = n.mux(en, inc, count.wire());
        n.connect_reg(count, next);
        n.mark_output("count", count.wire());
        n
    }

    #[test]
    fn counter_counts_when_enabled() {
        let n = counter();
        let mut sim = Sim::new(&n).unwrap();
        sim.step_n(3);
        assert_eq!(sim.peek_name("count").val(), 0, "disabled counter must hold");
        sim.set_input("en", 1);
        sim.step_n(5);
        assert_eq!(sim.peek_name("count").val(), 5);
        sim.set_input("en", 0);
        sim.step_n(5);
        assert_eq!(sim.peek_name("count").val(), 5);
    }

    #[test]
    fn counter_wraps() {
        let n = counter();
        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("en", 1);
        sim.step_n(256);
        assert_eq!(sim.peek_name("count").val(), 0);
    }

    #[test]
    fn reset_restores_init() {
        let n = counter();
        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("en", 1);
        sim.step_n(7);
        sim.reset();
        assert_eq!(sim.peek_name("count").val(), 0);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn memory_write_then_read() {
        let mut n = Netlist::new("mem");
        let en = n.input("we", 1);
        let addr = n.input("addr", 4);
        let data = n.input("data", 32);
        let mem = n.memory("ram", 16, 32, StateMeta::memory(true));
        n.mem_write(mem, en, addr, data);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);

        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("we", 1);
        sim.set_input("addr", 5);
        sim.set_input("data", 0xDEAD);
        assert_eq!(sim.peek(rd).val(), 0, "read-before-write sees old value");
        sim.step();
        sim.set_input("we", 0);
        assert_eq!(sim.peek(rd).val(), 0xDEAD);
        assert_eq!(sim.read_mem(mem, 5).val(), 0xDEAD);
    }

    #[test]
    fn later_write_port_wins() {
        let mut n = Netlist::new("mem2");
        let addr = n.input("addr", 2);
        let one = n.lit(1, 1);
        let d1 = n.lit(8, 0x11);
        let d2 = n.lit(8, 0x22);
        let mem = n.memory("ram", 4, 8, StateMeta::memory(false));
        n.mem_write(mem, one, addr, d1);
        n.mem_write(mem, one, addr, d2);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);
        let mut sim = Sim::new(&n).unwrap();
        sim.step();
        assert_eq!(sim.read_mem(mem, 0).val(), 0x22);
    }

    #[test]
    fn out_of_range_read_is_zero_and_write_ignored() {
        let mut n = Netlist::new("mem3");
        let addr = n.input("addr", 4); // address space larger than memory
        let one = n.lit(1, 1);
        let d = n.lit(8, 0xAB);
        let mem = n.memory("ram", 4, 8, StateMeta::memory(false));
        n.mem_write(mem, one, addr, d);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);
        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("addr", 9);
        assert_eq!(sim.peek(rd).val(), 0);
        sim.step(); // write to 9 silently dropped
        sim.set_input("addr", 1);
        assert_eq!(sim.peek(rd).val(), 0);
    }

    #[test]
    fn poking_state_changes_behavior() {
        let n = counter();
        let mut sim = Sim::new(&n).unwrap();
        let count = n.find("count").unwrap();
        sim.set_reg(count, Bv::new(8, 100));
        sim.set_input("en", 1);
        sim.step();
        assert_eq!(sim.peek_name("count").val(), 101);
    }

    #[test]
    fn step_until_detects_rise() {
        let mut n = counter();
        let count = n.find("count").unwrap();
        let done = n.eq_const(count, 4);
        n.set_name(done, "done");
        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("en", 1);
        assert_eq!(sim.step_until(done, 100), Some(4));
        sim.reset();
        assert_eq!(sim.step_until(done, 2), None);
    }

    #[test]
    fn memory_init_applied_on_reset() {
        let mut n = Netlist::new("mi");
        let addr = n.input("addr", 2);
        let mem = n.memory("rom", 4, 8, StateMeta::memory(false));
        n.set_mem_init(mem, vec![Bv::new(8, 10), Bv::new(8, 20), Bv::new(8, 30), Bv::new(8, 40)]);
        let rd = n.mem_read(mem, addr);
        n.mark_output("rd", rd);
        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("addr", 2);
        assert_eq!(sim.peek(rd).val(), 30);
    }

    #[test]
    fn trace_records_watched_signals() {
        let n = counter();
        let mut sim = Sim::new(&n).unwrap();
        sim.watch("count");
        sim.set_input("en", 1);
        sim.step_n(3);
        let series = sim.trace().series("count").unwrap();
        assert_eq!(
            series.iter().map(|(_, v)| v.val()).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn vcd_export_contains_probes() {
        let n = counter();
        let mut sim = Sim::new(&n).unwrap();
        sim.watch("count");
        sim.set_input("en", 1);
        sim.step_n(2);
        let mut out = Vec::new();
        sim.trace().write_vcd(&mut out, "counter").unwrap();
        let vcd = String::from_utf8(out).unwrap();
        assert!(vcd.contains("$var wire 8"));
        assert!(vcd.contains("count"));
        assert!(vcd.contains("#0"));
    }
}
