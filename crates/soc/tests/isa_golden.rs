//! ISA golden tests: every supported RV32I instruction executed on the full
//! SoC (through the real fetch/decode/bus path) against reference results.

use ssc_soc::asm::{Asm, Reg};
use ssc_soc::{addr, Soc, SocConfig, SocSim};

fn run(prog: &Asm) -> SimResult {
    // Build a fresh SoC per run (cheap) so tests are independent.
    let soc = Soc::build(SocConfig::sim());
    let mut h = SocSim::new(&soc);
    h.load_program(0, prog);
    h.switch_to(0);
    h.run_until_halt(2_000).expect("program must halt");
    let mut regs = [0u64; 16];
    for (i, slot) in regs.iter_mut().enumerate().skip(1) {
        *slot = h.reg(reg_from(i));
    }
    SimResult { regs, cycles: h.cycle() }
}

struct SimResult {
    regs: [u64; 16],
    cycles: u64,
}

fn reg_from(i: usize) -> Reg {
    use Reg::*;
    [X0, X1, X2, X3, X4, X5, X6, X7, X8, X9, X10, X11, X12, X13, X14, X15][i]
}

#[test]
fn slt_sltu_signed_vs_unsigned() {
    let mut a = Asm::new();
    a.addi(Reg::X1, Reg::X0, -5);
    a.addi(Reg::X2, Reg::X0, 3);
    a.slt(Reg::X3, Reg::X1, Reg::X2); // -5 < 3 signed: 1
    a.sltu(Reg::X4, Reg::X1, Reg::X2); // 0xFFFF_FFFB < 3 unsigned: 0
    a.slti(Reg::X5, Reg::X1, 0); // -5 < 0: 1
    a.sltiu(Reg::X6, Reg::X2, 4); // 3 < 4: 1
    a.ebreak();
    let r = run(&a);
    assert_eq!(r.regs[3], 1);
    assert_eq!(r.regs[4], 0);
    assert_eq!(r.regs[5], 1);
    assert_eq!(r.regs[6], 1);
}

#[test]
fn shift_right_arithmetic_preserves_sign() {
    let mut a = Asm::new();
    a.li(Reg::X1, 0x8000_0040);
    a.srai(Reg::X2, Reg::X1, 4); // 0xF800_0004
    a.srli(Reg::X3, Reg::X1, 4); // 0x0800_0004
    a.addi(Reg::X4, Reg::X0, 4);
    a.sra(Reg::X5, Reg::X1, Reg::X4);
    a.srl(Reg::X6, Reg::X1, Reg::X4);
    a.sll(Reg::X7, Reg::X1, Reg::X4); // 0x0000_0400
    a.ebreak();
    let r = run(&a);
    assert_eq!(r.regs[2], 0xF800_0004);
    assert_eq!(r.regs[3], 0x0800_0004);
    assert_eq!(r.regs[5], 0xF800_0004);
    assert_eq!(r.regs[6], 0x0800_0004);
    assert_eq!(r.regs[7], 0x0000_0400);
}

#[test]
fn bge_and_bgeu_branches() {
    let mut a = Asm::new();
    a.addi(Reg::X1, Reg::X0, -1);
    a.addi(Reg::X2, Reg::X0, 1);
    a.addi(Reg::X3, Reg::X0, 0);
    a.addi(Reg::X4, Reg::X0, 0);
    // signed: -1 >= 1 is false -> not taken
    a.bge(Reg::X1, Reg::X2, "sk1");
    a.addi(Reg::X3, Reg::X0, 1); // executed
    a.label("sk1");
    // unsigned: 0xFFFFFFFF >= 1 -> taken
    a.bgeu(Reg::X1, Reg::X2, "sk2");
    a.addi(Reg::X4, Reg::X0, 1); // skipped
    a.label("sk2");
    a.ebreak();
    let r = run(&a);
    assert_eq!(r.regs[3], 1, "BGE not taken for signed -1 >= 1");
    assert_eq!(r.regs[4], 0, "BGEU taken for unsigned max >= 1");
}

#[test]
fn negative_load_store_offsets() {
    let mut a = Asm::new();
    a.li(Reg::X1, (addr::PUB_RAM_BASE + 0x40) as u32);
    a.addi(Reg::X2, Reg::X0, 0x77);
    a.sw(Reg::X1, Reg::X2, -4); // store at base - 4
    a.lw(Reg::X3, Reg::X1, -4);
    a.sw(Reg::X1, Reg::X2, 8);
    a.lw(Reg::X4, Reg::X1, 8);
    a.ebreak();
    let r = run(&a);
    assert_eq!(r.regs[3], 0x77);
    assert_eq!(r.regs[4], 0x77);
}

#[test]
fn back_to_back_loads_have_no_hazard() {
    // The 2-stage pipeline completes each instruction before the next
    // enters EX: a load's result is usable immediately.
    let mut a = Asm::new();
    a.li(Reg::X1, (addr::PUB_RAM_BASE + 0x80) as u32);
    a.addi(Reg::X2, Reg::X0, 21);
    a.sw(Reg::X1, Reg::X2, 0);
    a.lw(Reg::X3, Reg::X1, 0);
    a.add(Reg::X4, Reg::X3, Reg::X3); // uses the load result immediately
    a.ebreak();
    let r = run(&a);
    assert_eq!(r.regs[4], 42);
}

#[test]
fn memory_access_latency_is_deterministic_without_contention() {
    // Same program, same cycle count across runs — determinism is the
    // baseline the timing side channel deviates from.
    let mut a = Asm::new();
    a.li(Reg::X1, addr::PUB_RAM_BASE as u32);
    for i in 0..8 {
        a.lw(Reg::X2, Reg::X1, i * 4);
    }
    a.ebreak();
    let c1 = run(&a).cycles;
    let c2 = run(&a).cycles;
    assert_eq!(c1, c2);
}

#[test]
fn dma_contention_stalls_the_cpu_measurably() {
    // The flip side of the attack: the CPU's own latency grows under DMA
    // load — the contention is symmetric.
    let soc = Soc::build(SocConfig::sim());

    let mut prog = Asm::new();
    // Start the DMA (32-word copy), then hammer the same device.
    prog.li(Reg::X1, addr::DMA_BASE as u32);
    prog.li(Reg::X2, (addr::PUB_RAM_BASE + 0x200) as u32);
    prog.sw(Reg::X1, Reg::X2, 0);
    prog.li(Reg::X2, (addr::PUB_RAM_BASE + 0x300) as u32);
    prog.sw(Reg::X1, Reg::X2, 4);
    prog.addi(Reg::X2, Reg::X0, 32);
    prog.sw(Reg::X1, Reg::X2, 8);
    prog.addi(Reg::X2, Reg::X0, 1);
    prog.sw(Reg::X1, Reg::X2, 12);
    prog.li(Reg::X3, addr::PUB_RAM_BASE as u32);
    for i in 0..8 {
        prog.lw(Reg::X4, Reg::X3, i * 4);
    }
    prog.ebreak();

    let mut with_dma = SocSim::new(&soc);
    with_dma.load_program(0, &prog);
    with_dma.switch_to(0);
    let contended = with_dma.run_until_halt(2_000).unwrap();

    // Same loads without starting the DMA.
    let mut calm = Asm::new();
    calm.li(Reg::X1, addr::DMA_BASE as u32); // same preamble length, no start
    calm.li(Reg::X2, (addr::PUB_RAM_BASE + 0x200) as u32);
    calm.sw(Reg::X1, Reg::X2, 0);
    calm.li(Reg::X2, (addr::PUB_RAM_BASE + 0x300) as u32);
    calm.sw(Reg::X1, Reg::X2, 4);
    calm.addi(Reg::X2, Reg::X0, 32);
    calm.sw(Reg::X1, Reg::X2, 8);
    calm.addi(Reg::X2, Reg::X0, 0); // start bit clear
    calm.sw(Reg::X1, Reg::X2, 12);
    calm.li(Reg::X3, addr::PUB_RAM_BASE as u32);
    for i in 0..8 {
        calm.lw(Reg::X4, Reg::X3, i * 4);
    }
    calm.ebreak();

    let mut without_dma = SocSim::new(&soc);
    without_dma.load_program(0, &calm);
    without_dma.switch_to(0);
    let baseline = without_dma.run_until_halt(2_000).unwrap();

    assert!(
        contended > baseline,
        "DMA contention must stall the CPU: {contended} vs {baseline}"
    );
}

#[test]
fn deep_loop_touches_every_word() {
    // A memset loop across the whole public RAM, validating sustained
    // store traffic and loop branching.
    let soc = Soc::build(SocConfig::sim());
    let mut a = Asm::new();
    a.li(Reg::X1, addr::PUB_RAM_BASE as u32);
    a.addi(Reg::X2, Reg::X0, 64);
    a.addi(Reg::X3, Reg::X0, 0x3C);
    a.label("loop");
    a.sw(Reg::X1, Reg::X3, 0);
    a.addi(Reg::X1, Reg::X1, 4);
    a.addi(Reg::X2, Reg::X2, -1);
    a.bne(Reg::X2, Reg::X0, "loop");
    a.ebreak();
    let mut h = SocSim::new(&soc);
    h.load_program(0, &a);
    h.switch_to(0);
    h.run_until_halt(2_000).unwrap();
    for i in 0..64 {
        assert_eq!(h.pub_word(i), 0x3C, "word {i}");
    }
}
