//! Property-based crossbar/arbiter invariants under random traffic.

#![allow(clippy::needless_range_loop)] // master indices are semantic

use proptest::prelude::*;
use ssc_netlist::{Netlist, StateMeta};
use ssc_sim::Sim;
use ssc_soc::bus::MasterPort;
use ssc_soc::xbar::{sram_xbar, SramXbar};

fn fixture(masters: usize) -> (Netlist, SramXbar) {
    let mut n = Netlist::new("arb_prop");
    let mut ports = Vec::new();
    for i in 0..masters {
        let req = n.input(&format!("m{i}_req"), 1);
        let addr = n.input(&format!("m{i}_addr"), 32);
        let we = n.input(&format!("m{i}_we"), 1);
        let wdata = n.input(&format!("m{i}_wdata"), 32);
        ports.push(MasterPort { req, addr, we, wdata });
    }
    let x = sram_xbar(&mut n, "xbar", &ports, 16, StateMeta::memory(false));
    for (i, r) in x.resps.iter().enumerate() {
        n.mark_output(&format!("gnt{i}"), r.gnt);
    }
    n.check().unwrap();
    (n, x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly one grant whenever at least one master requests; no grant
    /// to a silent master; mutual exclusion always.
    #[test]
    fn grant_invariants(
        masters in 2usize..=3,
        traffic in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 3), 1..40),
    ) {
        let (n, x) = fixture(masters);
        let mut sim = Sim::new(&n).unwrap();
        for cycle in &traffic {
            for i in 0..masters {
                sim.set_input(&format!("m{i}_req"), u64::from(cycle[i]));
            }
            let grants: Vec<bool> =
                (0..masters).map(|i| sim.peek(x.resps[i].gnt).is_true()).collect();
            let granted = grants.iter().filter(|&&g| g).count();
            let requested = (0..masters).filter(|&i| cycle[i]).count();
            if requested > 0 {
                prop_assert_eq!(granted, 1, "exactly one grant under load");
            } else {
                prop_assert_eq!(granted, 0, "no spurious grants");
            }
            for i in 0..masters {
                prop_assert!(!grants[i] || cycle[i], "grant implies request");
            }
            sim.step();
        }
    }

    /// Bounded waiting: a master that keeps requesting is granted within
    /// `masters` cycles (round-robin freedom from starvation).
    #[test]
    fn bounded_waiting(
        masters in 2usize..=3,
        hungry in 0usize..3,
        noise in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 3), 8..24),
    ) {
        let hungry = hungry % masters;
        let (n, x) = fixture(masters);
        let mut sim = Sim::new(&n).unwrap();
        let mut wait = 0usize;
        for cycle in &noise {
            for i in 0..masters {
                let req = if i == hungry { true } else { cycle[i] };
                sim.set_input(&format!("m{i}_req"), u64::from(req));
            }
            if sim.peek(x.resps[hungry].gnt).is_true() {
                wait = 0;
            } else {
                wait += 1;
                prop_assert!(wait < masters, "hungry master starved for {wait} cycles");
            }
            sim.step();
        }
    }

    /// The memory holds exactly the last granted write per word.
    #[test]
    fn memory_consistency(
        writes in proptest::collection::vec((0u64..16, 0u64..0xFFFF), 1..20),
    ) {
        let (n, x) = fixture(2);
        let mut sim = Sim::new(&n).unwrap();
        let mut model = [0u64; 16];
        sim.set_input("m0_we", 1);
        for &(word, data) in &writes {
            sim.set_input("m0_req", 1);
            sim.set_input("m0_addr", word * 4);
            sim.set_input("m0_wdata", data);
            // Single requester: must be granted.
            prop_assert!(sim.peek(x.resps[0].gnt).is_true());
            sim.step();
            model[word as usize] = data;
        }
        for (i, &v) in model.iter().enumerate() {
            prop_assert_eq!(sim.read_mem(x.mem, i as u32).val(), v, "word {}", i);
        }
    }
}
