//! Bus port bundles and address decoding helpers.
//!
//! The on-chip protocol is a single-cycle request/grant handshake (an
//! AHB-lite/OBI simplification): a master asserts `req` with `addr`, `we`
//! and `wdata`; the interconnect answers with `gnt` in the same cycle.
//! Reads return data combinationally (`rdata` is valid while `gnt` is
//! high). A master that is not granted must hold its request — that stall
//! is precisely the timing channel this project studies.

use ssc_netlist::{Netlist, Wire};

use crate::addr::{DEV_MASK, PRIV_RAM_BASE, PUB_RAM_BASE};

/// The signals a master drives.
#[derive(Clone, Copy, Debug)]
pub struct MasterPort {
    /// Request strobe (1 bit).
    pub req: Wire,
    /// Byte address (32 bits, word aligned in this model).
    pub addr: Wire,
    /// Write enable (1 bit).
    pub we: Wire,
    /// Write data (32 bits).
    pub wdata: Wire,
}

impl MasterPort {
    /// Creates a port tied off to "never requests" (used to fill unused
    /// crossbar slots).
    pub fn tied_off(n: &mut Netlist) -> Self {
        MasterPort {
            req: n.lit(1, 0),
            addr: n.lit(32, 0),
            we: n.lit(1, 0),
            wdata: n.lit(32, 0),
        }
    }

    /// A copy of this port whose request is additionally gated by `cond`.
    pub fn gated(&self, n: &mut Netlist, cond: Wire) -> Self {
        MasterPort {
            req: n.and(self.req, cond),
            addr: self.addr,
            we: self.we,
            wdata: self.wdata,
        }
    }
}

/// The response signals a master receives.
#[derive(Clone, Copy, Debug)]
pub struct MasterResp {
    /// Grant (transaction accepted this cycle).
    pub gnt: Wire,
    /// Read data (valid while granted and `we == 0`).
    pub rdata: Wire,
}

/// The CPU-side APB configuration bus (single master, always ready).
///
/// Peripherals decode `addr` against their register addresses; `wen` is the
/// qualified write strobe (CPU request, write, APB region selected).
#[derive(Clone, Copy, Debug)]
pub struct ApbBus {
    /// Qualified write strobe.
    pub wen: Wire,
    /// Full byte address.
    pub addr: Wire,
    /// Write data.
    pub wdata: Wire,
}

impl ApbBus {
    /// Write strobe for one specific register address.
    pub fn reg_write(&self, n: &mut Netlist, reg: u64) -> Wire {
        let hit = n.eq_const(self.addr, reg);
        n.and(self.wen, hit)
    }
}

/// `addr` selects the public RAM device.
pub fn sel_pub(n: &mut Netlist, addr: Wire) -> Wire {
    n.masked_eq(addr, DEV_MASK, PUB_RAM_BASE)
}

/// `addr` selects the private RAM device.
pub fn sel_priv(n: &mut Netlist, addr: Wire) -> Wire {
    n.masked_eq(addr, DEV_MASK, PRIV_RAM_BASE)
}

/// `addr` selects the APB peripheral region.
pub fn sel_apb(n: &mut Netlist, addr: Wire) -> Wire {
    n.masked_eq(addr, DEV_MASK, crate::addr::APB_BASE & DEV_MASK)
}

/// `addr` matches peripheral register `reg` exactly (word granularity).
pub fn sel_reg(n: &mut Netlist, addr: Wire, reg: u64) -> Wire {
    n.eq_const(addr, reg)
}

/// Extracts the word index of `addr` within its device window
/// (bits `[19:2]`).
pub fn word_index(n: &mut Netlist, addr: Wire) -> Wire {
    n.slice(addr, 19, 2)
}

/// Computes `addr + 4` *wrapping within the device window*: the device
/// select bits are held constant, only the offset bits increment. This is
/// the address-generator idiom of the DMA and HWPE; it makes "the pointer
/// stays inside its device" an inductive invariant, which the UPEC-SSC
/// countermeasure proof relies on (see DESIGN.md).
pub fn bump_in_device(n: &mut Netlist, addr: Wire) -> Wire {
    let hi = n.slice(addr, 31, 20);
    let lo = n.slice(addr, 19, 0);
    let four = n.lit(20, 4);
    let lo2 = n.add(lo, four);
    n.concat(hi, lo2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssc_netlist::Netlist;
    use ssc_sim::Sim;

    #[test]
    fn decoders_match_reference() {
        let mut n = Netlist::new("t");
        let addr = n.input("addr", 32);
        let p = sel_pub(&mut n, addr);
        let v = sel_priv(&mut n, addr);
        let a = sel_apb(&mut n, addr);
        n.mark_output("p", p);
        n.mark_output("v", v);
        n.mark_output("a", a);
        let mut sim = Sim::new(&n).unwrap();
        for probe in [0x1C00_0040u64, 0x1D00_0000, 0x1A10_0004, 0x0000_0000] {
            sim.set_input("addr", probe);
            assert_eq!(sim.peek(p).is_true(), crate::addr::is_pub(probe), "{probe:#x}");
            assert_eq!(sim.peek(v).is_true(), crate::addr::is_priv(probe), "{probe:#x}");
            assert_eq!(sim.peek(a).is_true(), crate::addr::is_apb(probe), "{probe:#x}");
        }
    }

    #[test]
    fn bump_wraps_within_device() {
        let mut n = Netlist::new("t");
        let addr = n.input("addr", 32);
        let next = bump_in_device(&mut n, addr);
        n.mark_output("next", next);
        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("addr", 0x1C00_0040);
        assert_eq!(sim.peek(next).val(), 0x1C00_0044);
        // At the end of the window the pointer wraps instead of leaving it.
        sim.set_input("addr", 0x1C0F_FFFC);
        assert_eq!(sim.peek(next).val(), 0x1C00_0000);
    }

    #[test]
    fn word_index_extracts_offset() {
        let mut n = Netlist::new("t");
        let addr = n.input("addr", 32);
        let idx = word_index(&mut n, addr);
        n.mark_output("idx", idx);
        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("addr", 0x1C00_0000 + 5 * 4);
        assert_eq!(sim.peek(idx).val(), 5);
    }
}
