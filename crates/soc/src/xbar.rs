//! Crossbar: round-robin arbitration of several masters onto one SRAM
//! device.
//!
//! Contention is the heart of the paper's threat model: when two masters
//! target the same device in the same cycle, exactly one is granted and the
//! others stall. A spying IP (DMA, HWPE) observes the victim's accesses
//! through these stalls.

use ssc_netlist::{Bv, MemId, Netlist, StateMeta, Wire};

use crate::bus::{word_index, MasterPort, MasterResp};

/// Result of instantiating an SRAM behind an arbiter.
#[derive(Clone, Debug)]
pub struct SramXbar {
    /// The memory device.
    pub mem: MemId,
    /// Per-master responses, aligned with the `masters` argument.
    pub resps: Vec<MasterResp>,
    /// 1 when more than one master requested this device in a cycle
    /// (diagnostic/trace signal).
    pub contention: Wire,
}

/// Builds an SRAM device of `words` words behind a round-robin arbiter for
/// the given masters.
///
/// The arbiter grants exactly one requesting master per cycle, rotating
/// priority after every grant. The SRAM has a single port: reads complete
/// combinationally in the granted cycle, writes commit at the clock edge.
///
/// Masters are expected to pre-gate their `req` with the device select for
/// this device (see [`MasterPort::gated`]).
///
/// # Panics
///
/// Panics if `masters` is empty or has more than 4 entries.
pub fn sram_xbar(
    n: &mut Netlist,
    scope: &str,
    masters: &[MasterPort],
    words: u32,
    mem_meta: StateMeta,
) -> SramXbar {
    assert!(!masters.is_empty() && masters.len() <= 4, "1..=4 masters supported");
    n.push_scope(scope);

    let m = masters.len();
    let rr_bits = 2; // up to 4 masters
    // Rotating priority pointer: the master *after* the last grantee has
    // highest priority. Updated on every grant => transient interconnect
    // state, not part of S_pers.
    let rr = n.reg("arb.rr", rr_bits, Some(Bv::zero(rr_bits)), StateMeta::interconnect());

    // For each possible rr value, a fixed priority chain; then select by rr.
    let mut grant_opts: Vec<Vec<Wire>> = Vec::new(); // [rr_val][master]
    for r in 0..m {
        // Priority order: r+1, r+2, ..., r (mod m).
        let mut grants = vec![n.lit(1, 0); m];
        let mut taken = n.lit(1, 0);
        for off in 1..=m {
            let i = (r + off) % m;
            let free = n.not(taken);
            grants[i] = n.and(masters[i].req, free);
            taken = n.or(taken, grants[i]);
        }
        grant_opts.push(grants);
    }
    let mut grants: Vec<Wire> = Vec::with_capacity(m);
    #[allow(clippy::needless_range_loop)] // `i` indexes a column across rows
    for i in 0..m {
        let opts: Vec<Wire> = (0..m).map(|r| grant_opts[r][i]).collect();
        let g = n.select(rr.wire(), &opts);
        n.set_name(g, &format!("gnt{i}"));
        grants.push(g);
    }

    // rr' = index of grantee when any grant fired, else hold.
    let any_grant = n.or_all(grants.iter().copied());
    let mut grant_idx = n.lit(rr_bits, 0);
    for (i, &g) in grants.iter().enumerate() {
        let idx = n.lit(rr_bits, i as u64);
        grant_idx = n.mux(g, idx, grant_idx);
    }
    let rr_next = n.mux(any_grant, grant_idx, rr.wire());
    n.connect_reg(rr, rr_next);

    // Muxed device-side signals.
    let mut addr = n.lit(32, 0);
    let mut wdata = n.lit(32, 0);
    let mut we = n.lit(1, 0);
    for (i, &g) in grants.iter().enumerate() {
        addr = n.mux(g, masters[i].addr, addr);
        wdata = n.mux(g, masters[i].wdata, wdata);
        let w = n.and(masters[i].we, g);
        we = n.or(we, w);
    }

    let mem = n.memory("ram", words, 32, mem_meta);
    let idx = word_index(n, addr);
    let wen = n.and(we, any_grant);
    n.mem_write(mem, wen, idx, wdata);
    let rdata = n.mem_read(mem, idx);
    n.set_name(rdata, "rdata");

    // Contention diagnostic: at least two simultaneous requests.
    let mut pair_or = n.lit(1, 0);
    for i in 0..m {
        for j in (i + 1)..m {
            let both = n.and(masters[i].req, masters[j].req);
            pair_or = n.or(pair_or, both);
        }
    }
    n.set_name(pair_or, "contention");

    n.pop_scope();

    let resps = grants
        .iter()
        .map(|&gnt| MasterResp { gnt, rdata })
        .collect();
    SramXbar { mem, resps, contention: pair_or }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssc_netlist::Netlist;
    use ssc_sim::Sim;

    /// Two-master fixture with input-driven ports.
    fn fixture() -> (Netlist, SramXbar) {
        let mut n = Netlist::new("xbar_t");
        let mut masters = Vec::new();
        for i in 0..2 {
            let req = n.input(&format!("m{i}_req"), 1);
            let addr = n.input(&format!("m{i}_addr"), 32);
            let we = n.input(&format!("m{i}_we"), 1);
            let wdata = n.input(&format!("m{i}_wdata"), 32);
            masters.push(MasterPort { req, addr, we, wdata });
        }
        let x = sram_xbar(&mut n, "xbar", &masters, 16, StateMeta::memory(true));
        for (i, r) in x.resps.iter().enumerate() {
            n.mark_output(&format!("gnt{i}"), r.gnt);
            n.mark_output(&format!("rdata{i}"), r.rdata);
        }
        n.mark_output("contention", x.contention);
        n.check().unwrap();
        (n, x)
    }

    #[test]
    fn single_master_always_granted() {
        let (n, x) = fixture();
        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("m0_req", 1);
        sim.set_input("m0_addr", crate::addr::PUB_RAM_BASE + 8);
        sim.set_input("m0_we", 1);
        sim.set_input("m0_wdata", 0xAB);
        assert_eq!(sim.peek(x.resps[0].gnt).val(), 1);
        assert_eq!(sim.peek(x.contention).val(), 0);
        sim.step();
        assert_eq!(sim.read_mem(x.mem, 2).val(), 0xAB);
        // Read it back.
        sim.set_input("m0_we", 0);
        assert_eq!(sim.peek(x.resps[0].rdata).val(), 0xAB);
    }

    #[test]
    fn contention_grants_exactly_one() {
        let (n, x) = fixture();
        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("m0_req", 1);
        sim.set_input("m1_req", 1);
        sim.set_input("m0_addr", 0);
        sim.set_input("m1_addr", 4);
        let g0 = sim.peek(x.resps[0].gnt).val();
        let g1 = sim.peek(x.resps[1].gnt).val();
        assert_eq!(g0 + g1, 1, "exactly one grant under contention");
        assert_eq!(sim.peek(x.contention).val(), 1);
    }

    #[test]
    fn round_robin_alternates_under_contention() {
        let (n, x) = fixture();
        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("m0_req", 1);
        sim.set_input("m1_req", 1);
        let mut grants = Vec::new();
        for _ in 0..6 {
            let g0 = sim.peek(x.resps[0].gnt).is_true();
            grants.push(usize::from(!g0));
            sim.step();
        }
        // Fair alternation: 0,1,0,1,... or 1,0,1,0,...
        for w in grants.windows(2) {
            assert_ne!(w[0], w[1], "round robin must alternate: {grants:?}");
        }
    }

    #[test]
    fn no_starvation_with_three_masters() {
        let mut n = Netlist::new("xbar3");
        let mut masters = Vec::new();
        for i in 0..3 {
            let req = n.input(&format!("m{i}_req"), 1);
            let addr = n.lit(32, 0);
            let we = n.lit(1, 0);
            let wdata = n.lit(32, 0);
            masters.push(MasterPort { req, addr, we, wdata });
        }
        let x = sram_xbar(&mut n, "xbar", &masters, 4, StateMeta::memory(false));
        for (i, r) in x.resps.iter().enumerate() {
            n.mark_output(&format!("gnt{i}"), r.gnt);
        }
        n.check().unwrap();
        let mut sim = Sim::new(&n).unwrap();
        for i in 0..3 {
            sim.set_input(&format!("m{i}_req"), 1);
        }
        let mut counts = [0u32; 3];
        for _ in 0..30 {
            for (i, count) in counts.iter_mut().enumerate() {
                if sim.peek(x.resps[i].gnt).is_true() {
                    *count += 1;
                }
            }
            sim.step();
        }
        assert_eq!(counts, [10, 10, 10], "perfect fairness under full load");
    }

    #[test]
    fn write_does_not_commit_without_grant() {
        let (n, x) = fixture();
        let mut sim = Sim::new(&n).unwrap();
        // m1 writes while m0 also requests; if m0 wins, m1's write must not
        // land this cycle.
        sim.set_input("m0_req", 1);
        sim.set_input("m0_addr", 0);
        sim.set_input("m1_req", 1);
        sim.set_input("m1_addr", 12);
        sim.set_input("m1_we", 1);
        sim.set_input("m1_wdata", 0x77);
        let g1 = sim.peek(x.resps[1].gnt).is_true();
        sim.step();
        let committed = sim.read_mem(x.mem, 3).val() == 0x77;
        assert_eq!(committed, g1, "write commits iff granted");
    }
}
