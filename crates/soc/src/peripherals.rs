//! Simple APB peripherals: timer, GPIO, UART stub.

use ssc_netlist::{Bv, Netlist, StateMeta, Wire};

use crate::addr;
use crate::bus::ApbBus;

/// Timer interface.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    /// Free-running counter value (raw, unlocked view).
    pub count: Wire,
    /// Overflow/interrupt line (counter MSB in this model).
    pub irq: Wire,
    /// APB read-data contribution (respects the lock bit).
    pub apb_rdata: Wire,
}

/// Builds the timer.
///
/// * `hw_start`: hardware start pulse (wired from the DMA chain output) —
///   sets the enable bit without CPU involvement.
///
/// The `lock` bit models the classic countermeasure of denying untrusted
/// tasks access to timers (paper Sec. 4.1): while locked, reads of the
/// counter return zero. The paper's point — reproduced by experiment E3 —
/// is that this does *not* close the HWPE/memory channel.
pub fn timer(n: &mut Netlist, scope: &str, apb: &ApbBus, hw_start: Wire) -> Timer {
    n.push_scope(scope);
    let meta = StateMeta::peripheral();
    let enabled = n.reg("enabled", 1, Some(Bv::zero(1)), meta);
    let locked = n.reg("locked", 1, Some(Bv::zero(1)), meta);
    let count = n.reg("count", 32, Some(Bv::zero(32)), meta);

    let w_ctrl = apb.reg_write(n, addr::TIMER_CTRL);
    let w_count = apb.reg_write(n, addr::TIMER_COUNT);

    let en_bit = n.bit(apb.wdata, 0);
    let lock_bit = n.bit(apb.wdata, 1);
    let en_cfg = n.mux(w_ctrl, en_bit, enabled.wire());
    let en_next = n.or(en_cfg, hw_start);
    n.connect_reg(enabled, en_next);
    let lock_next = n.mux(w_ctrl, lock_bit, locked.wire());
    n.connect_reg(locked, lock_next);

    let one = n.lit(32, 1);
    let inc = n.add(count.wire(), one);
    let ticked = n.mux(enabled.wire(), inc, count.wire());
    let count_next = n.mux(w_count, apb.wdata, ticked);
    n.connect_reg(count, count_next);

    // Locked reads return zero.
    let zero32 = n.lit(32, 0);
    let visible = n.mux(locked.wire(), zero32, count.wire());
    let en32 = n.zext(enabled.wire(), 32);
    let lock32 = n.zext(locked.wire(), 32);
    let lock_shifted = n.shl_c(lock32, 1);
    let ctrl_view = n.or(lock_shifted, en32);
    let mut rdata = n.lit(32, 0);
    for (reg, val) in [(addr::TIMER_COUNT, visible), (addr::TIMER_CTRL, ctrl_view)] {
        let hit = n.eq_const(apb.addr, reg);
        rdata = n.mux(hit, val, rdata);
    }
    n.set_name(rdata, "apb_rdata");
    let irq = n.bit(count.wire(), 31);
    n.set_name(irq, "irq");
    n.pop_scope();
    Timer { count: count.wire(), irq, apb_rdata: rdata }
}

/// GPIO interface.
#[derive(Clone, Copy, Debug)]
pub struct Gpio {
    /// Output register value (also driven off-chip).
    pub out: Wire,
    /// APB read-data contribution.
    pub apb_rdata: Wire,
}

/// Builds a 32-bit GPIO output register.
pub fn gpio(n: &mut Netlist, scope: &str, apb: &ApbBus) -> Gpio {
    n.push_scope(scope);
    let out = n.reg("out", 32, Some(Bv::zero(32)), StateMeta::peripheral());
    let w = apb.reg_write(n, addr::GPIO_OUT);
    let next = n.mux(w, apb.wdata, out.wire());
    n.connect_reg(out, next);
    let hit = n.eq_const(apb.addr, addr::GPIO_OUT);
    let zero = n.lit(32, 0);
    let rdata = n.mux(hit, out.wire(), zero);
    n.set_name(rdata, "apb_rdata");
    n.pop_scope();
    Gpio { out: out.wire(), apb_rdata: rdata }
}

/// UART stub interface.
#[derive(Clone, Copy, Debug)]
pub struct Uart {
    /// Last byte written to the TX register.
    pub tx: Wire,
    /// APB read-data contribution (status always reads "ready").
    pub apb_rdata: Wire,
}

/// Builds a UART transmit stub: a TX holding register plus an always-ready
/// status. Enough surface for firmware that polls-then-writes.
pub fn uart(n: &mut Netlist, scope: &str, apb: &ApbBus) -> Uart {
    n.push_scope(scope);
    let tx = n.reg("tx", 8, Some(Bv::zero(8)), StateMeta::peripheral());
    let w = apb.reg_write(n, addr::UART_TX);
    let byte = n.slice(apb.wdata, 7, 0);
    let next = n.mux(w, byte, tx.wire());
    n.connect_reg(tx, next);
    let tx32 = n.zext(tx.wire(), 32);
    let ready = n.lit(32, 1);
    let mut rdata = n.lit(32, 0);
    for (reg, val) in [(addr::UART_TX, tx32), (addr::UART_STATUS, ready)] {
        let hit = n.eq_const(apb.addr, reg);
        rdata = n.mux(hit, val, rdata);
    }
    n.set_name(rdata, "apb_rdata");
    n.pop_scope();
    Uart { tx: tx.wire(), apb_rdata: rdata }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssc_netlist::Netlist;
    use ssc_sim::Sim;

    fn apb_fixture(n: &mut Netlist) -> ApbBus {
        let wen = n.input("apb_wen", 1);
        let addr = n.input("apb_addr", 32);
        let wdata = n.input("apb_wdata", 32);
        ApbBus { wen, addr, wdata }
    }

    fn apb_write(sim: &mut Sim, addr: u64, data: u64) {
        sim.set_input("apb_wen", 1);
        sim.set_input("apb_addr", addr);
        sim.set_input("apb_wdata", data);
        sim.step();
        sim.set_input("apb_wen", 0);
    }

    #[test]
    fn timer_counts_when_enabled() {
        let mut n = Netlist::new("t");
        let apb = apb_fixture(&mut n);
        let hw_start = n.input("hw_start", 1);
        let t = timer(&mut n, "timer", &apb, hw_start);
        n.mark_output("count", t.count);
        n.check().unwrap();
        let mut sim = Sim::new(&n).unwrap();
        sim.step_n(3);
        assert_eq!(sim.peek(t.count).val(), 0);
        apb_write(&mut sim, addr::TIMER_CTRL, 1);
        sim.step_n(5);
        assert_eq!(sim.peek(t.count).val(), 5);
        apb_write(&mut sim, addr::TIMER_CTRL, 0);
        let v = sim.peek(t.count).val();
        sim.step_n(4);
        assert_eq!(sim.peek(t.count).val(), v);
    }

    #[test]
    fn timer_hw_start_pulse_enables() {
        let mut n = Netlist::new("t");
        let apb = apb_fixture(&mut n);
        let hw_start = n.input("hw_start", 1);
        let t = timer(&mut n, "timer", &apb, hw_start);
        n.mark_output("count", t.count);
        n.check().unwrap();
        let mut sim = Sim::new(&n).unwrap();
        sim.set_input("hw_start", 1);
        sim.step();
        sim.set_input("hw_start", 0);
        sim.step_n(3);
        assert_eq!(sim.peek(t.count).val(), 3);
    }

    #[test]
    fn locked_timer_reads_zero_but_counts() {
        let mut n = Netlist::new("t");
        let apb = apb_fixture(&mut n);
        let hw_start = n.input("hw_start", 1);
        let t = timer(&mut n, "timer", &apb, hw_start);
        n.mark_output("count", t.count);
        n.mark_output("rdata", t.apb_rdata);
        n.check().unwrap();
        let mut sim = Sim::new(&n).unwrap();
        apb_write(&mut sim, addr::TIMER_CTRL, 0b11); // enable + lock
        sim.step_n(4);
        sim.set_input("apb_addr", addr::TIMER_COUNT);
        assert_eq!(sim.peek(t.apb_rdata).val(), 0, "locked read returns 0");
        assert_eq!(sim.peek(t.count).val(), 4, "but the counter still runs");
    }

    #[test]
    fn gpio_and_uart_hold_writes() {
        let mut n = Netlist::new("t");
        let apb = apb_fixture(&mut n);
        let g = gpio(&mut n, "gpio", &apb);
        let u = uart(&mut n, "uart", &apb);
        n.mark_output("gpio_out", g.out);
        n.mark_output("uart_tx", u.tx);
        n.check().unwrap();
        let mut sim = Sim::new(&n).unwrap();
        apb_write(&mut sim, addr::GPIO_OUT, 0x55AA);
        apb_write(&mut sim, addr::UART_TX, 0x41);
        assert_eq!(sim.peek(g.out).val(), 0x55AA);
        assert_eq!(sim.peek(u.tx).val(), 0x41);
        sim.set_input("apb_addr", addr::UART_STATUS);
        assert_eq!(sim.peek(u.apb_rdata).val(), 1);
    }
}
