//! A 2-stage (IF/EX) RV32I-subset processor core.
//!
//! Models the Pulpissimo's small RISC-V core at the fidelity the threat
//! model needs: single-threaded, in-order, no caches, no branch predictor —
//! per the paper's assumption that confidential data leaves no footprint
//! *inside* the CPU. Loads and stores go through the data port with a
//! req/gnt handshake; losing arbitration stalls the pipeline, which is how
//! the victim's timing couples into the interconnect.
//!
//! Supported instructions: `LUI, JAL, JALR, BEQ, BNE, BLT, BGE, BLTU, BGEU,
//! LW, SW, ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI, ADD, SUB,
//! SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND, EBREAK` (halt). The register
//! file holds x0–x15 (RV32E style); x0 is hardwired to zero.
//!
//! Context switches are modeled by the `ctx_switch`/`ctx_pc` inputs: the
//! testbench (the "OS") points the core at the next task's entry; the
//! pipeline is flushed and the halt flag cleared.

use ssc_netlist::{Bv, MemId, Netlist, RegHandle, StateMeta, Wire};

use crate::bus::{MasterPort, MasterResp};

/// Phase-1 handle: architectural state and the data port exist; pipeline
/// next-state logic is attached by [`CpuBuilder::finish`].
pub struct CpuBuilder {
    pc: RegHandle,
    if_instr: RegHandle,
    if_pc: RegHandle,
    if_valid: RegHandle,
    halted: RegHandle,
    regfile: MemId,
    imem: MemId,
    // Decode products needed in phase 2.
    d: Decode,
    /// The data port driven by the core.
    pub port: MasterPort,
    /// Context-switch strobe input.
    pub ctx_switch: Wire,
    /// Context-switch target PC input.
    pub ctx_pc: Wire,
}

/// Finished CPU interface.
#[derive(Clone, Copy, Debug)]
pub struct Cpu {
    /// Instruction memory (program storage; poke via the simulator).
    pub imem: MemId,
    /// Architectural register file (x0..x15).
    pub regfile: MemId,
    /// Halt flag output (set by `EBREAK`, cleared by a context switch).
    pub halted: Wire,
    /// Current program counter (debug output).
    pub pc: Wire,
}

#[derive(Clone, Copy, Debug)]
struct Decode {
    exec_valid: Wire,
    is_load: Wire,
    is_branch: Wire,
    is_jal: Wire,
    is_jalr: Wire,
    is_lui: Wire,
    is_op: Wire,
    is_opimm: Wire,
    is_ebreak: Wire,
    rd: Wire,
    rs1_val: Wire,
    rs2_val: Wire,
    imm_i: Wire,
    imm_b: Wire,
    imm_j: Wire,
    imm_u: Wire,
    funct3: Wire,
    funct7b5: Wire,
}

impl CpuBuilder {
    /// Creates the core's state, fetch/decode logic and data port under
    /// `scope`.
    pub fn new(n: &mut Netlist, scope: &str, imem_words: u32) -> Self {
        n.push_scope(scope);
        let meta = StateMeta::cpu();
        let pc = n.reg("pc", 32, Some(Bv::zero(32)), meta);
        let if_instr = n.reg("if_instr", 32, Some(Bv::zero(32)), meta);
        let if_pc = n.reg("if_pc", 32, Some(Bv::zero(32)), meta);
        let if_valid = n.reg("if_valid", 1, Some(Bv::zero(1)), meta);
        let halted = n.reg("halted", 1, Some(Bv::bit(true)), meta);
        let regfile = n.memory("regfile", 16, 32, meta);
        let imem = n.memory("imem", imem_words, 32, meta);

        let ctx_switch = n.input("ctx_switch", 1);
        let ctx_pc = n.input("ctx_pc", 32);

        // ---------------- Decode (EX stage) ------------------------------
        let instr = if_instr.wire();
        let opcode = n.slice(instr, 6, 0);
        let rd = n.slice(instr, 11, 7);
        let funct3 = n.slice(instr, 14, 12);
        let rs1 = n.slice(instr, 19, 15);
        let rs2 = n.slice(instr, 24, 20);
        let funct7b5 = n.bit(instr, 30);

        let is_lui = n.eq_const(opcode, 0b0110111);
        let is_jal = n.eq_const(opcode, 0b1101111);
        let is_jalr = n.eq_const(opcode, 0b1100111);
        let is_branch = n.eq_const(opcode, 0b1100011);
        let is_load = n.eq_const(opcode, 0b0000011);
        let is_store = n.eq_const(opcode, 0b0100011);
        let is_opimm = n.eq_const(opcode, 0b0010011);
        let is_op = n.eq_const(opcode, 0b0110011);
        let is_system = n.eq_const(opcode, 0b1110011);

        // Register file reads (x0 forced to zero).
        let rs1_idx = n.slice(rs1, 3, 0);
        let rs2_idx = n.slice(rs2, 3, 0);
        let rs1_raw = n.mem_read(regfile, rs1_idx);
        let rs2_raw = n.mem_read(regfile, rs2_idx);
        let rs1_zero = n.eq_const(rs1, 0);
        let rs2_zero = n.eq_const(rs2, 0);
        let zero32 = n.lit(32, 0);
        let rs1_val = n.mux(rs1_zero, zero32, rs1_raw);
        let rs2_val = n.mux(rs2_zero, zero32, rs2_raw);

        // Immediates.
        let imm_i = {
            let hi = n.slice(instr, 31, 20);
            n.sext(hi, 32)
        };
        let imm_s = {
            let hi = n.slice(instr, 31, 25);
            let lo = n.slice(instr, 11, 7);
            let cat = n.concat(hi, lo);
            n.sext(cat, 32)
        };
        let imm_b = {
            let b12 = n.bit(instr, 31);
            let b11 = n.bit(instr, 7);
            let b10_5 = n.slice(instr, 30, 25);
            let b4_1 = n.slice(instr, 11, 8);
            let zero1 = n.lit(1, 0);
            let p1 = n.concat(b12, b11); // [12:11]
            let p2 = n.concat(p1, b10_5); // [12:5]
            let p3 = n.concat(p2, b4_1); // [12:1]
            let p4 = n.concat(p3, zero1); // [12:0]
            n.sext(p4, 32)
        };
        let imm_j = {
            let b20 = n.bit(instr, 31);
            let b19_12 = n.slice(instr, 19, 12);
            let b11 = n.bit(instr, 20);
            let b10_1 = n.slice(instr, 30, 21);
            let zero1 = n.lit(1, 0);
            let p1 = n.concat(b20, b19_12); // [20:12]
            let p2 = n.concat(p1, b11); // [20:11]
            let p3 = n.concat(p2, b10_1); // [20:1]
            let p4 = n.concat(p3, zero1); // [20:0]
            n.sext(p4, 32)
        };
        let imm_u = {
            let hi = n.slice(instr, 31, 12);
            let z = n.lit(12, 0);
            n.concat(hi, z)
        };

        let ebreak_full = n.eq_const(instr, 0x0010_0073);
        let is_ebreak = n.and(is_system, ebreak_full);

        // The instruction in EX executes when valid and not halted.
        let not_halted = n.not(halted.wire());
        let exec_valid = n.and(if_valid.wire(), not_halted);

        // Data port: address = rs1 + imm (I for loads, S for stores).
        let addr_off = n.mux(is_store, imm_s, imm_i);
        let mem_addr = n.add(rs1_val, addr_off);
        let mem_op = n.or(is_load, is_store);
        let req = n.and(exec_valid, mem_op);
        let port = MasterPort { req, addr: mem_addr, we: is_store, wdata: rs2_val };
        n.set_name(req, "dport_req");
        n.set_name(mem_addr, "dport_addr");
        n.set_name(is_store, "dport_we");
        n.set_name(rs2_val, "dport_wdata");
        n.pop_scope();

        let d = Decode {
            exec_valid,
            is_load,
            is_branch,
            is_jal,
            is_jalr,
            is_lui,
            is_op,
            is_opimm,
            is_ebreak,
            rd,
            rs1_val,
            rs2_val,
            imm_i,
            imm_b,
            imm_j,
            imm_u,
            funct3,
            funct7b5,
        };

        CpuBuilder {
            pc,
            if_instr,
            if_pc,
            if_valid,
            halted,
            regfile,
            imem,
            d,
            port,
            ctx_switch,
            ctx_pc,
        }
    }

    /// Connects the pipeline given the data-port response.
    pub fn finish(self, n: &mut Netlist, scope: &str, resp: MasterResp) -> Cpu {
        n.push_scope(scope);
        let d = self.d;
        let zero1 = n.lit(1, 0);

        // ---------------- ALU ---------------------------------------------
        let alu_b = n.mux(d.is_op, d.rs2_val, d.imm_i);
        let sum = n.add(d.rs1_val, alu_b);
        let diff = n.sub(d.rs1_val, alu_b);
        let use_sub = n.and(d.is_op, d.funct7b5);
        let addsub = n.mux(use_sub, diff, sum);
        let xor_r = n.xor(d.rs1_val, alu_b);
        let or_r = n.or(d.rs1_val, alu_b);
        let and_r = n.and(d.rs1_val, alu_b);
        let shamt = n.slice(alu_b, 4, 0);
        let sll = n.shl(d.rs1_val, shamt);
        let srl = n.shr(d.rs1_val, shamt);
        let sra = n.sar(d.rs1_val, shamt);
        let sr = n.mux(d.funct7b5, sra, srl);
        let slt_b = n.slt(d.rs1_val, alu_b);
        let slt = n.zext(slt_b, 32);
        let sltu_b = n.ult(d.rs1_val, alu_b);
        let sltu = n.zext(sltu_b, 32);
        let alu = n.select(d.funct3, &[addsub, sll, slt, sltu, xor_r, sr, or_r, and_r]);

        // ---------------- Branches ----------------------------------------
        let eq = n.eq(d.rs1_val, d.rs2_val);
        let ne = n.not(eq);
        let lt = n.slt(d.rs1_val, d.rs2_val);
        let ge = n.not(lt);
        let ltu = n.ult(d.rs1_val, d.rs2_val);
        let geu = n.not(ltu);
        // funct3: 000 BEQ, 001 BNE, 100 BLT, 101 BGE, 110 BLTU, 111 BGEU.
        let br_cond = n.select(d.funct3, &[eq, ne, zero1, zero1, lt, ge, ltu, geu]);
        let br_taken = n.and(d.is_branch, br_cond);

        // ---------------- Stall & redirect ---------------------------------
        let no_gnt = n.not(resp.gnt);
        let stall = n.and(self.port.req, no_gnt);
        n.set_name(stall, "stall");

        let jal_target = n.add(self.if_pc.wire(), d.imm_j);
        let jalr_sum = n.add(d.rs1_val, d.imm_i);
        let minus2 = n.lit(32, 0xFFFF_FFFE);
        let jalr_target = n.and(jalr_sum, minus2);
        let br_target = n.add(self.if_pc.wire(), d.imm_b);
        let jump = n.or(d.is_jal, d.is_jalr);
        let redirecting = {
            let j_or_b = n.or(jump, br_taken);
            n.and(d.exec_valid, j_or_b)
        };
        let mut target = br_target;
        target = n.mux(d.is_jal, jal_target, target);
        target = n.mux(d.is_jalr, jalr_target, target);

        // ---------------- Halt ---------------------------------------------
        let do_halt = n.and(d.exec_valid, d.is_ebreak);
        let halted_stay = n.or(self.halted.wire(), do_halt);
        let halted_next = n.mux(self.ctx_switch, zero1, halted_stay);
        n.connect_reg(self.halted, halted_next);

        // ---------------- Register writeback -------------------------------
        let four = n.lit(32, 4);
        let link = n.add(self.if_pc.wire(), four);
        let mut wb_val = alu;
        wb_val = n.mux(d.is_lui, d.imm_u, wb_val);
        wb_val = n.mux(d.is_load, resp.rdata, wb_val);
        wb_val = n.mux(jump, link, wb_val);
        let writes_rd = {
            let arith = n.or(d.is_op, d.is_opimm);
            let w1 = n.or(arith, d.is_lui);
            let w2 = n.or(w1, jump);
            n.or(w2, d.is_load)
        };
        let rd_nonzero = {
            let z = n.eq_const(d.rd, 0);
            n.not(z)
        };
        let not_stall = n.not(stall);
        let wb_en0 = n.and(d.exec_valid, writes_rd);
        let wb_en1 = n.and(wb_en0, rd_nonzero);
        let wb_en = n.and(wb_en1, not_stall);
        let rd_idx = n.slice(d.rd, 3, 0);
        n.mem_write(self.regfile, wb_en, rd_idx, wb_val);

        // ---------------- Fetch --------------------------------------------
        let pc_w = self.pc.wire();
        let pc_word = n.slice(pc_w, 19, 2);
        let fetched = n.mem_read(self.imem, pc_word);
        let pc_plus4 = n.add(pc_w, four);

        let not_halted = n.not(self.halted.wire());
        let advance0 = n.and(not_halted, not_stall);
        let no_halt_now = n.not(do_halt);
        let advance = n.and(advance0, no_halt_now);

        let pc_seq = n.mux(redirecting, target, pc_plus4);
        let pc_run = n.mux(advance, pc_seq, pc_w);
        let pc_next = n.mux(self.ctx_switch, self.ctx_pc, pc_run);
        n.connect_reg(self.pc, pc_next);

        // IF/EX pipeline registers: load new instruction when advancing,
        // hold on stall, bubble on redirect/halt/context switch.
        let if_instr_next = n.mux(advance, fetched, self.if_instr.wire());
        n.connect_reg(self.if_instr, if_instr_next);
        let if_pc_next = n.mux(advance, pc_w, self.if_pc.wire());
        n.connect_reg(self.if_pc, if_pc_next);

        let not_redirect = n.not(redirecting);
        let valid_run0 = n.mux(advance, not_redirect, self.if_valid.wire());
        let valid_run = n.and(valid_run0, no_halt_now);
        let valid_keep = n.and(valid_run, not_halted);
        let if_valid_next = n.mux(self.ctx_switch, zero1, valid_keep);
        n.connect_reg(self.if_valid, if_valid_next);

        n.set_name(self.halted.wire(), "halted_flag");
        n.pop_scope();

        Cpu {
            imem: self.imem,
            regfile: self.regfile,
            halted: self.halted.wire(),
            pc: self.pc.wire(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{Asm, Reg};
    use crate::xbar::sram_xbar;
    use ssc_netlist::Netlist;
    use ssc_sim::Sim;

    /// CPU + one RAM on a 1-master crossbar.
    struct Tb {
        n: Netlist,
        cpu: Cpu,
        ram: MemId,
    }

    fn build() -> Tb {
        let mut n = Netlist::new("cpu_t");
        let cpu_b = CpuBuilder::new(&mut n, "cpu", 256);
        let port = cpu_b.port;
        // All CPU memory traffic goes to one RAM here; tests use PUB space.
        let x = sram_xbar(&mut n, "xbar", &[port], 64, StateMeta::memory(true));
        let cpu = cpu_b.finish(&mut n, "cpu", x.resps[0]);
        n.mark_output("halted", cpu.halted);
        n.mark_output("pc", cpu.pc);
        n.check().unwrap();
        Tb { n, cpu, ram: x.mem }
    }

    fn load_and_run<'a>(tb: &'a Tb, prog: &Asm, max_cycles: u64) -> Sim<'a> {
        let mut sim = Sim::new(&tb.n).unwrap();
        for (i, word) in prog.words().iter().enumerate() {
            sim.set_mem_word(tb.cpu.imem, i as u32, Bv::new(32, u64::from(*word)));
        }
        // Kick the core out of its initial halted state.
        sim.set_input("cpu.ctx_switch", 1);
        sim.set_input("cpu.ctx_pc", 0);
        sim.step();
        sim.set_input("cpu.ctx_switch", 0);
        let halted = sim.netlist().find("cpu.halted_flag").unwrap();
        assert!(
            sim.step_until(halted, max_cycles).is_some(),
            "program did not halt in {max_cycles} cycles"
        );
        sim
    }

    fn reg_val(sim: &Sim, tb: &Tb, r: Reg) -> u64 {
        sim.read_mem(tb.cpu.regfile, r.num()).val()
    }

    #[test]
    fn arithmetic_and_immediates() {
        let tb = build();
        let mut a = Asm::new();
        a.addi(Reg::X1, Reg::X0, 100);
        a.addi(Reg::X2, Reg::X0, -3);
        a.add(Reg::X3, Reg::X1, Reg::X2); // 97
        a.sub(Reg::X4, Reg::X1, Reg::X2); // 103
        a.xori(Reg::X5, Reg::X1, 0xFF); // 100 ^ 255 = 155
        a.andi(Reg::X6, Reg::X1, 0x0F); // 4
        a.ori(Reg::X7, Reg::X0, 0x55); // 0x55
        a.slli(Reg::X8, Reg::X1, 3); // 800
        a.srli(Reg::X9, Reg::X1, 2); // 25
        a.ebreak();
        let sim = load_and_run(&tb, &a, 64);
        assert_eq!(reg_val(&sim, &tb, Reg::X1), 100);
        assert_eq!(reg_val(&sim, &tb, Reg::X2) as u32, (-3i32) as u32);
        assert_eq!(reg_val(&sim, &tb, Reg::X3), 97);
        assert_eq!(reg_val(&sim, &tb, Reg::X4), 103);
        assert_eq!(reg_val(&sim, &tb, Reg::X5), 155);
        assert_eq!(reg_val(&sim, &tb, Reg::X6), 4);
        assert_eq!(reg_val(&sim, &tb, Reg::X7), 0x55);
        assert_eq!(reg_val(&sim, &tb, Reg::X8), 800);
        assert_eq!(reg_val(&sim, &tb, Reg::X9), 25);
    }

    #[test]
    fn lui_and_store_load_roundtrip() {
        let tb = build();
        let mut a = Asm::new();
        a.lui(Reg::X1, 0x1C000); // PUB_RAM_BASE
        a.addi(Reg::X2, Reg::X0, 0x5A);
        a.sw(Reg::X1, Reg::X2, 8);
        a.lw(Reg::X3, Reg::X1, 8);
        a.ebreak();
        let sim = load_and_run(&tb, &a, 64);
        assert_eq!(reg_val(&sim, &tb, Reg::X3), 0x5A);
        assert_eq!(sim.read_mem(tb.ram, 2).val(), 0x5A);
    }

    #[test]
    fn branch_loop_counts() {
        let tb = build();
        let mut a = Asm::new();
        // for (x1 = 0; x1 != 5; x1++) x2 += 2;
        a.addi(Reg::X1, Reg::X0, 0);
        a.addi(Reg::X2, Reg::X0, 0);
        a.addi(Reg::X3, Reg::X0, 5);
        a.label("loop");
        a.beq(Reg::X1, Reg::X3, "end");
        a.addi(Reg::X2, Reg::X2, 2);
        a.addi(Reg::X1, Reg::X1, 1);
        a.jal(Reg::X0, "loop");
        a.label("end");
        a.ebreak();
        let sim = load_and_run(&tb, &a, 256);
        assert_eq!(reg_val(&sim, &tb, Reg::X1), 5);
        assert_eq!(reg_val(&sim, &tb, Reg::X2), 10);
    }

    #[test]
    fn signed_and_unsigned_branches() {
        let tb = build();
        let mut a = Asm::new();
        a.addi(Reg::X1, Reg::X0, -1); // 0xFFFFFFFF
        a.addi(Reg::X2, Reg::X0, 1);
        a.addi(Reg::X3, Reg::X0, 0);
        a.addi(Reg::X4, Reg::X0, 0);
        // signed: -1 < 1 -> taken
        a.blt(Reg::X1, Reg::X2, "s_ok");
        a.jal(Reg::X0, "after_s");
        a.label("s_ok");
        a.addi(Reg::X3, Reg::X0, 1);
        a.label("after_s");
        // unsigned: 0xFFFFFFFF < 1 is false -> fall through
        a.bltu(Reg::X1, Reg::X2, "u_taken");
        a.addi(Reg::X4, Reg::X0, 1);
        a.label("u_taken");
        a.ebreak();
        let sim = load_and_run(&tb, &a, 64);
        assert_eq!(reg_val(&sim, &tb, Reg::X3), 1, "BLT signed taken");
        assert_eq!(reg_val(&sim, &tb, Reg::X4), 1, "BLTU not taken");
    }

    #[test]
    fn jalr_returns() {
        let tb = build();
        let mut a = Asm::new();
        a.jal(Reg::X1, "func"); // call
        a.addi(Reg::X2, Reg::X0, 7); // executed after return
        a.ebreak();
        a.label("func");
        a.addi(Reg::X3, Reg::X0, 9);
        a.jalr(Reg::X0, Reg::X1, 0); // return
        let sim = load_and_run(&tb, &a, 64);
        assert_eq!(reg_val(&sim, &tb, Reg::X2), 7);
        assert_eq!(reg_val(&sim, &tb, Reg::X3), 9);
    }

    #[test]
    fn x0_is_never_written() {
        let tb = build();
        let mut a = Asm::new();
        a.addi(Reg::X0, Reg::X0, 42);
        a.add(Reg::X1, Reg::X0, Reg::X0);
        a.ebreak();
        let sim = load_and_run(&tb, &a, 32);
        assert_eq!(reg_val(&sim, &tb, Reg::X1), 0);
    }

    #[test]
    fn context_switch_flushes_and_restarts() {
        let tb = build();
        let mut a = Asm::new();
        // Task A at 0: loops forever incrementing x1.
        a.label("spin");
        a.addi(Reg::X1, Reg::X1, 1);
        a.jal(Reg::X0, "spin");
        // Task B at word 8 (byte 32): sets x2 and halts.
        a.pad_to(8);
        a.addi(Reg::X2, Reg::X0, 0x77);
        a.ebreak();

        let mut sim = Sim::new(&tb.n).unwrap();
        for (i, word) in a.words().iter().enumerate() {
            sim.set_mem_word(tb.cpu.imem, i as u32, Bv::new(32, u64::from(*word)));
        }
        sim.set_input("cpu.ctx_switch", 1);
        sim.set_input("cpu.ctx_pc", 0);
        sim.step();
        sim.set_input("cpu.ctx_switch", 0);
        sim.step_n(20); // let task A spin
        assert!(reg_val(&sim, &tb, Reg::X1) > 0);
        assert_eq!(sim.peek_name("halted").val(), 0);
        // Switch to task B.
        sim.set_input("cpu.ctx_switch", 1);
        sim.set_input("cpu.ctx_pc", 32);
        sim.step();
        sim.set_input("cpu.ctx_switch", 0);
        let halted = tb.n.find("cpu.halted_flag").unwrap();
        assert!(sim.step_until(halted, 16).is_some());
        assert_eq!(reg_val(&sim, &tb, Reg::X2), 0x77);
    }
}
