//! HWPE-style streaming accelerator.
//!
//! Models the Hardware Processing Engine of the Pulpissimo case study
//! (paper Sec. 4.1): a master that streams elements from a source region,
//! transforms them, and writes results to a destination region, keeping an
//! architectural **progress** register. Each element costs one read and one
//! write transaction, so the accelerator's forward progress is delayed by
//! exactly one cycle for every cycle it loses arbitration — that delay is
//! the timing side channel. The written values are non-zero whenever the
//! source is zero-primed, which lets an attacker locate the write frontier
//! in a zero-primed destination region and deduce the victim's access count
//! *without any timer*.

use ssc_netlist::{Bv, Netlist, RegHandle, StateMeta, Wire};

use crate::addr;
use crate::bus::{bump_in_device, ApbBus, MasterPort, MasterResp};

/// Phase-1 handle: registers and master port exist; logic is attached by
/// [`HwpeBuilder::finish`].
pub struct HwpeBuilder {
    src: RegHandle,
    dst: RegHandle,
    len: RegHandle,
    busy: RegHandle,
    phase: RegHandle,
    cnt: RegHandle,
    cur_src: RegHandle,
    cur_dst: RegHandle,
    buf: RegHandle,
    progress: RegHandle,
    /// The bus master port driven by the accelerator.
    pub port: MasterPort,
}

/// Finished HWPE interface.
#[derive(Clone, Copy, Debug)]
pub struct Hwpe {
    /// Busy flag (readable at [`addr::HWPE_STATUS`]).
    pub busy: Wire,
    /// Elements completed so far (readable at [`addr::HWPE_PROGRESS`]).
    pub progress: Wire,
    /// APB read-data contribution.
    pub apb_rdata: Wire,
}

impl HwpeBuilder {
    /// Creates the accelerator state and master port under `scope`.
    pub fn new(n: &mut Netlist, scope: &str) -> Self {
        n.push_scope(scope);
        let ip = StateMeta::ip_register();
        let src = n.reg("src", 32, Some(Bv::zero(32)), ip);
        let dst = n.reg("dst", 32, Some(Bv::zero(32)), ip);
        let len = n.reg("len", 8, Some(Bv::zero(8)), ip);
        let busy = n.reg("busy", 1, Some(Bv::zero(1)), ip);
        let phase = n.reg("phase", 1, Some(Bv::zero(1)), ip);
        let cnt = n.reg("cnt", 8, Some(Bv::zero(8)), ip);
        let cur_src = n.reg("cur_src", 32, Some(Bv::zero(32)), ip);
        let cur_dst = n.reg("cur_dst", 32, Some(Bv::zero(32)), ip);
        let buf = n.reg("buf", 32, Some(Bv::zero(32)), ip);
        let progress = n.reg("progress", 8, Some(Bv::zero(8)), ip);

        // The "computation": out = buf + progress + 1. With a zero-primed
        // source this writes 1, 2, 3, ... — always distinguishable from the
        // zero-primed destination.
        let prog32 = n.zext(progress.wire(), 32);
        let one32 = n.lit(32, 1);
        let prog1 = n.add(prog32, one32);
        let out = n.add(buf.wire(), prog1);

        let req = busy.wire();
        let addr_w = n.mux(phase.wire(), cur_dst.wire(), cur_src.wire());
        let port = MasterPort { req, addr: addr_w, we: phase.wire(), wdata: out };
        n.set_name(port.addr, "addr_out");
        n.set_name(out, "wdata_out");
        n.pop_scope();

        HwpeBuilder {
            src,
            dst,
            len,
            busy,
            phase,
            cnt,
            cur_src,
            cur_dst,
            buf,
            progress,
            port,
        }
    }

    /// Connects the engine logic given the crossbar response and the APB
    /// bus; returns the public interface.
    pub fn finish(self, n: &mut Netlist, scope: &str, resp: MasterResp, apb: &ApbBus) -> Hwpe {
        n.push_scope(scope);
        let one1 = n.lit(1, 1);
        let zero1 = n.lit(1, 0);

        // --- APB configuration -------------------------------------------
        let w_src = apb.reg_write(n, addr::HWPE_SRC);
        let w_dst = apb.reg_write(n, addr::HWPE_DST);
        let w_len = apb.reg_write(n, addr::HWPE_LEN);
        let w_ctrl = apb.reg_write(n, addr::HWPE_CTRL);
        let wdata_len = n.slice(apb.wdata, 7, 0);
        let src_next = n.mux(w_src, apb.wdata, self.src.wire());
        let dst_next = n.mux(w_dst, apb.wdata, self.dst.wire());
        let len_next = n.mux(w_len, wdata_len, self.len.wire());
        n.connect_reg(self.src, src_next);
        n.connect_reg(self.dst, dst_next);
        n.connect_reg(self.len, len_next);
        let start_bit = n.bit(apb.wdata, 0);
        let start = n.and(w_ctrl, start_bit);
        let not_start_bit = n.not(start_bit);
        let stop = n.and(w_ctrl, not_start_bit);

        // --- Streaming engine ---------------------------------------------
        let busy_w = self.busy.wire();
        let phase_w = self.phase.wire();
        let step = n.and(busy_w, resp.gnt);
        let not_phase = n.not(phase_w);
        let read_step = n.and(step, not_phase);
        let write_step = n.and(step, phase_w);
        let last = n.eq_const(self.cnt.wire(), 1);
        let done = n.and(write_step, last);

        let buf_next = n.mux(read_step, resp.rdata, self.buf.wire());
        n.connect_reg(self.buf, buf_next);

        let phase_mid = n.mux(write_step, zero1, phase_w);
        let phase_after = n.mux(read_step, one1, phase_mid);

        let src_bumped = bump_in_device(n, self.cur_src.wire());
        let dst_bumped = bump_in_device(n, self.cur_dst.wire());
        let one8 = n.lit(8, 1);
        let cnt_dec = n.sub(self.cnt.wire(), one8);
        let prog_inc = n.add(self.progress.wire(), one8);

        let cur_src_after = n.mux(write_step, src_bumped, self.cur_src.wire());
        let cur_dst_after = n.mux(write_step, dst_bumped, self.cur_dst.wire());
        let cnt_after = n.mux(write_step, cnt_dec, self.cnt.wire());
        let prog_after = n.mux(write_step, prog_inc, self.progress.wire());
        let not_done = n.not(done);
        let busy_after = n.and(busy_w, not_done);

        // Start/stop override the engine. Writing CTRL with bit 0 clear
        // freezes the engine (busy <- 0) while keeping progress/pointers —
        // the snapshot the retrieval phase of the memory attack relies on.
        let len_zero = n.eq_const(len_next, 0);
        let len_nonzero = n.not(len_zero);
        let busy_run = n.mux(start, len_nonzero, busy_after);
        let busy_next = n.mux(stop, zero1, busy_run);
        let cur_src_next = n.mux(start, src_next, cur_src_after);
        let cur_dst_next = n.mux(start, dst_next, cur_dst_after);
        let cnt_next = n.mux(start, len_next, cnt_after);
        let zero8 = n.lit(8, 0);
        let prog_next = n.mux(start, zero8, prog_after);
        let phase_next = n.mux(start, zero1, phase_after);

        n.connect_reg(self.busy, busy_next);
        n.connect_reg(self.cur_src, cur_src_next);
        n.connect_reg(self.cur_dst, cur_dst_next);
        n.connect_reg(self.cnt, cnt_next);
        n.connect_reg(self.progress, prog_next);
        n.connect_reg(self.phase, phase_next);

        // --- APB readback --------------------------------------------------
        let status = n.zext(busy_w, 32);
        let len32 = n.zext(self.len.wire(), 32);
        let prog32 = n.zext(self.progress.wire(), 32);
        let mut rdata = n.lit(32, 0);
        for (reg, val) in [
            (addr::HWPE_SRC, self.src.wire()),
            (addr::HWPE_DST, self.dst.wire()),
            (addr::HWPE_LEN, len32),
            (addr::HWPE_STATUS, status),
            (addr::HWPE_PROGRESS, prog32),
        ] {
            let hit = n.eq_const(apb.addr, reg);
            rdata = n.mux(hit, val, rdata);
        }
        n.set_name(rdata, "apb_rdata");
        n.pop_scope();

        Hwpe { busy: busy_w, progress: self.progress.wire(), apb_rdata: rdata }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xbar::sram_xbar;
    use ssc_netlist::Netlist;
    use ssc_sim::Sim;

    fn fixture() -> (Netlist, ssc_netlist::MemId) {
        let mut n = Netlist::new("hwpe_t");
        let apb_wen = n.input("apb_wen", 1);
        let apb_addr = n.input("apb_addr", 32);
        let apb_wdata = n.input("apb_wdata", 32);
        let apb = ApbBus { wen: apb_wen, addr: apb_addr, wdata: apb_wdata };
        // A second, input-driven master to create contention.
        let iv_req = n.input("iv_req", 1);
        let iv_addr = n.input("iv_addr", 32);
        let iv_we = n.input("iv_we", 1);
        let iv_wdata = n.input("iv_wdata", 32);
        let intruder = MasterPort { req: iv_req, addr: iv_addr, we: iv_we, wdata: iv_wdata };

        let hwpe_b = HwpeBuilder::new(&mut n, "hwpe");
        let port = hwpe_b.port;
        let x = sram_xbar(&mut n, "xbar", &[intruder, port], 32, StateMeta::memory(true));
        let hwpe = hwpe_b.finish(&mut n, "hwpe", x.resps[1], &apb);
        n.mark_output("busy", hwpe.busy);
        n.mark_output("progress", hwpe.progress);
        n.check().unwrap();
        (n, x.mem)
    }

    fn apb_write(sim: &mut Sim, addr: u64, data: u64) {
        sim.set_input("apb_wen", 1);
        sim.set_input("apb_addr", addr);
        sim.set_input("apb_wdata", data);
        sim.step();
        sim.set_input("apb_wen", 0);
    }

    fn start_hwpe(sim: &mut Sim, elements: u64) {
        apb_write(sim, addr::HWPE_SRC, addr::PUB_RAM_BASE);
        apb_write(sim, addr::HWPE_DST, addr::PUB_RAM_BASE + 16 * 4);
        apb_write(sim, addr::HWPE_LEN, elements);
        apb_write(sim, addr::HWPE_CTRL, 1);
    }

    #[test]
    fn writes_progressive_nonzero_values() {
        let (n, mem) = fixture();
        let mut sim = Sim::new(&n).unwrap();
        start_hwpe(&mut sim, 4);
        sim.step_n(8); // 4 elements x 2 cycles, uncontended
        assert_eq!(sim.peek_name("busy").val(), 0);
        assert_eq!(sim.peek_name("progress").val(), 4);
        for i in 0..4u64 {
            assert_eq!(
                sim.read_mem(mem, 16 + i as u32).val(),
                i + 1,
                "zero-primed source => progressive frontier"
            );
        }
        assert_eq!(sim.read_mem(mem, 20).val(), 0, "beyond frontier stays primed");
    }

    #[test]
    fn contention_delays_progress_by_exactly_the_stolen_cycles() {
        let (n, _) = fixture();
        // Run A: no contention, 8 cycles.
        let mut sim_a = Sim::new(&n).unwrap();
        start_hwpe(&mut sim_a, 16);
        sim_a.step_n(8);
        let prog_a = sim_a.peek_name("progress").val();

        // Run B: the intruder wins arbitration for 3 of those cycles.
        let mut sim_b = Sim::new(&n).unwrap();
        start_hwpe(&mut sim_b, 16);
        for cycle in 0..8 {
            let contend = cycle < 3;
            sim_b.set_input("iv_req", u64::from(contend));
            sim_b.set_input("iv_addr", addr::PUB_RAM_BASE + 4);
            sim_b.step();
        }
        let prog_b = sim_b.peek_name("progress").val();
        // Round-robin: each intruder cycle steals at most one HWPE slot.
        assert!(prog_b < prog_a, "contention must slow the accelerator");
        // 3 contended cycles, round-robin alternates -> HWPE loses ~ 3/2
        // slots; each element needs 2 slots.
        assert!(prog_a - prog_b <= 2, "delay bounded by stolen cycles");
    }

    #[test]
    fn progress_register_readable_over_apb() {
        let (n, _) = fixture();
        let mut sim = Sim::new(&n).unwrap();
        start_hwpe(&mut sim, 2);
        sim.step_n(4);
        sim.set_input("apb_addr", addr::HWPE_PROGRESS);
        assert_eq!(sim.peek_name("hwpe.apb_rdata").val(), 2);
    }

    #[test]
    fn restart_resets_progress() {
        let (n, _) = fixture();
        let mut sim = Sim::new(&n).unwrap();
        start_hwpe(&mut sim, 2);
        sim.step_n(4);
        assert_eq!(sim.peek_name("progress").val(), 2);
        apb_write(&mut sim, addr::HWPE_CTRL, 1);
        assert_eq!(sim.peek_name("progress").val(), 0);
    }
}
