//! DMA engine: a word-copy master with an optional timer chain.
//!
//! The DMA copies `len` words from `src` to `dst`, one read and one write
//! transaction per word. When the `chain` bit is set, completion fires a
//! start pulse to the timer — the building block of the Fig. 1 attack: the
//! attacker primes the DMA, the victim's memory traffic delays it, and the
//! timer's start time (hence its count after the attack window) encodes the
//! victim's access behaviour.
//!
//! Address generators bump within the device window
//! ([`crate::bus::bump_in_device`]), so a DMA configured for a device can
//! never wander into another one mid-transfer.

use ssc_netlist::{Bv, Netlist, RegHandle, StateMeta, Wire};

use crate::addr;
use crate::bus::{bump_in_device, ApbBus, MasterPort, MasterResp};

/// Phase-1 handle: registers created, master port derived; next-state logic
/// is connected by [`DmaBuilder::finish`] once the crossbar response exists.
pub struct DmaBuilder {
    src: RegHandle,
    dst: RegHandle,
    len: RegHandle,
    chain: RegHandle,
    busy: RegHandle,
    phase: RegHandle,
    cnt: RegHandle,
    cur_src: RegHandle,
    cur_dst: RegHandle,
    buf: RegHandle,
    /// The bus master port driven by this DMA.
    pub port: MasterPort,
}

/// Finished DMA interface.
#[derive(Clone, Copy, Debug)]
pub struct Dma {
    /// One-cycle pulse on transfer completion (wired to the timer when the
    /// chain bit is set).
    pub done_pulse: Wire,
    /// Busy flag (also readable at [`addr::DMA_STATUS`]).
    pub busy: Wire,
    /// APB read-data contribution (valid when an address in the DMA slot is
    /// read).
    pub apb_rdata: Wire,
}

impl DmaBuilder {
    /// Creates the DMA state and master port under `scope`.
    pub fn new(n: &mut Netlist, scope: &str) -> Self {
        n.push_scope(scope);
        let ip = StateMeta::ip_register();
        let src = n.reg("src", 32, Some(Bv::zero(32)), ip);
        let dst = n.reg("dst", 32, Some(Bv::zero(32)), ip);
        let len = n.reg("len", 8, Some(Bv::zero(8)), ip);
        let chain = n.reg("chain", 1, Some(Bv::zero(1)), ip);
        let busy = n.reg("busy", 1, Some(Bv::zero(1)), ip);
        let phase = n.reg("phase", 1, Some(Bv::zero(1)), ip);
        let cnt = n.reg("cnt", 8, Some(Bv::zero(8)), ip);
        let cur_src = n.reg("cur_src", 32, Some(Bv::zero(32)), ip);
        let cur_dst = n.reg("cur_dst", 32, Some(Bv::zero(32)), ip);
        let buf = n.reg("buf", 32, Some(Bv::zero(32)), ip);

        let req = busy.wire();
        let addr_w = n.mux(phase.wire(), cur_dst.wire(), cur_src.wire());
        let port = MasterPort { req, addr: addr_w, we: phase.wire(), wdata: buf.wire() };
        n.set_name(port.req, "req");
        n.set_name(port.addr, "addr_out");
        n.pop_scope();

        DmaBuilder { src, dst, len, chain, busy, phase, cnt, cur_src, cur_dst, buf, port }
    }

    /// Connects the next-state logic given the crossbar response and the
    /// APB configuration bus. Returns the public interface.
    pub fn finish(self, n: &mut Netlist, scope: &str, resp: MasterResp, apb: &ApbBus) -> Dma {
        n.push_scope(scope);
        let one1 = n.lit(1, 1);

        // --- APB configuration writes -----------------------------------
        let w_src = apb.reg_write(n, addr::DMA_SRC);
        let w_dst = apb.reg_write(n, addr::DMA_DST);
        let w_len = apb.reg_write(n, addr::DMA_LEN);
        let w_ctrl = apb.reg_write(n, addr::DMA_CTRL);
        let wdata_len = n.slice(apb.wdata, 7, 0);
        let src_next = n.mux(w_src, apb.wdata, self.src.wire());
        let dst_next = n.mux(w_dst, apb.wdata, self.dst.wire());
        let len_next = n.mux(w_len, wdata_len, self.len.wire());
        n.connect_reg(self.src, src_next);
        n.connect_reg(self.dst, dst_next);
        n.connect_reg(self.len, len_next);

        let ctrl_start_bit = n.bit(apb.wdata, 0);
        let ctrl_chain_bit = n.bit(apb.wdata, 1);
        let start = n.and(w_ctrl, ctrl_start_bit);
        let chain_next = n.mux(w_ctrl, ctrl_chain_bit, self.chain.wire());
        n.connect_reg(self.chain, chain_next);

        // --- Transfer engine ---------------------------------------------
        let busy_w = self.busy.wire();
        let phase_w = self.phase.wire();
        let gnt = resp.gnt;
        let step = n.and(busy_w, gnt);
        let read_step = {
            let p0 = n.not(phase_w);
            n.and(step, p0)
        };
        let write_step = n.and(step, phase_w);
        let last = n.eq_const(self.cnt.wire(), 1);
        let done = n.and(write_step, last);
        n.set_name(done, "done");

        // buf <- rdata on read step
        let buf_next = n.mux(read_step, resp.rdata, self.buf.wire());
        n.connect_reg(self.buf, buf_next);

        // phase toggles on each granted step
        let zero1 = n.lit(1, 0);
        let phase_mid = n.mux(write_step, zero1, phase_w);
        let phase_after = n.mux(read_step, one1, phase_mid);

        // counters / pointers on write step
        let src_bumped = bump_in_device(n, self.cur_src.wire());
        let dst_bumped = bump_in_device(n, self.cur_dst.wire());
        let cnt_dec = {
            let one8 = n.lit(8, 1);
            n.sub(self.cnt.wire(), one8)
        };
        let cur_src_after = n.mux(write_step, src_bumped, self.cur_src.wire());
        let cur_dst_after = n.mux(write_step, dst_bumped, self.cur_dst.wire());
        let cnt_after = n.mux(write_step, cnt_dec, self.cnt.wire());
        let not_done = n.not(done);
        let busy_after = n.and(busy_w, not_done);

        // Start overrides the engine updates.
        let len_nonzero = {
            let z = n.eq_const(len_next, 0);
            n.not(z)
        };
        let busy_on_start = len_nonzero;
        let busy_next = n.mux(start, busy_on_start, busy_after);
        let cur_src_next = n.mux(start, src_next, cur_src_after);
        let cur_dst_next = n.mux(start, dst_next, cur_dst_after);
        let cnt_next = n.mux(start, len_next, cnt_after);
        let zero1 = n.lit(1, 0);
        let phase_next = n.mux(start, zero1, phase_after);

        n.connect_reg(self.busy, busy_next);
        n.connect_reg(self.cur_src, cur_src_next);
        n.connect_reg(self.cur_dst, cur_dst_next);
        n.connect_reg(self.cnt, cnt_next);
        n.connect_reg(self.phase, phase_next);

        // --- APB readback -------------------------------------------------
        let status = n.zext(busy_w, 32);
        let len32 = n.zext(self.len.wire(), 32);
        let mut rdata = n.lit(32, 0);
        for (reg, val) in [
            (addr::DMA_SRC, self.src.wire()),
            (addr::DMA_DST, self.dst.wire()),
            (addr::DMA_LEN, len32),
            (addr::DMA_STATUS, status),
        ] {
            let hit = n.eq_const(apb.addr, reg);
            rdata = n.mux(hit, val, rdata);
        }
        n.set_name(rdata, "apb_rdata");

        let chained_done = n.and(done, self.chain.wire());
        n.set_name(chained_done, "chained_done");
        n.pop_scope();

        Dma { done_pulse: chained_done, busy: busy_w, apb_rdata: rdata }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xbar::sram_xbar;
    use ssc_netlist::Netlist;
    use ssc_sim::Sim;

    /// DMA alone on a small RAM, configured through input-driven APB.
    fn fixture() -> (Netlist, ssc_netlist::MemId) {
        let mut n = Netlist::new("dma_t");
        let apb_wen = n.input("apb_wen", 1);
        let apb_addr = n.input("apb_addr", 32);
        let apb_wdata = n.input("apb_wdata", 32);
        let apb = ApbBus { wen: apb_wen, addr: apb_addr, wdata: apb_wdata };

        let dma_b = DmaBuilder::new(&mut n, "dma");
        let port = dma_b.port;
        let x = sram_xbar(&mut n, "xbar", &[port], 16, StateMeta::memory(true));
        let dma = dma_b.finish(&mut n, "dma", x.resps[0], &apb);
        n.mark_output("busy", dma.busy);
        n.mark_output("done", dma.done_pulse);
        n.check().unwrap();
        (n, x.mem)
    }

    fn apb_write(sim: &mut Sim, addr: u64, data: u64) {
        sim.set_input("apb_wen", 1);
        sim.set_input("apb_addr", addr);
        sim.set_input("apb_wdata", data);
        sim.step();
        sim.set_input("apb_wen", 0);
    }

    #[test]
    fn copies_words() {
        let (n, mem) = fixture();
        let mut sim = Sim::new(&n).unwrap();
        // Seed source data at words 0..3; dst at words 8..11.
        for i in 0..4 {
            sim.set_mem_word(mem, i, ssc_netlist::Bv::new(32, 0x100 + u64::from(i)));
        }
        apb_write(&mut sim, addr::DMA_SRC, addr::PUB_RAM_BASE);
        apb_write(&mut sim, addr::DMA_DST, addr::PUB_RAM_BASE + 8 * 4);
        apb_write(&mut sim, addr::DMA_LEN, 4);
        apb_write(&mut sim, addr::DMA_CTRL, 1); // start, no chain
        assert_eq!(sim.peek_name("busy").val(), 1);
        // 4 words * 2 cycles each = 8 cycles.
        sim.step_n(8);
        assert_eq!(sim.peek_name("busy").val(), 0);
        for i in 0..4 {
            assert_eq!(sim.read_mem(mem, 8 + i).val(), 0x100 + u64::from(i));
        }
    }

    #[test]
    fn done_pulse_only_when_chained() {
        let (n, _) = fixture();
        let mut sim = Sim::new(&n).unwrap();
        apb_write(&mut sim, addr::DMA_SRC, addr::PUB_RAM_BASE);
        apb_write(&mut sim, addr::DMA_DST, addr::PUB_RAM_BASE + 32);
        apb_write(&mut sim, addr::DMA_LEN, 1);
        apb_write(&mut sim, addr::DMA_CTRL, 1); // no chain bit
        let mut saw_pulse = false;
        for _ in 0..4 {
            saw_pulse |= sim.peek_name("done").is_true();
            sim.step();
        }
        assert!(!saw_pulse, "no chain bit -> no pulse");

        apb_write(&mut sim, addr::DMA_CTRL, 0b11); // start + chain
        let mut pulses = 0;
        for _ in 0..6 {
            pulses += sim.peek_name("done").val();
            sim.step();
        }
        assert_eq!(pulses, 1, "exactly one done pulse");
    }

    #[test]
    fn zero_length_transfer_never_goes_busy() {
        let (n, _) = fixture();
        let mut sim = Sim::new(&n).unwrap();
        apb_write(&mut sim, addr::DMA_LEN, 0);
        apb_write(&mut sim, addr::DMA_CTRL, 1);
        assert_eq!(sim.peek_name("busy").val(), 0);
    }

    #[test]
    fn status_readback_via_mux() {
        let (n, _) = fixture();
        let mut sim = Sim::new(&n).unwrap();
        apb_write(&mut sim, addr::DMA_SRC, 0xDEAD_BEE0);
        sim.set_input("apb_addr", addr::DMA_SRC);
        assert_eq!(sim.peek_name("dma.apb_rdata").val(), 0xDEAD_BEE0);
        sim.set_input("apb_addr", addr::DMA_STATUS);
        assert_eq!(sim.peek_name("dma.apb_rdata").val(), 0);
    }
}
