//! # ssc-soc — a Pulpissimo-style MCU SoC
//!
//! The hardware substrate of the DAC'24 case study, generated as an
//! [`ssc_netlist::Netlist`]:
//!
//! - [`cpu`]: a 2-stage RV32I-subset core (x0–x15) with a stalling data
//!   port and context-switch support, plus [`asm`], a label-resolving
//!   mini-assembler,
//! - [`xbar`]: round-robin crossbars — the contention point that creates
//!   the timing side channel,
//! - [`dma`]: a copy engine that can chain-start the timer (the Fig. 1
//!   attack vehicle),
//! - [`hwpe`]: a streaming accelerator with a progress register (the
//!   Sec. 4.1 attack vehicle — no timer needed),
//! - [`peripherals`]: timer (with a lock/deny countermeasure bit), GPIO,
//!   UART,
//! - [`Soc`]: the wired system in two views — full **simulation view** and
//!   the CPU-less **verification view** whose free data port lets the UPEC
//!   solver quantify over *all* victim programs.
//!
//! # Example
//!
//! ```
//! use ssc_soc::{Soc, SocSim, asm::{Asm, Reg}, addr};
//!
//! let soc = Soc::sim_view();
//! let mut h = SocSim::new(&soc);
//! let mut prog = Asm::new();
//! prog.li(Reg::X1, addr::PUB_RAM_BASE as u32);
//! prog.addi(Reg::X2, Reg::X0, 42);
//! prog.sw(Reg::X1, Reg::X2, 0);
//! prog.ebreak();
//! h.load_program(0, &prog);
//! h.switch_to(0);
//! h.run_until_halt(100).unwrap();
//! assert_eq!(h.pub_word(0), 42);
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod asm;
pub mod bus;
pub mod cpu;
pub mod dma;
mod harness;
pub mod hwpe;
pub mod peripherals;
mod soc;
pub mod xbar;

pub use harness::{BatchSocSim, SocSim};
pub use soc::{port_names, Soc, SocConfig};
