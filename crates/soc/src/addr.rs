//! The SoC address map.
//!
//! Mirrors the Pulpissimo layout in spirit: two memory devices (a shared
//! "public" L2 and a "private" memory on a separate crossbar) plus an APB
//! peripheral region. Device selection uses the top address bits under
//! [`DEV_MASK`].

/// Mask selecting the device window of an address.
pub const DEV_MASK: u64 = 0xFFF0_0000;

/// Base address of the public (shared) RAM device.
pub const PUB_RAM_BASE: u64 = 0x1C00_0000;

/// Base address of the private RAM device.
pub const PRIV_RAM_BASE: u64 = 0x1D00_0000;

/// Base address of the APB peripheral region.
pub const APB_BASE: u64 = 0x1A10_0000;

/// Mask selecting a peripheral slot within the APB region.
pub const APB_SLOT_MASK: u64 = 0xFFFF_F000;

/// Timer peripheral slot.
pub const TIMER_BASE: u64 = APB_BASE;
/// Timer control register offset (bit 0: enable, bit 1: lock reads).
pub const TIMER_CTRL: u64 = TIMER_BASE;
/// Timer counter register offset.
pub const TIMER_COUNT: u64 = TIMER_BASE + 0x4;

/// DMA engine configuration slot.
pub const DMA_BASE: u64 = APB_BASE + 0x1000;
/// DMA source address register.
pub const DMA_SRC: u64 = DMA_BASE;
/// DMA destination address register.
pub const DMA_DST: u64 = DMA_BASE + 0x4;
/// DMA transfer length register (words).
pub const DMA_LEN: u64 = DMA_BASE + 0x8;
/// DMA control register (bit 0: start, bit 1: chain timer start on done).
pub const DMA_CTRL: u64 = DMA_BASE + 0xC;
/// DMA status register (bit 0: busy).
pub const DMA_STATUS: u64 = DMA_BASE + 0x10;

/// HWPE accelerator configuration slot.
pub const HWPE_BASE: u64 = APB_BASE + 0x2000;
/// HWPE source address register.
pub const HWPE_SRC: u64 = HWPE_BASE;
/// HWPE destination address register.
pub const HWPE_DST: u64 = HWPE_BASE + 0x4;
/// HWPE element count register.
pub const HWPE_LEN: u64 = HWPE_BASE + 0x8;
/// HWPE control register (bit 0: start).
pub const HWPE_CTRL: u64 = HWPE_BASE + 0xC;
/// HWPE status register (bit 0: busy).
pub const HWPE_STATUS: u64 = HWPE_BASE + 0x10;
/// HWPE progress register (elements written so far).
pub const HWPE_PROGRESS: u64 = HWPE_BASE + 0x14;

/// GPIO peripheral slot.
pub const GPIO_BASE: u64 = APB_BASE + 0x3000;
/// GPIO output register.
pub const GPIO_OUT: u64 = GPIO_BASE;

/// UART peripheral slot.
pub const UART_BASE: u64 = APB_BASE + 0x4000;
/// UART transmit register.
pub const UART_TX: u64 = UART_BASE;
/// UART status register (always ready in this model).
pub const UART_STATUS: u64 = UART_BASE + 0x4;

/// Instruction memory base (CPU-private, not on any crossbar).
pub const IMEM_BASE: u64 = 0x0000_0000;

/// `true` if `addr` selects the public RAM device.
pub fn is_pub(addr: u64) -> bool {
    addr & DEV_MASK == PUB_RAM_BASE
}

/// `true` if `addr` selects the private RAM device.
pub fn is_priv(addr: u64) -> bool {
    addr & DEV_MASK == PRIV_RAM_BASE
}

/// `true` if `addr` selects the APB peripheral region.
pub fn is_apb(addr: u64) -> bool {
    addr & DEV_MASK == APB_BASE & DEV_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_windows_are_disjoint() {
        for (a, b) in [
            (PUB_RAM_BASE, PRIV_RAM_BASE),
            (PUB_RAM_BASE, APB_BASE),
            (PRIV_RAM_BASE, APB_BASE),
        ] {
            assert_ne!(a & DEV_MASK, b & DEV_MASK);
        }
    }

    #[test]
    fn decode_helpers() {
        assert!(is_pub(PUB_RAM_BASE + 0x40));
        assert!(is_priv(PRIV_RAM_BASE));
        assert!(is_apb(TIMER_COUNT));
        assert!(is_apb(HWPE_PROGRESS));
        assert!(!is_pub(PRIV_RAM_BASE));
        assert!(!is_apb(PUB_RAM_BASE));
    }

    #[test]
    fn peripheral_slots_distinct() {
        let slots = [TIMER_BASE, DMA_BASE, HWPE_BASE, GPIO_BASE, UART_BASE];
        for i in 0..slots.len() {
            for j in (i + 1)..slots.len() {
                assert_ne!(slots[i] & APB_SLOT_MASK, slots[j] & APB_SLOT_MASK);
            }
        }
    }
}
