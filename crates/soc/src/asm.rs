//! A mini-assembler for the RV32I subset executed by [`crate::cpu`].
//!
//! Produces raw instruction words with label-based branch fixups:
//!
//! ```
//! use ssc_soc::asm::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! a.li(Reg::X1, 0x1C00_0000);
//! a.label("loop");
//! a.lw(Reg::X2, Reg::X1, 0);
//! a.bne(Reg::X2, Reg::X0, "loop");
//! a.ebreak();
//! let words = a.words();
//! assert_eq!(words.len(), 5); // li expands to lui+addi
//! ```

use std::collections::HashMap;

/// Architectural registers x0..x15 (RV32E subset).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Reg {
    X0, X1, X2, X3, X4, X5, X6, X7,
    X8, X9, X10, X11, X12, X13, X14, X15,
}

impl Reg {
    /// The register number (0..=15).
    pub fn num(self) -> u32 {
        self as u32
    }
}

#[derive(Clone, Debug)]
enum Item {
    Word(u32),
    Branch { funct3: u32, rs1: Reg, rs2: Reg, label: String },
    Jal { rd: Reg, label: String },
}

/// The assembler: instructions are appended, labels resolved by
/// [`Asm::words`].
#[derive(Clone, Debug, Default)]
pub struct Asm {
    items: Vec<Item>,
    labels: HashMap<String, u32>,
}

fn enc_r(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2.num() << 20) | (rs1.num() << 15) | (funct3 << 12) | (rd.num() << 7) | opcode
}

fn enc_i(imm: i32, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    assert!((-2048..=2047).contains(&imm), "I-immediate {imm} out of range");
    ((imm as u32 & 0xFFF) << 20) | (rs1.num() << 15) | (funct3 << 12) | (rd.num() << 7) | opcode
}

fn enc_s(imm: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    assert!((-2048..=2047).contains(&imm), "S-immediate {imm} out of range");
    let u = imm as u32 & 0xFFF;
    ((u >> 5) << 25) | (rs2.num() << 20) | (rs1.num() << 15) | (funct3 << 12) | ((u & 0x1F) << 7) | opcode
}

fn enc_b(offset: i32, rs2: Reg, rs1: Reg, funct3: u32) -> u32 {
    assert!(offset % 2 == 0, "branch offset must be even");
    assert!((-4096..=4094).contains(&offset), "B-offset {offset} out of range");
    let u = offset as u32;
    let b12 = (u >> 12) & 1;
    let b11 = (u >> 11) & 1;
    let b10_5 = (u >> 5) & 0x3F;
    let b4_1 = (u >> 1) & 0xF;
    (b12 << 31) | (b10_5 << 25) | (rs2.num() << 20) | (rs1.num() << 15) | (funct3 << 12)
        | (b4_1 << 8) | (b11 << 7) | 0b1100011
}

fn enc_j(offset: i32, rd: Reg) -> u32 {
    assert!(offset % 2 == 0, "jump offset must be even");
    assert!((-(1 << 20)..(1 << 20)).contains(&offset), "J-offset {offset} out of range");
    let u = offset as u32;
    let b20 = (u >> 20) & 1;
    let b19_12 = (u >> 12) & 0xFF;
    let b11 = (u >> 11) & 1;
    let b10_1 = (u >> 1) & 0x3FF;
    (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | (rd.num() << 7) | 0b1101111
}

impl Asm {
    /// Creates an empty program.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current length in instruction words.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate labels.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.items.len() as u32);
        assert!(prev.is_none(), "duplicate label `{name}`");
    }

    /// Pads with `NOP`s until the given word index.
    ///
    /// # Panics
    ///
    /// Panics if the program is already longer.
    pub fn pad_to(&mut self, word_index: usize) {
        assert!(self.items.len() <= word_index, "pad_to behind current position");
        while self.items.len() < word_index {
            self.nop();
        }
    }

    /// Emits a raw instruction word.
    pub fn raw(&mut self, word: u32) {
        self.items.push(Item::Word(word));
    }

    /// `nop` (`addi x0, x0, 0`).
    pub fn nop(&mut self) {
        self.addi(Reg::X0, Reg::X0, 0);
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.raw(enc_i(imm, rs1, 0b000, rd, 0b0010011));
    }

    /// `slti rd, rs1, imm`.
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.raw(enc_i(imm, rs1, 0b010, rd, 0b0010011));
    }

    /// `sltiu rd, rs1, imm`.
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.raw(enc_i(imm, rs1, 0b011, rd, 0b0010011));
    }

    /// `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.raw(enc_i(imm, rs1, 0b100, rd, 0b0010011));
    }

    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.raw(enc_i(imm, rs1, 0b110, rd, 0b0010011));
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.raw(enc_i(imm, rs1, 0b111, rd, 0b0010011));
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: u32) {
        assert!(shamt < 32, "shift amount out of range");
        self.raw(enc_i(shamt as i32, rs1, 0b001, rd, 0b0010011));
    }

    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: u32) {
        assert!(shamt < 32, "shift amount out of range");
        self.raw(enc_i(shamt as i32, rs1, 0b101, rd, 0b0010011));
    }

    /// `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: u32) {
        assert!(shamt < 32, "shift amount out of range");
        self.raw(enc_i((shamt | 0x400) as i32, rs1, 0b101, rd, 0b0010011));
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.raw(enc_r(0, rs2, rs1, 0b000, rd, 0b0110011));
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.raw(enc_r(0b0100000, rs2, rs1, 0b000, rd, 0b0110011));
    }

    /// `sll rd, rs1, rs2`.
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.raw(enc_r(0, rs2, rs1, 0b001, rd, 0b0110011));
    }

    /// `slt rd, rs1, rs2`.
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.raw(enc_r(0, rs2, rs1, 0b010, rd, 0b0110011));
    }

    /// `sltu rd, rs1, rs2`.
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.raw(enc_r(0, rs2, rs1, 0b011, rd, 0b0110011));
    }

    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.raw(enc_r(0, rs2, rs1, 0b100, rd, 0b0110011));
    }

    /// `srl rd, rs1, rs2`.
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.raw(enc_r(0, rs2, rs1, 0b101, rd, 0b0110011));
    }

    /// `sra rd, rs1, rs2`.
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.raw(enc_r(0b0100000, rs2, rs1, 0b101, rd, 0b0110011));
    }

    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.raw(enc_r(0, rs2, rs1, 0b110, rd, 0b0110011));
    }

    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.raw(enc_r(0, rs2, rs1, 0b111, rd, 0b0110011));
    }

    /// `lui rd, imm20` (upper 20 bits).
    pub fn lui(&mut self, rd: Reg, imm20: u32) {
        assert!(imm20 < (1 << 20), "LUI immediate out of range");
        self.raw((imm20 << 12) | (rd.num() << 7) | 0b0110111);
    }

    /// Pseudo-instruction: loads a full 32-bit constant (expands to
    /// `lui` + `addi`, accounting for `addi` sign extension).
    pub fn li(&mut self, rd: Reg, value: u32) {
        let low = (value & 0xFFF) as i32;
        let low_sext = (low << 20) >> 20; // sign-extend 12 bits
        let high = value.wrapping_sub(low_sext as u32) >> 12;
        self.lui(rd, high & 0xFFFFF);
        self.addi(rd, rd, low_sext);
    }

    /// `lw rd, offset(rs1)`.
    pub fn lw(&mut self, rd: Reg, rs1: Reg, offset: i32) {
        self.raw(enc_i(offset, rs1, 0b010, rd, 0b0000011));
    }

    /// `sw rs2, offset(rs1)` — stores `rs2` at `rs1 + offset`.
    pub fn sw(&mut self, rs1: Reg, rs2: Reg, offset: i32) {
        self.raw(enc_s(offset, rs2, rs1, 0b010, 0b0100011));
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.items.push(Item::Branch { funct3: 0b000, rs1, rs2, label: label.into() });
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.items.push(Item::Branch { funct3: 0b001, rs1, rs2, label: label.into() });
    }

    /// `blt rs1, rs2, label` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.items.push(Item::Branch { funct3: 0b100, rs1, rs2, label: label.into() });
    }

    /// `bge rs1, rs2, label` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.items.push(Item::Branch { funct3: 0b101, rs1, rs2, label: label.into() });
    }

    /// `bltu rs1, rs2, label` (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.items.push(Item::Branch { funct3: 0b110, rs1, rs2, label: label.into() });
    }

    /// `bgeu rs1, rs2, label` (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.items.push(Item::Branch { funct3: 0b111, rs1, rs2, label: label.into() });
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: Reg, label: &str) {
        self.items.push(Item::Jal { rd, label: label.into() });
    }

    /// `jalr rd, rs1, offset`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i32) {
        self.raw(enc_i(offset, rs1, 0b000, rd, 0b1100111));
    }

    /// `ebreak` — halts the core until the next context switch.
    pub fn ebreak(&mut self) {
        self.raw(0x0010_0073);
    }

    /// Resolves labels and returns the instruction words.
    ///
    /// # Panics
    ///
    /// Panics on references to undefined labels.
    pub fn words(&self) -> Vec<u32> {
        self.items
            .iter()
            .enumerate()
            .map(|(pc, item)| match item {
                Item::Word(w) => *w,
                Item::Branch { funct3, rs1, rs2, label } => {
                    let target = *self
                        .labels
                        .get(label)
                        .unwrap_or_else(|| panic!("undefined label `{label}`"));
                    let offset = (target as i64 - pc as i64) * 4;
                    enc_b(offset as i32, *rs2, *rs1, *funct3)
                }
                Item::Jal { rd, label } => {
                    let target = *self
                        .labels
                        .get(label)
                        .unwrap_or_else(|| panic!("undefined label `{label}`"));
                    let offset = (target as i64 - pc as i64) * 4;
                    enc_j(offset as i32, *rd)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addi_encoding_matches_spec() {
        let mut a = Asm::new();
        a.addi(Reg::X1, Reg::X2, -1);
        // addi x1, x2, -1 = 0xFFF10093
        assert_eq!(a.words()[0], 0xFFF1_0093);
    }

    #[test]
    fn lw_sw_encodings() {
        let mut a = Asm::new();
        a.lw(Reg::X5, Reg::X6, 8); // lw x5, 8(x6) = 0x00832283
        a.sw(Reg::X6, Reg::X5, 12); // sw x5, 12(x6) = 0x00532623
        let w = a.words();
        assert_eq!(w[0], 0x0083_2283);
        assert_eq!(w[1], 0x0053_2623);
    }

    #[test]
    fn branch_offsets_resolve_backwards_and_forwards() {
        let mut a = Asm::new();
        a.label("top");
        a.nop();
        a.beq(Reg::X0, Reg::X0, "top"); // offset -4
        a.bne(Reg::X0, Reg::X0, "end"); // offset +8
        a.nop();
        a.label("end");
        let w = a.words();
        // beq x0, x0, -4 = 0xFE000EE3
        assert_eq!(w[1], 0xFE00_0EE3);
        // bne x0, x0, +8 = 0x00001463
        assert_eq!(w[2], 0x0000_1463);
    }

    #[test]
    fn jal_encoding() {
        let mut a = Asm::new();
        a.jal(Reg::X1, "fwd");
        a.nop();
        a.label("fwd");
        // jal x1, +8 = 0x008000EF
        assert_eq!(a.words()[0], 0x0080_00EF);
    }

    #[test]
    fn li_handles_sign_boundary() {
        // Values whose low 12 bits have the sign bit set need LUI +1.
        for v in [0u32, 1, 0x800, 0xFFF, 0x1000, 0xFFFF_FFFF, 0x1C00_0800, 0xDEAD_BEEF] {
            let mut a = Asm::new();
            a.li(Reg::X1, v);
            let w = a.words();
            // Reconstruct: lui then addi.
            let lui_imm = w[0] >> 12;
            let addi_imm = ((w[1] as i32) >> 20) as i64;
            let got = ((lui_imm as i64) << 12).wrapping_add(addi_imm) as u32;
            assert_eq!(got, v, "li {v:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Asm::new();
        a.jal(Reg::X0, "nowhere");
        a.words();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn immediate_range_checked() {
        let mut a = Asm::new();
        a.addi(Reg::X1, Reg::X0, 5000);
    }

    #[test]
    fn pad_to_inserts_nops() {
        let mut a = Asm::new();
        a.nop();
        a.pad_to(4);
        assert_eq!(a.len(), 4);
        assert_eq!(a.words()[3], 0x0000_0013); // canonical NOP
    }
}
