//! Simulation harness: load programs, context-switch between tasks, inspect
//! memory — the "OS" around the bare-metal SoC.
//!
//! [`SocSim`] drives one scalar simulation; [`BatchSocSim`] drives `64·W`
//! independent SoC instances per netlist walk (one per bit-sliced lane of
//! a width-`W` block — 64 at the default `W = 1`, 256 at `W = 4`), which
//! the attack-scenario sweeps use to evaluate every victim access count in
//! parallel.

use ssc_netlist::Bv;
use ssc_sim::{BatchSim, Sim};

use crate::asm::{Asm, Reg};
use crate::soc::Soc;

/// A running SoC simulation with task-management helpers.
pub struct SocSim<'n> {
    sim: Sim<'n>,
    soc: &'n Soc,
}

impl<'n> std::fmt::Debug for SocSim<'n> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocSim").field("cycle", &self.sim.cycle()).finish()
    }
}

impl<'n> SocSim<'n> {
    /// Creates a simulation of `soc` (must be a simulation view).
    ///
    /// # Panics
    ///
    /// Panics if the SoC was built without a CPU.
    pub fn new(soc: &'n Soc) -> Self {
        assert!(soc.cpu.is_some(), "SocSim requires a simulation view (with_cpu)");
        let sim = Sim::new(&soc.netlist).expect("SoC netlist is checked");
        SocSim { sim, soc }
    }

    /// Access to the underlying simulator.
    pub fn sim(&mut self) -> &mut Sim<'n> {
        &mut self.sim
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.sim.cycle()
    }

    /// Loads an assembled program at instruction-memory word `word_base`.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the instruction memory.
    pub fn load_program(&mut self, word_base: u32, program: &Asm) {
        let cpu = self.soc.cpu.as_ref().expect("sim view");
        let words = program.words();
        for (i, w) in words.iter().enumerate() {
            self.sim
                .set_mem_word(cpu.imem, word_base + i as u32, Bv::new(32, u64::from(*w)));
        }
    }

    /// Performs a context switch: flushes the pipeline and continues
    /// execution at byte address `pc`. Register contents are architecturally
    /// preserved (the threat model makes tasks responsible for clearing
    /// secrets from the core before yielding).
    pub fn switch_to(&mut self, pc: u64) {
        self.sim.set_input("cpu.ctx_switch", 1);
        self.sim.set_input("cpu.ctx_pc", pc);
        self.sim.step();
        self.sim.set_input("cpu.ctx_switch", 0);
    }

    /// Runs until the current task halts (`EBREAK`). Returns the number of
    /// cycles it took, or `None` on timeout.
    pub fn run_until_halt(&mut self, max_cycles: u64) -> Option<u64> {
        let halted = self
            .soc
            .netlist
            .find("cpu.halted_flag")
            .expect("sim view exposes the halt flag");
        let start = self.sim.cycle();
        self.sim.step_until(halted, max_cycles)?;
        Some(self.sim.cycle() - start)
    }

    /// Runs exactly `n` cycles.
    pub fn step_n(&mut self, n: u64) {
        self.sim.step_n(n);
    }

    /// Reads CPU register `r`.
    pub fn reg(&mut self, r: Reg) -> u64 {
        let cpu = self.soc.cpu.as_ref().expect("sim view");
        if r == Reg::X0 {
            return 0;
        }
        self.sim.read_mem(cpu.regfile, r.num()).val()
    }

    /// Reads a public-RAM word.
    pub fn pub_word(&mut self, index: u32) -> u64 {
        self.sim.read_mem(self.soc.pub_ram, index).val()
    }

    /// Writes a public-RAM word.
    pub fn set_pub_word(&mut self, index: u32, value: u64) {
        self.sim.set_mem_word(self.soc.pub_ram, index, Bv::new(32, value));
    }

    /// Reads a private-RAM word.
    pub fn priv_word(&mut self, index: u32) -> u64 {
        self.sim.read_mem(self.soc.priv_ram, index).val()
    }

    /// Writes a private-RAM word.
    pub fn set_priv_word(&mut self, index: u32, value: u64) {
        self.sim.set_mem_word(self.soc.priv_ram, index, Bv::new(32, value));
    }

    /// Peeks any named signal.
    pub fn peek(&mut self, name: &str) -> u64 {
        self.sim.peek_name(name).val()
    }
}

/// A `64·W`-lane SoC simulation: every bit-sliced lane is one independent
/// SoC instance with its own instruction memory, RAM contents and
/// peripheral state (the default `W = 1` is the 64-lane engine; `W = 4`
/// runs 256 instances per walk).
///
/// Broadcast operations ([`BatchSocSim::load_program`],
/// [`BatchSocSim::switch_to`]) drive all lanes identically; per-lane
/// operations ([`BatchSocSim::load_program_lane`]) let lanes run *different*
/// task images — the attack sweeps load one victim program per lane and
/// recover one channel observation per lane from a single run.
pub struct BatchSocSim<'n, const W: usize = 1> {
    sim: BatchSim<'n, W>,
    soc: &'n Soc,
}

impl<'n, const W: usize> std::fmt::Debug for BatchSocSim<'n, W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSocSim").field("cycle", &self.sim.cycle()).finish()
    }
}

impl<'n, const W: usize> BatchSocSim<'n, W> {
    /// Number of independent SoC instances (simulation lanes) per walk.
    pub const LANES: usize = BatchSim::<'n, W>::LANES;

    /// Creates a `64·W`-lane simulation of `soc` (must be a simulation
    /// view).
    ///
    /// # Panics
    ///
    /// Panics if the SoC was built without a CPU.
    pub fn new(soc: &'n Soc) -> Self {
        assert!(soc.cpu.is_some(), "BatchSocSim requires a simulation view (with_cpu)");
        let sim = BatchSim::new(&soc.netlist).expect("SoC netlist is checked");
        BatchSocSim { sim, soc }
    }

    /// Access to the underlying batch simulator.
    pub fn sim(&mut self) -> &mut BatchSim<'n, W> {
        &mut self.sim
    }

    /// Current cycle count (shared by all lanes).
    pub fn cycle(&self) -> u64 {
        self.sim.cycle()
    }

    /// Loads an assembled program at instruction-memory word `word_base`
    /// in **every** lane.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the instruction memory.
    pub fn load_program(&mut self, word_base: u32, program: &Asm) {
        let cpu = self.soc.cpu.as_ref().expect("sim view");
        for (i, w) in program.words().iter().enumerate() {
            self.sim
                .set_mem_word(cpu.imem, word_base + i as u32, Bv::new(32, u64::from(*w)));
        }
    }

    /// Loads an assembled program at `word_base` in **one** lane, leaving
    /// the other lanes' instruction memories untouched.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the instruction memory or the lane is
    /// out of range.
    pub fn load_program_lane(&mut self, lane: usize, word_base: u32, program: &Asm) {
        let cpu = self.soc.cpu.as_ref().expect("sim view");
        for (i, w) in program.words().iter().enumerate() {
            self.sim.set_mem_word_lane(
                cpu.imem,
                word_base + i as u32,
                lane,
                Bv::new(32, u64::from(*w)),
            );
        }
    }

    /// Context switch in every lane: flush the pipeline, continue at byte
    /// address `pc` (see [`SocSim::switch_to`]).
    pub fn switch_to(&mut self, pc: u64) {
        self.sim.set_input("cpu.ctx_switch", 1);
        self.sim.set_input("cpu.ctx_pc", pc);
        self.sim.step();
        self.sim.set_input("cpu.ctx_switch", 0);
    }

    /// Runs until the current task has halted (`EBREAK`) in **every** lane.
    /// Returns the number of cycles it took, or `None` on timeout.
    ///
    /// Lanes that halt early sit idle (the halted CPU is quiescent) while
    /// slower lanes catch up; autonomous IPs (DMA, HWPE, timer) keep
    /// running everywhere, exactly as they would in a scalar run of the
    /// slowest lane.
    pub fn run_until_all_halt(&mut self, max_cycles: u64) -> Option<u64> {
        let halted = self
            .soc
            .netlist
            .find("cpu.halted_flag")
            .expect("sim view exposes the halt flag");
        let start = self.sim.cycle();
        self.sim.step_until_all_high(halted, max_cycles)?;
        Some(self.sim.cycle() - start)
    }

    /// Runs exactly `n` cycles in all lanes.
    pub fn step_n(&mut self, n: u64) {
        self.sim.step_n(n);
    }

    /// Reads CPU register `r` in one lane.
    pub fn reg_lane(&mut self, r: Reg, lane: usize) -> u64 {
        let cpu = self.soc.cpu.as_ref().expect("sim view");
        if r == Reg::X0 {
            return 0;
        }
        self.sim.read_mem_lane(cpu.regfile, r.num(), lane).val()
    }

    /// Reads a public-RAM word in one lane.
    pub fn pub_word_lane(&mut self, index: u32, lane: usize) -> u64 {
        self.sim.read_mem_lane(self.soc.pub_ram, index, lane).val()
    }

    /// Peeks any named signal across all lanes (lane-indexed).
    pub fn peek_lanes(&mut self, name: &str) -> Vec<u64> {
        self.sim.peek_name_lanes(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;
    use crate::soc::SocConfig;

    #[test]
    fn program_runs_and_halts() {
        let soc = Soc::build(SocConfig::sim());
        let mut h = SocSim::new(&soc);
        let mut a = Asm::new();
        a.li(Reg::X1, addr::PUB_RAM_BASE as u32);
        a.addi(Reg::X2, Reg::X0, 0x5A);
        a.sw(Reg::X1, Reg::X2, 4);
        a.ebreak();
        h.load_program(0, &a);
        h.switch_to(0);
        assert!(h.run_until_halt(100).is_some());
        assert_eq!(h.pub_word(1), 0x5A);
        assert_eq!(h.reg(Reg::X2), 0x5A);
    }

    #[test]
    fn two_tasks_share_the_core() {
        let soc = Soc::build(SocConfig::sim());
        let mut h = SocSim::new(&soc);
        // Task A at word 0 writes GPIO and halts.
        let mut a = Asm::new();
        a.li(Reg::X1, addr::GPIO_OUT as u32);
        a.addi(Reg::X2, Reg::X0, 0xA);
        a.sw(Reg::X1, Reg::X2, 0);
        a.ebreak();
        // Task B at word 32 writes a different value.
        let mut b = Asm::new();
        b.li(Reg::X1, addr::GPIO_OUT as u32);
        b.addi(Reg::X2, Reg::X0, 0xB);
        b.sw(Reg::X1, Reg::X2, 0);
        b.ebreak();
        h.load_program(0, &a);
        h.load_program(32, &b);
        h.switch_to(0);
        h.run_until_halt(100).unwrap();
        assert_eq!(h.peek("gpio_out"), 0xA);
        h.switch_to(32 * 4);
        h.run_until_halt(100).unwrap();
        assert_eq!(h.peek("gpio_out"), 0xB);
    }

    #[test]
    fn batch_lanes_run_distinct_programs() {
        const LANES: usize = BatchSocSim::<1>::LANES;
        let soc = Soc::build(SocConfig::sim());
        let mut h = BatchSocSim::<1>::new(&soc);
        // Every lane publishes its own id to GPIO.
        for lane in 0..LANES {
            let mut a = Asm::new();
            a.li(Reg::X1, addr::GPIO_OUT as u32);
            a.addi(Reg::X2, Reg::X0, lane as i32);
            a.sw(Reg::X1, Reg::X2, 0);
            a.ebreak();
            h.load_program_lane(lane, 0, &a);
        }
        h.switch_to(0);
        assert!(h.run_until_all_halt(100).is_some());
        let out = h.peek_lanes("gpio_out");
        for (l, &v) in out.iter().enumerate() {
            assert_eq!(v, l as u64, "lane {l}");
        }
    }

    #[test]
    fn batch_lane_matches_scalar_run() {
        let soc = Soc::build(SocConfig::sim());
        let mut program = Asm::new();
        program.li(Reg::X1, addr::PUB_RAM_BASE as u32);
        program.addi(Reg::X2, Reg::X0, 0x5A);
        program.sw(Reg::X1, Reg::X2, 4);
        program.ebreak();

        let mut scalar = SocSim::new(&soc);
        scalar.load_program(0, &program);
        scalar.switch_to(0);
        scalar.run_until_halt(100).unwrap();

        let mut batch = BatchSocSim::<1>::new(&soc);
        batch.load_program(0, &program);
        batch.switch_to(0);
        batch.run_until_all_halt(100).unwrap();

        for lane in [0usize, 17, 63] {
            assert_eq!(batch.pub_word_lane(1, lane), scalar.pub_word(1));
            assert_eq!(batch.reg_lane(Reg::X2, lane), scalar.reg(Reg::X2));
        }
    }

    #[test]
    fn wide_batch_lanes_run_distinct_programs() {
        const LANES: usize = BatchSocSim::<4>::LANES;
        let soc = Soc::build(SocConfig::sim());
        let mut h = BatchSocSim::<4>::new(&soc);
        // A sample of lanes across all four block words publish their id;
        // the rest halt immediately.
        let active = [0usize, 1, 63, 64, 100, 127, 128, 191, 192, 255];
        for lane in 0..LANES {
            let mut a = Asm::new();
            if active.contains(&lane) {
                a.li(Reg::X1, addr::GPIO_OUT as u32);
                a.addi(Reg::X2, Reg::X0, (lane % 256) as i32);
                a.sw(Reg::X1, Reg::X2, 0);
            }
            a.ebreak();
            h.load_program_lane(lane, 0, &a);
        }
        h.switch_to(0);
        assert!(h.run_until_all_halt(200).is_some());
        let out = h.peek_lanes("gpio_out");
        assert_eq!(out.len(), 256);
        for &lane in &active {
            assert_eq!(out[lane], (lane % 256) as u64, "lane {lane}");
        }
    }

    #[test]
    fn timer_readable_by_program() {
        let soc = Soc::build(SocConfig::sim());
        let mut h = SocSim::new(&soc);
        let mut a = Asm::new();
        a.li(Reg::X1, addr::TIMER_CTRL as u32);
        a.addi(Reg::X2, Reg::X0, 1);
        a.sw(Reg::X1, Reg::X2, 0); // enable timer
        a.nop();
        a.nop();
        a.nop();
        a.lw(Reg::X3, Reg::X1, 4); // read TIMER_COUNT
        a.ebreak();
        h.load_program(0, &a);
        h.switch_to(0);
        h.run_until_halt(100).unwrap();
        let t = h.reg(Reg::X3);
        assert!((3..=6).contains(&t), "timer read {t} should reflect elapsed cycles");
    }
}
