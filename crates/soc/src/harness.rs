//! Simulation harness: load programs, context-switch between tasks, inspect
//! memory — the "OS" around the bare-metal SoC.

use ssc_netlist::Bv;
use ssc_sim::Sim;

use crate::asm::{Asm, Reg};
use crate::soc::Soc;

/// A running SoC simulation with task-management helpers.
pub struct SocSim<'n> {
    sim: Sim<'n>,
    soc: &'n Soc,
}

impl<'n> std::fmt::Debug for SocSim<'n> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocSim").field("cycle", &self.sim.cycle()).finish()
    }
}

impl<'n> SocSim<'n> {
    /// Creates a simulation of `soc` (must be a simulation view).
    ///
    /// # Panics
    ///
    /// Panics if the SoC was built without a CPU.
    pub fn new(soc: &'n Soc) -> Self {
        assert!(soc.cpu.is_some(), "SocSim requires a simulation view (with_cpu)");
        let sim = Sim::new(&soc.netlist).expect("SoC netlist is checked");
        SocSim { sim, soc }
    }

    /// Access to the underlying simulator.
    pub fn sim(&mut self) -> &mut Sim<'n> {
        &mut self.sim
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.sim.cycle()
    }

    /// Loads an assembled program at instruction-memory word `word_base`.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the instruction memory.
    pub fn load_program(&mut self, word_base: u32, program: &Asm) {
        let cpu = self.soc.cpu.as_ref().expect("sim view");
        let words = program.words();
        for (i, w) in words.iter().enumerate() {
            self.sim
                .set_mem_word(cpu.imem, word_base + i as u32, Bv::new(32, u64::from(*w)));
        }
    }

    /// Performs a context switch: flushes the pipeline and continues
    /// execution at byte address `pc`. Register contents are architecturally
    /// preserved (the threat model makes tasks responsible for clearing
    /// secrets from the core before yielding).
    pub fn switch_to(&mut self, pc: u64) {
        self.sim.set_input("cpu.ctx_switch", 1);
        self.sim.set_input("cpu.ctx_pc", pc);
        self.sim.step();
        self.sim.set_input("cpu.ctx_switch", 0);
    }

    /// Runs until the current task halts (`EBREAK`). Returns the number of
    /// cycles it took, or `None` on timeout.
    pub fn run_until_halt(&mut self, max_cycles: u64) -> Option<u64> {
        let halted = self
            .soc
            .netlist
            .find("cpu.halted_flag")
            .expect("sim view exposes the halt flag");
        let start = self.sim.cycle();
        self.sim.step_until(halted, max_cycles)?;
        Some(self.sim.cycle() - start)
    }

    /// Runs exactly `n` cycles.
    pub fn step_n(&mut self, n: u64) {
        self.sim.step_n(n);
    }

    /// Reads CPU register `r`.
    pub fn reg(&mut self, r: Reg) -> u64 {
        let cpu = self.soc.cpu.as_ref().expect("sim view");
        if r == Reg::X0 {
            return 0;
        }
        self.sim.read_mem(cpu.regfile, r.num()).val()
    }

    /// Reads a public-RAM word.
    pub fn pub_word(&mut self, index: u32) -> u64 {
        self.sim.read_mem(self.soc.pub_ram, index).val()
    }

    /// Writes a public-RAM word.
    pub fn set_pub_word(&mut self, index: u32, value: u64) {
        self.sim.set_mem_word(self.soc.pub_ram, index, Bv::new(32, value));
    }

    /// Reads a private-RAM word.
    pub fn priv_word(&mut self, index: u32) -> u64 {
        self.sim.read_mem(self.soc.priv_ram, index).val()
    }

    /// Writes a private-RAM word.
    pub fn set_priv_word(&mut self, index: u32, value: u64) {
        self.sim.set_mem_word(self.soc.priv_ram, index, Bv::new(32, value));
    }

    /// Peeks any named signal.
    pub fn peek(&mut self, name: &str) -> u64 {
        self.sim.peek_name(name).val()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;
    use crate::soc::SocConfig;

    #[test]
    fn program_runs_and_halts() {
        let soc = Soc::build(SocConfig::sim());
        let mut h = SocSim::new(&soc);
        let mut a = Asm::new();
        a.li(Reg::X1, addr::PUB_RAM_BASE as u32);
        a.addi(Reg::X2, Reg::X0, 0x5A);
        a.sw(Reg::X1, Reg::X2, 4);
        a.ebreak();
        h.load_program(0, &a);
        h.switch_to(0);
        assert!(h.run_until_halt(100).is_some());
        assert_eq!(h.pub_word(1), 0x5A);
        assert_eq!(h.reg(Reg::X2), 0x5A);
    }

    #[test]
    fn two_tasks_share_the_core() {
        let soc = Soc::build(SocConfig::sim());
        let mut h = SocSim::new(&soc);
        // Task A at word 0 writes GPIO and halts.
        let mut a = Asm::new();
        a.li(Reg::X1, addr::GPIO_OUT as u32);
        a.addi(Reg::X2, Reg::X0, 0xA);
        a.sw(Reg::X1, Reg::X2, 0);
        a.ebreak();
        // Task B at word 32 writes a different value.
        let mut b = Asm::new();
        b.li(Reg::X1, addr::GPIO_OUT as u32);
        b.addi(Reg::X2, Reg::X0, 0xB);
        b.sw(Reg::X1, Reg::X2, 0);
        b.ebreak();
        h.load_program(0, &a);
        h.load_program(32, &b);
        h.switch_to(0);
        h.run_until_halt(100).unwrap();
        assert_eq!(h.peek("gpio_out"), 0xA);
        h.switch_to(32 * 4);
        h.run_until_halt(100).unwrap();
        assert_eq!(h.peek("gpio_out"), 0xB);
    }

    #[test]
    fn timer_readable_by_program() {
        let soc = Soc::build(SocConfig::sim());
        let mut h = SocSim::new(&soc);
        let mut a = Asm::new();
        a.li(Reg::X1, addr::TIMER_CTRL as u32);
        a.addi(Reg::X2, Reg::X0, 1);
        a.sw(Reg::X1, Reg::X2, 0); // enable timer
        a.nop();
        a.nop();
        a.nop();
        a.lw(Reg::X3, Reg::X1, 4); // read TIMER_COUNT
        a.ebreak();
        h.load_program(0, &a);
        h.switch_to(0);
        h.run_until_halt(100).unwrap();
        let t = h.reg(Reg::X3);
        assert!((3..=6).contains(&t), "timer read {t} should reflect elapsed cycles");
    }
}
