//! Top-level SoC generator.
//!
//! Assembles the Pulpissimo-shaped system of the case study (paper Sec. 4):
//!
//! ```text
//!        ┌─────┐   ┌─────┐   ┌──────┐
//!        │ CPU │   │ DMA │   │ HWPE │           masters
//!        └──┬──┘   └──┬──┘   └──┬─┬─┘
//!     ┌─────┼─────────┴─────────┘ │
//!     │     │  public crossbar    │  private crossbar
//!  ┌──┴──┐ ┌┴────────┐        ┌───┴─────┐
//!  │ APB │ │ pub RAM │        │ priv RAM│        devices
//!  └──┬──┘ └─────────┘        └─────────┘
//!  timer, DMA cfg, HWPE cfg, GPIO, UART
//! ```
//!
//! Two views share all fabric/IP code:
//!
//! * **Simulation view** (`with_cpu: true`): the full SoC including the
//!   RV32I core — used by the attack demonstrations.
//! * **Verification view** (`with_cpu: false`): the CPU is replaced by free
//!   inputs at its data port (same hierarchical names), exactly the cut the
//!   paper's method makes — "the property makes no restrictions regarding
//!   the actual program executed as victim task" (Sec. 3.3).

use ssc_netlist::{MemId, Netlist, StateMeta};

use crate::bus::{sel_apb, sel_priv, sel_pub, ApbBus, MasterPort, MasterResp};
use crate::cpu::{Cpu, CpuBuilder};
use crate::dma::DmaBuilder;
use crate::hwpe::HwpeBuilder;
use crate::peripherals::{gpio, timer, uart};
use crate::xbar::sram_xbar;

/// Stable names of the CPU data-port signals (identical in both views).
pub mod port_names {
    /// Request strobe.
    pub const REQ: &str = "cpu.dport_req";
    /// Byte address.
    pub const ADDR: &str = "cpu.dport_addr";
    /// Write enable.
    pub const WE: &str = "cpu.dport_we";
    /// Write data.
    pub const WDATA: &str = "cpu.dport_wdata";
    /// Grant output (fabric → CPU).
    pub const GNT: &str = "cpu_gnt";
    /// Read data output (fabric → CPU).
    pub const RDATA: &str = "cpu_rdata";
}

/// SoC generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SocConfig {
    /// Words in the public (shared) RAM.
    pub pub_words: u32,
    /// Words in the private RAM.
    pub priv_words: u32,
    /// Words of CPU instruction memory (simulation view only).
    pub imem_words: u32,
    /// Include the CPU (simulation view) or replace it with free inputs
    /// (verification view).
    pub with_cpu: bool,
}

impl SocConfig {
    /// Defaults for running firmware on the simulator.
    pub fn sim() -> Self {
        SocConfig { pub_words: 256, priv_words: 64, imem_words: 512, with_cpu: true }
    }

    /// Defaults for formal verification: small memories, no CPU.
    pub fn verification() -> Self {
        SocConfig { pub_words: 8, priv_words: 8, imem_words: 8, with_cpu: false }
    }

    /// Verification view with custom memory sizes (scaling experiments).
    pub fn verification_sized(pub_words: u32, priv_words: u32) -> Self {
        SocConfig { pub_words, priv_words, imem_words: 8, with_cpu: false }
    }
}

/// A generated SoC.
#[derive(Debug)]
pub struct Soc {
    /// The flat netlist of the whole system.
    pub netlist: Netlist,
    /// Generation parameters.
    pub cfg: SocConfig,
    /// The public (shared) RAM device.
    pub pub_ram: MemId,
    /// The private RAM device.
    pub priv_ram: MemId,
    /// CPU handles (simulation view only).
    pub cpu: Option<Cpu>,
}

/// Compile-time thread-safety audit: the sharded attack sweeps
/// (`ssc_attacks::leak::sweep_batched_with_pool`) and the portfolio runner
/// share one built [`Soc`] by reference across pool workers, each worker
/// constructing its own simulator on top. That is only sound while `Soc`
/// stays free of interior mutability.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Soc>();
};

impl Soc {
    /// Generates a SoC for the given configuration.
    pub fn build(cfg: SocConfig) -> Soc {
        let mut n = Netlist::new("pulpissimo_like_soc");

        // ---------------- CPU or free port --------------------------------
        let (cpu_builder, cpu_port) = if cfg.with_cpu {
            let b = CpuBuilder::new(&mut n, "cpu", cfg.imem_words);
            let port = b.port;
            (Some(b), port)
        } else {
            let req = n.input(port_names::REQ, 1);
            let addr_w = n.input(port_names::ADDR, 32);
            let we = n.input(port_names::WE, 1);
            let wdata = n.input(port_names::WDATA, 32);
            (None, MasterPort { req, addr: addr_w, we, wdata })
        };

        // ---------------- Address decode for the CPU port -----------------
        let cpu_pub = sel_pub(&mut n, cpu_port.addr);
        let cpu_priv = sel_priv(&mut n, cpu_port.addr);
        let cpu_apb = sel_apb(&mut n, cpu_port.addr);

        // ---------------- IP masters (phase 1) ----------------------------
        let dma_b = DmaBuilder::new(&mut n, "dma");
        let hwpe_b = HwpeBuilder::new(&mut n, "hwpe");

        let hwpe_pub_sel = sel_pub(&mut n, hwpe_b.port.addr);
        let hwpe_priv_sel = sel_priv(&mut n, hwpe_b.port.addr);

        // ---------------- Crossbars ----------------------------------------
        let cpu_on_pub = cpu_port.gated(&mut n, cpu_pub);
        let dma_port = dma_b.port;
        let hwpe_on_pub = hwpe_b.port.gated(&mut n, hwpe_pub_sel);
        let pub_x = sram_xbar(
            &mut n,
            "pub_xbar",
            &[cpu_on_pub, dma_port, hwpe_on_pub],
            cfg.pub_words,
            StateMeta::memory(true),
        );

        let cpu_on_priv = cpu_port.gated(&mut n, cpu_priv);
        let hwpe_on_priv = hwpe_b.port.gated(&mut n, hwpe_priv_sel);
        let priv_x = sram_xbar(
            &mut n,
            "priv_xbar",
            &[cpu_on_priv, hwpe_on_priv],
            cfg.priv_words,
            StateMeta::memory(true),
        );

        // ---------------- APB ----------------------------------------------
        let cpu_we_apb = n.and(cpu_port.we, cpu_apb);
        let apb_wen = n.and(cpu_port.req, cpu_we_apb);
        let apb = ApbBus { wen: apb_wen, addr: cpu_port.addr, wdata: cpu_port.wdata };

        // ---------------- IP engines (phase 2) -----------------------------
        let dma = dma_b.finish(&mut n, "dma", pub_x.resps[1], &apb);

        let hwpe_gnt = n.or(pub_x.resps[2].gnt, priv_x.resps[1].gnt);
        let hwpe_rdata = n.mux(hwpe_priv_sel, priv_x.resps[1].rdata, pub_x.resps[2].rdata);
        let hwpe_resp = MasterResp { gnt: hwpe_gnt, rdata: hwpe_rdata };
        let hwpe = hwpe_b.finish(&mut n, "hwpe", hwpe_resp, &apb);

        let tmr = timer(&mut n, "timer", &apb, dma.done_pulse);
        let gp = gpio(&mut n, "gpio", &apb);
        let ua = uart(&mut n, "uart", &apb);

        // ---------------- CPU response mux ---------------------------------
        // APB and unmapped regions always grant (single master, no waits).
        let one1 = n.lit(1, 1);
        let mut cpu_gnt = one1;
        cpu_gnt = n.mux(cpu_pub, pub_x.resps[0].gnt, cpu_gnt);
        cpu_gnt = n.mux(cpu_priv, priv_x.resps[0].gnt, cpu_gnt);

        let apb_rd0 = n.or(tmr.apb_rdata, dma.apb_rdata);
        let apb_rd1 = n.or(apb_rd0, hwpe.apb_rdata);
        let apb_rd2 = n.or(apb_rd1, gp.apb_rdata);
        let apb_rdata = n.or(apb_rd2, ua.apb_rdata);
        let zero32 = n.lit(32, 0);
        let mut cpu_rdata = n.mux(cpu_apb, apb_rdata, zero32);
        cpu_rdata = n.mux(cpu_priv, priv_x.resps[0].rdata, cpu_rdata);
        cpu_rdata = n.mux(cpu_pub, pub_x.resps[0].rdata, cpu_rdata);

        n.mark_output(port_names::GNT, cpu_gnt);
        n.mark_output(port_names::RDATA, cpu_rdata);

        // ---------------- Observation outputs ------------------------------
        n.mark_output("timer_irq", tmr.irq);
        n.mark_output("gpio_out", gp.out);
        n.mark_output("uart_tx", ua.tx);
        n.mark_output("hwpe_busy", hwpe.busy);
        n.mark_output("hwpe_progress", hwpe.progress);
        n.mark_output("dma_busy", dma.busy);
        n.mark_output("pub_contention", pub_x.contention);
        n.mark_output("priv_contention", priv_x.contention);

        // ---------------- CPU pipeline (phase 2) ---------------------------
        let cpu = cpu_builder.map(|b| {
            let resp = MasterResp { gnt: cpu_gnt, rdata: cpu_rdata };
            let cpu = b.finish(&mut n, "cpu", resp);
            n.mark_output("cpu_halted", cpu.halted);
            n.mark_output("cpu_pc", cpu.pc);
            cpu
        });

        n.check().expect("generated SoC must be structurally valid");

        Soc { netlist: n, cfg, pub_ram: pub_x.mem, priv_ram: priv_x.mem, cpu }
    }

    /// Shorthand: the full simulation view with default sizes.
    pub fn sim_view() -> Soc {
        Soc::build(SocConfig::sim())
    }

    /// Shorthand: the verification view with default sizes.
    pub fn verification_view() -> Soc {
        Soc::build(SocConfig::verification())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr;
    use ssc_netlist::analysis;
    use ssc_sim::Sim;

    #[test]
    fn both_views_build_and_check() {
        let sim_view = Soc::sim_view();
        let ver_view = Soc::verification_view();
        assert!(sim_view.cpu.is_some());
        assert!(ver_view.cpu.is_none());
        // The verification view exposes the CPU port as inputs.
        for name in [port_names::REQ, port_names::ADDR, port_names::WE, port_names::WDATA] {
            assert!(ver_view.netlist.find(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn verification_view_has_no_cpu_state() {
        let v = Soc::verification_view();
        for e in analysis::state_elements(&v.netlist) {
            assert_ne!(
                e.meta.kind,
                ssc_netlist::StateKind::CpuInternal,
                "CPU state {} must not exist in the verification view",
                e.name
            );
        }
    }

    #[test]
    fn state_bit_count_scales_with_memory() {
        let small = Soc::build(SocConfig::verification_sized(8, 8));
        let large = Soc::build(SocConfig::verification_sized(64, 64));
        let sb = analysis::state_bit_count(&small.netlist);
        let lb = analysis::state_bit_count(&large.netlist);
        assert!(lb > sb + 100 * 32, "memory growth must dominate: {sb} -> {lb}");
    }

    /// Drive the verification view's free CPU port by hand: a write to
    /// public memory lands; contention with the DMA stalls the grant.
    #[test]
    fn free_port_write_to_pub_ram() {
        let v = Soc::verification_view();
        let mut sim = Sim::new(&v.netlist).unwrap();
        sim.set_input(port_names::REQ, 1);
        sim.set_input(port_names::ADDR, addr::PUB_RAM_BASE + 12);
        sim.set_input(port_names::WE, 1);
        sim.set_input(port_names::WDATA, 0xCAFE);
        assert_eq!(sim.peek_name(port_names::GNT).val(), 1);
        sim.step();
        assert_eq!(sim.read_mem(v.pub_ram, 3).val(), 0xCAFE);
    }

    #[test]
    fn apb_always_grants_and_reads_back() {
        let v = Soc::verification_view();
        let mut sim = Sim::new(&v.netlist).unwrap();
        // Write HWPE_LEN = 5 over the free port.
        sim.set_input(port_names::REQ, 1);
        sim.set_input(port_names::ADDR, addr::HWPE_LEN);
        sim.set_input(port_names::WE, 1);
        sim.set_input(port_names::WDATA, 5);
        assert_eq!(sim.peek_name(port_names::GNT).val(), 1);
        sim.step();
        // Read it back.
        sim.set_input(port_names::WE, 0);
        assert_eq!(sim.peek_name(port_names::RDATA).val(), 5);
    }

    #[test]
    fn unmapped_addresses_grant_with_zero_data() {
        let v = Soc::verification_view();
        let mut sim = Sim::new(&v.netlist).unwrap();
        sim.set_input(port_names::REQ, 1);
        sim.set_input(port_names::ADDR, 0x4000_0000);
        assert_eq!(sim.peek_name(port_names::GNT).val(), 1);
        assert_eq!(sim.peek_name(port_names::RDATA).val(), 0);
    }
}
