//! # ssc-ipc — Interval Property Checking
//!
//! Bounded property checking from a **symbolic initial state**, the proof
//! engine behind UPEC-SSC (paper Sec. 3.2):
//!
//! - [`Unroller`]: lowers a netlist over k cycles into an AIG, with fresh
//!   symbolic variables for the starting state — covering *all possible
//!   histories* of the design, which is what turns bounded checks into
//!   unbounded guarantees,
//! - [`Ipc`]: *assume/prove* property checks discharged by the `ssc-sat`
//!   CDCL solver, incremental across repeated checks,
//! - permanent constraints for reachability invariants, and model
//!   extraction for counterexample construction.
//!
//! # The persistent-session architecture
//!
//! One `Ipc` is designed to outlive an **entire proof campaign** — every
//! window of the unrolled UPEC-SSC procedure (paper Alg. 2) and every
//! iteration of the inductive fixpoint (Alg. 1) run against the same
//! solver. Three mechanisms make that sound and fast:
//!
//! 1. **Monotone growth.** The [`Unroller`] only ever appends cycles, the
//!    AIG only ever appends nodes, and the CNF encoder only ever encodes
//!    *new* cones ([`Ipc::encoded_nodes`] is the proof counter: its growth
//!    per window is bounded by the newly unrolled cycle's logic, not by the
//!    window length).
//! 2. **Assumption-based queries.** Standing constraints and the
//!    state-equality antecedent are passed as solver *assumptions*, so a
//!    query never poisons the clause database and all learnt clauses carry
//!    over to later windows.
//! 3. **Activation literals** ([`Ipc::activation_literal`] /
//!    [`Ipc::add_clause_under`] / [`Ipc::retire_activation`]). The negated
//!    proof goal is a *disjunction* (some tracked state atom diverges) and
//!    must be a clause, but the atom set shrinks between iterations.
//!    Guarding the clause with an activation literal makes it removable on
//!    a purely additive solver: retiring the literal (a unit clause)
//!    deactivates the obligation while every learnt lemma stays valid.
//!    The goal clause a caller installs need not even be the full
//!    disjunction: `upec-ssc`'s static influence certificate omits
//!    disjuncts that are provably false (unreachable within the cycle
//!    budget), and since a constant-false disjunct changes neither the
//!    clause's models nor its verdict, the checker never knows — or needs
//!    to know — that the goal was pruned upstream.
//!
//! Between windows, [`Ipc::collect_garbage`] can shed stale learnt clauses
//! (glue and locked clauses survive) so an arbitrarily long session does
//! not grow without bound. Each activation literal also opens a solver
//! *activation era* tagging the learnt clauses derived under its goal;
//! once the goal is retired, [`Ipc::fork`] drops the era's lemmas — a fork
//! never inherits learnts that belong purely to a previous scenario's
//! retired goals. (Within one session the same lemmas mostly concern the
//! shared formula and keep serving the next window's near-identical goal,
//! so the in-session GC leaves them to its ordinary LBD ranking.)
//!
//! # Copy-on-write session forks
//!
//! A *portfolio* of related proof campaigns (the same design under several
//! scenario specifications) shares most of its encoded formula: the
//! unrolled cycles, the input-equality macros and the state-equality cones
//! are scenario-independent. [`Ipc::fork`] turns one checker into a base
//! image for all of them: build and encode the shared prefix once, then
//! fork per scenario. A fork snapshots the AIG, the node→variable table and
//! the full solver state (clause arena, learnt clauses, saved phases,
//! VSIDS activities) — all flat arenas, so the snapshot is a handful of
//! memcpys — after which each fork grows independently and pays only for
//! its scenario-specific additions. Everything learnt on the shared prefix
//! before the fork point benefits every fork.
//!
//! # Example: an unbounded proof from a 1-cycle window
//!
//! ```
//! use ssc_netlist::{Netlist, Bv, StateMeta};
//! use ssc_ipc::{Ipc, PropertyResult};
//! use ssc_aig::words;
//!
//! // count' = count + en
//! let mut n = Netlist::new("counter");
//! let en = n.input("en", 1);
//! let count = n.reg("count", 8, Some(Bv::zero(8)), StateMeta::default());
//! let one = n.lit(8, 1);
//! let inc = n.add(count.wire(), one);
//! let next = n.mux(en, inc, count.wire());
//! n.connect_reg(count, next);
//! n.mark_output("count", count.wire());
//!
//! let mut ipc = Ipc::new(&n);
//! let s0 = ipc.unroller().reg_state(count.id(), 0).clone();
//! let s1 = ipc.unroller().reg_state(count.id(), 1).clone();
//! let en0 = ipc.unroller().input(en, 0).clone();
//! let aig = ipc.unroller_mut().aig_mut();
//! let en8 = words::zext(&en0, 8);
//! let expect = words::add(aig, &s0, &en8);
//! let goal = words::eq(aig, &s1, &expect);
//! assert_eq!(ipc.check(&[], goal), PropertyResult::Holds);
//! ```

#![warn(missing_docs)]

mod check;
mod unroll;

pub use check::{words_equal, Ipc, PropertyResult};
pub use ssc_aig::cnf::ModelError;
pub use unroll::Unroller;
