//! Bounded unrolling of a netlist from a symbolic starting state.
//!
//! An [`Unroller`] maintains the AIG encoding of a design over a growing
//! number of clock cycles. Cycle 0 starts from a **fully symbolic state**
//! (fresh AIG inputs for every register and memory word) — the defining
//! ingredient of Interval Property Checking: all possible input histories
//! are covered by the starting state, so bounded properties gain unbounded
//! validity.

use std::sync::Arc;

use ssc_aig::lower::{lower_cycle, CycleInputs, CycleOutputs};
use ssc_aig::words::Word;
use ssc_aig::Aig;
use ssc_netlist::{MemId, Netlist, SignalId, Wire};

/// Incremental k-cycle unroller with a symbolic initial state.
///
/// `Clone` snapshots the AIG and shares the per-cycle leaf/output tables
/// (the netlist is borrowed, not copied); forked proof sessions use it to
/// share an unrolled prefix across scenarios instead of re-lowering it per
/// scenario. Cycles are append-only and immutable once lowered, so each is
/// held behind an [`Arc`] — a clone bumps one reference count per cycle
/// instead of deep-copying thousands of per-signal words, which is what
/// keeps a session fork down to memcpys.
#[derive(Clone)]
pub struct Unroller<'n> {
    netlist: &'n Netlist,
    aig: Aig,
    /// Per-cycle leaf values and lowered outputs (immutable per entry;
    /// shared across forks).
    cycles: Vec<Arc<(CycleInputs, CycleOutputs)>>,
}

impl<'n> std::fmt::Debug for Unroller<'n> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Unroller")
            .field("design", &self.netlist.name())
            .field("cycles", &self.cycles.len())
            .field("aig_nodes", &self.aig.num_nodes())
            .finish()
    }
}

impl<'n> Unroller<'n> {
    /// Creates an unroller with cycle 0 lowered from a symbolic state.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::check`].
    pub fn new(netlist: &'n Netlist) -> Self {
        netlist.check().expect("unroller requires a checked netlist");
        let mut aig = Aig::new();
        let leaves = CycleInputs::fresh(netlist, &mut aig);
        let outs = lower_cycle(netlist, &mut aig, &leaves);
        Unroller { netlist, aig, cycles: vec![Arc::new((leaves, outs))] }
    }

    /// The design being unrolled.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Shared access to the AIG (for building extra constraint logic).
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Mutable access to the AIG (for building extra constraint logic).
    pub fn aig_mut(&mut self) -> &mut Aig {
        &mut self.aig
    }

    /// Number of cycles currently lowered (cycle indices `0..count`).
    pub fn cycle_count(&self) -> usize {
        self.cycles.len()
    }

    /// Extends the unrolling so cycles `0..=cycle` exist.
    pub fn ensure_cycle(&mut self, cycle: usize) {
        while self.cycles.len() <= cycle {
            let prev_outs = &self.cycles.last().expect("cycle 0 exists").1;
            let leaves = CycleInputs::next_cycle(self.netlist, &mut self.aig, prev_outs);
            let outs = lower_cycle(self.netlist, &mut self.aig, &leaves);
            self.cycles.push(Arc::new((leaves, outs)));
        }
    }

    /// The AIG word of combinational signal `wire` during `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the cycle has not been unrolled (use
    /// [`Unroller::ensure_cycle`]).
    pub fn signal(&self, wire: Wire, cycle: usize) -> &Word {
        self.signal_id(wire.id(), cycle)
    }

    /// [`Unroller::signal`] by id.
    pub fn signal_id(&self, id: SignalId, cycle: usize) -> &Word {
        self.cycles
            .get(cycle)
            .unwrap_or_else(|| panic!("cycle {cycle} not unrolled"))
            .1
            .word(id)
    }

    /// The *state* of register `reg` at time `t` (`t` may equal the number
    /// of unrolled cycles: the state after the last transition).
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the unrolled range or `reg` is not a register.
    pub fn reg_state(&self, reg: SignalId, t: usize) -> &Word {
        if t < self.cycles.len() {
            &self.cycles[t].0.regs[&reg]
        } else if t == self.cycles.len() {
            &self.cycles[t - 1].1.next_regs[&reg]
        } else {
            panic!("state at t={t} not available (unrolled {} cycles)", self.cycles.len())
        }
    }

    /// The state of word `index` of memory `mem` at time `t` (like
    /// [`Unroller::reg_state`]).
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the unrolled range or the index is invalid.
    pub fn mem_word_state(&self, mem: MemId, index: u32, t: usize) -> &Word {
        if t < self.cycles.len() {
            &self.cycles[t].0.mems[&mem][index as usize]
        } else if t == self.cycles.len() {
            &self.cycles[t - 1].1.next_mems[&mem][index as usize]
        } else {
            panic!("state at t={t} not available (unrolled {} cycles)", self.cycles.len())
        }
    }

    /// The symbolic primary input word of `wire` during `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the cycle is not unrolled or the wire is not an input.
    pub fn input(&self, wire: Wire, cycle: usize) -> &Word {
        self.cycles
            .get(cycle)
            .unwrap_or_else(|| panic!("cycle {cycle} not unrolled"))
            .0
            .inputs
            .get(&wire.id())
            .unwrap_or_else(|| panic!("signal is not a primary input"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssc_netlist::{Bv, StateMeta};

    fn counter() -> Netlist {
        let mut n = Netlist::new("counter");
        let en = n.input("en", 1);
        let count = n.reg("count", 8, Some(Bv::zero(8)), StateMeta::default());
        let one = n.lit(8, 1);
        let inc = n.add(count.wire(), one);
        let next = n.mux(en, inc, count.wire());
        n.connect_reg(count, next);
        n.mark_output("count", count.wire());
        n
    }

    #[test]
    fn unrolling_grows_lazily() {
        let n = counter();
        let mut u = Unroller::new(&n);
        assert_eq!(u.cycle_count(), 1);
        u.ensure_cycle(3);
        assert_eq!(u.cycle_count(), 4);
        u.ensure_cycle(1); // no shrink
        assert_eq!(u.cycle_count(), 4);
    }

    #[test]
    fn state_chaining_is_consistent() {
        let n = counter();
        let mut u = Unroller::new(&n);
        u.ensure_cycle(1);
        let count = n.find("count").unwrap();
        // State at t=1 must be exactly the next-state word of cycle 0.
        let s1 = u.reg_state(count.id(), 1).clone();
        let s1b = u.cycles[0].1.next_regs[&count.id()].clone();
        assert_eq!(s1, s1b);
        // And the state *after* the last cycle is reachable at t = count.
        let _s2 = u.reg_state(count.id(), 2);
    }

    #[test]
    #[should_panic(expected = "not unrolled")]
    fn accessing_missing_cycle_panics() {
        let n = counter();
        let u = Unroller::new(&n);
        let count = n.find("count").unwrap();
        let _ = u.signal(count, 5);
    }
}
